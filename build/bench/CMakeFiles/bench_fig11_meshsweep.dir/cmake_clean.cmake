file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_meshsweep.dir/bench_fig11_meshsweep.cpp.o"
  "CMakeFiles/bench_fig11_meshsweep.dir/bench_fig11_meshsweep.cpp.o.d"
  "bench_fig11_meshsweep"
  "bench_fig11_meshsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_meshsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
