# Empty dependencies file for bench_fig11_meshsweep.
# This may be replaced when dependencies are built.
