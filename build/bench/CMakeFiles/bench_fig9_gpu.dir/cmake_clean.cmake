file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gpu.dir/bench_fig9_gpu.cpp.o"
  "CMakeFiles/bench_fig9_gpu.dir/bench_fig9_gpu.cpp.o.d"
  "bench_fig9_gpu"
  "bench_fig9_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
