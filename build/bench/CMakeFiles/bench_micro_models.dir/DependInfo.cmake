
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_models.cpp" "bench/CMakeFiles/bench_micro_models.dir/bench_micro_models.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_models.dir/bench_micro_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tlm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tlm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/tlm_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
