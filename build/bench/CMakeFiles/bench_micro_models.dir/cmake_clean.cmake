file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_models.dir/bench_micro_models.cpp.o"
  "CMakeFiles/bench_micro_models.dir/bench_micro_models.cpp.o.d"
  "bench_micro_models"
  "bench_micro_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
