file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_knc.dir/bench_fig10_knc.cpp.o"
  "CMakeFiles/bench_fig10_knc.dir/bench_fig10_knc.cpp.o.d"
  "bench_fig10_knc"
  "bench_fig10_knc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_knc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
