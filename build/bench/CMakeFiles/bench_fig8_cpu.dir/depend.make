# Empty dependencies file for bench_fig8_cpu.
# This may be replaced when dependencies are built.
