file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cpu.dir/bench_fig8_cpu.cpp.o"
  "CMakeFiles/bench_fig8_cpu.dir/bench_fig8_cpu.cpp.o.d"
  "bench_fig8_cpu"
  "bench_fig8_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
