file(REMOVE_RECURSE
  "CMakeFiles/tlm_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/tlm_bench_harness.dir/harness.cpp.o.d"
  "libtlm_bench_harness.a"
  "libtlm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
