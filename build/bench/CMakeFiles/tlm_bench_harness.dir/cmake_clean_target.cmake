file(REMOVE_RECURSE
  "libtlm_bench_harness.a"
)
