# Empty dependencies file for tlm_bench_harness.
# This may be replaced when dependencies are built.
