# Empty dependencies file for bench_table2_stream.
# This may be replaced when dependencies are built.
