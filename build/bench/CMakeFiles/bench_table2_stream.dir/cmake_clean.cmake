file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_stream.dir/bench_table2_stream.cpp.o"
  "CMakeFiles/bench_table2_stream.dir/bench_table2_stream.cpp.o.d"
  "bench_table2_stream"
  "bench_table2_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
