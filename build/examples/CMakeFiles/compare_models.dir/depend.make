# Empty dependencies file for compare_models.
# This may be replaced when dependencies are built.
