file(REMOVE_RECURSE
  "CMakeFiles/compare_models.dir/compare_models.cpp.o"
  "CMakeFiles/compare_models.dir/compare_models.cpp.o.d"
  "compare_models"
  "compare_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
