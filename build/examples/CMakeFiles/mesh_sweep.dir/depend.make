# Empty dependencies file for mesh_sweep.
# This may be replaced when dependencies are built.
