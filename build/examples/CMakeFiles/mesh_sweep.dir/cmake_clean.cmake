file(REMOVE_RECURSE
  "CMakeFiles/mesh_sweep.dir/mesh_sweep.cpp.o"
  "CMakeFiles/mesh_sweep.dir/mesh_sweep.cpp.o.d"
  "mesh_sweep"
  "mesh_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
