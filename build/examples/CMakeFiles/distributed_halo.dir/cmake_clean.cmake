file(REMOVE_RECURSE
  "CMakeFiles/distributed_halo.dir/distributed_halo.cpp.o"
  "CMakeFiles/distributed_halo.dir/distributed_halo.cpp.o.d"
  "distributed_halo"
  "distributed_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
