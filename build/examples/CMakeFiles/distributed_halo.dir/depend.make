# Empty dependencies file for distributed_halo.
# This may be replaced when dependencies are built.
