file(REMOVE_RECURSE
  "CMakeFiles/deck_run.dir/deck_run.cpp.o"
  "CMakeFiles/deck_run.dir/deck_run.cpp.o.d"
  "deck_run"
  "deck_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deck_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
