# Empty compiler generated dependencies file for deck_run.
# This may be replaced when dependencies are built.
