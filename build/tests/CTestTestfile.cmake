# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_util[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_comm[1]_include.cmake")
include("/root/repo/build/tests/tests_models[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_ports[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
include("/root/repo/build/tests/tests_port_kernels[1]_include.cmake")
include("/root/repo/build/tests/tests_properties[1]_include.cmake")
