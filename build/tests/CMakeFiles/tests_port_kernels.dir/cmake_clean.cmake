file(REMOVE_RECURSE
  "CMakeFiles/tests_port_kernels.dir/test_port_kernels.cpp.o"
  "CMakeFiles/tests_port_kernels.dir/test_port_kernels.cpp.o.d"
  "tests_port_kernels"
  "tests_port_kernels.pdb"
  "tests_port_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_port_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
