# Empty dependencies file for tests_port_kernels.
# This may be replaced when dependencies are built.
