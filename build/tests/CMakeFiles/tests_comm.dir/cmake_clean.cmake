file(REMOVE_RECURSE
  "CMakeFiles/tests_comm.dir/test_comm.cpp.o"
  "CMakeFiles/tests_comm.dir/test_comm.cpp.o.d"
  "tests_comm"
  "tests_comm.pdb"
  "tests_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
