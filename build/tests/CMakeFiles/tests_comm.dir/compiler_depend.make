# Empty compiler generated dependencies file for tests_comm.
# This may be replaced when dependencies are built.
