file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/test_core.cpp.o"
  "CMakeFiles/tests_core.dir/test_core.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
