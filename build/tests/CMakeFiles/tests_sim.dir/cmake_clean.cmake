file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/test_sim.cpp.o"
  "CMakeFiles/tests_sim.dir/test_sim.cpp.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
