# Empty dependencies file for tests_sim.
# This may be replaced when dependencies are built.
