file(REMOVE_RECURSE
  "CMakeFiles/tests_properties.dir/test_properties.cpp.o"
  "CMakeFiles/tests_properties.dir/test_properties.cpp.o.d"
  "tests_properties"
  "tests_properties.pdb"
  "tests_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
