# Empty compiler generated dependencies file for tests_properties.
# This may be replaced when dependencies are built.
