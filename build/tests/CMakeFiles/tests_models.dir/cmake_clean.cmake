file(REMOVE_RECURSE
  "CMakeFiles/tests_models.dir/test_models.cpp.o"
  "CMakeFiles/tests_models.dir/test_models.cpp.o.d"
  "tests_models"
  "tests_models.pdb"
  "tests_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
