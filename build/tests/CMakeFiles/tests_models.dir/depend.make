# Empty dependencies file for tests_models.
# This may be replaced when dependencies are built.
