file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/test_integration.cpp.o"
  "CMakeFiles/tests_integration.dir/test_integration.cpp.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
