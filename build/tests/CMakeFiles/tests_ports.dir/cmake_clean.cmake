file(REMOVE_RECURSE
  "CMakeFiles/tests_ports.dir/test_ports.cpp.o"
  "CMakeFiles/tests_ports.dir/test_ports.cpp.o.d"
  "tests_ports"
  "tests_ports.pdb"
  "tests_ports[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
