# Empty dependencies file for tests_ports.
# This may be replaced when dependencies are built.
