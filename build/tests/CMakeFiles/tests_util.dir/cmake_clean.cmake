file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/test_util.cpp.o"
  "CMakeFiles/tests_util.dir/test_util.cpp.o.d"
  "tests_util"
  "tests_util.pdb"
  "tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
