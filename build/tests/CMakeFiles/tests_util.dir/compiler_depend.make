# Empty compiler generated dependencies file for tests_util.
# This may be replaced when dependencies are built.
