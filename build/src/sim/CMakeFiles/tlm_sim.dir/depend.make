# Empty dependencies file for tlm_sim.
# This may be replaced when dependencies are built.
