file(REMOVE_RECURSE
  "libtlm_sim.a"
)
