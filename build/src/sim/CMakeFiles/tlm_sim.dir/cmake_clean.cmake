file(REMOVE_RECURSE
  "CMakeFiles/tlm_sim.dir/codegen.cpp.o"
  "CMakeFiles/tlm_sim.dir/codegen.cpp.o.d"
  "CMakeFiles/tlm_sim.dir/device.cpp.o"
  "CMakeFiles/tlm_sim.dir/device.cpp.o.d"
  "CMakeFiles/tlm_sim.dir/perf_model.cpp.o"
  "CMakeFiles/tlm_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/tlm_sim.dir/scheduler.cpp.o"
  "CMakeFiles/tlm_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/tlm_sim.dir/stream.cpp.o"
  "CMakeFiles/tlm_sim.dir/stream.cpp.o.d"
  "libtlm_sim.a"
  "libtlm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
