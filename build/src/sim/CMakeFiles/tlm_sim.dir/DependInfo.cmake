
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/codegen.cpp" "src/sim/CMakeFiles/tlm_sim.dir/codegen.cpp.o" "gcc" "src/sim/CMakeFiles/tlm_sim.dir/codegen.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/tlm_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/tlm_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/tlm_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/tlm_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/tlm_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/tlm_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/stream.cpp" "src/sim/CMakeFiles/tlm_sim.dir/stream.cpp.o" "gcc" "src/sim/CMakeFiles/tlm_sim.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tlm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
