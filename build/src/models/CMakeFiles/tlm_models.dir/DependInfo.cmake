
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/host_pool.cpp" "src/models/CMakeFiles/tlm_models.dir/host_pool.cpp.o" "gcc" "src/models/CMakeFiles/tlm_models.dir/host_pool.cpp.o.d"
  "/root/repo/src/models/ocllike/opencl.cpp" "src/models/CMakeFiles/tlm_models.dir/ocllike/opencl.cpp.o" "gcc" "src/models/CMakeFiles/tlm_models.dir/ocllike/opencl.cpp.o.d"
  "/root/repo/src/models/rajalike/raja.cpp" "src/models/CMakeFiles/tlm_models.dir/rajalike/raja.cpp.o" "gcc" "src/models/CMakeFiles/tlm_models.dir/rajalike/raja.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tlm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tlm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
