file(REMOVE_RECURSE
  "CMakeFiles/tlm_models.dir/host_pool.cpp.o"
  "CMakeFiles/tlm_models.dir/host_pool.cpp.o.d"
  "CMakeFiles/tlm_models.dir/ocllike/opencl.cpp.o"
  "CMakeFiles/tlm_models.dir/ocllike/opencl.cpp.o.d"
  "CMakeFiles/tlm_models.dir/rajalike/raja.cpp.o"
  "CMakeFiles/tlm_models.dir/rajalike/raja.cpp.o.d"
  "libtlm_models.a"
  "libtlm_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
