# Empty compiler generated dependencies file for tlm_models.
# This may be replaced when dependencies are built.
