file(REMOVE_RECURSE
  "libtlm_models.a"
)
