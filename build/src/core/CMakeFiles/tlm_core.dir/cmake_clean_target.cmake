file(REMOVE_RECURSE
  "libtlm_core.a"
)
