
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/driver.cpp" "src/core/CMakeFiles/tlm_core.dir/driver.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/driver.cpp.o.d"
  "/root/repo/src/core/eigen.cpp" "src/core/CMakeFiles/tlm_core.dir/eigen.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/eigen.cpp.o.d"
  "/root/repo/src/core/iteration_model.cpp" "src/core/CMakeFiles/tlm_core.dir/iteration_model.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/iteration_model.cpp.o.d"
  "/root/repo/src/core/kernel_catalog.cpp" "src/core/CMakeFiles/tlm_core.dir/kernel_catalog.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/kernel_catalog.cpp.o.d"
  "/root/repo/src/core/kernels_api.cpp" "src/core/CMakeFiles/tlm_core.dir/kernels_api.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/kernels_api.cpp.o.d"
  "/root/repo/src/core/model_traits.cpp" "src/core/CMakeFiles/tlm_core.dir/model_traits.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/model_traits.cpp.o.d"
  "/root/repo/src/core/phantom_kernels.cpp" "src/core/CMakeFiles/tlm_core.dir/phantom_kernels.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/phantom_kernels.cpp.o.d"
  "/root/repo/src/core/reference_kernels.cpp" "src/core/CMakeFiles/tlm_core.dir/reference_kernels.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/reference_kernels.cpp.o.d"
  "/root/repo/src/core/settings.cpp" "src/core/CMakeFiles/tlm_core.dir/settings.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/settings.cpp.o.d"
  "/root/repo/src/core/solvers.cpp" "src/core/CMakeFiles/tlm_core.dir/solvers.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/solvers.cpp.o.d"
  "/root/repo/src/core/state_init.cpp" "src/core/CMakeFiles/tlm_core.dir/state_init.cpp.o" "gcc" "src/core/CMakeFiles/tlm_core.dir/state_init.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/tlm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tlm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
