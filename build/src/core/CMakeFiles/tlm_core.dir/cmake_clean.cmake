file(REMOVE_RECURSE
  "CMakeFiles/tlm_core.dir/driver.cpp.o"
  "CMakeFiles/tlm_core.dir/driver.cpp.o.d"
  "CMakeFiles/tlm_core.dir/eigen.cpp.o"
  "CMakeFiles/tlm_core.dir/eigen.cpp.o.d"
  "CMakeFiles/tlm_core.dir/iteration_model.cpp.o"
  "CMakeFiles/tlm_core.dir/iteration_model.cpp.o.d"
  "CMakeFiles/tlm_core.dir/kernel_catalog.cpp.o"
  "CMakeFiles/tlm_core.dir/kernel_catalog.cpp.o.d"
  "CMakeFiles/tlm_core.dir/kernels_api.cpp.o"
  "CMakeFiles/tlm_core.dir/kernels_api.cpp.o.d"
  "CMakeFiles/tlm_core.dir/model_traits.cpp.o"
  "CMakeFiles/tlm_core.dir/model_traits.cpp.o.d"
  "CMakeFiles/tlm_core.dir/phantom_kernels.cpp.o"
  "CMakeFiles/tlm_core.dir/phantom_kernels.cpp.o.d"
  "CMakeFiles/tlm_core.dir/reference_kernels.cpp.o"
  "CMakeFiles/tlm_core.dir/reference_kernels.cpp.o.d"
  "CMakeFiles/tlm_core.dir/settings.cpp.o"
  "CMakeFiles/tlm_core.dir/settings.cpp.o.d"
  "CMakeFiles/tlm_core.dir/solvers.cpp.o"
  "CMakeFiles/tlm_core.dir/solvers.cpp.o.d"
  "CMakeFiles/tlm_core.dir/state_init.cpp.o"
  "CMakeFiles/tlm_core.dir/state_init.cpp.o.d"
  "libtlm_core.a"
  "libtlm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
