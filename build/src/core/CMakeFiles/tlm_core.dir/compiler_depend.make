# Empty compiler generated dependencies file for tlm_core.
# This may be replaced when dependencies are built.
