file(REMOVE_RECURSE
  "libtlm_comm.a"
)
