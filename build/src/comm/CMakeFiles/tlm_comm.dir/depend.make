# Empty dependencies file for tlm_comm.
# This may be replaced when dependencies are built.
