file(REMOVE_RECURSE
  "CMakeFiles/tlm_comm.dir/decomposition.cpp.o"
  "CMakeFiles/tlm_comm.dir/decomposition.cpp.o.d"
  "CMakeFiles/tlm_comm.dir/halo.cpp.o"
  "CMakeFiles/tlm_comm.dir/halo.cpp.o.d"
  "CMakeFiles/tlm_comm.dir/minimpi.cpp.o"
  "CMakeFiles/tlm_comm.dir/minimpi.cpp.o.d"
  "libtlm_comm.a"
  "libtlm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
