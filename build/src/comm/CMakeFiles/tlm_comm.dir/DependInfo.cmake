
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/decomposition.cpp" "src/comm/CMakeFiles/tlm_comm.dir/decomposition.cpp.o" "gcc" "src/comm/CMakeFiles/tlm_comm.dir/decomposition.cpp.o.d"
  "/root/repo/src/comm/halo.cpp" "src/comm/CMakeFiles/tlm_comm.dir/halo.cpp.o" "gcc" "src/comm/CMakeFiles/tlm_comm.dir/halo.cpp.o.d"
  "/root/repo/src/comm/minimpi.cpp" "src/comm/CMakeFiles/tlm_comm.dir/minimpi.cpp.o" "gcc" "src/comm/CMakeFiles/tlm_comm.dir/minimpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tlm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
