# Empty dependencies file for tlm_util.
# This may be replaced when dependencies are built.
