file(REMOVE_RECURSE
  "CMakeFiles/tlm_util.dir/buffer.cpp.o"
  "CMakeFiles/tlm_util.dir/buffer.cpp.o.d"
  "CMakeFiles/tlm_util.dir/cli.cpp.o"
  "CMakeFiles/tlm_util.dir/cli.cpp.o.d"
  "CMakeFiles/tlm_util.dir/csv.cpp.o"
  "CMakeFiles/tlm_util.dir/csv.cpp.o.d"
  "CMakeFiles/tlm_util.dir/ini.cpp.o"
  "CMakeFiles/tlm_util.dir/ini.cpp.o.d"
  "CMakeFiles/tlm_util.dir/log.cpp.o"
  "CMakeFiles/tlm_util.dir/log.cpp.o.d"
  "CMakeFiles/tlm_util.dir/rng.cpp.o"
  "CMakeFiles/tlm_util.dir/rng.cpp.o.d"
  "CMakeFiles/tlm_util.dir/stats.cpp.o"
  "CMakeFiles/tlm_util.dir/stats.cpp.o.d"
  "CMakeFiles/tlm_util.dir/string_util.cpp.o"
  "CMakeFiles/tlm_util.dir/string_util.cpp.o.d"
  "CMakeFiles/tlm_util.dir/table.cpp.o"
  "CMakeFiles/tlm_util.dir/table.cpp.o.d"
  "libtlm_util.a"
  "libtlm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
