file(REMOVE_RECURSE
  "libtlm_util.a"
)
