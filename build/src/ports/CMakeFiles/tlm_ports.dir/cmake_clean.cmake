file(REMOVE_RECURSE
  "CMakeFiles/tlm_ports.dir/port_cuda.cpp.o"
  "CMakeFiles/tlm_ports.dir/port_cuda.cpp.o.d"
  "CMakeFiles/tlm_ports.dir/port_kokkos.cpp.o"
  "CMakeFiles/tlm_ports.dir/port_kokkos.cpp.o.d"
  "CMakeFiles/tlm_ports.dir/port_offload.cpp.o"
  "CMakeFiles/tlm_ports.dir/port_offload.cpp.o.d"
  "CMakeFiles/tlm_ports.dir/port_omp3.cpp.o"
  "CMakeFiles/tlm_ports.dir/port_omp3.cpp.o.d"
  "CMakeFiles/tlm_ports.dir/port_opencl.cpp.o"
  "CMakeFiles/tlm_ports.dir/port_opencl.cpp.o.d"
  "CMakeFiles/tlm_ports.dir/port_raja.cpp.o"
  "CMakeFiles/tlm_ports.dir/port_raja.cpp.o.d"
  "CMakeFiles/tlm_ports.dir/registry.cpp.o"
  "CMakeFiles/tlm_ports.dir/registry.cpp.o.d"
  "libtlm_ports.a"
  "libtlm_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
