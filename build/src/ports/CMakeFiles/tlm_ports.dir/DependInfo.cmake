
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ports/port_cuda.cpp" "src/ports/CMakeFiles/tlm_ports.dir/port_cuda.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/port_cuda.cpp.o.d"
  "/root/repo/src/ports/port_kokkos.cpp" "src/ports/CMakeFiles/tlm_ports.dir/port_kokkos.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/port_kokkos.cpp.o.d"
  "/root/repo/src/ports/port_offload.cpp" "src/ports/CMakeFiles/tlm_ports.dir/port_offload.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/port_offload.cpp.o.d"
  "/root/repo/src/ports/port_omp3.cpp" "src/ports/CMakeFiles/tlm_ports.dir/port_omp3.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/port_omp3.cpp.o.d"
  "/root/repo/src/ports/port_opencl.cpp" "src/ports/CMakeFiles/tlm_ports.dir/port_opencl.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/port_opencl.cpp.o.d"
  "/root/repo/src/ports/port_raja.cpp" "src/ports/CMakeFiles/tlm_ports.dir/port_raja.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/port_raja.cpp.o.d"
  "/root/repo/src/ports/registry.cpp" "src/ports/CMakeFiles/tlm_ports.dir/registry.cpp.o" "gcc" "src/ports/CMakeFiles/tlm_ports.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tlm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tlm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/tlm_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
