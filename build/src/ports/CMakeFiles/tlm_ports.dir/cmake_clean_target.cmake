file(REMOVE_RECURSE
  "libtlm_ports.a"
)
