# Empty dependencies file for tlm_ports.
# This may be replaced when dependencies are built.
