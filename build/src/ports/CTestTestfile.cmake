# CMake generated Testfile for 
# Source directory: /root/repo/src/ports
# Build directory: /root/repo/build/src/ports
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
