#pragma once
// The versioned machine-readable run report (`schema: tl-report-1`).
//
// One JSON document per run, assembled from the registry (counters/gauges/
// histograms), the Aggregator (per-kernel profile table, with each kernel's
// achieved bandwidth priced against the device's STREAM roofline), the
// per-rank CommStats breakdown, and the solve outcomes. Emission is strictly
// deterministic — sorted maps, fixed float formatting, no timestamps — so a
// repeated run produces a byte-identical file and CI can diff or
// regression-check it. An OpenMetrics text rendering of the registry is
// written alongside (sibling `.om` file) for future service scraping.

#include <cstdint>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "dist/driver.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/metrics.hpp"

namespace tl::telemetry {

inline constexpr const char* kReportSchema = "tl-report-1";

/// Settings echo stamped into every report.
struct ReportContext {
  std::string source;  // emitting program ("quickstart", "bench_fusion", ...)
  std::string model;
  std::string device;
  std::string solver;
  int nx = 0;
  int ny = 0;
  int steps = 1;
  int ranks = 1;
  bool use_fused = true;
  bool overlap_comm = true;
  /// Dispatched row-kernel ISA (core/isa.hpp active_isa). Defaults to the
  /// process's resolved ISA; "phantom" for metering-only runs that never
  /// execute a row kernel.
  std::string isa;
};

/// One solve outcome row (a Driver step, or one bench solve).
struct SolveRow {
  std::string label;
  std::string solver;
  bool converged = false;
  int iterations = 0;
  int inner_iterations = 0;
  int fused_iterations = 0;
  int classic_iterations = 0;
  double final_rr = 0.0;
  double sim_seconds = 0.0;
};

/// One tenant's rollup in a service-emitted report (tl_service). Rendered
/// as the "tenants" section only when at least one row was added, so
/// classic single-run reports stay byte-identical.
struct TenantRow {
  std::string tenant;
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;
  std::uint64_t converged = 0;
  std::uint64_t iterations = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t comm_bytes = 0;
  double sim_seconds = 0.0;
  std::uint64_t max_wait_pops = 0;
};

class ReportBuilder {
 public:
  explicit ReportBuilder(ReportContext context);

  /// The registry backing the report's "metrics" section. Attach a
  /// RegistrySink to it, or fold collectors into it directly.
  MetricsRegistry& registry() noexcept { return registry_; }
  const MetricsRegistry& registry() const noexcept { return registry_; }

  void add_solve(SolveRow row);
  /// Driver step -> solve row (labelled "step N").
  void add_step(const core::StepReport& step);
  /// All steps + totals + solve counters of a single-rank Driver run.
  void add_run(const core::RunReport& run, double achieved_gbs);

  void set_totals(double sim_seconds, double achieved_gbs,
                  std::uint64_t kernel_launches);

  /// Per-rank row plus the rank-labelled comm counters (collect_comm).
  void add_rank(const dist::RankReport& rank);

  /// Per-tenant rollup row (service runs). The "tenants" section is only
  /// emitted when at least one row was added.
  void add_tenant(TenantRow row);

  /// Kernel profile table; each kernel priced against the context device's
  /// STREAM bandwidth (peak_ratio = achieved / priced peak).
  void add_profiles(const std::vector<util::KernelProfile>& profiles);
  void add_profiles(const util::Aggregator& aggregator);

  /// The full document. Deterministic: byte-identical for identical inputs.
  std::string to_json() const;

  /// Writes the JSON to `path` and the OpenMetrics rendering to the sibling
  /// path with the extension replaced by `.om`. Logs and returns false on
  /// I/O failure.
  bool write(const std::string& path) const;

  /// `path` with its extension swapped for ".om" (appended when none).
  static std::string openmetrics_path(const std::string& path);

 private:
  ReportContext context_;
  double peak_gbs_ = 0.0;  // STREAM bandwidth of context_.device (0 unknown)
  MetricsRegistry registry_;
  std::vector<SolveRow> solves_;
  std::vector<util::KernelProfile> kernels_;
  std::vector<dist::RankReport> ranks_;
  std::vector<TenantRow> tenants_;
  double total_sim_seconds_ = 0.0;
  double achieved_gbs_ = 0.0;
  std::uint64_t kernel_launches_ = 0;
};

}  // namespace tl::telemetry
