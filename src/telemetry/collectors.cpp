#include "telemetry/collectors.hpp"

#include "util/string_util.hpp"

namespace tl::telemetry {

void RegistrySink::on_event(const sim::TraceEvent& event) {
  MetricsRegistry& reg = *registry_;
  if (event.phase == "overlap") {
    // Trace-only hidden-comm window: the covering compute is already
    // metered, so this must not count as a launch (mirrors SimClock).
    reg.add_counter("tl_overlap_events", 1.0);
    reg.add_counter("tl_overlap_hidden_ns", event.duration_ns);
    return;
  }
  if (event.kind == sim::TraceEvent::Kind::kTransfer) {
    reg.add_counter("tl_transfers", 1.0);
    reg.add_counter("tl_transfer_ns", event.duration_ns);
    reg.add_counter("tl_transfer_bytes", static_cast<double>(event.bytes));
    return;
  }
  reg.add_counter("tl_launches", 1.0);
  reg.add_counter("tl_kernel_ns", event.duration_ns);
  reg.add_counter("tl_kernel_bytes", static_cast<double>(event.bytes));
  if (event.phase == "comm") {
    reg.add_counter("tl_comm_events", 1.0);
    reg.add_counter("tl_comm_ns", event.duration_ns);
    reg.add_counter("tl_comm_bytes", static_cast<double>(event.bytes));
    return;
  }
  reg.observe("tl_launch_factor", event.launch_factor, kLaunchFactorBounds);
}

void collect_events(MetricsRegistry& registry,
                    std::span<const sim::TraceEvent> events) {
  RegistrySink sink(registry);
  for (const sim::TraceEvent& event : events) sink.on_event(event);
}

void collect_comm(MetricsRegistry& registry, int rank,
                  const dist::CommStats& stats) {
  const MetricsRegistry::Labels labels = {
      {"rank", util::strf("%d", rank)}};
  registry.add_counter("tl_rank_halo_exchanges",
                       static_cast<double>(stats.halo_exchanges), labels);
  registry.add_counter("tl_rank_allreduces",
                       static_cast<double>(stats.allreduces), labels);
  registry.add_counter("tl_rank_comm_bytes",
                       static_cast<double>(stats.bytes), labels);
  registry.add_counter("tl_rank_exposed_ns", stats.comm_ns, labels);
  registry.add_counter("tl_rank_overlapped_exchanges",
                       static_cast<double>(stats.overlapped_exchanges),
                       labels);
  registry.add_counter("tl_rank_hidden_ns", stats.hidden_ns, labels);
}

void collect_solve(MetricsRegistry& registry, const core::RunReport& run) {
  registry.add_counter("tl_steps", static_cast<double>(run.steps.size()));
  for (const core::StepReport& step : run.steps) {
    registry.add_counter("tl_solver_iterations",
                         static_cast<double>(step.solve.iterations));
    registry.add_counter("tl_solver_inner_iterations",
                         static_cast<double>(step.solve.inner_iterations));
    registry.add_counter("tl_fused_iterations",
                         static_cast<double>(step.solve.fused_iterations));
    registry.add_counter("tl_classic_iterations",
                         static_cast<double>(step.solve.classic_iterations));
  }
  if (!run.steps.empty()) {
    const core::SolveStats& last = run.steps.back().solve;
    registry.set_gauge("tl_converged", last.converged ? 1.0 : 0.0);
    registry.set_gauge("tl_final_rr", last.final_rr);
  }
}

}  // namespace tl::telemetry
