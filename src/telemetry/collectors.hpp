#pragma once
// Collectors: the glue between existing instrumentation seams and the
// MetricsRegistry. Nothing here touches any port: RegistrySink hangs off
// the shared SimClock trace hook (so all six ports and PhantomKernels meter
// identically with zero per-port code), and the collect_* helpers fold the
// already-aggregated CommStats / RunReport structures the dist and core
// layers produce anyway.

#include <span>

#include "core/driver.hpp"
#include "dist/kernels.hpp"
#include "sim/trace.hpp"
#include "telemetry/metrics_registry.hpp"

namespace tl::telemetry {

/// Launch-factor histogram bucket bounds (scheduler efficiency: 1.0 = a
/// perfectly static schedule; the paper's dynamic-scheduling overheads land
/// in the 1.0-1.5 range).
inline constexpr double kLaunchFactorBounds[] = {1.0,  1.02, 1.05, 1.1,
                                                 1.25, 1.5,  2.0};

/// TraceSink that folds each event into registry counters as it arrives:
///   tl_launches / tl_kernel_ns / tl_kernel_bytes   every metered launch
///   tl_comm_events / tl_comm_ns / tl_comm_bytes    the "comm"-phase subset
///   tl_transfers / tl_transfer_ns / tl_transfer_bytes   host<->device
///   tl_overlap_events / tl_overlap_hidden_ns       trace-only hidden comm
///   tl_launch_factor (histogram)                   compute launches only
/// Single-writer like the registry itself: attach one sink per rank/clock.
class RegistrySink final : public sim::TraceSink {
 public:
  explicit RegistrySink(MetricsRegistry& registry) : registry_(&registry) {}

  void on_event(const sim::TraceEvent& event) override;

 private:
  MetricsRegistry* registry_;
};

/// Replays an already-recorded event stream through a RegistrySink (for
/// consumers that kept a RecordingSink, e.g. quickstart's per-rank traces).
void collect_events(MetricsRegistry& registry,
                    std::span<const sim::TraceEvent> events);

/// Per-rank comm/overlap tallies as rank-labelled counters
/// (tl_rank_halo_exchanges{rank="0"}, tl_rank_comm_bytes{...},
/// tl_rank_exposed_ns / tl_rank_hidden_ns, ...).
void collect_comm(MetricsRegistry& registry, int rank,
                  const dist::CommStats& stats);

/// Solve outcome: tl_steps, tl_solver_iterations / inner / fused / classic
/// counters plus tl_converged / tl_final_rr gauges from the last step.
void collect_solve(MetricsRegistry& registry, const core::RunReport& run);

}  // namespace tl::telemetry
