#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/string_util.hpp"

namespace tl::telemetry {

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < upper_bounds.size() && value > upper_bounds[i]) ++i;
  ++counts[i];
  sum += value;
  ++count;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t c = 0;
  for (std::size_t j = 0; j <= i && j < counts.size(); ++j) c += counts[j];
  return c;
}

std::string MetricsRegistry::key_for(std::string_view name,
                                     const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += util::json_escape(v);
    key += '"';
  }
  key += '}';
  return key;
}

std::string_view MetricsRegistry::family(std::string_view key) {
  const std::size_t brace = key.find('{');
  return brace == std::string_view::npos ? key : key.substr(0, brace);
}

void MetricsRegistry::add_counter(std::string_view name, double delta,
                                  const Labels& labels) {
  counters_[key_for(name, labels)] += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value,
                                const Labels& labels) {
  gauges_[key_for(name, labels)] = value;
}

void MetricsRegistry::observe(std::string_view name, double value,
                              std::span<const double> upper_bounds,
                              const Labels& labels) {
  auto [it, inserted] = histograms_.try_emplace(key_for(name, labels));
  Histogram& h = it->second;
  if (inserted) {
    h.upper_bounds.assign(upper_bounds.begin(), upper_bounds.end());
    h.counts.assign(upper_bounds.size() + 1, 0);
  } else if (!std::equal(h.upper_bounds.begin(), h.upper_bounds.end(),
                         upper_bounds.begin(), upper_bounds.end())) {
    throw std::invalid_argument(
        util::strf("MetricsRegistry: histogram '%s' redeclared with "
                   "different bucket bounds",
                   std::string(name).c_str()));
  }
  h.observe(value);
}

double MetricsRegistry::counter_or(std::string_view key,
                                   double fallback) const {
  const auto it = counters_.find(key);
  return it != counters_.end() ? it->second : fallback;
}

double MetricsRegistry::gauge_or(std::string_view key, double fallback) const {
  const auto it = gauges_.find(key);
  return it != gauges_.end() ? it->second : fallback;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::combine(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& [key, value] : other.gauges_) gauges_[key] = value;
  for (const auto& [key, h] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(key);
    Histogram& mine = it->second;
    if (inserted) {
      mine = h;
      continue;
    }
    if (mine.upper_bounds != h.upper_bounds) {
      throw std::invalid_argument(
          util::strf("MetricsRegistry: cannot combine histogram '%s': "
                     "bucket bounds differ",
                     key.c_str()));
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += h.counts[i];
    }
    mine.sum += h.sum;
    mine.count += h.count;
  }
}

MetricsRegistry MetricsRegistry::combine_all(
    std::span<MetricsRegistry> parts) {
  if (parts.empty()) return {};
  // Same tree fold as HostPool::combine_pairwise: (p0+p1) + (p2+p3), ... —
  // pairing is a function of parts.size() only.
  const std::size_t n = parts.size();
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t i = 0; i + width < n; i += 2 * width) {
      parts[i].combine(parts[i + width]);
    }
  }
  return std::move(parts[0]);
}

namespace {

/// Deterministic sample-value formatting: full double precision, stable
/// shortest-form for the integral values most metrics hold.
std::string om_num(double v) { return util::strf("%.17g", v); }

/// Emits one family block: `# TYPE` line, then every sample of that family.
template <typename EmitSamples>
void om_family(std::ostringstream& os, std::string_view family,
               const char* type, EmitSamples&& emit) {
  os << "# TYPE " << family << ' ' << type << '\n';
  emit();
}

/// Splits a serialized key into (family, label block with braces or "").
std::pair<std::string_view, std::string_view> split_key(
    std::string_view key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) return {key, ""};
  return {key.substr(0, brace), key.substr(brace)};
}

/// Group a sorted metric map's keys by family, preserving order.
template <typename Map>
std::vector<std::pair<std::string_view, std::vector<const typename Map::value_type*>>>
by_family(const Map& map) {
  std::vector<std::pair<std::string_view,
                        std::vector<const typename Map::value_type*>>>
      out;
  for (const auto& entry : map) {
    const std::string_view fam = MetricsRegistry::family(entry.first);
    if (out.empty() || out.back().first != fam) out.push_back({fam, {}});
    out.back().second.push_back(&entry);
  }
  return out;
}

}  // namespace

std::string to_openmetrics(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const auto& [fam, entries] : by_family(registry.counters())) {
    om_family(os, fam, "counter", [&] {
      for (const auto* entry : entries) {
        const auto [family, labels] = split_key(entry->first);
        os << family << "_total" << labels << ' ' << om_num(entry->second)
           << '\n';
      }
    });
  }
  for (const auto& [fam, entries] : by_family(registry.gauges())) {
    om_family(os, fam, "gauge", [&] {
      for (const auto* entry : entries) {
        os << entry->first << ' ' << om_num(entry->second) << '\n';
      }
    });
  }
  for (const auto& [fam, entries] : by_family(registry.histograms())) {
    om_family(os, fam, "histogram", [&] {
      for (const auto* entry : entries) {
        const auto [family, labels] = split_key(entry->first);
        const Histogram& h = entry->second;
        // `le` joins any existing labels inside one brace block.
        const std::string label_prefix =
            labels.empty()
                ? "{"
                : std::string(labels.substr(0, labels.size() - 1)) + ",";
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          os << family << "_bucket" << label_prefix << "le=\""
             << util::strf("%g", h.upper_bounds[i]) << "\"} "
             << h.cumulative(i) << '\n';
        }
        os << family << "_bucket" << label_prefix << "le=\"+Inf\"} " << h.count
           << '\n';
        os << family << "_sum" << labels << ' ' << om_num(h.sum) << '\n';
        os << family << "_count" << labels << ' ' << h.count << '\n';
      }
    });
  }
  os << "# EOF\n";
  return os.str();
}

}  // namespace tl::telemetry
