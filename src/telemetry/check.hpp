#pragma once
// Report analysis and regression checking — the logic behind tl_report.
//
// Works over parsed JSON documents so one code path handles every committed
// artifact: tl-report-1 run reports, BENCH_fusion.json, BENCH_overlap.json,
// BENCH_service.json, BENCH_elastic.json.
// The regression policy is deliberately asymmetric: time-like metrics fail
// only when the fresh value is *slower* than baseline by more than the
// relative tolerance (improvements never fail, they are reported as such);
// structural quantities — launch counts, iteration counts, kernel and cell
// sets — are exact, because the simulated timeline is deterministic and any
// drift there is a behaviour change, not noise.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace tl::telemetry {

enum class ArtifactKind {
  kRunReport,      // "schema": "tl-report-1"
  kBenchFusion,    // "bench": "fusion"
  kBenchOverlap,   // "bench": "fig13_overlap"
  kBenchPipeline,  // "bench": "pipeline" (classic vs pipelined CG)
  kBenchService,   // "bench": "service"
  kBenchElastic,   // "bench": "elastic"
  kBenchPlan,      // "bench": "plan" (planner pick/regret grid)
  kUnknown,
};

ArtifactKind classify(const util::JsonValue& doc);
std::string_view artifact_kind_name(ArtifactKind kind);

// -- Analysis ---------------------------------------------------------------

struct AnalyzeOptions {
  int top_n = 8;  // kernels shown in the hot-kernel table
};

/// Human-readable analysis of one artifact: top-N kernels with roofline
/// ratios, per-rank comm exposure, fusion/overlap effectiveness.
std::string analyze(const util::JsonValue& doc, const AnalyzeOptions& opt = {});

// -- Regression checking ----------------------------------------------------

struct CheckOptions {
  /// Relative tolerance for time-like metrics (seconds, ns, fractions).
  double rel_tol = 0.10;
};

struct Finding {
  std::string metric;  // e.g. "kernels[cg_calc_w].total_ns"
  double baseline = 0.0;
  double current = 0.0;
  bool regression = false;
  std::string note;  // "slower by 12.3% (tol 10%)", "improved", ...
};

struct CheckResult {
  std::vector<Finding> findings;  // regressions and notable improvements
  int checked = 0;                // individual comparisons performed
  int regressions = 0;

  bool pass() const noexcept { return regressions == 0; }
};

/// Compares `current` against `baseline` (same artifact kind required; a
/// kind mismatch or an unknown kind is itself a regression finding).
CheckResult check(const util::JsonValue& baseline,
                  const util::JsonValue& current,
                  const CheckOptions& opt = {});

/// Renders findings plus the pass/fail summary line.
std::string format_check(const CheckResult& result);

}  // namespace tl::telemetry
