#include "telemetry/report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/isa.hpp"
#include "sim/device.hpp"
#include "telemetry/collectors.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace tl::telemetry {

namespace {

/// JSON number formatting: full double precision; non-finite values (not
/// representable in JSON) become strings, like the tl-verify reports.
std::string jnum(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  return util::strf("%.17g", v);
}

std::string jstr(std::string_view s) {
  // Built by append rather than operator+ chaining: GCC 12's -Wrestrict
  // emits a false positive on the char* + string + char* concatenation
  // once inlined into the larger to_json body at -O3.
  std::string out;
  std::string escaped = util::json_escape(s);
  out.reserve(escaped.size() + 2);
  out += '"';
  out += escaped;
  out += '"';
  return out;
}

const char* jbool(bool b) { return b ? "true" : "false"; }

}  // namespace

ReportBuilder::ReportBuilder(ReportContext context)
    : context_(std::move(context)) {
  if (const auto device = sim::parse_device(context_.device)) {
    peak_gbs_ = sim::device_spec(*device).stream_bw_gbs;
  }
  if (context_.isa.empty()) {
    context_.isa = core::isa::isa_name(core::isa::active_isa());
  }
}

void ReportBuilder::add_solve(SolveRow row) {
  solves_.push_back(std::move(row));
}

void ReportBuilder::add_step(const core::StepReport& step) {
  add_solve(SolveRow{
      .label = util::strf("step %d", step.step),
      .solver = std::string(core::solver_name(step.solve.solver)),
      .converged = step.solve.converged,
      .iterations = step.solve.iterations,
      .inner_iterations = step.solve.inner_iterations,
      .fused_iterations = step.solve.fused_iterations,
      .classic_iterations = step.solve.classic_iterations,
      .final_rr = step.solve.final_rr,
      .sim_seconds = step.sim_step_ns * 1e-9,
  });
}

void ReportBuilder::add_run(const core::RunReport& run, double achieved_gbs) {
  for (const core::StepReport& step : run.steps) add_step(step);
  set_totals(run.sim_total_seconds, achieved_gbs, run.kernel_launches);
  collect_solve(registry_, run);
}

void ReportBuilder::set_totals(double sim_seconds, double achieved_gbs,
                               std::uint64_t kernel_launches) {
  total_sim_seconds_ = sim_seconds;
  achieved_gbs_ = achieved_gbs;
  kernel_launches_ = kernel_launches;
}

void ReportBuilder::add_rank(const dist::RankReport& rank) {
  ranks_.push_back(rank);
  collect_comm(registry_, rank.rank, rank.comm);
}

void ReportBuilder::add_tenant(TenantRow row) {
  tenants_.push_back(std::move(row));
}

void ReportBuilder::add_profiles(
    const std::vector<util::KernelProfile>& profiles) {
  kernels_.insert(kernels_.end(), profiles.begin(), profiles.end());
}

void ReportBuilder::add_profiles(const util::Aggregator& aggregator) {
  add_profiles(aggregator.profiles());
}

std::string ReportBuilder::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": " << jstr(kReportSchema) << ",\n";
  os << "  \"source\": " << jstr(context_.source) << ",\n";

  os << "  \"context\": {\"model\": " << jstr(context_.model)
     << ", \"device\": " << jstr(context_.device)
     << ", \"solver\": " << jstr(context_.solver)
     << ", \"nx\": " << context_.nx << ", \"ny\": " << context_.ny
     << ", \"steps\": " << context_.steps << ", \"ranks\": " << context_.ranks
     << ", \"use_fused\": " << jbool(context_.use_fused)
     << ", \"overlap_comm\": " << jbool(context_.overlap_comm)
     << ", \"isa\": " << jstr(context_.isa) << "},\n";

  int total_iterations = 0;
  for (const SolveRow& s : solves_) total_iterations += s.iterations;
  os << "  \"totals\": {\"sim_seconds\": " << jnum(total_sim_seconds_)
     << ", \"achieved_gbs\": " << jnum(achieved_gbs_)
     << ", \"kernel_launches\": " << kernel_launches_
     << ", \"total_iterations\": " << total_iterations
     << ", \"peak_gbs\": " << jnum(peak_gbs_) << "},\n";

  os << "  \"solves\": [";
  for (std::size_t i = 0; i < solves_.size(); ++i) {
    const SolveRow& s = solves_[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"label\": " << jstr(s.label) << ", \"solver\": " << jstr(s.solver)
       << ", \"converged\": " << jbool(s.converged)
       << ", \"iterations\": " << s.iterations
       << ", \"inner_iterations\": " << s.inner_iterations
       << ", \"fused_iterations\": " << s.fused_iterations
       << ", \"classic_iterations\": " << s.classic_iterations
       << ", \"final_rr\": " << jnum(s.final_rr)
       << ", \"sim_seconds\": " << jnum(s.sim_seconds) << "}";
  }
  os << (solves_.empty() ? "],\n" : "\n  ],\n");

  os << "  \"kernels\": [";
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    const util::KernelProfile& p = kernels_[i];
    const double gbs = p.bandwidth_gbs();
    os << (i ? ",\n    " : "\n    ");
    os << "{\"name\": " << jstr(p.name) << ", \"count\": " << p.count
       << ", \"total_ns\": " << jnum(p.total_ns)
       << ", \"mean_ns\": " << jnum(p.mean_ns())
       << ", \"min_ns\": " << jnum(p.min_ns)
       << ", \"max_ns\": " << jnum(p.max_ns) << ", \"bytes\": " << p.bytes
       << ", \"percent\": " << jnum(p.percent) << ", \"gbs\": " << jnum(gbs)
       << ", \"peak_gbs\": " << jnum(peak_gbs_) << ", \"peak_ratio\": "
       << jnum(peak_gbs_ > 0.0 ? gbs / peak_gbs_ : 0.0)
       << ", \"factor_min\": " << jnum(p.factor_min)
       << ", \"factor_mean\": " << jnum(p.factor_mean())
       << ", \"factor_max\": " << jnum(p.factor_max) << "}";
  }
  os << (kernels_.empty() ? "],\n" : "\n  ],\n");

  os << "  \"ranks\": [";
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    const dist::RankReport& r = ranks_[i];
    const double exposed = r.comm.comm_ns;
    const double hidden = r.comm.hidden_ns;
    const double wire = exposed + hidden;
    os << (i ? ",\n    " : "\n    ");
    os << "{\"rank\": " << r.rank
       << ", \"sim_seconds\": " << jnum(r.sim_seconds)
       << ", \"kernel_launches\": " << r.kernel_launches
       << ", \"kernel_bytes\": " << r.kernel_bytes
       << ", \"halo_exchanges\": " << r.comm.halo_exchanges
       << ", \"allreduces\": " << r.comm.allreduces
       << ", \"comm_bytes\": " << r.comm.bytes
       << ", \"exposed_ns\": " << jnum(exposed)
       << ", \"overlapped_exchanges\": " << r.comm.overlapped_exchanges
       << ", \"hidden_ns\": " << jnum(hidden) << ", \"hidden_fraction\": "
       << jnum(wire > 0.0 ? hidden / wire : 0.0) << "}";
  }
  os << (ranks_.empty() ? "],\n" : "\n  ],\n");

  if (!tenants_.empty()) {
    os << "  \"tenants\": [";
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      const TenantRow& t = tenants_[i];
      os << (i ? ",\n    " : "\n    ");
      os << "{\"tenant\": " << jstr(t.tenant) << ", \"jobs\": " << t.jobs
         << ", \"failures\": " << t.failures
         << ", \"converged\": " << t.converged
         << ", \"iterations\": " << t.iterations
         << ", \"kernel_launches\": " << t.kernel_launches
         << ", \"comm_bytes\": " << t.comm_bytes
         << ", \"sim_seconds\": " << jnum(t.sim_seconds)
         << ", \"max_wait_pops\": " << t.max_wait_pops << "}";
    }
    os << "\n  ],\n";
  }

  os << "  \"metrics\": {\n    \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : registry_.counters()) {
    os << (first ? "" : ", ") << jstr(key) << ": " << jnum(value);
    first = false;
  }
  os << "},\n    \"gauges\": {";
  first = true;
  for (const auto& [key, value] : registry_.gauges()) {
    os << (first ? "" : ", ") << jstr(key) << ": " << jnum(value);
    first = false;
  }
  os << "},\n    \"histograms\": {";
  first = true;
  for (const auto& [key, h] : registry_.histograms()) {
    os << (first ? "" : ", ") << jstr(key) << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      os << (i ? ", " : "") << jnum(h.upper_bounds[i]);
    }
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << (i ? ", " : "") << h.counts[i];
    }
    os << "], \"sum\": " << jnum(h.sum) << ", \"count\": " << h.count << "}";
    first = false;
  }
  os << "}\n  }\n}\n";
  return os.str();
}

std::string ReportBuilder::openmetrics_path(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + ".om";
  }
  return path.substr(0, dot) + ".om";
}

bool ReportBuilder::write(const std::string& path) const {
  {
    std::ofstream out(path);
    if (out) out << to_json();
    if (!out) {
      util::log_error("report: cannot write '%s'", path.c_str());
      return false;
    }
  }
  const std::string om_path = openmetrics_path(path);
  std::ofstream om(om_path);
  if (om) om << to_openmetrics(registry_);
  if (!om) {
    util::log_error("report: cannot write '%s'", om_path.c_str());
    return false;
  }
  return true;
}

}  // namespace tl::telemetry
