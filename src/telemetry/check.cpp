#include "telemetry/check.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "telemetry/report.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace tl::telemetry {

ArtifactKind classify(const util::JsonValue& doc) {
  if (!doc.is_object()) return ArtifactKind::kUnknown;
  if (doc.get_string_or("schema", "") == kReportSchema) {
    return ArtifactKind::kRunReport;
  }
  const std::string bench = doc.get_string_or("bench", "");
  if (bench == "fusion") return ArtifactKind::kBenchFusion;
  if (bench == "fig13_overlap") return ArtifactKind::kBenchOverlap;
  if (bench == "pipeline") return ArtifactKind::kBenchPipeline;
  if (bench == "service") return ArtifactKind::kBenchService;
  if (bench == "elastic") return ArtifactKind::kBenchElastic;
  if (bench == "plan") return ArtifactKind::kBenchPlan;
  return ArtifactKind::kUnknown;
}

std::string_view artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kRunReport: return "tl-report-1";
    case ArtifactKind::kBenchFusion: return "bench/fusion";
    case ArtifactKind::kBenchOverlap: return "bench/fig13_overlap";
    case ArtifactKind::kBenchPipeline: return "bench/pipeline";
    case ArtifactKind::kBenchService: return "bench/service";
    case ArtifactKind::kBenchElastic: return "bench/elastic";
    case ArtifactKind::kBenchPlan: return "bench/plan";
    case ArtifactKind::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

std::string pct(double fraction) {
  return util::strf("%.1f%%", fraction * 100.0);
}

/// Accumulates comparisons under the asymmetric regression policy.
struct Checker {
  const CheckOptions& opt;
  CheckResult result;

  void note_regression(std::string metric, double base, double cur,
                       std::string note) {
    result.findings.push_back(Finding{std::move(metric), base, cur, true,
                                      std::move(note)});
    ++result.regressions;
  }

  void note_improvement(std::string metric, double base, double cur,
                        std::string note) {
    result.findings.push_back(Finding{std::move(metric), base, cur, false,
                                      std::move(note)});
  }

  /// Time-like: regression only when `cur` exceeds `base` by > rel_tol.
  void slower_is_regression(const std::string& metric, double base,
                            double cur) {
    ++result.checked;
    if (base <= 0.0) {
      if (cur > 0.0) {
        note_regression(metric, base, cur, "baseline was zero, now nonzero");
      }
      return;
    }
    const double rel = (cur - base) / base;
    if (rel > opt.rel_tol) {
      note_regression(metric, base, cur,
                      util::strf("slower by %s (tol %s)", pct(rel).c_str(),
                                 pct(opt.rel_tol).c_str()));
    } else if (rel < -opt.rel_tol) {
      note_improvement(metric, base, cur,
                       util::strf("improved by %s", pct(-rel).c_str()));
    }
  }

  /// Higher-is-better (speedup, hidden_fraction): regression when `cur`
  /// falls below `base` by > rel_tol.
  void lower_is_regression(const std::string& metric, double base,
                           double cur) {
    ++result.checked;
    if (base <= 0.0) return;  // nothing was gained at baseline
    const double rel = (base - cur) / base;
    if (rel > opt.rel_tol) {
      note_regression(metric, base, cur,
                      util::strf("dropped by %s (tol %s)", pct(rel).c_str(),
                                 pct(opt.rel_tol).c_str()));
    } else if (rel < -opt.rel_tol) {
      note_improvement(metric, base, cur,
                       util::strf("improved by %s", pct(-rel).c_str()));
    }
  }

  /// Structural: the simulated timeline is deterministic, so any drift is a
  /// behaviour change, not noise.
  void exact(const std::string& metric, double base, double cur) {
    ++result.checked;
    if (base != cur) {
      note_regression(metric, base, cur, "changed (exact metric)");
    }
  }
};

/// Indexes an array of objects by a composite key; missing/extra entries
/// between baseline and current are regressions.
using Index = std::map<std::string, const util::JsonValue*>;

Index index_by(const util::JsonValue& doc, const char* array_key,
               const std::vector<const char*>& key_fields) {
  Index index;
  const util::JsonValue* array = doc.find(array_key);
  if (array == nullptr || !array->is_array()) return index;
  for (const util::JsonValue& entry : array->as_array()) {
    std::string key;
    for (const char* field : key_fields) {
      if (!key.empty()) key += '/';
      const util::JsonValue* v = entry.find(field);
      if (v != nullptr && v->is_number()) {
        key += util::strf("%g", v->as_number());
      } else {
        key += entry.get_string_or(field, "?");
      }
    }
    index.emplace(std::move(key), &entry);
  }
  return index;
}

/// Walks baseline/current indices together; `compare(key, base, cur)` runs
/// on matched entries, set drift is an exact regression.
template <typename Compare>
void check_indexed(Checker& c, const std::string& what, const Index& base,
                   const Index& cur, Compare&& compare) {
  for (const auto& [key, base_entry] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) {
      c.note_regression(what + "[" + key + "]", 1.0, 0.0,
                        "present in baseline, missing in current");
      continue;
    }
    compare(key, *base_entry, *it->second);
  }
  for (const auto& [key, entry] : cur) {
    (void)entry;
    if (base.find(key) == base.end()) {
      c.note_regression(what + "[" + key + "]", 0.0, 1.0,
                        "absent from baseline, present in current");
    }
  }
}

void check_run_report(Checker& c, const util::JsonValue& base,
                      const util::JsonValue& cur) {
  if (const util::JsonValue* bt = base.find("totals")) {
    const util::JsonValue* ct = cur.find("totals");
    const util::JsonValue empty;
    const util::JsonValue& t = (ct != nullptr) ? *ct : empty;
    c.slower_is_regression("totals.sim_seconds",
                           bt->get_number_or("sim_seconds", 0.0),
                           t.get_number_or("sim_seconds", 0.0));
    c.exact("totals.kernel_launches",
            bt->get_number_or("kernel_launches", 0.0),
            t.get_number_or("kernel_launches", 0.0));
    c.exact("totals.total_iterations",
            bt->get_number_or("total_iterations", 0.0),
            t.get_number_or("total_iterations", 0.0));
  }
  check_indexed(
      c, "kernels", index_by(base, "kernels", {"name"}),
      index_by(cur, "kernels", {"name"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        c.exact("kernels[" + key + "].count", b.get_number_or("count", 0.0),
                n.get_number_or("count", 0.0));
        c.slower_is_regression("kernels[" + key + "].total_ns",
                               b.get_number_or("total_ns", 0.0),
                               n.get_number_or("total_ns", 0.0));
      });
  check_indexed(
      c, "ranks", index_by(base, "ranks", {"rank"}),
      index_by(cur, "ranks", {"rank"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "ranks[" + key + "].";
        c.exact(prefix + "halo_exchanges",
                b.get_number_or("halo_exchanges", 0.0),
                n.get_number_or("halo_exchanges", 0.0));
        c.exact(prefix + "allreduces", b.get_number_or("allreduces", 0.0),
                n.get_number_or("allreduces", 0.0));
        c.exact(prefix + "comm_bytes", b.get_number_or("comm_bytes", 0.0),
                n.get_number_or("comm_bytes", 0.0));
        c.slower_is_regression(prefix + "exposed_ns",
                               b.get_number_or("exposed_ns", 0.0),
                               n.get_number_or("exposed_ns", 0.0));
        c.lower_is_regression(prefix + "hidden_fraction",
                              b.get_number_or("hidden_fraction", 0.0),
                              n.get_number_or("hidden_fraction", 0.0));
      });
  // Service runs only: per-tenant rollups. A no-op for classic reports
  // (both indices empty).
  check_indexed(
      c, "tenants", index_by(base, "tenants", {"tenant"}),
      index_by(cur, "tenants", {"tenant"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "tenants[" + key + "].";
        c.exact(prefix + "jobs", b.get_number_or("jobs", 0.0),
                n.get_number_or("jobs", 0.0));
        c.exact(prefix + "failures", b.get_number_or("failures", 0.0),
                n.get_number_or("failures", 0.0));
        c.exact(prefix + "iterations", b.get_number_or("iterations", 0.0),
                n.get_number_or("iterations", 0.0));
        c.exact(prefix + "kernel_launches",
                b.get_number_or("kernel_launches", 0.0),
                n.get_number_or("kernel_launches", 0.0));
        c.slower_is_regression(prefix + "sim_seconds",
                               b.get_number_or("sim_seconds", 0.0),
                               n.get_number_or("sim_seconds", 0.0));
      });
}

void check_bench_fusion(Checker& c, const util::JsonValue& base,
                        const util::JsonValue& cur) {
  check_indexed(
      c, "cells", index_by(base, "cells", {"device", "model", "solver"}),
      index_by(cur, "cells", {"device", "model", "solver"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "cells[" + key + "].";
        c.slower_is_regression(prefix + "unfused_seconds",
                               b.get_number_or("unfused_seconds", 0.0),
                               n.get_number_or("unfused_seconds", 0.0));
        c.slower_is_regression(prefix + "fused_seconds",
                               b.get_number_or("fused_seconds", 0.0),
                               n.get_number_or("fused_seconds", 0.0));
        c.lower_is_regression(prefix + "speedup",
                              b.get_number_or("speedup", 0.0),
                              n.get_number_or("speedup", 0.0));
        c.exact(prefix + "unfused_launches",
                b.get_number_or("unfused_launches", 0.0),
                n.get_number_or("unfused_launches", 0.0));
        c.exact(prefix + "fused_launches",
                b.get_number_or("fused_launches", 0.0),
                n.get_number_or("fused_launches", 0.0));
      });
}

void check_bench_overlap(Checker& c, const util::JsonValue& base,
                         const util::JsonValue& cur) {
  const std::string base_mode = base.get_string_or("mode", "");
  const std::string cur_mode = cur.get_string_or("mode", "");
  if (base_mode != cur_mode) {
    c.note_regression("mode", 0.0, 0.0,
                      "baseline mode '" + base_mode + "' vs current '" +
                          cur_mode + "' — not comparable");
    return;
  }
  check_indexed(
      c, "cells", index_by(base, "cells", {"scaling", "solver", "ranks"}),
      index_by(cur, "cells", {"scaling", "solver", "ranks"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "cells[" + key + "].";
        c.slower_is_regression(prefix + "blocking_s",
                               b.get_number_or("blocking_s", 0.0),
                               n.get_number_or("blocking_s", 0.0));
        c.slower_is_regression(prefix + "overlap_s",
                               b.get_number_or("overlap_s", 0.0),
                               n.get_number_or("overlap_s", 0.0));
        c.lower_is_regression(prefix + "hidden_fraction",
                              b.get_number_or("hidden_fraction", 0.0),
                              n.get_number_or("hidden_fraction", 0.0));
      });
}

// Classic-vs-pipelined CG artifact (bench_fig13_scaling). Every number runs
// on the simulated clock; in the committed full-mode artifact all of them
// are deterministic projections, so drift means a behaviour change. Times
// are regression-checked in the slower direction and the hidden allreduce
// share in the lower direction.
void check_bench_pipeline(Checker& c, const util::JsonValue& base,
                          const util::JsonValue& cur) {
  const std::string base_mode = base.get_string_or("mode", "");
  const std::string cur_mode = cur.get_string_or("mode", "");
  if (base_mode != cur_mode) {
    c.note_regression("mode", 0.0, 0.0,
                      "baseline mode '" + base_mode + "' vs current '" +
                          cur_mode + "' — not comparable");
    return;
  }
  check_indexed(
      c, "cells", index_by(base, "cells", {"ranks"}),
      index_by(cur, "cells", {"ranks"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "cells[" + key + "].";
        for (const char* field :
             {"classic_total_s", "pipelined_blocking_s", "pipelined_overlap_s",
              "classic_allred_exposed_s", "pipelined_allred_exposed_s"}) {
          c.slower_is_regression(prefix + field, b.get_number_or(field, 0.0),
                                 n.get_number_or(field, 0.0));
        }
        c.lower_is_regression(prefix + "pipelined_allred_hidden_s",
                              b.get_number_or("pipelined_allred_hidden_s", 0.0),
                              n.get_number_or("pipelined_allred_hidden_s", 0.0));
      });
}

// Service soak artifact. The job mix and the simulated timeline of every
// job are deterministic, so totals and per-tenant counts are exact; wall
// clock (wall_seconds, jobs_per_s) depends on the machine and is tolerance
// checked in the regression-only direction. Scheduling outcomes (batches,
// max_wait_pops) depend on thread interleaving and are not checked — the
// fairness *bound* is structural and is.
void check_bench_service(Checker& c, const util::JsonValue& base,
                         const util::JsonValue& cur) {
  if (const util::JsonValue* bt = base.find("totals")) {
    const util::JsonValue* ct = cur.find("totals");
    const util::JsonValue empty;
    const util::JsonValue& t = (ct != nullptr) ? *ct : empty;
    for (const char* field : {"jobs", "failures", "iterations",
                              "kernel_launches", "comm_bytes", "scenarios",
                              "verified", "bit_identical"}) {
      c.exact(std::string("totals.") + field, bt->get_number_or(field, 0.0),
              t.get_number_or(field, 0.0));
    }
    c.slower_is_regression("totals.sim_seconds",
                           bt->get_number_or("sim_seconds", 0.0),
                           t.get_number_or("sim_seconds", 0.0));
  }
  if (const util::JsonValue* bs = base.find("schedule")) {
    const util::JsonValue* cs = cur.find("schedule");
    const util::JsonValue empty;
    const util::JsonValue& s = (cs != nullptr) ? *cs : empty;
    c.exact("schedule.fairness_bound",
            bs->get_number_or("fairness_bound", 0.0),
            s.get_number_or("fairness_bound", 0.0));
    c.slower_is_regression("schedule.wall_seconds",
                           bs->get_number_or("wall_seconds", 0.0),
                           s.get_number_or("wall_seconds", 0.0));
    c.lower_is_regression("schedule.jobs_per_s",
                          bs->get_number_or("jobs_per_s", 0.0),
                          s.get_number_or("jobs_per_s", 0.0));
  }
  check_indexed(
      c, "tenants", index_by(base, "tenants", {"tenant"}),
      index_by(cur, "tenants", {"tenant"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "tenants[" + key + "].";
        for (const char* field : {"jobs", "failures", "converged",
                                  "iterations", "inner_iterations",
                                  "kernel_launches", "comm_bytes"}) {
          c.exact(prefix + field, b.get_number_or(field, 0.0),
                  n.get_number_or(field, 0.0));
        }
        c.slower_is_regression(prefix + "sim_seconds",
                               b.get_number_or("sim_seconds", 0.0),
                               n.get_number_or("sim_seconds", 0.0));
      });
}

// Elastic bench artifact. Everything in it runs on the simulated clock
// (there is no wall clock in this artifact), so the decomposition timings
// and the survive/bit-identical flags are deterministic. Retry/drop tallies
// race message delivery inside the injector and are informational only —
// recorded but never compared.
void check_bench_elastic(Checker& c, const util::JsonValue& base,
                         const util::JsonValue& cur) {
  const std::string base_mode = base.get_string_or("mode", "");
  const std::string cur_mode = cur.get_string_or("mode", "");
  if (base_mode != cur_mode) {
    c.note_regression("mode", 0.0, 0.0,
                      "baseline mode '" + base_mode + "' vs current '" +
                          cur_mode + "' — not comparable");
    return;
  }
  const util::JsonValue empty;
  const util::JsonValue* bh = base.find("heterogeneous");
  const util::JsonValue* ch = cur.find("heterogeneous");
  check_indexed(
      c, "heterogeneous.cells",
      index_by(bh != nullptr ? *bh : empty, "cells", {"solver"}),
      index_by(ch != nullptr ? *ch : empty, "cells", {"solver"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "heterogeneous.cells[" + key + "].";
        c.slower_is_regression(prefix + "equal_seconds",
                               b.get_number_or("equal_seconds", 0.0),
                               n.get_number_or("equal_seconds", 0.0));
        c.slower_is_regression(prefix + "weighted_seconds",
                               b.get_number_or("weighted_seconds", 0.0),
                               n.get_number_or("weighted_seconds", 0.0));
        c.lower_is_regression(prefix + "speedup",
                              b.get_number_or("speedup", 0.0),
                              n.get_number_or("speedup", 0.0));
        c.exact(prefix + "equal_iterations",
                b.get_number_or("equal_iterations", 0.0),
                n.get_number_or("equal_iterations", 0.0));
        c.exact(prefix + "weighted_iterations",
                b.get_number_or("weighted_iterations", 0.0),
                n.get_number_or("weighted_iterations", 0.0));
      });
  const util::JsonValue* bf = base.find("faults");
  const util::JsonValue* cf = cur.find("faults");
  check_indexed(
      c, "faults.cells",
      index_by(bf != nullptr ? *bf : empty, "cells", {"seed"}),
      index_by(cf != nullptr ? *cf : empty, "cells", {"seed"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "faults.cells[" + key + "].";
        c.exact(prefix + "survived", b.get_number_or("survived", 0.0),
                n.get_number_or("survived", 0.0));
        c.exact(prefix + "identical", b.get_number_or("identical", 0.0),
                n.get_number_or("identical", 0.0));
      });
  const util::JsonValue* br = base.find("resume");
  const util::JsonValue* cr = cur.find("resume");
  check_indexed(
      c, "resume.cells",
      index_by(br != nullptr ? *br : empty, "cells",
               {"solver", "from_ranks", "to_ranks"}),
      index_by(cr != nullptr ? *cr : empty, "cells",
               {"solver", "from_ranks", "to_ranks"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        c.exact("resume.cells[" + key + "].identical",
                b.get_number_or("identical", 0.0),
                n.get_number_or("identical", 0.0));
      });
}

void check_bench_plan(Checker& c, const util::JsonValue& base,
                      const util::JsonValue& cur) {
  if (const util::JsonValue* bs = base.find("summary")) {
    const util::JsonValue* cs = cur.find("summary");
    const util::JsonValue empty;
    const util::JsonValue& s = (cs != nullptr) ? *cs : empty;
    // Pick counts are exact: the grids are committed and the planner is a
    // pure function of them, so a different pick is a behaviour change.
    c.exact("summary.cells", bs->get_number_or("cells", 0.0),
            s.get_number_or("cells", 0.0));
    c.exact("summary.exact", bs->get_number_or("exact", 0.0),
            s.get_number_or("exact", 0.0));
    c.exact("summary.picked_best", bs->get_number_or("picked_best", 0.0),
            s.get_number_or("picked_best", 0.0));
    c.lower_is_regression("summary.picked_best_pct",
                          bs->get_number_or("picked_best_pct", 0.0),
                          s.get_number_or("picked_best_pct", 0.0));
    c.slower_is_regression("summary.regret_pct",
                           bs->get_number_or("regret_pct", 0.0),
                           s.get_number_or("regret_pct", 0.0));
    c.slower_is_regression("summary.cv_mean_pct",
                           bs->get_number_or("cv_mean_pct", 0.0),
                           s.get_number_or("cv_mean_pct", 0.0));
    c.slower_is_regression("summary.cv_max_pct",
                           bs->get_number_or("cv_max_pct", 0.0),
                           s.get_number_or("cv_max_pct", 0.0));
  }
  check_indexed(
      c, "cells", index_by(base, "cells", {"grid", "device", "solver", "mesh"}),
      index_by(cur, "cells", {"grid", "device", "solver", "mesh"}),
      [&](const std::string& key, const util::JsonValue& b,
          const util::JsonValue& n) {
        const std::string prefix = "cells[" + key + "].";
        if (b.get_string_or("chosen", "") != n.get_string_or("chosen", "")) {
          c.note_regression(prefix + "chosen", 0.0, 1.0,
                            "pick changed: " + b.get_string_or("chosen", "?") +
                                " -> " + n.get_string_or("chosen", "?"));
        }
        c.exact(prefix + "picked_best", b.get_number_or("picked_best", 0.0),
                n.get_number_or("picked_best", 0.0));
      });
}

}  // namespace

CheckResult check(const util::JsonValue& baseline,
                  const util::JsonValue& current, const CheckOptions& opt) {
  Checker c{opt, {}};
  const ArtifactKind base_kind = classify(baseline);
  const ArtifactKind cur_kind = classify(current);
  if (base_kind != cur_kind || base_kind == ArtifactKind::kUnknown) {
    c.note_regression(
        "artifact", 0.0, 0.0,
        util::strf("kind mismatch: baseline %s vs current %s",
                   std::string(artifact_kind_name(base_kind)).c_str(),
                   std::string(artifact_kind_name(cur_kind)).c_str()));
    return std::move(c.result);
  }
  switch (base_kind) {
    case ArtifactKind::kRunReport:
      check_run_report(c, baseline, current);
      break;
    case ArtifactKind::kBenchFusion:
      check_bench_fusion(c, baseline, current);
      break;
    case ArtifactKind::kBenchOverlap:
      check_bench_overlap(c, baseline, current);
      break;
    case ArtifactKind::kBenchPipeline:
      check_bench_pipeline(c, baseline, current);
      break;
    case ArtifactKind::kBenchService:
      check_bench_service(c, baseline, current);
      break;
    case ArtifactKind::kBenchElastic:
      check_bench_elastic(c, baseline, current);
      break;
    case ArtifactKind::kBenchPlan:
      check_bench_plan(c, baseline, current);
      break;
    case ArtifactKind::kUnknown:
      break;
  }
  return std::move(c.result);
}

std::string format_check(const CheckResult& result) {
  std::ostringstream os;
  for (const Finding& f : result.findings) {
    os << (f.regression ? "REGRESSION " : "note       ") << f.metric << ": "
       << util::strf("%.17g -> %.17g", f.baseline, f.current) << " — "
       << f.note << "\n";
  }
  os << util::strf("%d comparison(s), %d regression(s): %s\n", result.checked,
                   result.regressions, result.pass() ? "pass" : "FAIL");
  return os.str();
}

// -- Analysis ---------------------------------------------------------------

namespace {

void analyze_run_report(std::ostringstream& os, const util::JsonValue& doc,
                        const AnalyzeOptions& opt) {
  if (const util::JsonValue* ctx = doc.find("context")) {
    os << util::strf(
        "context: model=%s device=%s solver=%s %dx%d, %d step(s), "
        "%d rank(s), fused=%s overlap=%s\n",
        ctx->get_string_or("model", "?").c_str(),
        ctx->get_string_or("device", "?").c_str(),
        ctx->get_string_or("solver", "?").c_str(),
        static_cast<int>(ctx->get_number_or("nx", 0)),
        static_cast<int>(ctx->get_number_or("ny", 0)),
        static_cast<int>(ctx->get_number_or("steps", 0)),
        static_cast<int>(ctx->get_number_or("ranks", 1)),
        ctx->get_bool_or("use_fused", true) ? "on" : "off",
        ctx->get_bool_or("overlap_comm", true) ? "on" : "off");
  }
  if (const util::JsonValue* totals = doc.find("totals")) {
    os << util::strf(
        "totals:  %.6f sim s, %.1f GB/s achieved (priced peak %.1f), "
        "%.0f launches, %.0f iterations\n",
        totals->get_number_or("sim_seconds", 0.0),
        totals->get_number_or("achieved_gbs", 0.0),
        totals->get_number_or("peak_gbs", 0.0),
        totals->get_number_or("kernel_launches", 0.0),
        totals->get_number_or("total_iterations", 0.0));
  }

  // Top-N kernels by total time, with the roofline ratio.
  const util::JsonValue* kernels = doc.find("kernels");
  if (kernels != nullptr && kernels->is_array() &&
      !kernels->as_array().empty()) {
    std::vector<const util::JsonValue*> sorted;
    for (const util::JsonValue& k : kernels->as_array()) sorted.push_back(&k);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const util::JsonValue* a, const util::JsonValue* b) {
                       return a->get_number_or("total_ns", 0.0) >
                              b->get_number_or("total_ns", 0.0);
                     });
    os << "\ntop kernels:\n";
    util::Table table({"kernel", "launches", "total s", "% run", "GB/s",
                       "peak ratio"});
    const std::size_t n =
        std::min(sorted.size(), static_cast<std::size_t>(
                                    opt.top_n > 0 ? opt.top_n : 8));
    for (std::size_t i = 0; i < n; ++i) {
      const util::JsonValue& k = *sorted[i];
      table.row({k.get_string_or("name", "?"),
                 util::strf("%.0f", k.get_number_or("count", 0.0)),
                 util::strf("%.6f", k.get_number_or("total_ns", 0.0) * 1e-9),
                 util::strf("%.1f", k.get_number_or("percent", 0.0)),
                 util::strf("%.1f", k.get_number_or("gbs", 0.0)),
                 util::strf("%.2f", k.get_number_or("peak_ratio", 0.0))});
    }
    os << table.render();
    if (sorted.size() > n) {
      os << util::strf("(%zu more kernel(s) below the top %zu)\n",
                       sorted.size() - n, n);
    }
  }

  // Per-rank comm exposure.
  const util::JsonValue* ranks = doc.find("ranks");
  if (ranks != nullptr && ranks->is_array() && !ranks->as_array().empty()) {
    os << "\ncomm exposure:\n";
    util::Table table({"rank", "exchanges", "allreduces", "wire MB",
                       "exposed ms", "hidden ms", "hidden %"});
    for (const util::JsonValue& r : ranks->as_array()) {
      table.row(
          {util::strf("%.0f", r.get_number_or("rank", 0.0)),
           util::strf("%.0f", r.get_number_or("halo_exchanges", 0.0)),
           util::strf("%.0f", r.get_number_or("allreduces", 0.0)),
           util::strf("%.2f", r.get_number_or("comm_bytes", 0.0) / 1e6),
           util::strf("%.3f", r.get_number_or("exposed_ns", 0.0) * 1e-6),
           util::strf("%.3f", r.get_number_or("hidden_ns", 0.0) * 1e-6),
           util::strf("%.1f",
                      r.get_number_or("hidden_fraction", 0.0) * 100.0)});
    }
    os << table.render();
  }

  // Fusion / overlap effectiveness from the registry counters.
  if (const util::JsonValue* metrics = doc.find("metrics")) {
    if (const util::JsonValue* counters = metrics->find("counters")) {
      const double fused = counters->get_number_or("tl_fused_iterations", 0.0);
      const double classic =
          counters->get_number_or("tl_classic_iterations", 0.0);
      const double hidden =
          counters->get_number_or("tl_overlap_hidden_ns", 0.0);
      const double exposed = counters->get_number_or("tl_comm_ns", 0.0);
      os << "\neffectiveness:\n";
      if (fused + classic > 0.0) {
        os << util::strf("  fused path: %.0f of %.0f iterations (%s)\n",
                         fused, fused + classic,
                         pct(fused / (fused + classic)).c_str());
      }
      if (hidden + exposed > 0.0) {
        os << util::strf(
            "  overlap: %.3f ms comm hidden, %.3f ms exposed (%s hidden)\n",
            hidden * 1e-6, exposed * 1e-6,
            pct(hidden / (hidden + exposed)).c_str());
      }
    }
  }
}

void analyze_bench(std::ostringstream& os, const util::JsonValue& doc) {
  const util::JsonValue* cells = doc.find("cells");
  const std::size_t n = (cells != nullptr && cells->is_array())
                            ? cells->as_array().size()
                            : 0;
  os << util::strf("bench artifact '%s' (%zu cell(s))\n",
                   doc.get_string_or("bench", "?").c_str(), n);
  if (classify(doc) == ArtifactKind::kBenchFusion && n > 0) {
    double worst = 0.0, best = 0.0, sum = 0.0;
    bool first = true;
    for (const util::JsonValue& cell : cells->as_array()) {
      const double s = cell.get_number_or("speedup", 0.0);
      if (first || s < worst) worst = s;
      if (first || s > best) best = s;
      sum += s;
      first = false;
    }
    os << util::strf("fusion speedup: min %.3fx, mean %.3fx, max %.3fx\n",
                     worst, sum / static_cast<double>(n), best);
  }
  if (classify(doc) == ArtifactKind::kBenchPipeline && n > 0) {
    double best_saved = 0.0;
    for (const util::JsonValue& cell : cells->as_array()) {
      const double classic =
          cell.get_number_or("classic_allred_exposed_s", 0.0);
      const double piped =
          cell.get_number_or("pipelined_allred_exposed_s", 0.0);
      best_saved = std::max(best_saved, classic - piped);
    }
    os << util::strf(
        "pipelined CG: up to %.6f s of exposed allreduce removed (mode %s)\n",
        best_saved, doc.get_string_or("mode", "?").c_str());
  }
  if (classify(doc) == ArtifactKind::kBenchOverlap && n > 0) {
    double best_hidden = 0.0;
    for (const util::JsonValue& cell : cells->as_array()) {
      best_hidden = std::max(best_hidden,
                             cell.get_number_or("hidden_fraction", 0.0));
    }
    os << util::strf("overlap: best hidden fraction %.1f%% (mode %s)\n",
                     best_hidden * 100.0,
                     doc.get_string_or("mode", "?").c_str());
  }
}

void analyze_bench_service(std::ostringstream& os,
                           const util::JsonValue& doc) {
  if (const util::JsonValue* totals = doc.find("totals")) {
    os << util::strf(
        "service soak: %.0f job(s), %.0f failure(s), %.0f scenario(s), "
        "%.0f/%.0f verified bit-identical\n",
        totals->get_number_or("jobs", 0.0),
        totals->get_number_or("failures", 0.0),
        totals->get_number_or("scenarios", 0.0),
        totals->get_number_or("bit_identical", 0.0),
        totals->get_number_or("verified", 0.0));
  }
  if (const util::JsonValue* sched = doc.find("schedule")) {
    os << util::strf(
        "schedule: %.0f batch(es), max wait %.0f pop(s) "
        "(fairness bound %.0f), %.2f s wall, %.1f job/s\n",
        sched->get_number_or("batches", 0.0),
        sched->get_number_or("max_wait_pops", 0.0),
        sched->get_number_or("fairness_bound", 0.0),
        sched->get_number_or("wall_seconds", 0.0),
        sched->get_number_or("jobs_per_s", 0.0));
  }
  const util::JsonValue* tenants = doc.find("tenants");
  if (tenants != nullptr && tenants->is_array() &&
      !tenants->as_array().empty()) {
    os << "\ntenants:\n";
    util::Table table({"tenant", "jobs", "failures", "iterations",
                       "sim s", "max wait"});
    for (const util::JsonValue& t : tenants->as_array()) {
      table.row({t.get_string_or("tenant", "?"),
                 util::strf("%.0f", t.get_number_or("jobs", 0.0)),
                 util::strf("%.0f", t.get_number_or("failures", 0.0)),
                 util::strf("%.0f", t.get_number_or("iterations", 0.0)),
                 util::strf("%.4f", t.get_number_or("sim_seconds", 0.0)),
                 util::strf("%.0f", t.get_number_or("max_wait_pops", 0.0))});
    }
    os << table.render();
  }
}

void analyze_bench_elastic(std::ostringstream& os,
                           const util::JsonValue& doc) {
  os << util::strf("elastic bench (mode %s)\n",
                   doc.get_string_or("mode", "?").c_str());
  if (const util::JsonValue* hetero = doc.find("heterogeneous")) {
    const util::JsonValue* cells = hetero->find("cells");
    if (cells != nullptr && cells->is_array() && !cells->as_array().empty()) {
      os << util::strf("heterogeneous world: %.0f rank(s), %.0f^2 mesh\n",
                       hetero->get_number_or("ranks", 0.0),
                       hetero->get_number_or("mesh", 0.0));
      util::Table table({"solver", "equal s", "weighted s", "speedup"});
      for (const util::JsonValue& c : cells->as_array()) {
        table.row({c.get_string_or("solver", "?"),
                   util::strf("%.6f", c.get_number_or("equal_seconds", 0.0)),
                   util::strf("%.6f",
                              c.get_number_or("weighted_seconds", 0.0)),
                   util::strf("%.3fx", c.get_number_or("speedup", 0.0))});
      }
      os << table.render();
    }
  }
  const auto tally = [&os](const util::JsonValue* section, const char* what) {
    if (section == nullptr) return;
    const util::JsonValue* cells = section->find("cells");
    if (cells == nullptr || !cells->is_array()) return;
    std::size_t n = cells->as_array().size(), good = 0;
    for (const util::JsonValue& c : cells->as_array()) {
      if (c.get_number_or("identical", 0.0) != 0.0) ++good;
    }
    os << util::strf("%s: %zu/%zu cell(s) bit-identical\n", what, good, n);
  };
  tally(doc.find("faults"), "fault survival");
  tally(doc.find("resume"), "kill-and-resume");
}

void analyze_bench_plan(std::ostringstream& os, const util::JsonValue& doc) {
  if (const util::JsonValue* s = doc.find("summary")) {
    os << util::strf(
        "planner regret grid: %.0f cell(s), %.0f exact argmin, "
        "%.0f picked-best (%.1f%%), aggregate regret %.2f%%\n",
        s->get_number_or("cells", 0.0), s->get_number_or("exact", 0.0),
        s->get_number_or("picked_best", 0.0),
        s->get_number_or("picked_best_pct", 0.0),
        s->get_number_or("regret_pct", 0.0));
    os << util::strf(
        "held-out (leave-one-out) error: mean %.2f%%, worst %.2f%% over "
        "%.0f multi-point series\n",
        s->get_number_or("cv_mean_pct", 0.0),
        s->get_number_or("cv_max_pct", 0.0),
        s->get_number_or("cv_series", 0.0));
  }
  const util::JsonValue* cells = doc.find("cells");
  if (cells != nullptr && cells->is_array()) {
    std::size_t misses = 0;
    for (const util::JsonValue& cell : cells->as_array()) {
      if (cell.get_number_or("picked_best", 0.0) == 0.0) ++misses;
    }
    if (misses > 0) {
      os << util::strf("%zu cell(s) missed the known-fastest config:\n",
                       misses);
      for (const util::JsonValue& cell : cells->as_array()) {
        if (cell.get_number_or("picked_best", 0.0) != 0.0) continue;
        os << util::strf("  %s %s/%s mesh %.0f: chose %s over %s "
                         "(+%.2f%%)\n",
                         cell.get_string_or("grid", "?").c_str(),
                         cell.get_string_or("device", "?").c_str(),
                         cell.get_string_or("solver", "?").c_str(),
                         cell.get_number_or("mesh", 0.0),
                         cell.get_string_or("chosen", "?").c_str(),
                         cell.get_string_or("oracle", "?").c_str(),
                         cell.get_number_or("regret_pct", 0.0));
      }
    }
  }
}

}  // namespace

std::string analyze(const util::JsonValue& doc, const AnalyzeOptions& opt) {
  std::ostringstream os;
  switch (classify(doc)) {
    case ArtifactKind::kRunReport:
      analyze_run_report(os, doc, opt);
      break;
    case ArtifactKind::kBenchFusion:
    case ArtifactKind::kBenchOverlap:
    case ArtifactKind::kBenchPipeline:
      analyze_bench(os, doc);
      break;
    case ArtifactKind::kBenchService:
      analyze_bench_service(os, doc);
      break;
    case ArtifactKind::kBenchElastic:
      analyze_bench_elastic(os, doc);
      break;
    case ArtifactKind::kBenchPlan:
      analyze_bench_plan(os, doc);
      break;
    case ArtifactKind::kUnknown:
      os << "unknown artifact (no tl-report-1 schema or bench tag)\n";
      break;
  }
  return os.str();
}

}  // namespace tl::telemetry
