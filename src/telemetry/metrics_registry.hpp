#pragma once
// MetricsRegistry: deterministic run-level counters, gauges, and
// fixed-bucket histograms.
//
// This is the run-level complement to the event-level trace layer: where
// sim/trace answers "what happened when", the registry answers "how much,
// in total" — launches, bytes, exposed vs. hidden comm time, launch-factor
// spread — in a form a report or a scrape endpoint can carry.
//
// Determinism is the design constraint (reports must be byte-identical at
// any thread count): every metric lives in a sorted map, each producer
// fills its own registry single-threaded in event order, and parallel
// producers are merged with the same pairwise (tree) combine discipline as
// HostPool reductions — the merge shape depends only on the producer count,
// never on scheduling. There are no atomics and no locks: a registry is
// single-writer by construction.

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tl::telemetry {

/// Fixed-bucket histogram (Prometheus/OpenMetrics semantics): counts[i]
/// tallies observations v <= upper_bounds[i] (first matching bucket, i.e.
/// non-cumulative storage); counts.back() is the +Inf overflow bucket.
struct Histogram {
  std::vector<double> upper_bounds;   // strictly increasing
  std::vector<std::uint64_t> counts;  // size upper_bounds.size() + 1
  double sum = 0.0;
  std::uint64_t count = 0;

  void observe(double value);
  /// Cumulative count through bucket `i` (OpenMetrics `le` semantics).
  std::uint64_t cumulative(std::size_t i) const;
};

class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Serialized metric key: `name` or `name{k="v",...}` (labels in given
  /// order; callers pass them pre-sorted for cross-producer stability).
  static std::string key_for(std::string_view name, const Labels& labels);
  /// Family name of a key (everything before the label block).
  static std::string_view family(std::string_view key);

  void add_counter(std::string_view name, double delta,
                   const Labels& labels = {});
  void set_gauge(std::string_view name, double value,
                 const Labels& labels = {});
  /// Observes into the named histogram, creating it with `upper_bounds` on
  /// first use. Throws std::invalid_argument if it exists with different
  /// bounds (mixed-bounds histograms cannot be combined).
  void observe(std::string_view name, double value,
               std::span<const double> upper_bounds,
               const Labels& labels = {});

  using CounterMap = std::map<std::string, double, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  const CounterMap& counters() const noexcept { return counters_; }
  const CounterMap& gauges() const noexcept { return gauges_; }
  const HistogramMap& histograms() const noexcept { return histograms_; }

  /// Counter/gauge lookup by serialized key; `fallback` when absent.
  double counter_or(std::string_view key, double fallback = 0.0) const;
  double gauge_or(std::string_view key, double fallback = 0.0) const;

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Merges `other` into this registry: counters and histogram cells add,
  /// gauges take `other`'s value (last-writer-wins, like a scrape).
  /// Building block of combine_all; on its own it is a left-fold step.
  void combine(const MetricsRegistry& other);

  /// Folds `parts` with HostPool's pairwise tree discipline — pairing
  /// depends only on parts.size(), so the result is bit-identical for any
  /// scheduling of the producers. parts[0] accumulates the result.
  static MetricsRegistry combine_all(std::span<MetricsRegistry> parts);

 private:
  CounterMap counters_;
  CounterMap gauges_;
  HistogramMap histograms_;
};

/// Renders the registry in the OpenMetrics text format (one `# TYPE` block
/// per metric family, counters suffixed `_total`, histograms expanded to
/// cumulative `_bucket{le=...}` + `_sum` + `_count`, terminated by `# EOF`).
std::string to_openmetrics(const MetricsRegistry& registry);

}  // namespace tl::telemetry
