#include "sim/codegen.hpp"

namespace tl::sim {

namespace {

constexpr CodegenProfile kUnsupported{};

constexpr double us(double v) { return v * 1000.0; }  // microseconds -> ns

// ---------------------------------------------------------------------------
// CPU: dual Xeon E5-2670 (paper section 4.1 / Fig 8)
// ---------------------------------------------------------------------------

// OpenMP 3.0 Fortran 90: the device-tuned best case.
constexpr CodegenProfile kFortranCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.93, .vector_quality = 1.0,
    .reduction_efficiency = 0.97, .reduction_overhead_ns = us(2),
    .launch_overhead_ns = us(4)};

// Identical code compiled as C++ vectorises worse with icc 15.0.3 (the
// paper's 15% Chebyshev gap); vector_quality carries that difference.
constexpr CodegenProfile kOmp3CppCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.93, .vector_quality = 0.60,
    .reduction_efficiency = 0.97, .reduction_overhead_ns = us(2),
    .launch_overhead_ns = us(4)};

constexpr CodegenProfile kOmp4Cpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.90, .vector_quality = 0.85,
    .reduction_efficiency = 0.92, .reduction_overhead_ns = us(3),
    .launch_overhead_ns = us(8)};

constexpr CodegenProfile kOpenAccCpu{  // PGI 15.10 x86 target: supported,
    .supported = true, .support_note = "Yes",  // not benchmarked in the paper
    .base_efficiency = 0.85, .vector_quality = 0.85,
    .reduction_efficiency = 0.85, .reduction_overhead_ns = us(4),
    .launch_overhead_ns = us(10)};

constexpr CodegenProfile kKokkosCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.92, .vector_quality = 0.70,
    .reduction_efficiency = 0.95, .reduction_overhead_ns = us(3),
    .launch_overhead_ns = us(5)};

constexpr CodegenProfile kKokkosHpCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.90, .vector_quality = 0.70,
    .reduction_efficiency = 0.93, .reduction_overhead_ns = us(4),
    .launch_overhead_ns = us(7)};

constexpr CodegenProfile kRajaCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.93, .vector_quality = 0.85,
    .reduction_efficiency = 0.95, .reduction_overhead_ns = us(3),
    .launch_overhead_ns = us(5)};

constexpr CodegenProfile kRajaSimdCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.93, .vector_quality = 0.50, .simd_forced = true,
    .reduction_efficiency = 0.95, .reduction_overhead_ns = us(3),
    .launch_overhead_ns = us(5)};

// Intel OpenCL on CPU schedules with TBB work stealing: 1631..2813 s over 15
// runs in the paper. The run-factor band reproduces that spread.
constexpr CodegenProfile kOpenClCpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.82, .vector_quality = 0.80,
    .reduction_efficiency = 0.90, .reduction_overhead_ns = us(6),
    .launch_overhead_ns = us(25),
    .scheduler = SchedulerKind::kWorkStealing,
    .sched_run_factor_min = 0.55, .sched_run_factor_max = 0.95,
    .sched_launch_jitter = 0.06};

// ---------------------------------------------------------------------------
// GPU: NVIDIA K20X (paper section 4.2 / Fig 9)
// ---------------------------------------------------------------------------

constexpr CodegenProfile kCudaGpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.90,
    .reduction_efficiency = 0.85, .reduction_overhead_ns = us(6),
    .launch_overhead_ns = us(8)};

constexpr CodegenProfile kOpenClGpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.90,
    .reduction_efficiency = 0.85, .reduction_overhead_ns = us(7),
    .launch_overhead_ns = us(12)};

constexpr CodegenProfile kOpenAccGpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.82,
    .reduction_efficiency = 0.68, .reduction_overhead_ns = us(12),
    .launch_overhead_ns = us(30)};

// Flat Kokkos: excellent streaming codegen; the paper's unexplained CG
// anomaly (+50%) is carried by the reduction path efficiency.
constexpr CodegenProfile kKokkosGpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.95,
    .reduction_efficiency = 0.52, .reduction_overhead_ns = us(10),
    .launch_overhead_ns = us(15)};

// Hierarchical parallelism: better reductions (team-level accumulation),
// ~20% slower streaming kernels (second dispatch level).
constexpr CodegenProfile kKokkosHpGpu{
    .supported = true, .support_note = "Yes",
    .base_efficiency = 0.72,
    .reduction_efficiency = 0.74, .reduction_overhead_ns = us(10),
    .launch_overhead_ns = us(18)};

constexpr CodegenProfile kOmp4Gpu{  // "Experimental" in Table 1
    .supported = true, .support_note = "Experimental",
    .base_efficiency = 0.70,
    .reduction_efficiency = 0.55, .reduction_overhead_ns = us(20),
    .launch_overhead_ns = us(60)};

// ---------------------------------------------------------------------------
// KNC: Xeon Phi 5110P / SE10P (paper section 4.3 / Fig 10)
// ---------------------------------------------------------------------------

constexpr CodegenProfile kFortranKnc{
    .supported = true, .support_note = "Native",
    .base_efficiency = 0.80, .vector_quality = 1.0,
    .reduction_efficiency = 0.95, .reduction_overhead_ns = us(8),
    .launch_overhead_ns = us(15)};

constexpr CodegenProfile kOmp3CppKnc{
    .supported = true, .support_note = "Native",
    .base_efficiency = 0.80, .vector_quality = 0.80,
    .reduction_efficiency = 0.95, .reduction_overhead_ns = us(8),
    .launch_overhead_ns = us(15)};

constexpr CodegenProfile kOmp4Knc{
    .supported = true, .support_note = "Offload",
    .base_efficiency = 0.78, .vector_quality = 0.90,
    .reduction_efficiency = 0.67, .reduction_overhead_ns = us(25),
    .launch_overhead_ns = us(180)};

constexpr CodegenProfile kOpenClKnc{
    .supported = true, .support_note = "Offload",
    .base_efficiency = 0.70, .vector_quality = 0.80,
    .reduction_efficiency = 0.33, .reduction_overhead_ns = us(40),
    .launch_overhead_ns = us(150)};

constexpr CodegenProfile kKokkosKnc{
    .supported = true, .support_note = "Native",
    .base_efficiency = 0.78, .vector_quality = 0.70,
    .reduction_efficiency = 0.80, .reduction_overhead_ns = us(15),
    .launch_overhead_ns = us(40)};

constexpr CodegenProfile kKokkosHpKnc{
    .supported = true, .support_note = "Native",
    .base_efficiency = 0.74, .vector_quality = 0.70,
    .reduction_efficiency = 0.82, .reduction_overhead_ns = us(18),
    .launch_overhead_ns = us(50)};

constexpr CodegenProfile kRajaKnc{
    .supported = true, .support_note = "Native",
    .base_efficiency = 0.80, .vector_quality = 0.85,
    .reduction_efficiency = 0.90, .reduction_overhead_ns = us(12),
    .launch_overhead_ns = us(45)};

constexpr CodegenProfile kRajaSimdKnc{
    .supported = true, .support_note = "Native",
    .base_efficiency = 0.80, .vector_quality = 0.60, .simd_forced = true,
    .reduction_efficiency = 0.90, .reduction_overhead_ns = us(12),
    .launch_overhead_ns = us(45)};

}  // namespace

const CodegenProfile& codegen_profile(Model m, DeviceId d) {
  switch (d) {
    case DeviceId::kCpuSandyBridge:
      switch (m) {
        case Model::kFortran: return kFortranCpu;
        case Model::kOmp3Cpp: return kOmp3CppCpu;
        case Model::kOmp4: return kOmp4Cpu;
        case Model::kOpenAcc: return kOpenAccCpu;
        case Model::kKokkos: return kKokkosCpu;
        case Model::kKokkosHp: return kKokkosHpCpu;
        case Model::kRaja: return kRajaCpu;
        case Model::kRajaSimd: return kRajaSimdCpu;
        case Model::kOpenCl: return kOpenClCpu;
        case Model::kCuda: return kUnsupported;
      }
      break;
    case DeviceId::kGpuK20X:
      switch (m) {
        case Model::kCuda: return kCudaGpu;
        case Model::kOpenCl: return kOpenClGpu;
        case Model::kOpenAcc: return kOpenAccGpu;
        case Model::kKokkos: return kKokkosGpu;
        case Model::kKokkosHp: return kKokkosHpGpu;
        case Model::kOmp4: return kOmp4Gpu;
        default: return kUnsupported;
      }
      break;
    case DeviceId::kMicKnc:
      switch (m) {
        case Model::kFortran: return kFortranKnc;
        case Model::kOmp3Cpp: return kOmp3CppKnc;
        case Model::kOmp4: return kOmp4Knc;
        case Model::kOpenCl: return kOpenClKnc;
        case Model::kKokkos: return kKokkosKnc;
        case Model::kKokkosHp: return kKokkosHpKnc;
        case Model::kRaja: return kRajaKnc;
        case Model::kRajaSimd: return kRajaSimdKnc;
        default: return kUnsupported;
      }
      break;
  }
  return kUnsupported;
}

std::string_view support_cell(Model m, DeviceId d) {
  return codegen_profile(m, d).support_note;
}

bool uses_device_residency(Model m, DeviceId d) {
  const DeviceSpec& dev = device_spec(d);
  if (dev.link_bw_gbs <= 0.0) return false;  // host device
  const CodegenProfile& p = codegen_profile(m, d);
  if (!p.supported) return false;
  // Native compilation runs on the card directly; everything else offloads
  // across PCIe and keeps data resident for the duration of the solve.
  return p.support_note != "Native";
}

std::optional<Model> parse_model(std::string_view id) {
  for (const Model m : kAllModels) {
    if (model_id(m) == id) return m;
  }
  if (id == "f90" || id == "omp_f90") return Model::kFortran;
  if (id == "omp" || id == "omp3_cpp") return Model::kOmp3Cpp;
  if (id == "acc") return Model::kOpenAcc;
  if (id == "ocl" || id == "cl") return Model::kOpenCl;
  return std::nullopt;
}

}  // namespace tl::sim
