#pragma once
// Simulated device catalogue.
//
// The paper's testbed (Table 2):
//   - 2x Intel Xeon E5-2670 (Sandy Bridge, 16 cores):  102.4 GB/s peak, 76.2 STREAM
//   - NVIDIA Tesla K20X:                               250.0 GB/s peak, 180.1 STREAM
//   - Intel Xeon Phi 5110P / SE10P (KNC):              320.0 GB/s peak, 159.9 STREAM
//
// This environment has none of that hardware, so each device is a parametric
// performance model: TeaLeaf is bandwidth bound, and the paper's own analysis
// (its Fig 12) is expressed as a fraction of STREAM bandwidth, which is
// exactly the quantity our model evolves.

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace tl::sim {

enum class DeviceKind { kCpu, kGpu, kMic };

enum class DeviceId {
  kCpuSandyBridge,  // dual-socket Xeon E5-2670
  kGpuK20X,         // NVIDIA Tesla K20X
  kMicKnc,          // Xeon Phi Knights Corner
};

inline constexpr std::array<DeviceId, 3> kAllDevices = {
    DeviceId::kCpuSandyBridge, DeviceId::kGpuK20X, DeviceId::kMicKnc};

struct DeviceSpec {
  DeviceId id{};
  DeviceKind kind{};
  std::string_view name;

  double peak_bw_gbs = 0.0;    // theoretical peak memory bandwidth
  double stream_bw_gbs = 0.0;  // measured STREAM bandwidth (paper Table 2)

  int hardware_threads = 1;    // parallel lanes exposed to the models
  std::size_t llc_bytes = 0;   // last-level cache capacity (CPU bend in Fig 11)
  double cache_bw_boost = 1.0; // bandwidth multiplier when working set fits LLC

  // Trait penalty dials: how much this device punishes particular code shapes.
  double no_vectorize_factor = 1.0;  // scales a kernel's vector_sensitivity
  double interior_branch_penalty = 1.0;  // x efficiency when halo test in body
  double indirection_penalty = 1.0;      // x efficiency for gather traversal

  // Host<->device link (PCIe for GPU/KNC offload; zero-cost for host models).
  double link_bw_gbs = 0.0;    // 0 => host-resident, transfers are free
  double link_latency_ns = 0.0;
};

const DeviceSpec& device_spec(DeviceId id);

constexpr std::string_view device_short_name(DeviceId id) {
  switch (id) {
    case DeviceId::kCpuSandyBridge: return "cpu";
    case DeviceId::kGpuK20X: return "gpu";
    case DeviceId::kMicKnc: return "knc";
  }
  return "?";
}

std::optional<DeviceId> parse_device(std::string_view id);

}  // namespace tl::sim
