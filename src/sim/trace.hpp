#pragma once
// Kernel-level tracing for the simulated timeline.
//
// Every metered launch/transfer — from every live port (omp3, kokkos, raja,
// opencl, cuda, offload) and the analytic PhantomKernels replay alike — can
// emit one TraceEvent through an optional TraceSink hooked into the SimClock.
// Because the hook sits on the shared metering spine (models::Launcher ->
// SimClock), the ports need zero per-port tracing code and all emit identical
// event streams; when no sink is attached, metering is byte-for-byte
// unchanged.
//
// Two consumers ship with the repo:
//   - RecordingSink keeps the ordered event stream (Chrome trace export,
//     launch-factor histograms, tests);
//   - AggregatingSink folds events straight into a util::Aggregator
//     (O(#kernels) memory, for full paper-scale solves).

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "util/metrics.hpp"

namespace tl::sim {

/// One metered launch or transfer on the simulated timeline.
struct TraceEvent {
  enum class Kind { kLaunch, kTransfer };

  Kind kind = Kind::kLaunch;
  std::string_view name = "kernel";  // catalogue kernel / transfer name
  int kernel_id = -1;                // core::KernelId cast; -1 for transfers
  std::string_view phase = "";       // solver phase ("cg", "cheby", "halo", ...)
  Model model = Model::kOmp3Cpp;
  DeviceId device = DeviceId::kCpuSandyBridge;
  double start_ns = 0.0;     // simulated timeline position at launch
  double duration_ns = 0.0;  // simulated cost charged for it
  std::size_t bytes = 0;     // main-memory (launch) or link (transfer) traffic
  double launch_factor = 1.0;  // scheduler efficiency factor (1.0 = static)

  /// Achieved bandwidth of this one event, GB/s (B/ns == GB/s).
  double gbs() const {
    return duration_ns > 0.0 ? static_cast<double>(bytes) / duration_ns : 0.0;
  }
};

/// Receives one call per metered launch/transfer, in metering order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Stores the ordered event stream. An optional capacity bounds memory for
/// very long runs: events past it are counted in dropped(), never silently
/// discarded.
class RecordingSink final : public TraceSink {
 public:
  /// capacity == 0 means unbounded.
  explicit RecordingSink(std::size_t capacity = 0) : capacity_(capacity) {}

  void on_event(const TraceEvent& event) override;

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t dropped() const noexcept { return dropped_; }
  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 0;
  std::size_t dropped_ = 0;
};

/// Folds events straight into a util::Aggregator without storing them.
class AggregatingSink final : public TraceSink {
 public:
  explicit AggregatingSink(util::Aggregator& aggregator)
      : aggregator_(&aggregator) {}

  void on_event(const TraceEvent& event) override {
    aggregator_->add(util::LaunchSample{.name = event.name,
                                        .duration_ns = event.duration_ns,
                                        .bytes = event.bytes,
                                        .launch_factor = event.launch_factor});
  }

 private:
  util::Aggregator* aggregator_;
};

/// Fans one event stream out to several sinks (e.g. record + aggregate).
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void on_event(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) {
      if (sink) sink->on_event(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// One named timeline row of a Chrome trace (rendered as its own process).
/// `dropped` carries RecordingSink::dropped() through to the export: a
/// truncated trace gets a "trace_truncated" metadata event and a warning so
/// it is never silently read as complete.
struct TraceGroup {
  std::string label;
  std::span<const TraceEvent> events;
  std::size_t dropped = 0;
};

/// Writes groups in the Chrome trace-event JSON format (load via
/// chrome://tracing or https://ui.perfetto.dev). Timestamps are simulated
/// microseconds; each group becomes one named process row.
void write_chrome_trace(std::ostream& os, std::span<const TraceGroup> groups);

/// Single-timeline convenience overload.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::string_view label = "solve");

/// Writes a Chrome trace to `path`. Returns false (and logs) on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             std::span<const TraceGroup> groups);

}  // namespace tl::sim
