#include "sim/trace.hpp"

#include <fstream>
#include <ostream>

#include "util/json.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace tl::sim {

void RecordingSink::on_event(const TraceEvent& event) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void RecordingSink::clear() {
  events_.clear();
  dropped_ = 0;
}

namespace {

using util::json_escape;

void write_event(std::ostream& os, const TraceEvent& e, int pid, bool first) {
  if (!first) os << ",\n";
  // Complete ("X") events; Chrome expects microseconds.
  os << "  {\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
     << json_escape(e.phase.empty() ? "kernel" : e.phase)
     << "\",\"ph\":\"X\",\"ts\":" << util::strf("%.6f", e.start_ns * 1e-3)
     << ",\"dur\":" << util::strf("%.6f", e.duration_ns * 1e-3)
     << ",\"pid\":" << pid << ",\"tid\":0,\"args\":{"
     << "\"kind\":\""
     << (e.kind == TraceEvent::Kind::kTransfer ? "transfer" : "launch")
     << "\",\"model\":\"" << json_escape(model_name(e.model))
     << "\",\"device\":\"" << json_escape(device_short_name(e.device))
     << "\",\"bytes\":" << e.bytes << ",\"gbs\":"
     << util::strf("%.3f", e.gbs())
     << ",\"launch_factor\":" << util::strf("%.4f", e.launch_factor) << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceGroup> groups) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  int pid = 0;
  for (const TraceGroup& group : groups) {
    // Metadata event naming the process row after the group label.
    if (!first) os << ",\n";
    os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(group.label)
       << "\"}}";
    first = false;
    if (group.dropped > 0) {
      // A truncated row must never be read as a complete timeline: surface
      // the drop count both in-band and on the log.
      os << ",\n  {\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"dropped_events\":" << group.dropped
         << "}}";
      util::log_warn("chrome trace row '%s' truncated: %zu events dropped",
                     group.label.c_str(), group.dropped);
    }
    for (const TraceEvent& event : group.events) {
      write_event(os, event, pid, false);
    }
    ++pid;
  }
  os << "\n]}\n";
}

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::string_view label) {
  const TraceGroup group{std::string(label), events};
  write_chrome_trace(os, std::span<const TraceGroup>(&group, 1));
}

bool write_chrome_trace_file(const std::string& path,
                             std::span<const TraceGroup> groups) {
  std::ofstream out(path);
  if (!out) {
    util::log_error("write_chrome_trace_file: cannot open '%s'", path.c_str());
    return false;
  }
  write_chrome_trace(out, groups);
  out.flush();
  if (!out) {
    util::log_error("write_chrome_trace_file: write to '%s' failed",
                    path.c_str());
    return false;
  }
  return true;
}

}  // namespace tl::sim
