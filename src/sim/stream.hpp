#pragma once
// STREAM (McCalpin) benchmark over the simulated devices.
//
// Table 2 of the paper reports each device's peak and STREAM bandwidth, and
// Fig 12 expresses every port's achieved bandwidth as a fraction of STREAM.
// This harness executes the four STREAM kernels for real (verifying the
// arithmetic) while metering simulated time, either
//   - device-tuned: the best streaming code the device can run (reproduces
//     Table 2 by construction: that is what STREAM bandwidth *means* in the
//     model), or
//   - through a programming model's codegen profile, showing what fraction
//     of STREAM a pure streaming kernel under that model would reach.

#include <cstddef>

#include "sim/device.hpp"
#include "sim/model_id.hpp"

namespace tl::sim {

struct StreamResult {
  std::size_t array_len = 0;
  int repeats = 0;
  double copy_gbs = 0.0;
  double scale_gbs = 0.0;
  double add_gbs = 0.0;
  double triad_gbs = 0.0;
  bool verified = false;

  double best_gbs() const;
};

/// STREAM array length large enough to defeat every LLC in the catalogue
/// (4x the largest cache), matching STREAM's own sizing rule.
std::size_t default_stream_length();

/// Device-tuned STREAM (Table 2 reproduction).
StreamResult run_stream(DeviceId device, std::size_t array_len = 0,
                        int repeats = 5);

/// STREAM through a programming model's codegen profile.
StreamResult run_stream(Model model, DeviceId device,
                        std::size_t array_len = 0, int repeats = 5);

}  // namespace tl::sim
