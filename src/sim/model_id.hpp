#pragma once
// Identifiers for the programming-model ports evaluated by the paper.
//
// Each enumerator is one *port* of TeaLeaf (so the Kokkos hierarchical-
// parallelism variant and the RAJA SIMD proof-of-concept are distinct ids,
// exactly as they appear as separate series in the paper's figures).

#include <array>
#include <optional>
#include <string_view>

namespace tl::sim {

enum class Model {
  kFortran,    // OpenMP 3.0 Fortran 90 (device-tuned baseline)
  kOmp3Cpp,    // OpenMP 3.0 C/C++ (origin of all ports)
  kOmp4,       // OpenMP 4.0 target offload
  kOpenAcc,    // OpenACC kernels/data directives
  kKokkos,     // Kokkos functors, flat RangePolicy + loop-body halo branch
  kKokkosHp,   // Kokkos hierarchical parallelism (TeamPolicy) variant
  kRaja,       // RAJA forall over IndexSets (indirection lists)
  kRajaSimd,   // RAJA + simd-annotated proof-of-concept loops
  kOpenCl,     // OpenCL 1.2-style port
  kCuda,       // CUDA port (device-tuned baseline on GPUs)
};

inline constexpr std::array<Model, 10> kAllModels = {
    Model::kFortran, Model::kOmp3Cpp, Model::kOmp4,     Model::kOpenAcc,
    Model::kKokkos,  Model::kKokkosHp, Model::kRaja,    Model::kRajaSimd,
    Model::kOpenCl,  Model::kCuda,
};

constexpr std::string_view model_name(Model m) {
  switch (m) {
    case Model::kFortran: return "OpenMP F90";
    case Model::kOmp3Cpp: return "OpenMP C++";
    case Model::kOmp4: return "OpenMP 4.0";
    case Model::kOpenAcc: return "OpenACC";
    case Model::kKokkos: return "Kokkos";
    case Model::kKokkosHp: return "Kokkos HP";
    case Model::kRaja: return "RAJA";
    case Model::kRajaSimd: return "RAJA SIMD";
    case Model::kOpenCl: return "OpenCL";
    case Model::kCuda: return "CUDA";
  }
  return "?";
}

/// Short machine-friendly identifier (CLI values, CSV columns).
constexpr std::string_view model_id(Model m) {
  switch (m) {
    case Model::kFortran: return "fortran";
    case Model::kOmp3Cpp: return "omp3";
    case Model::kOmp4: return "omp4";
    case Model::kOpenAcc: return "openacc";
    case Model::kKokkos: return "kokkos";
    case Model::kKokkosHp: return "kokkos_hp";
    case Model::kRaja: return "raja";
    case Model::kRajaSimd: return "raja_simd";
    case Model::kOpenCl: return "opencl";
    case Model::kCuda: return "cuda";
  }
  return "?";
}

std::optional<Model> parse_model(std::string_view id);

}  // namespace tl::sim
