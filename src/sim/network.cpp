#include "sim/network.hpp"

#include <cmath>

namespace tl::sim {

const NetworkSpec& node_interconnect() {
  static const NetworkSpec spec{};
  return spec;
}

double halo_exchange_ns(const NetworkSpec& net, std::size_t bytes,
                        int nmessages) {
  if (nmessages <= 0) return 0.0;
  return net.latency_ns * nmessages +
         static_cast<double>(bytes) / net.link_bw_gbs;  // B / (GB/s) == ns
}

double allreduce_ns(const NetworkSpec& net, std::size_t bytes, int nranks) {
  if (nranks <= 1) return 0.0;
  const int depth =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(nranks))));
  const double per_level =
      net.latency_ns + 2.0 * static_cast<double>(bytes) / net.link_bw_gbs;
  return per_level * depth;
}

}  // namespace tl::sim
