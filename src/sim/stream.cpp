#include "sim/stream.hpp"

#include <algorithm>
#include <cmath>

#include "sim/perf_model.hpp"
#include "util/buffer.hpp"

namespace tl::sim {

namespace {

constexpr double kInitA = 1.0;
constexpr double kInitB = 2.0;
constexpr double kInitC = 0.0;
constexpr double kScalar = 3.0;

struct KernelCost {
  std::size_t bytes_read;
  std::size_t bytes_written;
};

/// Computes GB/s for a kernel, given the simulated elapsed ns.
double gbs(const KernelCost& cost, double ns) {
  return static_cast<double>(cost.bytes_read + cost.bytes_written) / ns;
}

/// Shared driver: runs the four kernels `repeats` times, keeping the best
/// (minimum-time) bandwidth per kernel, STREAM style. `meter` maps a
/// KernelCost to simulated ns.
template <typename Meter>
StreamResult run_stream_impl(std::size_t len, int repeats, Meter&& meter) {
  StreamResult result;
  result.array_len = len;
  result.repeats = repeats;

  tl::util::Buffer<double> a(len), b(len), c(len);
  a.fill(kInitA);
  b.fill(kInitB);
  c.fill(kInitC);

  const std::size_t n8 = len * sizeof(double);
  const KernelCost copy_cost{n8, n8};
  const KernelCost scale_cost{n8, n8};
  const KernelCost add_cost{2 * n8, n8};
  const KernelCost triad_cost{2 * n8, n8};

  double best_copy = 0.0, best_scale = 0.0, best_add = 0.0, best_triad = 0.0;
  for (int r = 0; r < repeats; ++r) {
    // copy: c = a
    for (std::size_t i = 0; i < len; ++i) c[i] = a[i];
    best_copy = std::max(best_copy, gbs(copy_cost, meter(copy_cost)));
    // scale: b = s * c
    for (std::size_t i = 0; i < len; ++i) b[i] = kScalar * c[i];
    best_scale = std::max(best_scale, gbs(scale_cost, meter(scale_cost)));
    // add: c = a + b
    for (std::size_t i = 0; i < len; ++i) c[i] = a[i] + b[i];
    best_add = std::max(best_add, gbs(add_cost, meter(add_cost)));
    // triad: a = b + s * c
    for (std::size_t i = 0; i < len; ++i) a[i] = b[i] + kScalar * c[i];
    best_triad = std::max(best_triad, gbs(triad_cost, meter(triad_cost)));
  }
  result.copy_gbs = best_copy;
  result.scale_gbs = best_scale;
  result.add_gbs = best_add;
  result.triad_gbs = best_triad;

  // STREAM-style verification of final array contents.
  double ea = kInitA, eb = kInitB, ec = kInitC;
  for (int r = 0; r < repeats; ++r) {
    ec = ea;
    eb = kScalar * ec;
    ec = ea + eb;
    ea = eb + kScalar * ec;
  }
  auto close = [](double x, double y) {
    return std::abs(x - y) <= 1e-12 * std::max({std::abs(x), std::abs(y), 1.0});
  };
  result.verified = true;
  for (std::size_t i = 0; i < len; ++i) {
    if (!close(a[i], ea) || !close(b[i], eb) || !close(c[i], ec)) {
      result.verified = false;
      break;
    }
  }
  return result;
}

}  // namespace

double StreamResult::best_gbs() const {
  return std::max({copy_gbs, scale_gbs, add_gbs, triad_gbs});
}

std::size_t default_stream_length() {
  std::size_t max_llc = 0;
  for (const DeviceId d : kAllDevices) {
    max_llc = std::max(max_llc, device_spec(d).llc_bytes);
  }
  return 4 * max_llc / sizeof(double);
}

StreamResult run_stream(DeviceId device, std::size_t array_len, int repeats) {
  const DeviceSpec& dev = device_spec(device);
  if (array_len == 0) array_len = default_stream_length();
  // Device-tuned: efficiency 1.0 by definition of STREAM bandwidth; arrays
  // exceed the LLC, so there is no cache boost either.
  return run_stream_impl(array_len, repeats, [&](const KernelCost& cost) {
    return static_cast<double>(cost.bytes_read + cost.bytes_written) /
           dev.stream_bw_gbs;
  });
}

StreamResult run_stream(Model model, DeviceId device, std::size_t array_len,
                        int repeats) {
  if (array_len == 0) array_len = default_stream_length();
  PerfModel perf(model, device, /*run_seed=*/42);
  const std::size_t ws = 3 * array_len * sizeof(double);
  return run_stream_impl(array_len, repeats, [&](const KernelCost& cost) {
    LaunchInfo info;
    info.name = "stream";
    info.traits.vector_sensitivity = 0.2;  // streaming kernels vectorise well
    info.items = array_len;
    info.bytes_read = cost.bytes_read;
    info.bytes_written = cost.bytes_written;
    info.working_set_bytes = ws;
    return perf.launch_ns(info);
  });
}

}  // namespace tl::sim
