#pragma once
// Scheduler models.
//
// The paper observed that Intel's OpenCL CPU runtime schedules with TBB's
// non-deterministic work stealing, producing a 1631 s .. 2813 s spread over
// 15 identical runs, while every other model (static OpenMP-style schedules)
// was stable. We model a scheduler as an efficiency factor: static schedules
// return 1.0; work stealing samples a run-level factor (the luck of the
// stealing pattern for that process lifetime) plus small per-launch noise.

#include <cstdint>

#include "util/rng.hpp"

namespace tl::sim {

enum class SchedulerKind { kStatic, kWorkStealing };

class SchedulerModel {
 public:
  SchedulerModel() = default;
  SchedulerModel(SchedulerKind kind, double run_factor_min, double run_factor_max,
                 double launch_jitter)
      : kind_(kind),
        run_factor_min_(run_factor_min),
        run_factor_max_(run_factor_max),
        launch_jitter_(launch_jitter) {}

  static SchedulerModel make_static() { return SchedulerModel{}; }
  static SchedulerModel make_work_stealing(double run_factor_min,
                                           double run_factor_max,
                                           double launch_jitter) {
    return SchedulerModel{SchedulerKind::kWorkStealing, run_factor_min,
                          run_factor_max, launch_jitter};
  }

  SchedulerKind kind() const noexcept { return kind_; }

  /// Starts a new process-lifetime epoch: samples this run's stealing luck.
  void begin_run(std::uint64_t seed);

  /// Efficiency multiplier for one launch in the current run.
  double launch_factor();

 private:
  SchedulerKind kind_ = SchedulerKind::kStatic;
  double run_factor_min_ = 1.0;
  double run_factor_max_ = 1.0;
  double launch_jitter_ = 0.0;

  double run_factor_ = 1.0;
  tl::util::Rng rng_{0};
};

}  // namespace tl::sim
