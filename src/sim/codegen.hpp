#pragma once
// Code-generation profiles: how well each programming model's generated code
// drives each device.
//
// This file is the single home of every calibrated constant in the
// reproduction (DESIGN.md section 5). A profile says nothing about *what* a
// kernel computes; it captures the model's runtime/codegen quality on a
// device: achievable fraction of STREAM bandwidth, vectorisation quality,
// reduction-path efficiency, per-launch overhead and scheduling behaviour.
// The per-kernel *shape* (branches, indirection, reductions) comes from the
// ports as KernelTraits; the device penalty dials live in DeviceSpec.

#include <string_view>

#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "sim/scheduler.hpp"

namespace tl::sim {

struct CodegenProfile {
  /// Does this model target this device at all (paper Table 1)?
  bool supported = false;
  /// Table 1 cell text: "Yes", "Native", "Offload", "Experimental", "".
  std::string_view support_note = "";

  /// Fraction of STREAM bandwidth a perfectly streaming, fully vectorised,
  /// branch-free kernel achieves under this model.
  double base_efficiency = 0.0;

  /// Fraction of ideal vectorisation the codegen achieves (CPU/MIC only;
  /// GPUs are SIMT and ignore this, encoded as DeviceSpec::no_vectorize_factor
  /// == 0 for the K20X).
  double vector_quality = 1.0;

  /// True when the port annotates loops with an explicit simd directive
  /// (the paper's RAJA SIMD proof of concept): restores vector_quality even
  /// through indirection traversal.
  bool simd_forced = false;

  /// Bandwidth-efficiency multiplier applied to reduction kernels. This is
  /// the mechanism behind every CG-specific gap the paper reports (OpenACC
  /// +30% CG, Kokkos GPU CG anomaly, OpenMP 4.0 KNC +45% CG, OpenCL KNC 3x).
  double reduction_efficiency = 1.0;

  /// Flat extra cost per reduction launch (tree finish + scalar readback).
  double reduction_overhead_ns = 0.0;

  /// Per kernel-launch overhead: directive region setup, queue submission,
  /// thread fork/join. Dominates small meshes (paper Fig 11 intercepts).
  double launch_overhead_ns = 0.0;

  /// Scheduling behaviour (Intel OpenCL CPU = TBB work stealing).
  SchedulerKind scheduler = SchedulerKind::kStatic;
  double sched_run_factor_min = 1.0;  // work-stealing run-luck band
  double sched_run_factor_max = 1.0;
  double sched_launch_jitter = 0.0;
};

/// Profile for a (port, device) pair. Unsupported pairs return a profile
/// with supported == false.
const CodegenProfile& codegen_profile(Model m, DeviceId d);

/// Paper Table 1 cell ("", "Yes", "Native", "Offload", "Experimental").
std::string_view support_cell(Model m, DeviceId d);

/// True when the port keeps data resident on a remote device and must map it
/// across the link at solve boundaries (GPU ports, KNC offload ports).
bool uses_device_residency(Model m, DeviceId d);

}  // namespace tl::sim
