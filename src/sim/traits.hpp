#pragma once
// Kernel traits and launch descriptors.
//
// Every kernel a port launches is described by a KernelTraits record: the
// *shape* of the code the programming model generated, not what the kernel
// computes. The device model maps these traits to bandwidth penalties; this
// is how the paper's qualitative observations (indirection defeats
// vectorisation, loop-body halo tests are pathological on KNC, reductions
// hurt on offload paths) become emergent quantities instead of hard-coded
// results.

#include <cstddef>
#include <string_view>

namespace tl::sim {

struct KernelTraits {
  /// Can the model's code generation vectorise the inner loop at all?
  /// (RAJA indirection-list traversal cannot; the SIMD proof-of-concept and
  /// direct range loops can.)
  bool vectorizable = true;

  /// Fraction of the kernel's performance that rides on the vector units.
  /// TeaLeaf's Chebyshev iteration kernel is the vector-critical extreme
  /// (0.4); the CG/PPCG kernels sit near 0.2 (paper section 4.1).
  double vector_sensitivity = 0.2;

  /// Halo-exclusion conditional inside the loop body (flat Kokkos functors).
  bool interior_branch = false;

  /// Traversal through an indirection list (RAJA IndexSets).
  bool indirection = false;

  /// Kernel performs a global reduction (dot product, norm, summary).
  bool reduction = false;

  /// Hierarchical (team/league) parallelism: re-encodes halo exclusion into
  /// the iteration space, at the cost of a second level of dispatch.
  bool hierarchical = false;
};

/// One kernel launch, as metered by the performance model.
struct LaunchInfo {
  std::string_view name = "kernel";
  /// Catalogue identity tag (core::KernelId cast to int; -1 when the launch
  /// does not come from the catalogue). Carried so trace sinks can attribute
  /// events without the ports adding any tagging code.
  int kernel_id = -1;
  /// Solver phase the kernel belongs to ("setup", "cg", "cheby", "ppcg",
  /// "jacobi", "halo", "diagnostics"); becomes the Chrome trace category.
  std::string_view phase = "";
  KernelTraits traits{};
  std::size_t items = 0;          // iteration-space size
  std::size_t bytes_read = 0;     // main-memory traffic generated
  std::size_t bytes_written = 0;
  std::size_t flops = 0;
  /// Total distinct bytes the *solve* is cycling through per iteration; the
  /// CPU cache model compares this with the LLC capacity (Fig 11 bend).
  std::size_t working_set_bytes = 0;
};

/// One host<->device transfer (data map / update / buffer copy).
struct TransferInfo {
  std::string_view name = "transfer";
  std::size_t bytes = 0;
  bool to_device = true;
};

}  // namespace tl::sim
