#include "sim/scheduler.hpp"

#include <algorithm>

namespace tl::sim {

void SchedulerModel::begin_run(std::uint64_t seed) {
  rng_.reseed(seed);
  if (kind_ == SchedulerKind::kStatic) {
    run_factor_ = 1.0;
    return;
  }
  run_factor_ = rng_.uniform(run_factor_min_, run_factor_max_);
}

double SchedulerModel::launch_factor() {
  if (kind_ == SchedulerKind::kStatic) return 1.0;
  // Small zero-mean per-launch wobble on top of the run-level factor.
  const double jitter = 1.0 + launch_jitter_ * (2.0 * rng_.next_double() - 1.0);
  return std::clamp(run_factor_ * jitter, 0.05, 1.0);
}

}  // namespace tl::sim
