#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace tl::sim {

PerfModel::PerfModel(Model model, DeviceId device, std::uint64_t run_seed)
    : model_(model),
      device_(&device_spec(device)),
      profile_(&codegen_profile(model, device)) {
  if (!profile_->supported) {
    throw std::invalid_argument(std::string(model_name(model)) +
                                " does not support " +
                                std::string(device_->name) +
                                " (paper Table 1)");
  }
  offloads_ = uses_device_residency(model, device);
  scheduler_ = (profile_->scheduler == SchedulerKind::kWorkStealing)
                   ? SchedulerModel::make_work_stealing(
                         profile_->sched_run_factor_min,
                         profile_->sched_run_factor_max,
                         profile_->sched_launch_jitter)
                   : SchedulerModel::make_static();
  begin_run(run_seed);
}

void PerfModel::begin_run(std::uint64_t run_seed) {
  scheduler_.begin_run(run_seed);
  last_launch_factor_ = 1.0;
}

double PerfModel::efficiency(const KernelTraits& traits) const {
  double eff = profile_->base_efficiency;

  // Vectorisation: how much of the kernel's vector-borne performance is
  // lost. Indirection traversal defeats auto-vectorisation entirely unless
  // the port forces it with a simd directive (RAJA SIMD).
  double vq = profile_->vector_quality;
  if (!traits.vectorizable || (traits.indirection && !profile_->simd_forced)) {
    vq = 0.0;
  }
  const double sensitivity = std::min(
      1.0, traits.vector_sensitivity * device_->no_vectorize_factor);
  eff *= 1.0 - sensitivity * (1.0 - vq);

  if (traits.interior_branch) eff *= device_->interior_branch_penalty;
  if (traits.indirection) eff *= device_->indirection_penalty;
  if (traits.reduction) eff *= profile_->reduction_efficiency;

  return std::max(eff, 1e-3);
}

double PerfModel::cache_factor(std::size_t working_set_bytes) const {
  if (device_->cache_bw_boost <= 1.0 || device_->llc_bytes == 0 ||
      working_set_bytes == 0) {
    return 1.0;
  }
  // Smooth transition: fully boosted well inside the LLC, fading to DRAM
  // bandwidth as the working set overflows it (the Fig 11 CPU bend).
  const double ratio = static_cast<double>(working_set_bytes) /
                       static_cast<double>(device_->llc_bytes);
  const double fit = 1.0 / (1.0 + std::exp((ratio - 1.0) / 0.25));
  return 1.0 + (device_->cache_bw_boost - 1.0) * fit;
}

double PerfModel::effective_bandwidth_gbs(const KernelTraits& traits,
                                          std::size_t working_set_bytes) const {
  return device_->stream_bw_gbs * efficiency(traits) *
         cache_factor(working_set_bytes);
}

double PerfModel::launch_ns(const LaunchInfo& info) {
  // Work-stealing luck scales the whole launch (dispatch and compute alike);
  // static schedules leave the factor at 1.
  const double sched = scheduler_.launch_factor();
  last_launch_factor_ = sched;
  const double bw_gbs =
      effective_bandwidth_gbs(info.traits, info.working_set_bytes);
  const double bytes =
      static_cast<double>(info.bytes_read + info.bytes_written);
  double ns =
      (profile_->launch_overhead_ns + bytes / bw_gbs) / sched;  // B/(GB/s)=ns
  if (info.traits.reduction) {
    ns += profile_->reduction_overhead_ns;
    // Offloaded reductions ship the scalar result back across the link.
    if (offloads_) ns += device_->link_latency_ns * 0.1;
  }
  return ns;
}

double PerfModel::transfer_ns(const TransferInfo& info) const {
  if (!offloads_) return 0.0;  // host device or natively compiled port
  return device_->link_latency_ns +
         static_cast<double>(info.bytes) / device_->link_bw_gbs;
}

}  // namespace tl::sim
