#include "sim/device.hpp"

namespace tl::sim {

namespace {
// Values marked [T2] are the paper's Table 2; the rest are architectural
// parameters chosen to reproduce the behaviours the paper reports (see
// DESIGN.md section 5 for the calibration policy).
constexpr DeviceSpec kCpu{
    .id = DeviceId::kCpuSandyBridge,
    .kind = DeviceKind::kCpu,
    .name = "Xeon E5-2670 CPU x 2",
    .peak_bw_gbs = 102.4,   // [T2]
    .stream_bw_gbs = 76.2,  // [T2]
    .hardware_threads = 16,
    .llc_bytes = 40ull * 1024 * 1024,  // 2 sockets x 20 MB L3
    .cache_bw_boost = 2.4,
    .no_vectorize_factor = 1.0,
    .interior_branch_penalty = 0.97,
    .indirection_penalty = 0.97,
    .link_bw_gbs = 0.0,  // host device: data is already resident
    .link_latency_ns = 0.0,
};

constexpr DeviceSpec kGpu{
    .id = DeviceId::kGpuK20X,
    .kind = DeviceKind::kGpu,
    .name = "NVIDIA K20X GPU",
    .peak_bw_gbs = 250.0,    // [T2]
    .stream_bw_gbs = 180.1,  // [T2]
    .hardware_threads = 2688,
    .llc_bytes = 1536 * 1024,  // 1.5 MB L2: never fits a field, no boost
    .cache_bw_boost = 1.0,
    .no_vectorize_factor = 0.0,  // SIMT: scalar codegen is the native shape
    .interior_branch_penalty = 0.92,  // divergence on the halo test
    .indirection_penalty = 0.85,      // uncoalesced gathers
    .link_bw_gbs = 6.0,  // PCIe 2.0 x16 effective
    .link_latency_ns = 10'000.0,
};

constexpr DeviceSpec kKnc{
    .id = DeviceId::kMicKnc,
    .kind = DeviceKind::kMic,
    .name = "Xeon Phi 5110P KNC",
    .peak_bw_gbs = 320.0,    // [T2]
    .stream_bw_gbs = 159.9,  // [T2]
    .hardware_threads = 240,
    .llc_bytes = 30ull * 1024 * 1024,  // 60 cores x 512 KB coherent L2
    .cache_bw_boost = 1.3,
    // KNC's in-order cores live and die by the 512-bit vector units, and
    // handle per-iteration branches poorly -- the two mechanisms behind the
    // paper's RAJA-native and flat-Kokkos observations.
    .no_vectorize_factor = 1.6,
    .interior_branch_penalty = 0.52,
    .indirection_penalty = 0.80,
    .link_bw_gbs = 6.0,  // PCIe offload path (OpenMP 4.0 / OpenCL offload)
    .link_latency_ns = 15'000.0,
};
}  // namespace

const DeviceSpec& device_spec(DeviceId id) {
  switch (id) {
    case DeviceId::kCpuSandyBridge: return kCpu;
    case DeviceId::kGpuK20X: return kGpu;
    case DeviceId::kMicKnc: return kKnc;
  }
  return kCpu;  // unreachable; keeps -Wreturn-type quiet
}

std::optional<DeviceId> parse_device(std::string_view id) {
  for (const DeviceId d : kAllDevices) {
    if (device_short_name(d) == id) return d;
  }
  if (id == "mic" || id == "xeonphi") return DeviceId::kMicKnc;
  if (id == "k20x") return DeviceId::kGpuK20X;
  return std::nullopt;
}

}  // namespace tl::sim
