#pragma once
// PerfModel: turns a kernel launch or transfer into simulated nanoseconds for
// one (programming model, device) pair.
//
//   time = launch_overhead
//        + bytes / (STREAM_bw * efficiency * cache_factor * sched_factor)
//        (+ reduction overhead for reduction kernels)
//
//   efficiency = base_efficiency                        [codegen profile]
//              * vector_penalty(traits, profile, device)
//              * branch/indirection penalties           [device dials]
//              * reduction_efficiency (reduction kernels only)
//
// Transfers cross the host<->device link: latency + bytes / link_bw.

#include <cstdint>

#include "sim/clock.hpp"
#include "sim/codegen.hpp"
#include "sim/device.hpp"
#include "sim/traits.hpp"

namespace tl::sim {

class PerfModel {
 public:
  /// Throws std::invalid_argument if the pair is unsupported (Table 1).
  PerfModel(Model model, DeviceId device, std::uint64_t run_seed = 1);

  Model model() const noexcept { return model_; }
  const DeviceSpec& device() const noexcept { return *device_; }
  const CodegenProfile& profile() const noexcept { return *profile_; }

  /// Re-seeds the scheduler "run luck" (one process lifetime in the paper's
  /// 15-run OpenCL variance experiment == one begin_run here).
  void begin_run(std::uint64_t run_seed);

  /// Simulated cost of one kernel launch. Non-const: work-stealing
  /// schedulers consume randomness per launch.
  double launch_ns(const LaunchInfo& info);

  /// Scheduler efficiency factor consumed by the most recent launch_ns call
  /// (1.0 for static schedules, and before any launch). Trace events carry
  /// it so the OpenCL CPU run-to-run spread is inspectable per launch.
  double last_launch_factor() const noexcept { return last_launch_factor_; }

  /// Simulated cost of one host<->device transfer. Free on host devices and
  /// for natively compiled ports (data already lives on the card).
  double transfer_ns(const TransferInfo& info) const;

  /// True when this (model, device) pair moves data across a link.
  bool offloads() const noexcept { return offloads_; }

  /// Steady-state effective bandwidth (GB/s) for a launch, excluding
  /// overheads and scheduler noise — used by analytic big-mesh metering and
  /// by tests that pin down the efficiency arithmetic.
  double effective_bandwidth_gbs(const KernelTraits& traits,
                                 std::size_t working_set_bytes) const;

 private:
  double efficiency(const KernelTraits& traits) const;
  double cache_factor(std::size_t working_set_bytes) const;

  Model model_;
  const DeviceSpec* device_;
  const CodegenProfile* profile_;
  SchedulerModel scheduler_;
  bool offloads_ = false;
  double last_launch_factor_ = 1.0;
};

}  // namespace tl::sim
