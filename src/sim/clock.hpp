#pragma once
// SimClock: the simulated timeline of one device run.
//
// Kernels execute for real on the host (numerics), while simulated time is
// accounted here (performance). The clock also keeps launch/transfer/byte
// counters so benches can report achieved bandwidth (paper Fig 12), and
// carries the optional trace hook: when a TraceSink is attached, every
// metered launch/transfer emits one TraceEvent tagged with the kernel's
// catalogue id, phase, and the scheduler's launch factor. With no sink
// attached the accounting arithmetic is exactly what it always was.

#include <cstddef>
#include <cstdint>

#include "sim/trace.hpp"
#include "sim/traits.hpp"

namespace tl::sim {

class SimClock {
 public:
  /// Zeroes the counters. The trace sink and (model, device) context survive
  /// a reset: begin_run re-seeds runs without detaching observers.
  void reset() {
    elapsed_ns_ = 0.0;
    launches_ = 0;
    transfers_ = 0;
    kernel_bytes_ = 0;
    transfer_bytes_ = 0;
  }

  /// Overwrites the counters with checkpointed values so a same-rank-count
  /// resume continues the simulated timeline where the saved run left off.
  /// Sink and context are untouched, exactly as for reset().
  void restore(double elapsed_ns, std::uint64_t launches,
               std::uint64_t transfers, std::size_t kernel_bytes,
               std::size_t transfer_bytes) {
    elapsed_ns_ = elapsed_ns;
    launches_ = launches;
    transfers_ = transfers;
    kernel_bytes_ = kernel_bytes;
    transfer_bytes_ = transfer_bytes;
  }

  void add_launch_time(double ns, std::size_t bytes) {
    elapsed_ns_ += ns;
    ++launches_;
    kernel_bytes_ += bytes;
  }

  void add_transfer_time(double ns, std::size_t bytes) {
    elapsed_ns_ += ns;
    ++transfers_;
    transfer_bytes_ += bytes;
  }

  /// Host-side time that is not kernel or transfer work (halo packing on the
  /// host, MPI progress, ...).
  void add_host_time(double ns) { elapsed_ns_ += ns; }

  // -- Trace hook -----------------------------------------------------------

  /// Attaches `sink` (nullptr detaches). Not owned; must outlive the clock
  /// or be detached first.
  void set_trace_sink(TraceSink* sink) noexcept { sink_ = sink; }
  TraceSink* trace_sink() const noexcept { return sink_; }

  /// Identity stamped onto emitted events; set once by the owning Launcher.
  void set_trace_context(Model model, DeviceId device) noexcept {
    model_ = model;
    device_ = device;
  }

  /// Meters one launch and, if a sink is attached, emits its TraceEvent
  /// (start = timeline position before the launch was charged).
  void record_launch(const LaunchInfo& info, double ns, double launch_factor) {
    const double start = elapsed_ns_;
    const std::size_t bytes = info.bytes_read + info.bytes_written;
    add_launch_time(ns, bytes);
    if (sink_) {
      sink_->on_event(TraceEvent{.kind = TraceEvent::Kind::kLaunch,
                                 .name = info.name,
                                 .kernel_id = info.kernel_id,
                                 .phase = info.phase,
                                 .model = model_,
                                 .device = device_,
                                 .start_ns = start,
                                 .duration_ns = ns,
                                 .bytes = bytes,
                                 .launch_factor = launch_factor});
    }
  }

  /// Emits a trace-only event for comm time hidden behind compute by the
  /// overlapped halo pipeline: the window [elapsed - ns, elapsed] already
  /// contains the metered compute that covered the transfer, so NOTHING is
  /// accounted here — no elapsed time, no launch count, no bytes. The event
  /// (phase "overlap") just makes the hidden window visible in Chrome
  /// traces. With no sink attached this is a no-op.
  void record_overlap(const LaunchInfo& info, double ns) {
    if (!sink_ || ns <= 0.0) return;
    sink_->on_event(TraceEvent{.kind = TraceEvent::Kind::kLaunch,
                               .name = info.name,
                               .kernel_id = info.kernel_id,
                               .phase = info.phase,
                               .model = model_,
                               .device = device_,
                               .start_ns = elapsed_ns_ - ns,
                               .duration_ns = ns,
                               .bytes = info.bytes_read + info.bytes_written,
                               .launch_factor = 1.0});
  }

  /// Meters one host<->device transfer and emits its TraceEvent.
  void record_transfer(const TransferInfo& info, double ns) {
    const double start = elapsed_ns_;
    add_transfer_time(ns, info.bytes);
    if (sink_) {
      sink_->on_event(TraceEvent{.kind = TraceEvent::Kind::kTransfer,
                                 .name = info.name,
                                 .kernel_id = -1,
                                 .phase = "transfer",
                                 .model = model_,
                                 .device = device_,
                                 .start_ns = start,
                                 .duration_ns = ns,
                                 .bytes = info.bytes,
                                 .launch_factor = 1.0});
    }
  }

  double elapsed_ns() const noexcept { return elapsed_ns_; }
  double elapsed_seconds() const noexcept { return elapsed_ns_ * 1e-9; }

  std::uint64_t launches() const noexcept { return launches_; }
  std::uint64_t transfers() const noexcept { return transfers_; }
  std::size_t kernel_bytes() const noexcept { return kernel_bytes_; }
  std::size_t transfer_bytes() const noexcept { return transfer_bytes_; }

  /// Achieved main-memory bandwidth over the whole run, GB/s.
  double achieved_bandwidth_gbs() const noexcept {
    if (elapsed_ns_ <= 0.0) return 0.0;
    return static_cast<double>(kernel_bytes_) / elapsed_ns_;  // B/ns == GB/s
  }

 private:
  double elapsed_ns_ = 0.0;
  std::uint64_t launches_ = 0;
  std::uint64_t transfers_ = 0;
  std::size_t kernel_bytes_ = 0;
  std::size_t transfer_bytes_ = 0;

  TraceSink* sink_ = nullptr;  // not owned
  Model model_ = Model::kOmp3Cpp;
  DeviceId device_ = DeviceId::kCpuSandyBridge;
};

}  // namespace tl::sim
