#pragma once
// SimClock: the simulated timeline of one device run.
//
// Kernels execute for real on the host (numerics), while simulated time is
// accounted here (performance). The clock also keeps launch/transfer/byte
// counters so benches can report achieved bandwidth (paper Fig 12).

#include <cstddef>
#include <cstdint>

namespace tl::sim {

class SimClock {
 public:
  void reset() { *this = SimClock{}; }

  void add_launch_time(double ns, std::size_t bytes) {
    elapsed_ns_ += ns;
    ++launches_;
    kernel_bytes_ += bytes;
  }

  void add_transfer_time(double ns, std::size_t bytes) {
    elapsed_ns_ += ns;
    ++transfers_;
    transfer_bytes_ += bytes;
  }

  /// Host-side time that is not kernel or transfer work (halo packing on the
  /// host, MPI progress, ...).
  void add_host_time(double ns) { elapsed_ns_ += ns; }

  double elapsed_ns() const noexcept { return elapsed_ns_; }
  double elapsed_seconds() const noexcept { return elapsed_ns_ * 1e-9; }

  std::uint64_t launches() const noexcept { return launches_; }
  std::uint64_t transfers() const noexcept { return transfers_; }
  std::size_t kernel_bytes() const noexcept { return kernel_bytes_; }
  std::size_t transfer_bytes() const noexcept { return transfer_bytes_; }

  /// Achieved main-memory bandwidth over the whole run, GB/s.
  double achieved_bandwidth_gbs() const noexcept {
    if (elapsed_ns_ <= 0.0) return 0.0;
    return static_cast<double>(kernel_bytes_) / elapsed_ns_;  // B/ns == GB/s
  }

 private:
  double elapsed_ns_ = 0.0;
  std::uint64_t launches_ = 0;
  std::uint64_t transfers_ = 0;
  std::size_t kernel_bytes_ = 0;
  std::size_t transfer_bytes_ = 0;
};

}  // namespace tl::sim
