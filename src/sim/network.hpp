#pragma once
// Simulated interconnect for the decomposed (multi-rank) configuration.
//
// The paper's TeaLeaf relies on MPI over the cluster interconnect for
// inter-node scaling; this environment runs ranks as threads, so — exactly
// like the device catalogue in sim/device.hpp — the network is a parametric
// cost model. Halo exchanges pay per-message latency plus surface bytes over
// the link bandwidth; allreduce pays a log2(P) latency tree plus its (tiny)
// payload. The distributed decorator (src/dist) charges these costs to every
// rank's SimClock so comm time shows up in profiles, traces, and the
// strong/weak scaling curves of bench_fig13_scaling.

#include <cstddef>
#include <string_view>

namespace tl::sim {

struct NetworkSpec {
  std::string_view name = "IB QDR-class interconnect";
  double link_bw_gbs = 6.0;      // effective per-link MPI bandwidth
  double latency_ns = 1500.0;    // per-message (rendezvous) latency
};

/// The node interconnect of a 2012-era cluster (QDR InfiniBand, the fabric
/// behind the paper's testbed generation).
const NetworkSpec& node_interconnect();

/// Cost of one halo exchange on one rank: `nmessages` point-to-point
/// messages moving `bytes` payload in total. Zero messages cost nothing.
double halo_exchange_ns(const NetworkSpec& net, std::size_t bytes,
                        int nmessages);

/// Cost of an allreduce over `nranks` ranks moving `bytes` payload per rank:
/// a latency tree of depth ceil(log2 P), each level shipping the payload
/// both ways. One rank is free (no communication).
double allreduce_ns(const NetworkSpec& net, std::size_t bytes, int nranks);

}  // namespace tl::sim
