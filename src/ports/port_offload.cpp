#include "ports/port_offload.hpp"

#include "comm/halo.hpp"

namespace tl::ports {

using core::FieldId;
using core::KernelId;

namespace {
inline double stencil(const double* v, const double* kx, const double* ky,
                      std::int64_t i, int width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}
}  // namespace

OffloadPort::OffloadPort(sim::Model model, sim::DeviceId device,
                         const core::Mesh& mesh, std::uint64_t run_seed)
    : PortBase(model, mesh), rt_(model, device, run_seed), storage_(mesh) {}

template <typename Body>
void OffloadPort::pfor(const sim::LaunchInfo& info, Body&& body) {
  const std::int64_t n = static_cast<std::int64_t>(mesh_.interior_cells());
  if (model_ == sim::Model::kOmp4) {
    omp4::target_parallel_for(rt_, info, 0, n, std::forward<Body>(body));
  } else {
    acc::kernels_loop(rt_, info, 0, n, std::forward<Body>(body));
  }
}

template <typename Body>
double OffloadPort::preduce(const sim::LaunchInfo& info, Body&& body) {
  const std::int64_t n = static_cast<std::int64_t>(mesh_.interior_cells());
  if (model_ == sim::Model::kOmp4) {
    return omp4::target_parallel_reduce(rt_, info, 0, n,
                                        std::forward<Body>(body));
  }
  return acc::kernels_loop_reduce(rt_, info, 0, n, std::forward<Body>(body));
}

void OffloadPort::upload_state(const core::Chunk& chunk) {
  for (const FieldId id : {FieldId::kDensity, FieldId::kEnergy0}) {
    const auto src = chunk.field(id);
    auto dst = f(id);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) dst(x, y) = src(x, y);
    }
  }
  // Open the step's data region: inputs map `to`, work arrays `alloc`;
  // energy comes back with an explicit `update from` in download_energy.
  step_scope_.reset();
  step_scope_.emplace(
      rt_, std::vector<offload::MapSpec>{
               offload::map(fspan(FieldId::kDensity), offload::MapDir::kTo),
               offload::map(fspan(FieldId::kEnergy0), offload::MapDir::kTo),
               offload::map(fspan(FieldId::kEnergy), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kU), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kU0), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kP), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kR), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kW), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kSd), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kKx), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kKy), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kQ), offload::MapDir::kAlloc),
               offload::map(fspan(FieldId::kZ), offload::MapDir::kAlloc)});
}

void OffloadPort::init_u() {
  const double* density = fp(FieldId::kDensity);
  const double* energy0 = fp(FieldId::kEnergy0);
  double* u = fp(FieldId::kU);
  double* u0 = fp(FieldId::kU0);
  // Full padded range: the directives collapse the plain rectangular loops.
  const std::int64_t total = static_cast<std::int64_t>(mesh_.padded_cells());
  rt_.target_region(info(KernelId::kInitU), [&] {
    for (std::int64_t i = 0; i < total; ++i) {
      const double v = energy0[i] * density[i];
      u[i] = v;
      u0[i] = v;
    }
  });
}

void OffloadPort::init_coefficients(core::Coefficient coefficient, double rx,
                                    double ry) {
  const double* density = fp(FieldId::kDensity);
  double* kx = fp(FieldId::kKx);
  double* ky = fp(FieldId::kKy);
  const bool recip = coefficient == core::Coefficient::kRecipConductivity;
  const int width = width_;
  const int h = h_, nx = nx_, ny = ny_;
  rt_.target_region(info(KernelId::kInitCoef), [&] {
    for (int y = h - 1; y < h + ny + 1; ++y) {
      for (int x = h - 1; x < h + nx + 1; ++x) {
        const std::int64_t i = static_cast<std::int64_t>(y) * width + x;
        const double wc = recip ? 1.0 / density[i] : density[i];
        const double wl = recip ? 1.0 / density[i - 1] : density[i - 1];
        const double wb = recip ? 1.0 / density[i - width] : density[i - width];
        kx[i] = rx * (wl + wc) / (2.0 * wl * wc);
        ky[i] = ry * (wb + wc) / (2.0 * wb * wc);
      }
    }
  });
}

void OffloadPort::halo_update(unsigned fields, int depth) {
  // Halo reflection runs on the device (data stays resident).
  rt_.target_region(hinfo(fields, depth), [&] {
    auto reflect = [&](FieldId id) {
      comm::reflect_boundary(f(id), h_, comm::kAllFaces);
    };
    if (fields & core::kMaskU) reflect(FieldId::kU);
    if (fields & core::kMaskP) reflect(FieldId::kP);
    if (fields & core::kMaskSd) reflect(FieldId::kSd);
    if (fields & core::kMaskR) reflect(FieldId::kR);
    if (fields & core::kMaskW) reflect(FieldId::kW);
    if (fields & core::kMaskDensity) reflect(FieldId::kDensity);
    if (fields & core::kMaskEnergy0) reflect(FieldId::kEnergy0);
  });
}

void OffloadPort::calc_residual() {
  const double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  const int width = width_;
  pfor(info(KernelId::kCalcResidual), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    r[i] = u0[i] - stencil(u, kx, ky, i, width);
  });
}

double OffloadPort::calc_2norm(core::NormTarget target) {
  const double* v = fp(target == core::NormTarget::kResidual ? FieldId::kR
                                                             : FieldId::kU0);
  return preduce(info(KernelId::kCalc2Norm),
                 [=, this](std::int64_t idx, double& acc) {
                   const std::int64_t i = pad_index(idx);
                   acc += v[i] * v[i];
                 });
}

void OffloadPort::finalise() {
  const double* u = fp(FieldId::kU);
  const double* density = fp(FieldId::kDensity);
  double* energy = fp(FieldId::kEnergy);
  pfor(info(KernelId::kFinalise), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    energy[i] = u[i] / density[i];
  });
}

core::FieldSummary OffloadPort::field_summary() {
  const double* density = fp(FieldId::kDensity);
  const double* energy0 = fp(FieldId::kEnergy0);
  const double* u = fp(FieldId::kU);
  const double cell_vol = mesh_.cell_area();
  core::FieldSummary s;
  double mass = 0.0, ie = 0.0, temp = 0.0;
  // One region, reduction clause on volume; the remaining sums ride along
  // (map(tofrom: scalars) in the real directive).
  s.volume = preduce(info(KernelId::kFieldSummary),
                     [&, density, energy0, u](std::int64_t idx, double& acc) {
                       const std::int64_t i = pad_index(idx);
                       acc += cell_vol;
                       mass += density[i] * cell_vol;
                       ie += density[i] * energy0[i] * cell_vol;
                       temp += u[i] * cell_vol;
                     });
  s.mass = mass;
  s.internal_energy = ie;
  s.temperature = temp;
  return s;
}

double OffloadPort::cg_init() {
  const double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  const int width = width_;
  return preduce(info(KernelId::kCgInit),
                 [=, this](std::int64_t idx, double& acc) {
                   const std::int64_t i = pad_index(idx);
                   const double au = stencil(u, kx, ky, i, width);
                   w[i] = au;
                   const double res = u0[i] - au;
                   r[i] = res;
                   p[i] = res;
                   acc += res * res;
                 });
}

double OffloadPort::cg_calc_w() {
  const double* p = fp(FieldId::kP);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  const int width = width_;
  return preduce(info(KernelId::kCgCalcW),
                 [=, this](std::int64_t idx, double& acc) {
                   const std::int64_t i = pad_index(idx);
                   const double ap = stencil(p, kx, ky, i, width);
                   w[i] = ap;
                   acc += ap * p[i];
                 });
}

double OffloadPort::cg_calc_ur(double alpha) {
  double* u = fp(FieldId::kU);
  const double* p = fp(FieldId::kP);
  double* r = fp(FieldId::kR);
  const double* w = fp(FieldId::kW);
  return preduce(info(KernelId::kCgCalcUr),
                 [=, this](std::int64_t idx, double& acc) {
                   const std::int64_t i = pad_index(idx);
                   u[i] += alpha * p[i];
                   const double res = r[i] - alpha * w[i];
                   r[i] = res;
                   acc += res * res;
                 });
}

void OffloadPort::cg_calc_p(double beta) {
  const double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  pfor(info(KernelId::kCgCalcP), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    p[i] = r[i] + beta * p[i];
  });
}

void OffloadPort::cheby_init(double theta) {
  const double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  double* u = fp(FieldId::kU);
  const double theta_inv = 1.0 / theta;
  pfor(info(KernelId::kChebyInit), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    p[i] = r[i] * theta_inv;
    u[i] += p[i];
  });
}

void OffloadPort::cheby_iterate(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  const int width = width_;
  pfor(info(KernelId::kChebyIterate), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    const double res = u0[i] - stencil(u, kx, ky, i, width);
    r[i] = res;
    p[i] = alpha * p[i] + beta * res;
  });
  // Second sweep of the fused iterate (within the same metered kernel).
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void OffloadPort::ppcg_init_sd(double theta) {
  const double* r = fp(FieldId::kR);
  double* sd = fp(FieldId::kSd);
  const double theta_inv = 1.0 / theta;
  pfor(info(KernelId::kPpcgInitSd), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    sd[i] = r[i] * theta_inv;
  });
}

void OffloadPort::ppcg_inner(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  double* r = fp(FieldId::kR);
  double* sd = fp(FieldId::kSd);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  pfor(info(KernelId::kPpcgInner), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    r[i] -= stencil(sd, kx, ky, i, width);
    u[i] += sd[i];
  });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void OffloadPort::jacobi_copy_u() {
  const double* u = fp(FieldId::kU);
  double* w = fp(FieldId::kW);
  // Full padded range: the iterate's stencil reads w in the halo.
  const std::int64_t total = static_cast<std::int64_t>(mesh_.padded_cells());
  rt_.target_region(info(KernelId::kJacobiCopyU), [&] {
    for (std::int64_t i = 0; i < total; ++i) w[i] = u[i];
  });
}

void OffloadPort::jacobi_iterate() {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* w = fp(FieldId::kW);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  pfor(info(KernelId::kJacobiIterate), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
    u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
            ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
           diag;
  });
}

core::CgFusedW OffloadPort::cg_calc_w_fused() {
  const double* p = fp(FieldId::kP);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  const int width = width_;
  core::CgFusedW out;
  double ww = 0.0;
  // field_summary's shape: reduction clause on p.w, the second dot rides
  // along (map(tofrom: scalar) in the real directive).
  out.pw = preduce(info(KernelId::kCgCalcWFused),
                   [&, p, kx, ky, w](std::int64_t idx, double& acc) {
                     const std::int64_t i = pad_index(idx);
                     const double ap = stencil(p, kx, ky, i, width);
                     w[i] = ap;
                     acc += ap * p[i];
                     ww += ap * ap;
                   });
  out.ww = ww;
  return out;
}

double OffloadPort::cg_fused_ur_p(double alpha, double beta_prev) {
  double* u = fp(FieldId::kU);
  double* p = fp(FieldId::kP);
  double* r = fp(FieldId::kR);
  const double* w = fp(FieldId::kW);
  return preduce(info(KernelId::kCgFusedUrP),
                 [=, this](std::int64_t idx, double& acc) {
                   const std::int64_t i = pad_index(idx);
                   u[i] += alpha * p[i];
                   const double res = r[i] - alpha * w[i];
                   r[i] = res;
                   p[i] = res + beta_prev * p[i];
                   acc += res * res;
                 });
}

core::CgPipeDots OffloadPort::cg_pipe_init() {
  const double* r = fp(FieldId::kR);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  const int width = width_;
  core::CgPipeDots out;
  double rw = 0.0;
  out.rr = preduce(info(KernelId::kCgPipeInit),
                   [&, r, kx, ky, w](std::int64_t idx, double& acc) {
                     const std::int64_t i = pad_index(idx);
                     const double ar = stencil(r, kx, ky, i, width);
                     w[i] = ar;
                     acc += r[i] * r[i];
                     rw += ar * r[i];
                   });
  out.rw = rw;
  return out;
}

void OffloadPort::cg_pipe_calc_q() {
  const double* w = fp(FieldId::kW);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* q = fp(FieldId::kQ);
  const int width = width_;
  pfor(info(KernelId::kCgPipeCalcQ), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    q[i] = stencil(w, kx, ky, i, width);
  });
}

core::CgPipeDots OffloadPort::cg_pipe_update(double alpha, double beta) {
  double* z = fp(FieldId::kZ);
  double* sd = fp(FieldId::kSd);
  double* p = fp(FieldId::kP);
  double* u = fp(FieldId::kU);
  double* r = fp(FieldId::kR);
  double* w = fp(FieldId::kW);
  const double* q = fp(FieldId::kQ);
  core::CgPipeDots out;
  double rw = 0.0;
  out.rr = preduce(info(KernelId::kCgPipeUpdate),
                   [&, z, sd, p, u, r, w, q](std::int64_t idx, double& acc) {
                     const std::int64_t i = pad_index(idx);
                     const double zn = q[i] + beta * z[i];
                     z[i] = zn;
                     const double sn = w[i] + beta * sd[i];
                     sd[i] = sn;
                     const double pn = r[i] + beta * p[i];
                     p[i] = pn;
                     u[i] += alpha * pn;
                     const double rn = r[i] - alpha * sn;
                     r[i] = rn;
                     const double wn = w[i] - alpha * zn;
                     w[i] = wn;
                     acc += rn * rn;
                     rw += wn * rn;
                   });
  out.rw = rw;
  return out;
}

double OffloadPort::fused_residual_norm() {
  const double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  const int width = width_;
  return preduce(info(KernelId::kFusedResidualNorm),
                 [=, this](std::int64_t idx, double& acc) {
                   const std::int64_t i = pad_index(idx);
                   const double res = u0[i] - stencil(u, kx, ky, i, width);
                   r[i] = res;
                   acc += res * res;
                 });
}

void OffloadPort::cheby_fused_iterate(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  const int width = width_;
  pfor(info(KernelId::kChebyFusedIterate), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    const double res = u0[i] - stencil(u, kx, ky, i, width);
    r[i] = res;
    p[i] = alpha * p[i] + beta * res;
  });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void OffloadPort::ppcg_fused_inner(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  double* r = fp(FieldId::kR);
  double* sd = fp(FieldId::kSd);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  pfor(info(KernelId::kPpcgFusedInner), [=, this](std::int64_t idx) {
    const std::int64_t i = pad_index(idx);
    r[i] -= stencil(sd, kx, ky, i, width);
    u[i] += sd[i];
  });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void OffloadPort::jacobi_fused_copy_iterate() {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  double* w = fp(FieldId::kW);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  // Copy over the full padded range (the stencil reads w in the halo), then
  // iterate — one fused target region.
  const std::int64_t total = static_cast<std::int64_t>(mesh_.padded_cells());
  rt_.target_region(info(KernelId::kJacobiFusedCopyIterate), [&] {
    for (std::int64_t i = 0; i < total; ++i) w[i] = u[i];
    for (int y = h_; y < h_ + ny_; ++y) {
      const std::int64_t row = static_cast<std::int64_t>(y) * width;
      for (int x = h_; x < h_ + nx_; ++x) {
        const std::int64_t i = row + x;
        const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
        u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
                ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
               diag;
      }
    }
  });
}

void OffloadPort::read_u(util::Span2D<double> out) {
  rt_.update_from(fp(FieldId::kU), padded_bytes());
  const auto u = f(FieldId::kU);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) out(x, y) = u(x, y);
  }
}

void OffloadPort::download_energy(core::Chunk& chunk) {
  rt_.update_from(fp(FieldId::kEnergy), padded_bytes());
  const auto src = f(FieldId::kEnergy);
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) dst(x, y) = src(x, y);
  }
}

}  // namespace tl::ports
