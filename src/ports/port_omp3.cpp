#include "ports/port_omp3.hpp"

#include <vector>

#include "comm/halo.hpp"

namespace tl::ports {

using core::FieldId;
using core::KernelId;

Omp3Port::Omp3Port(sim::Model model, sim::DeviceId device,
                   const core::Mesh& mesh, std::uint64_t run_seed,
                   unsigned host_threads)
    : PortBase(model, mesh),
      rt_(model, device, run_seed, host_threads),
      storage_(mesh) {}

void Omp3Port::upload_state(const core::Chunk& chunk) {
  const auto sd_ = chunk.field(FieldId::kDensity);
  const auto se = chunk.field(FieldId::kEnergy0);
  auto dd = f(FieldId::kDensity);
  auto de = f(FieldId::kEnergy0);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      dd(x, y) = sd_(x, y);
      de(x, y) = se(x, y);
    }
  }
  // Host model: data is already resident; the transfer is free but counted.
  rt_.launcher().charge_transfer(
      {.name = "upload_state", .bytes = 2 * padded_bytes(), .to_device = true});
}

void Omp3Port::init_u() {
  auto density = f(FieldId::kDensity);
  auto energy0 = f(FieldId::kEnergy0);
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  // #pragma omp parallel for
  rt_.parallel_for(info(KernelId::kInitU), 0, height_, [&](std::int64_t y) {
    for (int x = 0; x < width_; ++x) {
      const double v = energy0(x, y) * density(x, y);
      u(x, y) = v;
      u0(x, y) = v;
    }
  });
}

void Omp3Port::init_coefficients(core::Coefficient coefficient, double rx,
                                 double ry) {
  auto density = f(FieldId::kDensity);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  const bool recip = coefficient == core::Coefficient::kRecipConductivity;
  rt_.parallel_for(
      info(KernelId::kInitCoef), h_ - 1, h_ + ny_ + 1, [&](std::int64_t y) {
        for (int x = h_ - 1; x < h_ + nx_ + 1; ++x) {
          const double wc = recip ? 1.0 / density(x, y) : density(x, y);
          const double wl = recip ? 1.0 / density(x - 1, y) : density(x - 1, y);
          const double wb = recip ? 1.0 / density(x, y - 1) : density(x, y - 1);
          kx(x, y) = rx * (wl + wc) / (2.0 * wl * wc);
          ky(x, y) = ry * (wb + wc) / (2.0 * wb * wc);
        }
      });
}

void Omp3Port::halo_update(unsigned fields, int depth) {
  rt_.launcher().run(hinfo(fields, depth), [&] {
    auto reflect = [&](FieldId id) {
      comm::reflect_boundary(f(id), h_, comm::kAllFaces);
    };
    if (fields & core::kMaskU) reflect(FieldId::kU);
    if (fields & core::kMaskP) reflect(FieldId::kP);
    if (fields & core::kMaskSd) reflect(FieldId::kSd);
    if (fields & core::kMaskR) reflect(FieldId::kR);
    if (fields & core::kMaskW) reflect(FieldId::kW);
    if (fields & core::kMaskDensity) reflect(FieldId::kDensity);
    if (fields & core::kMaskEnergy0) reflect(FieldId::kEnergy0);
  });
}

void Omp3Port::calc_residual() {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto r = f(FieldId::kR);
  rt_.parallel_for(
      info(KernelId::kCalcResidual), h_, h_ + ny_, [&](std::int64_t y) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double au = diag * u(x, y) - kx(x + 1, y) * u(x + 1, y) -
                            kx(x, y) * u(x - 1, y) - ky(x, y + 1) * u(x, y + 1) -
                            ky(x, y) * u(x, y - 1);
          r(x, y) = u0(x, y) - au;
        }
      });
}

double Omp3Port::calc_2norm(core::NormTarget target) {
  auto v = f(target == core::NormTarget::kResidual ? FieldId::kR : FieldId::kU0);
  // #pragma omp parallel for reduction(+: norm)
  return rt_.parallel_reduce(
      info(KernelId::kCalc2Norm), h_, h_ + ny_, [&](std::int64_t y, double& acc) {
        for (int x = h_; x < h_ + nx_; ++x) acc += v(x, y) * v(x, y);
      });
}

void Omp3Port::finalise() {
  auto u = f(FieldId::kU);
  auto density = f(FieldId::kDensity);
  auto energy = f(FieldId::kEnergy);
  rt_.parallel_for(info(KernelId::kFinalise), h_, h_ + ny_, [&](std::int64_t y) {
    for (int x = h_; x < h_ + nx_; ++x) energy(x, y) = u(x, y) / density(x, y);
  });
}

core::FieldSummary Omp3Port::field_summary() {
  auto density = f(FieldId::kDensity);
  auto energy0 = f(FieldId::kEnergy0);
  auto u = f(FieldId::kU);
  const double vol = mesh_.cell_area();
  // Four reductions fused in one pass, as the F90 kernel does. The model's
  // reduce clause handles one scalar; pack the others alongside the same
  // sweep (the launch is metered once, per the catalogue).
  core::FieldSummary s;
  // Each worker owns its rows, so the per-row slots are disjoint; combining
  // them in row order afterwards is deterministic across thread counts
  // (a shared `mass += ...` here would be the classic missing-reduction
  // data race — ThreadSanitizer in CI holds this door shut).
  std::vector<double> row_mass(static_cast<std::size_t>(ny_), 0.0);
  std::vector<double> row_ie(static_cast<std::size_t>(ny_), 0.0);
  std::vector<double> row_temp(static_cast<std::size_t>(ny_), 0.0);
  s.volume = rt_.parallel_reduce(
      info(KernelId::kFieldSummary), h_, h_ + ny_,
      [&](std::int64_t y, double& acc) {
        double m = 0.0, e = 0.0, t = 0.0;
        for (int x = h_; x < h_ + nx_; ++x) {
          acc += vol;
          m += density(x, y) * vol;
          e += density(x, y) * energy0(x, y) * vol;
          t += u(x, y) * vol;
        }
        const auto row = static_cast<std::size_t>(y - h_);
        row_mass[row] = m;
        row_ie[row] = e;
        row_temp[row] = t;
      });
  for (std::size_t row = 0; row < static_cast<std::size_t>(ny_); ++row) {
    s.mass += row_mass[row];
    s.internal_energy += row_ie[row];
    s.temperature += row_temp[row];
  }
  return s;
}

double Omp3Port::cg_init() {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto w = f(FieldId::kW);
  auto r = f(FieldId::kR);
  auto p = f(FieldId::kP);
  return rt_.parallel_reduce(
      info(KernelId::kCgInit), h_, h_ + ny_, [&](std::int64_t y, double& acc) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double au = diag * u(x, y) - kx(x + 1, y) * u(x + 1, y) -
                            kx(x, y) * u(x - 1, y) - ky(x, y + 1) * u(x, y + 1) -
                            ky(x, y) * u(x, y - 1);
          w(x, y) = au;
          const double res = u0(x, y) - au;
          r(x, y) = res;
          p(x, y) = res;
          acc += res * res;
        }
      });
}

double Omp3Port::cg_calc_w() {
  auto p = f(FieldId::kP);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto w = f(FieldId::kW);
  return rt_.parallel_reduce(
      info(KernelId::kCgCalcW), h_, h_ + ny_, [&](std::int64_t y, double& acc) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double ap = diag * p(x, y) - kx(x + 1, y) * p(x + 1, y) -
                            kx(x, y) * p(x - 1, y) - ky(x, y + 1) * p(x, y + 1) -
                            ky(x, y) * p(x, y - 1);
          w(x, y) = ap;
          acc += ap * p(x, y);
        }
      });
}

double Omp3Port::cg_calc_ur(double alpha) {
  auto u = f(FieldId::kU);
  auto p = f(FieldId::kP);
  auto r = f(FieldId::kR);
  auto w = f(FieldId::kW);
  return rt_.parallel_reduce(
      info(KernelId::kCgCalcUr), h_, h_ + ny_, [&](std::int64_t y, double& acc) {
        for (int x = h_; x < h_ + nx_; ++x) {
          u(x, y) += alpha * p(x, y);
          const double res = r(x, y) - alpha * w(x, y);
          r(x, y) = res;
          acc += res * res;
        }
      });
}

void Omp3Port::cg_calc_p(double beta) {
  auto r = f(FieldId::kR);
  auto p = f(FieldId::kP);
  rt_.parallel_for(info(KernelId::kCgCalcP), h_, h_ + ny_, [&](std::int64_t y) {
    for (int x = h_; x < h_ + nx_; ++x) p(x, y) = r(x, y) + beta * p(x, y);
  });
}

void Omp3Port::cheby_init(double theta) {
  auto r = f(FieldId::kR);
  auto p = f(FieldId::kP);
  auto u = f(FieldId::kU);
  const double theta_inv = 1.0 / theta;
  rt_.parallel_for(info(KernelId::kChebyInit), h_, h_ + ny_, [&](std::int64_t y) {
    for (int x = h_; x < h_ + nx_; ++x) {
      p(x, y) = r(x, y) * theta_inv;
      u(x, y) += p(x, y);
    }
  });
}

void Omp3Port::cheby_iterate(double alpha, double beta) {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto r = f(FieldId::kR);
  auto p = f(FieldId::kP);
  // Two sweeps inside one metered kernel: the residual/direction sweep must
  // complete before u is updated (the stencil reads neighbouring u).
  rt_.parallel_for(
      info(KernelId::kChebyIterate), h_, h_ + ny_, [&](std::int64_t y) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double au = diag * u(x, y) - kx(x + 1, y) * u(x + 1, y) -
                            kx(x, y) * u(x - 1, y) - ky(x, y + 1) * u(x, y + 1) -
                            ky(x, y) * u(x, y - 1);
          const double res = u0(x, y) - au;
          r(x, y) = res;
          p(x, y) = alpha * p(x, y) + beta * res;
        }
      });
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) u(x, y) += p(x, y);
    }
  });
}

void Omp3Port::ppcg_init_sd(double theta) {
  auto r = f(FieldId::kR);
  auto sd = f(FieldId::kSd);
  const double theta_inv = 1.0 / theta;
  rt_.parallel_for(info(KernelId::kPpcgInitSd), h_, h_ + ny_, [&](std::int64_t y) {
    for (int x = h_; x < h_ + nx_; ++x) sd(x, y) = r(x, y) * theta_inv;
  });
}

void Omp3Port::ppcg_inner(double alpha, double beta) {
  auto u = f(FieldId::kU);
  auto r = f(FieldId::kR);
  auto sd = f(FieldId::kSd);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  rt_.parallel_for(info(KernelId::kPpcgInner), h_, h_ + ny_, [&](std::int64_t y) {
    for (int x = h_; x < h_ + nx_; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      const double asd = diag * sd(x, y) - kx(x + 1, y) * sd(x + 1, y) -
                         kx(x, y) * sd(x - 1, y) - ky(x, y + 1) * sd(x, y + 1) -
                         ky(x, y) * sd(x, y - 1);
      r(x, y) -= asd;
      u(x, y) += sd(x, y);
    }
  });
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) {
        sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
      }
    }
  });
}

void Omp3Port::jacobi_copy_u() {
  auto u = f(FieldId::kU);
  auto w = f(FieldId::kW);
  // Full padded extent: the iterate's stencil reads w in the halo.
  rt_.parallel_for(info(KernelId::kJacobiCopyU), 0, height_,
                   [&](std::int64_t y) {
                     for (int x = 0; x < width_; ++x) w(x, y) = u(x, y);
                   });
}

void Omp3Port::jacobi_iterate() {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto w = f(FieldId::kW);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  rt_.parallel_for(
      info(KernelId::kJacobiIterate), h_, h_ + ny_, [&](std::int64_t y) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                     kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                     ky(x, y) * w(x, y - 1)) /
                    diag;
        }
      });
}

core::CgFusedW Omp3Port::cg_calc_w_fused() {
  auto p = f(FieldId::kP);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto w = f(FieldId::kW);
  core::CgFusedW out;
  // Both dot products share the sweep: the reduce clause carries p.w; w.w
  // rides in per-row slots combined in row order, exactly the field_summary
  // idiom (disjoint rows, no shared-accumulator race).
  std::vector<double> row_ww(static_cast<std::size_t>(ny_), 0.0);
  out.pw = rt_.parallel_reduce(
      info(KernelId::kCgCalcWFused), h_, h_ + ny_,
      [&](std::int64_t y, double& acc) {
        double sww = 0.0;
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double ap = diag * p(x, y) - kx(x + 1, y) * p(x + 1, y) -
                            kx(x, y) * p(x - 1, y) - ky(x, y + 1) * p(x, y + 1) -
                            ky(x, y) * p(x, y - 1);
          w(x, y) = ap;
          acc += ap * p(x, y);
          sww += ap * ap;
        }
        row_ww[static_cast<std::size_t>(y - h_)] = sww;
      });
  for (std::size_t row = 0; row < static_cast<std::size_t>(ny_); ++row) {
    out.ww += row_ww[row];
  }
  return out;
}

double Omp3Port::cg_fused_ur_p(double alpha, double beta_prev) {
  auto u = f(FieldId::kU);
  auto p = f(FieldId::kP);
  auto r = f(FieldId::kR);
  auto w = f(FieldId::kW);
  return rt_.parallel_reduce(
      info(KernelId::kCgFusedUrP), h_, h_ + ny_,
      [&](std::int64_t y, double& acc) {
        for (int x = h_; x < h_ + nx_; ++x) {
          u(x, y) += alpha * p(x, y);
          const double res = r(x, y) - alpha * w(x, y);
          r(x, y) = res;
          p(x, y) = res + beta_prev * p(x, y);
          acc += res * res;
        }
      });
}

double Omp3Port::fused_residual_norm() {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto r = f(FieldId::kR);
  return rt_.parallel_reduce(
      info(KernelId::kFusedResidualNorm), h_, h_ + ny_,
      [&](std::int64_t y, double& acc) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double au = diag * u(x, y) - kx(x + 1, y) * u(x + 1, y) -
                            kx(x, y) * u(x - 1, y) - ky(x, y + 1) * u(x, y + 1) -
                            ky(x, y) * u(x, y - 1);
          const double res = u0(x, y) - au;
          r(x, y) = res;
          acc += res * res;
        }
      });
}

core::CgPipeDots Omp3Port::cg_pipe_init() {
  auto r = f(FieldId::kR);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto w = f(FieldId::kW);
  core::CgPipeDots out;
  // w = A r with both pipelined dots in one sweep: the reduce clause carries
  // r.r; w.r rides in per-row slots combined in row order.
  std::vector<double> row_rw(static_cast<std::size_t>(ny_), 0.0);
  out.rr = rt_.parallel_reduce(
      info(KernelId::kCgPipeInit), h_, h_ + ny_,
      [&](std::int64_t y, double& acc) {
        double srw = 0.0;
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double ar = diag * r(x, y) - kx(x + 1, y) * r(x + 1, y) -
                            kx(x, y) * r(x - 1, y) - ky(x, y + 1) * r(x, y + 1) -
                            ky(x, y) * r(x, y - 1);
          w(x, y) = ar;
          acc += r(x, y) * r(x, y);
          srw += ar * r(x, y);
        }
        row_rw[static_cast<std::size_t>(y - h_)] = srw;
      });
  for (std::size_t row = 0; row < static_cast<std::size_t>(ny_); ++row) {
    out.rw += row_rw[row];
  }
  return out;
}

void Omp3Port::cg_pipe_calc_q() {
  auto w = f(FieldId::kW);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto q = f(FieldId::kQ);
  // q = A w — the matvec the in-flight allreduce hides behind.
  rt_.parallel_for(
      info(KernelId::kCgPipeCalcQ), h_, h_ + ny_, [&](std::int64_t y) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          q(x, y) = diag * w(x, y) - kx(x + 1, y) * w(x + 1, y) -
                    kx(x, y) * w(x - 1, y) - ky(x, y + 1) * w(x, y + 1) -
                    ky(x, y) * w(x, y - 1);
        }
      });
}

core::CgPipeDots Omp3Port::cg_pipe_update(double alpha, double beta) {
  auto z = f(FieldId::kZ);
  auto sd = f(FieldId::kSd);
  auto p = f(FieldId::kP);
  auto u = f(FieldId::kU);
  auto r = f(FieldId::kR);
  auto w = f(FieldId::kW);
  auto q = f(FieldId::kQ);
  core::CgPipeDots out;
  std::vector<double> row_rw(static_cast<std::size_t>(ny_), 0.0);
  out.rr = rt_.parallel_reduce(
      info(KernelId::kCgPipeUpdate), h_, h_ + ny_,
      [&](std::int64_t y, double& acc) {
        double srw = 0.0;
        for (int x = h_; x < h_ + nx_; ++x) {
          const double zn = q(x, y) + beta * z(x, y);
          z(x, y) = zn;
          const double sn = w(x, y) + beta * sd(x, y);
          sd(x, y) = sn;
          const double pn = r(x, y) + beta * p(x, y);
          p(x, y) = pn;
          u(x, y) += alpha * pn;
          const double rn = r(x, y) - alpha * sn;
          r(x, y) = rn;
          const double wn = w(x, y) - alpha * zn;
          w(x, y) = wn;
          acc += rn * rn;
          srw += wn * rn;
        }
        row_rw[static_cast<std::size_t>(y - h_)] = srw;
      });
  for (std::size_t row = 0; row < static_cast<std::size_t>(ny_); ++row) {
    out.rw += row_rw[row];
  }
  return out;
}

void Omp3Port::cheby_fused_iterate(double alpha, double beta) {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto r = f(FieldId::kR);
  auto p = f(FieldId::kP);
  // Same two-phase body as cheby_iterate, charged once at the fused rate.
  rt_.parallel_for(
      info(KernelId::kChebyFusedIterate), h_, h_ + ny_, [&](std::int64_t y) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double au = diag * u(x, y) - kx(x + 1, y) * u(x + 1, y) -
                            kx(x, y) * u(x - 1, y) - ky(x, y + 1) * u(x, y + 1) -
                            ky(x, y) * u(x, y - 1);
          const double res = u0(x, y) - au;
          r(x, y) = res;
          p(x, y) = alpha * p(x, y) + beta * res;
        }
      });
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) u(x, y) += p(x, y);
    }
  });
}

void Omp3Port::ppcg_fused_inner(double alpha, double beta) {
  auto u = f(FieldId::kU);
  auto r = f(FieldId::kR);
  auto sd = f(FieldId::kSd);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  rt_.parallel_for(
      info(KernelId::kPpcgFusedInner), h_, h_ + ny_, [&](std::int64_t y) {
        for (int x = h_; x < h_ + nx_; ++x) {
          const double diag =
              1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
          const double asd = diag * sd(x, y) - kx(x + 1, y) * sd(x + 1, y) -
                             kx(x, y) * sd(x - 1, y) -
                             ky(x, y + 1) * sd(x, y + 1) -
                             ky(x, y) * sd(x, y - 1);
          r(x, y) -= asd;
          u(x, y) += sd(x, y);
        }
      });
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) {
        sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
      }
    }
  });
}

void Omp3Port::jacobi_fused_copy_iterate() {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto w = f(FieldId::kW);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  // Copy (full padded extent, the stencil reads w in the halo) then iterate,
  // both inside the single fused charge.
  rt_.parallel_for(info(KernelId::kJacobiFusedCopyIterate), 0, height_,
                   [&](std::int64_t y) {
                     for (int x = 0; x < width_; ++x) w(x, y) = u(x, y);
                   });
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) {
        const double diag =
            1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
        u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                   kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                   ky(x, y) * w(x, y - 1)) /
                  diag;
      }
    }
  });
}

// --- Region sweeps (kCapRegions) -------------------------------------------
//
// The split keeps two invariants against the blocking path:
//  * Numerics: sweeps run the same loop bodies over region bounds; the finish
//    reductions re-run through the pool with the blocking kernels' exact
//    chunking and accumulation order, so every scalar is bit-identical.
//  * Metering: region_begin prices the kernel once (one PerfModel draw — the
//    same scheduler luck the unsplit launch would consume) and charges the
//    interior-cell fraction; region_finish_charge charges the remainder. The
//    byte split is exact (remainder = total - part); the two ns instalments
//    sum to the single-draw cost up to one rounding, far below the comm time
//    the split exists to hide.

void Omp3Port::region_begin(KernelId id) {
  region_info_ = info(id);
  const auto priced = rt_.launcher().price(region_info_);
  region_factor_ = priced.factor;
  double frac = 0.0;
  if (nx_ > 2 && ny_ > 2) {
    frac = (static_cast<double>(nx_ - 2) * static_cast<double>(ny_ - 2)) /
           (static_cast<double>(nx_) * static_cast<double>(ny_));
  }
  const double part_ns = priced.ns * frac;
  const auto part_read = static_cast<std::size_t>(
      static_cast<double>(region_info_.bytes_read) * frac);
  const auto part_written = static_cast<std::size_t>(
      static_cast<double>(region_info_.bytes_written) * frac);
  region_rem_ns_ = priced.ns - part_ns;
  region_rem_read_ = region_info_.bytes_read - part_read;
  region_rem_written_ = region_info_.bytes_written - part_written;
  sim::LaunchInfo part = region_info_;
  part.bytes_read = part_read;
  part.bytes_written = part_written;
  rt_.launcher().charge_priced(part, part_ns, region_factor_);
}

void Omp3Port::region_finish_charge() {
  sim::LaunchInfo rem = region_info_;
  rem.bytes_read = region_rem_read_;
  rem.bytes_written = region_rem_written_;
  rt_.launcher().charge_priced(rem, region_rem_ns_, region_factor_);
}

void Omp3Port::sweep_cg_w(const core::RegionBounds& b) {
  auto p = f(FieldId::kP);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto w = f(FieldId::kW);
  for (int y = b.y0; y < b.y1; ++y) {
    for (int x = b.x0; x < b.x1; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      w(x, y) = diag * p(x, y) - kx(x + 1, y) * p(x + 1, y) -
                kx(x, y) * p(x - 1, y) - ky(x, y + 1) * p(x, y + 1) -
                ky(x, y) * p(x, y - 1);
    }
  }
}

void Omp3Port::cg_calc_w_region(core::Region region) {
  if (region == core::Region::kInterior) region_begin(KernelId::kCgCalcW);
  sweep_cg_w(core::region_bounds(region, h_, nx_, ny_));
}

double Omp3Port::cg_calc_w_region_finish() {
  auto p = f(FieldId::kP);
  auto w = f(FieldId::kW);
  // Same chunking and per-cell order as the blocking parallel_reduce, reading
  // the stored w instead of recomputing the stencil.
  const double pw = rt_.pool().parallel_reduce_sum(
      h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
        double acc = 0.0;
        for (std::int64_t y = yb; y < ye; ++y) {
          for (int x = h_; x < h_ + nx_; ++x) acc += w(x, y) * p(x, y);
        }
        return acc;
      });
  region_finish_charge();
  return pw;
}

void Omp3Port::cg_calc_w_fused_region(core::Region region) {
  // The fused sweep is the same stencil; only the catalogue id (and so the
  // priced cost) differs from the classic cg_calc_w.
  if (region == core::Region::kInterior) region_begin(KernelId::kCgCalcWFused);
  sweep_cg_w(core::region_bounds(region, h_, nx_, ny_));
}

core::CgFusedW Omp3Port::cg_calc_w_fused_region_finish() {
  auto p = f(FieldId::kP);
  auto w = f(FieldId::kW);
  core::CgFusedW out;
  std::vector<double> row_ww(static_cast<std::size_t>(ny_), 0.0);
  out.pw = rt_.pool().parallel_reduce_sum(
      h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
        double acc = 0.0;
        for (std::int64_t y = yb; y < ye; ++y) {
          double sww = 0.0;
          for (int x = h_; x < h_ + nx_; ++x) {
            const double ap = w(x, y);
            acc += ap * p(x, y);
            sww += ap * ap;
          }
          row_ww[static_cast<std::size_t>(y - h_)] = sww;
        }
        return acc;
      });
  for (std::size_t row = 0; row < static_cast<std::size_t>(ny_); ++row) {
    out.ww += row_ww[row];
  }
  region_finish_charge();
  return out;
}

void Omp3Port::cheby_fused_region(double alpha, double beta,
                                  core::Region region) {
  if (region == core::Region::kInterior) {
    region_begin(KernelId::kChebyFusedIterate);
  }
  const auto b = core::region_bounds(region, h_, nx_, ny_);
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  auto r = f(FieldId::kR);
  auto p = f(FieldId::kP);
  // Phase 1 only (writes r, p; u untouched, so the in-flight u exchange can
  // land between the interior and edge sweeps). Phase 2 runs in the finish.
  for (int y = b.y0; y < b.y1; ++y) {
    for (int x = b.x0; x < b.x1; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      const double au = diag * u(x, y) - kx(x + 1, y) * u(x + 1, y) -
                        kx(x, y) * u(x - 1, y) - ky(x, y + 1) * u(x, y + 1) -
                        ky(x, y) * u(x, y - 1);
      const double res = u0(x, y) - au;
      r(x, y) = res;
      p(x, y) = alpha * p(x, y) + beta * res;
    }
  }
}

void Omp3Port::cheby_fused_region_finish() {
  auto u = f(FieldId::kU);
  auto p = f(FieldId::kP);
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) u(x, y) += p(x, y);
    }
  });
  region_finish_charge();
}

void Omp3Port::ppcg_fused_region(double alpha, double beta,
                                 core::Region region) {
  (void)alpha;
  (void)beta;
  if (region == core::Region::kInterior) {
    region_begin(KernelId::kPpcgFusedInner);
  }
  const auto b = core::region_bounds(region, h_, nx_, ny_);
  auto u = f(FieldId::kU);
  auto r = f(FieldId::kR);
  auto sd = f(FieldId::kSd);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  // Phase 1 only (writes r, u; sd untouched until the finish, so the
  // in-flight sd exchange can land between interior and edge sweeps).
  for (int y = b.y0; y < b.y1; ++y) {
    for (int x = b.x0; x < b.x1; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      const double asd = diag * sd(x, y) - kx(x + 1, y) * sd(x + 1, y) -
                         kx(x, y) * sd(x - 1, y) -
                         ky(x, y + 1) * sd(x, y + 1) - ky(x, y) * sd(x, y - 1);
      r(x, y) -= asd;
      u(x, y) += sd(x, y);
    }
  }
}

void Omp3Port::ppcg_fused_region_finish(double alpha, double beta) {
  auto r = f(FieldId::kR);
  auto sd = f(FieldId::kSd);
  rt_.pool().parallel_for(h_, h_ + ny_, [&](std::int64_t yb, std::int64_t ye) {
    for (std::int64_t y = yb; y < ye; ++y) {
      for (int x = h_; x < h_ + nx_; ++x) {
        sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
      }
    }
  });
  region_finish_charge();
}

void Omp3Port::jacobi_fused_region(core::Region region) {
  auto u = f(FieldId::kU);
  auto u0 = f(FieldId::kU0);
  auto w = f(FieldId::kW);
  auto kx = f(FieldId::kKx);
  auto ky = f(FieldId::kKy);
  if (region == core::Region::kInterior) {
    region_begin(KernelId::kJacobiFusedCopyIterate);
    // Full padded copy, as in the fused kernel. The halo rows of u may still
    // be in flight; the first edge sweep re-copies the refreshed frame, so
    // by the time any sweep reads w outside the interior it matches what the
    // blocking path would have copied.
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) w(x, y) = u(x, y);
    }
    jacobi_frame_synced_ = false;
  } else if (!jacobi_frame_synced_) {
    for (int y = 0; y < h_; ++y) {
      for (int x = 0; x < width_; ++x) w(x, y) = u(x, y);
    }
    for (int y = h_ + ny_; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) w(x, y) = u(x, y);
    }
    for (int y = h_; y < h_ + ny_; ++y) {
      for (int x = 0; x < h_; ++x) w(x, y) = u(x, y);
      for (int x = h_ + nx_; x < width_; ++x) w(x, y) = u(x, y);
    }
    jacobi_frame_synced_ = true;
  }
  const auto b = core::region_bounds(region, h_, nx_, ny_);
  for (int y = b.y0; y < b.y1; ++y) {
    for (int x = b.x0; x < b.x1; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                 kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                 ky(x, y) * w(x, y - 1)) /
                diag;
    }
  }
}

void Omp3Port::jacobi_fused_region_finish() { region_finish_charge(); }

void Omp3Port::read_u(util::Span2D<double> out) {
  const auto u = f(FieldId::kU);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) out(x, y) = u(x, y);
  }
  rt_.launcher().charge_transfer(
      {.name = "read_u", .bytes = padded_bytes(), .to_device = false});
}

void Omp3Port::download_energy(core::Chunk& chunk) {
  const auto src = f(FieldId::kEnergy);
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) dst(x, y) = src(x, y);
  }
  rt_.launcher().charge_transfer(
      {.name = "download_energy", .bytes = padded_bytes(), .to_device = false});
}

}  // namespace tl::ports
