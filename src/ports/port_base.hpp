#pragma once
// Shared scaffolding for the TeaLeaf ports.
//
// Every port implements SolverKernels with its programming model's API and
// meters launches built from the shared catalogue + per-model decoration
// (core/model_traits), which keeps live ports and the analytic replay in
// lock step.
//
// Metering convention (matched by PhantomKernels):
//   - each SolverKernels method that runs a kernel charges exactly one
//     launch with make_launch_info(model, kernel, interior_cells);
//   - halo_update charges one make_halo_info launch;
//   - upload_state / download_energy / read_u charge one transfer each
//     (free on host devices);
//   - reduction finishes (partial sums, scalar readback) are priced inside
//     the performance model's reduction_overhead, never as extra launches.

#include "core/kernels_api.hpp"
#include "core/model_traits.hpp"

namespace tl::ports {

class PortBase : public core::SolverKernels {
 protected:
  PortBase(sim::Model model, const core::Mesh& mesh)
      : model_(model),
        mesh_(mesh),
        h_(mesh.halo_depth),
        nx_(mesh.nx),
        ny_(mesh.ny),
        width_(mesh.padded_nx()),
        height_(mesh.padded_ny()) {}

  sim::LaunchInfo info(core::KernelId id) const {
    return core::make_launch_info(model_, id, mesh_.interior_cells());
  }
  sim::LaunchInfo hinfo(unsigned fields, int depth) const {
    return core::make_halo_info(model_, nx_, ny_,
                                core::mask_field_count(fields), depth);
  }

  std::size_t padded_bytes() const {
    return mesh_.padded_cells() * sizeof(double);
  }

  sim::Model model_;
  core::Mesh mesh_;
  int h_, nx_, ny_;       // halo depth and interior extents
  int width_, height_;    // padded extents
};

}  // namespace tl::ports
