#pragma once
// CUDA-style TeaLeaf port.
//
// The paper's device-tuned GPU lower bound: every loop is a kernel launched
// over a 1-D grid of 1-D blocks with hand-computed block counts and
// overspill guards, data lives in explicit device buffers moved by
// cudaMemcpy-style calls, and reductions are manual — per-thread values into
// shared memory, per-block partials to global memory, finished on the host
// (the extra complexity the paper attributes to CUDA over Kokkos).

#include "core/fields.hpp"
#include "models/culike/cuda.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class CudaPort final : public PortBase {
 public:
  CudaPort(sim::DeviceId device, const core::Mesh& mesh,
           std::uint64_t run_seed);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants: the triple dot runs like field_summary (block reduction
  // plus companion partial sections); the two-sweep steps reuse their loop
  // bodies under the fused launch charge. No kCapRegions: the distributed
  // overlap pipeline falls back to full sweeps behind a blocking halo
  // exchange for this port (see core/kernels_api.hpp).
  unsigned caps() const override {
    return core::kAllKernelCaps | core::kCapPipelined;
  }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG: both dots via the cg_calc_w_fused partial layout (block
  // reduction for r.r, companion section for w.r).
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override { return rt_.launcher().clock(); }
  void begin_run(std::uint64_t run_seed) override {
    rt_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    // Emulation shortcut: "device" buffers are host-visible (port_base notes).
    return device_span(id);
  }

 private:
  static constexpr unsigned kBlockSize = 256;

  culike::DeviceBuffer& buf(core::FieldId id) {
    return *buffers_[static_cast<std::size_t>(id)];
  }
  util::Span2D<double> device_span(core::FieldId id) {
    return {buf(id).data(), width_, height_};
  }
  unsigned interior_blocks() const {
    return culike::Runtime::blocks_for(mesh_.interior_cells(), kBlockSize);
  }
  /// Host finish of the per-block partials (in-launch tail, priced by the
  /// model's reduction overhead).
  double sum_partials(unsigned blocks) const;

  mutable culike::Runtime rt_;
  std::array<std::unique_ptr<culike::DeviceBuffer>, core::kAllFields.size()>
      buffers_;
  std::unique_ptr<culike::DeviceBuffer> partials_;
  std::vector<double> host_scratch_;
};

}  // namespace tl::ports
