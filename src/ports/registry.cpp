#include "ports/registry.hpp"

#include <stdexcept>
#include <string>

#include "ports/port_cuda.hpp"
#include "ports/port_kokkos.hpp"
#include "ports/port_offload.hpp"
#include "ports/port_omp3.hpp"
#include "ports/port_opencl.hpp"
#include "ports/port_raja.hpp"

namespace tl::ports {

bool is_supported(sim::Model model, sim::DeviceId device) {
  return sim::codegen_profile(model, device).supported;
}

std::unique_ptr<core::SolverKernels> make_port(sim::Model model,
                                               sim::DeviceId device,
                                               const core::Mesh& mesh,
                                               std::uint64_t run_seed,
                                               unsigned host_threads) {
  if (!is_supported(model, device)) {
    throw std::invalid_argument(std::string(sim::model_name(model)) +
                                " does not support device '" +
                                std::string(sim::device_short_name(device)) +
                                "' (paper Table 1)");
  }
  switch (model) {
    case sim::Model::kFortran:
    case sim::Model::kOmp3Cpp:
      return std::make_unique<Omp3Port>(model, device, mesh, run_seed,
                                        host_threads);
    case sim::Model::kOmp4:
    case sim::Model::kOpenAcc:
      return std::make_unique<OffloadPort>(model, device, mesh, run_seed);
    case sim::Model::kKokkos:
      return std::make_unique<KokkosPort>(model, device, mesh, run_seed);
    case sim::Model::kKokkosHp:
      return std::make_unique<KokkosHpPort>(device, mesh, run_seed);
    case sim::Model::kRaja:
    case sim::Model::kRajaSimd:
      return std::make_unique<RajaPort>(model, device, mesh, run_seed);
    case sim::Model::kOpenCl:
      return std::make_unique<OpenClPort>(device, mesh, run_seed);
    case sim::Model::kCuda:
      return std::make_unique<CudaPort>(device, mesh, run_seed);
  }
  throw std::invalid_argument("make_port: unknown model");
}

std::vector<sim::Model> figure_models(sim::DeviceId device) {
  using sim::Model;
  switch (device) {
    case sim::DeviceId::kCpuSandyBridge:  // paper Fig 8
      return {Model::kFortran, Model::kOmp3Cpp, Model::kKokkos, Model::kRaja,
              Model::kRajaSimd, Model::kOpenCl};
    case sim::DeviceId::kGpuK20X:  // paper Fig 9
      return {Model::kCuda, Model::kOpenCl, Model::kOpenAcc, Model::kKokkos,
              Model::kKokkosHp};
    case sim::DeviceId::kMicKnc:  // paper Fig 10
      return {Model::kFortran, Model::kOmp4, Model::kOpenCl, Model::kRaja,
              Model::kKokkos, Model::kKokkosHp};
  }
  return {};
}

}  // namespace tl::ports
