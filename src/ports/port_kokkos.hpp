#pragma once
// Kokkos-style TeaLeaf ports.
//
// KokkosPort (flat): every kernel is a functor over the flattened padded
// iteration space with a halo-exclusion conditional in the body — the
// paper's original Kokkos port, whose loop-body condition is pathological
// when natively compiled for KNC.
//
// KokkosHpPort (hierarchical parallelism): the Sandia fix — TeamPolicy with
// one team per interior row and a nested TeamThreadRange over interior
// columns, re-encoding the halo exclusion into the iteration space (paper
// Fig 7) at the cost of a second dispatch level.

#include "core/fields.hpp"
#include "models/kokkoslike/kokkos.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class KokkosPort : public PortBase {
 public:
  KokkosPort(sim::Model model, sim::DeviceId device, const core::Mesh& mesh,
             std::uint64_t run_seed);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants (flat form, shared by the HP subclass): the triple dot
  // rides a custom init/join functor, the same machinery as field_summary.
  // No kCapRegions: the distributed overlap pipeline falls back to full
  // sweeps behind a blocking halo exchange (see core/kernels_api.hpp).
  unsigned caps() const override {
    return core::kAllKernelCaps | core::kCapPipelined;
  }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG: the {r.r, w.r} dots ride custom init/join functors like
  // cg_calc_w_fused.
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override {
    return ctx_.launcher().clock();
  }
  void begin_run(std::uint64_t run_seed) override {
    ctx_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    // Views share one host allocation per field; the span stays valid for
    // the life of views_ (the shared state outlives every copy).
    return {&view(id)(0, 0), width_, height_};
  }

 protected:
  kokkoslike::View view(core::FieldId id) {
    return views_[static_cast<std::size_t>(id)];
  }
  kokkoslike::RangePolicy flat_policy() const {
    return {0, static_cast<std::int64_t>(width_) * height_};
  }

  mutable kokkoslike::Context ctx_;
  std::array<kokkoslike::View, core::kAllFields.size()> views_;
};

class KokkosHpPort final : public KokkosPort {
 public:
  KokkosHpPort(sim::DeviceId device, const core::Mesh& mesh,
               std::uint64_t run_seed);

  // The performance-critical functors get hierarchical re-encodings; the
  // setup/diagnostic kernels keep the flat form (as the paper did).
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;

 private:
  kokkoslike::TeamPolicy row_policy() const { return {ny_, 1}; }
};

}  // namespace tl::ports
