#pragma once
// OpenCL-style TeaLeaf port.
//
// Carries the full OpenCL ceremony the paper's complexity finding rests on:
// platform/device discovery, context + command queue setup, a program of
// named kernels, explicit buffer objects, per-launch setArg binding, NDRange
// sizing with overspill guards, and hand-written work-group reductions
// through local memory with per-group partials finished by the host.

#include <map>

#include "core/fields.hpp"
#include "models/ocllike/opencl.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class OpenClPort final : public PortBase {
 public:
  OpenClPort(sim::DeviceId device, const core::Mesh& mesh,
             std::uint64_t run_seed);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants: the triple-dot sweep runs like field_summary (one
  // work-group reduction plus companion partial sections); the two-sweep
  // steps reuse their kernels under the fused launch charge. No kCapRegions:
  // the distributed overlap pipeline falls back to full sweeps behind a
  // blocking halo exchange (see core/kernels_api.hpp).
  unsigned caps() const override {
    return core::kAllKernelCaps | core::kCapPipelined;
  }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG: r.r through the work-group reduction, w.r in a companion
  // partial section (cg_calc_w_fused's layout).
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override {
    return ctx_.launcher().clock();
  }
  void begin_run(std::uint64_t run_seed) override {
    ctx_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    return device_span(id);
  }

 private:
  static constexpr std::size_t kWorkGroupSize = 256;

  ocllike::Buffer& buf(core::FieldId id) {
    return *buffers_[static_cast<std::size_t>(id)];
  }
  util::Span2D<double> device_span(core::FieldId id) {
    // Emulation shortcut for device-side halo kernels (see port_base notes).
    return {buf(id).data(), width_, height_};
  }

  std::size_t interior_global() const {
    const std::size_t n = mesh_.interior_cells();
    return (n + kWorkGroupSize - 1) / kWorkGroupSize * kWorkGroupSize;
  }
  std::size_t group_count() const { return interior_global() / kWorkGroupSize; }

  /// Enqueues a prepared kernel and, for reductions, finishes the per-group
  /// partials on the host (the in-launch tree finish priced by the model).
  void run_kernel(const std::string& name, const sim::LaunchInfo& info);
  double run_reduction(const std::string& name, const sim::LaunchInfo& info);

  ocllike::Context ctx_;
  ocllike::CommandQueue queue_;
  ocllike::Program program_;
  std::map<std::string, ocllike::Kernel> kernels_;
  std::array<std::unique_ptr<ocllike::Buffer>, core::kAllFields.size()> buffers_;
  std::unique_ptr<ocllike::Buffer> partials_;
  std::vector<double> host_scratch_;
};

}  // namespace tl::ports
