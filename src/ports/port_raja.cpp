#include "ports/port_raja.hpp"

#include "comm/halo.hpp"

namespace tl::ports {

using core::FieldId;
using core::KernelId;
using rajalike::RangeSegment;
using rajalike::ReduceSum;

namespace {
/// Flat-index 5-point stencil (idx arithmetic over the padded row stride).
inline double stencil(const double* v, const double* kx, const double* ky,
                      std::int64_t i, int width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}
}  // namespace

RajaPort::RajaPort(sim::Model model, sim::DeviceId device,
                   const core::Mesh& mesh, std::uint64_t run_seed)
    : PortBase(model, mesh),
      ctx_(model, device, run_seed),
      storage_(mesh),
      interior_(rajalike::make_interior_index_set(nx_, ny_, h_)),
      interior_wide_(
          rajalike::make_interior_index_set(nx_ + 2, ny_ + 2, h_ - 1)) {}

void RajaPort::upload_state(const core::Chunk& chunk) {
  for (const FieldId id : {FieldId::kDensity, FieldId::kEnergy0}) {
    const auto src = chunk.field(id);
    auto dst = f(id);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) dst(x, y) = src(x, y);
    }
  }
  ctx_.launcher().charge_transfer(
      {.name = "upload_state", .bytes = 2 * padded_bytes(), .to_device = true});
}

void RajaPort::init_u() {
  const double* density = fp(FieldId::kDensity);
  const double* energy0 = fp(FieldId::kEnergy0);
  double* u = fp(FieldId::kU);
  double* u0 = fp(FieldId::kU0);
  // Plain range over the padded allocation (no exclusions needed).
  ctx_.forall<Policy>(
      info(KernelId::kInitU),
      RangeSegment{0, static_cast<std::int64_t>(mesh_.padded_cells())},
      [=](std::int64_t i) {
        const double v = energy0[i] * density[i];
        u[i] = v;
        u0[i] = v;
      });
}

void RajaPort::init_coefficients(core::Coefficient coefficient, double rx,
                                 double ry) {
  const double* density = fp(FieldId::kDensity);
  double* kx = fp(FieldId::kKx);
  double* ky = fp(FieldId::kKy);
  const bool recip = coefficient == core::Coefficient::kRecipConductivity;
  const int width = width_;
  ctx_.forall<Policy>(info(KernelId::kInitCoef), interior_wide_,
                      [=](std::int64_t i) {
                        auto w_of = [&](std::int64_t j) {
                          return recip ? 1.0 / density[j] : density[j];
                        };
                        const double wc = w_of(i);
                        const double wl = w_of(i - 1);
                        const double wb = w_of(i - width);
                        kx[i] = rx * (wl + wc) / (2.0 * wl * wc);
                        ky[i] = ry * (wb + wc) / (2.0 * wb * wc);
                      });
}

void RajaPort::halo_update(unsigned fields, int depth) {
  ctx_.launcher().run(hinfo(fields, depth), [&] {
    auto reflect = [&](FieldId id) {
      comm::reflect_boundary(f(id), h_, comm::kAllFaces);
    };
    if (fields & core::kMaskU) reflect(FieldId::kU);
    if (fields & core::kMaskP) reflect(FieldId::kP);
    if (fields & core::kMaskSd) reflect(FieldId::kSd);
    if (fields & core::kMaskR) reflect(FieldId::kR);
    if (fields & core::kMaskW) reflect(FieldId::kW);
    if (fields & core::kMaskDensity) reflect(FieldId::kDensity);
    if (fields & core::kMaskEnergy0) reflect(FieldId::kEnergy0);
  });
}

void RajaPort::calc_residual() {
  const double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  const int width = width_;
  ctx_.forall<Policy>(info(KernelId::kCalcResidual), interior_,
                      [=](std::int64_t i) {
                        r[i] = u0[i] - stencil(u, kx, ky, i, width);
                      });
}

double RajaPort::calc_2norm(core::NormTarget target) {
  const double* v = fp(target == core::NormTarget::kResidual ? FieldId::kR
                                                             : FieldId::kU0);
  ReduceSum norm;
  ctx_.forall<Policy>(info(KernelId::kCalc2Norm), interior_,
                      [&, v](std::int64_t i) { norm += v[i] * v[i]; });
  return norm.get();
}

void RajaPort::finalise() {
  const double* u = fp(FieldId::kU);
  const double* density = fp(FieldId::kDensity);
  double* energy = fp(FieldId::kEnergy);
  ctx_.forall<Policy>(info(KernelId::kFinalise), interior_,
                      [=](std::int64_t i) { energy[i] = u[i] / density[i]; });
}

core::FieldSummary RajaPort::field_summary() {
  const double* density = fp(FieldId::kDensity);
  const double* energy0 = fp(FieldId::kEnergy0);
  const double* u = fp(FieldId::kU);
  const double cell_vol = mesh_.cell_area();
  // The multi-reduction case the paper flags: four ReduceSum objects in one
  // traversal (our custom dispatch equivalent).
  ReduceSum vol, mass, ie, temp;
  ctx_.forall<Policy>(info(KernelId::kFieldSummary), interior_,
                      [&, density, energy0, u](std::int64_t i) {
                        vol += cell_vol;
                        mass += density[i] * cell_vol;
                        ie += density[i] * energy0[i] * cell_vol;
                        temp += u[i] * cell_vol;
                      });
  return core::FieldSummary{vol.get(), mass.get(), ie.get(), temp.get()};
}

double RajaPort::cg_init() {
  const double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  const int width = width_;
  ReduceSum rro;
  ctx_.forall<Policy>(info(KernelId::kCgInit), interior_,
                      [&, u, u0, kx, ky, w, r, p](std::int64_t i) {
                        const double au = stencil(u, kx, ky, i, width);
                        w[i] = au;
                        const double res = u0[i] - au;
                        r[i] = res;
                        p[i] = res;
                        rro += res * res;
                      });
  return rro.get();
}

double RajaPort::cg_calc_w() {
  const double* p = fp(FieldId::kP);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  const int width = width_;
  ReduceSum pw;
  ctx_.forall<Policy>(info(KernelId::kCgCalcW), interior_,
                      [&, p, kx, ky, w](std::int64_t i) {
                        const double ap = stencil(p, kx, ky, i, width);
                        w[i] = ap;
                        pw += ap * p[i];
                      });
  return pw.get();
}

double RajaPort::cg_calc_ur(double alpha) {
  double* u = fp(FieldId::kU);
  const double* p = fp(FieldId::kP);
  double* r = fp(FieldId::kR);
  const double* w = fp(FieldId::kW);
  ReduceSum rrn;
  ctx_.forall<Policy>(info(KernelId::kCgCalcUr), interior_,
                      [&, u, p, r, w](std::int64_t i) {
                        u[i] += alpha * p[i];
                        const double res = r[i] - alpha * w[i];
                        r[i] = res;
                        rrn += res * res;
                      });
  return rrn.get();
}

void RajaPort::cg_calc_p(double beta) {
  const double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  ctx_.forall<Policy>(info(KernelId::kCgCalcP), interior_,
                      [=](std::int64_t i) { p[i] = r[i] + beta * p[i]; });
}

void RajaPort::cheby_init(double theta) {
  const double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  double* u = fp(FieldId::kU);
  const double theta_inv = 1.0 / theta;
  ctx_.forall<Policy>(info(KernelId::kChebyInit), interior_,
                      [=](std::int64_t i) {
                        p[i] = r[i] * theta_inv;
                        u[i] += p[i];
                      });
}

void RajaPort::cheby_iterate(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  const int width = width_;
  ctx_.forall<Policy>(info(KernelId::kChebyIterate), interior_,
                      [=](std::int64_t i) {
                        const double res = u0[i] - stencil(u, kx, ky, i, width);
                        r[i] = res;
                        p[i] = alpha * p[i] + beta * res;
                      });
  // Second sweep of the fused iterate (metered once per the catalogue).
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void RajaPort::ppcg_init_sd(double theta) {
  const double* r = fp(FieldId::kR);
  double* sd = fp(FieldId::kSd);
  const double theta_inv = 1.0 / theta;
  ctx_.forall<Policy>(info(KernelId::kPpcgInitSd), interior_,
                      [=](std::int64_t i) { sd[i] = r[i] * theta_inv; });
}

void RajaPort::ppcg_inner(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  double* r = fp(FieldId::kR);
  double* sd = fp(FieldId::kSd);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  ctx_.forall<Policy>(info(KernelId::kPpcgInner), interior_,
                      [=](std::int64_t i) {
                        r[i] -= stencil(sd, kx, ky, i, width);
                        u[i] += sd[i];
                      });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void RajaPort::jacobi_copy_u() {
  const double* u = fp(FieldId::kU);
  double* w = fp(FieldId::kW);
  // Full padded range: the iterate's stencil reads w in the halo.
  ctx_.forall<Policy>(
      info(KernelId::kJacobiCopyU),
      RangeSegment{0, static_cast<std::int64_t>(mesh_.padded_cells())},
      [=](std::int64_t i) { w[i] = u[i]; });
}

void RajaPort::jacobi_iterate() {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* w = fp(FieldId::kW);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  ctx_.forall<Policy>(
      info(KernelId::kJacobiIterate), interior_, [=](std::int64_t i) {
        const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
        u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
                ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
               diag;
      });
}

core::CgFusedW RajaPort::cg_calc_w_fused() {
  const double* p = fp(FieldId::kP);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  const int width = width_;
  // Two ReduceSum objects share the traversal, like field_summary's four.
  ReduceSum pw, ww;
  ctx_.forall<Policy>(info(KernelId::kCgCalcWFused), interior_,
                      [&, p, kx, ky, w](std::int64_t i) {
                        const double ap = stencil(p, kx, ky, i, width);
                        w[i] = ap;
                        pw += ap * p[i];
                        ww += ap * ap;
                      });
  return core::CgFusedW{pw.get(), ww.get()};
}

double RajaPort::cg_fused_ur_p(double alpha, double beta_prev) {
  double* u = fp(FieldId::kU);
  double* p = fp(FieldId::kP);
  double* r = fp(FieldId::kR);
  const double* w = fp(FieldId::kW);
  ReduceSum rrn;
  ctx_.forall<Policy>(info(KernelId::kCgFusedUrP), interior_,
                      [&, u, p, r, w](std::int64_t i) {
                        u[i] += alpha * p[i];
                        const double res = r[i] - alpha * w[i];
                        r[i] = res;
                        p[i] = res + beta_prev * p[i];
                        rrn += res * res;
                      });
  return rrn.get();
}

double RajaPort::fused_residual_norm() {
  const double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  const int width = width_;
  ReduceSum norm;
  ctx_.forall<Policy>(info(KernelId::kFusedResidualNorm), interior_,
                      [&, u, u0, kx, ky, r](std::int64_t i) {
                        const double res = u0[i] - stencil(u, kx, ky, i, width);
                        r[i] = res;
                        norm += res * res;
                      });
  return norm.get();
}

void RajaPort::cheby_fused_iterate(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* r = fp(FieldId::kR);
  double* p = fp(FieldId::kP);
  const int width = width_;
  ctx_.forall<Policy>(info(KernelId::kChebyFusedIterate), interior_,
                      [=](std::int64_t i) {
                        const double res = u0[i] - stencil(u, kx, ky, i, width);
                        r[i] = res;
                        p[i] = alpha * p[i] + beta * res;
                      });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void RajaPort::ppcg_fused_inner(double alpha, double beta) {
  double* u = fp(FieldId::kU);
  double* r = fp(FieldId::kR);
  double* sd = fp(FieldId::kSd);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  ctx_.forall<Policy>(info(KernelId::kPpcgFusedInner), interior_,
                      [=](std::int64_t i) {
                        r[i] -= stencil(sd, kx, ky, i, width);
                        u[i] += sd[i];
                      });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void RajaPort::jacobi_fused_copy_iterate() {
  double* u = fp(FieldId::kU);
  const double* u0 = fp(FieldId::kU0);
  double* w = fp(FieldId::kW);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  const int width = width_;
  // Copy over the full padded range (the stencil reads w in the halo), then
  // iterate — one fused charge.
  ctx_.forall<Policy>(
      info(KernelId::kJacobiFusedCopyIterate),
      RangeSegment{0, static_cast<std::int64_t>(mesh_.padded_cells())},
      [=](std::int64_t i) { w[i] = u[i]; });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      const std::int64_t i = row + x;
      const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
      u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
              ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
             diag;
    }
  }
}

core::CgPipeDots RajaPort::cg_pipe_init() {
  const double* r = fp(FieldId::kR);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* w = fp(FieldId::kW);
  const int width = width_;
  ReduceSum rr, rw;
  ctx_.forall<Policy>(info(KernelId::kCgPipeInit), interior_,
                      [&, r, kx, ky, w](std::int64_t i) {
                        const double ar = stencil(r, kx, ky, i, width);
                        w[i] = ar;
                        rr += r[i] * r[i];
                        rw += ar * r[i];
                      });
  return core::CgPipeDots{rr.get(), rw.get()};
}

void RajaPort::cg_pipe_calc_q() {
  const double* w = fp(FieldId::kW);
  const double* kx = fp(FieldId::kKx);
  const double* ky = fp(FieldId::kKy);
  double* q = fp(FieldId::kQ);
  const int width = width_;
  ctx_.forall<Policy>(
      info(KernelId::kCgPipeCalcQ), interior_,
      [=](std::int64_t i) { q[i] = stencil(w, kx, ky, i, width); });
}

core::CgPipeDots RajaPort::cg_pipe_update(double alpha, double beta) {
  double* z = fp(FieldId::kZ);
  double* sd = fp(FieldId::kSd);
  double* p = fp(FieldId::kP);
  double* u = fp(FieldId::kU);
  double* r = fp(FieldId::kR);
  double* w = fp(FieldId::kW);
  const double* q = fp(FieldId::kQ);
  ReduceSum rr, rw;
  ctx_.forall<Policy>(info(KernelId::kCgPipeUpdate), interior_,
                      [&, z, sd, p, u, r, w, q](std::int64_t i) {
                        const double zn = q[i] + beta * z[i];
                        z[i] = zn;
                        const double sn = w[i] + beta * sd[i];
                        sd[i] = sn;
                        const double pn = r[i] + beta * p[i];
                        p[i] = pn;
                        u[i] += alpha * pn;
                        const double rn = r[i] - alpha * sn;
                        r[i] = rn;
                        const double wn = w[i] - alpha * zn;
                        w[i] = wn;
                        rr += rn * rn;
                        rw += wn * rn;
                      });
  return core::CgPipeDots{rr.get(), rw.get()};
}

void RajaPort::read_u(util::Span2D<double> out) {
  const auto u = f(FieldId::kU);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) out(x, y) = u(x, y);
  }
  ctx_.launcher().charge_transfer(
      {.name = "read_u", .bytes = padded_bytes(), .to_device = false});
}

void RajaPort::download_energy(core::Chunk& chunk) {
  const auto src = f(FieldId::kEnergy);
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) dst(x, y) = src(x, y);
  }
  ctx_.launcher().charge_transfer(
      {.name = "download_energy", .bytes = padded_bytes(), .to_device = false});
}

}  // namespace tl::ports
