#include "ports/port_kokkos.hpp"

#include <string>

#include "comm/halo.hpp"

namespace tl::ports {

using core::FieldId;
using core::KernelId;
using kokkoslike::TeamMember;
using kokkoslike::View;

namespace {

/// Geometry every functor carries to reform the flat index into (x, y) and
/// test for halo cells (the paper's loop-body exclusion).
struct Geom {
  int width, h, nx, ny;

  bool interior(std::int64_t i, int& x, int& y) const {
    x = static_cast<int>(i % width);
    y = static_cast<int>(i / width);
    return x >= h && x < h + nx && y >= h && y < h + ny;
  }
};

/// 5-point stencil on a View (pre-scaled face coefficients).
inline double stencil(const View& v, const View& kx, const View& ky, int x,
                      int y) {
  const double diag = 1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
  return diag * v(x, y) - kx(x + 1, y) * v(x + 1, y) - kx(x, y) * v(x - 1, y) -
         ky(x, y + 1) * v(x, y + 1) - ky(x, y) * v(x, y - 1);
}

/// The one multi-variable reduction (paper: custom init/join on the functor).
struct SummaryValue {
  double vol = 0.0, mass = 0.0, ie = 0.0, temp = 0.0;
};

struct FieldSummaryFunctor {
  View density, energy0, u;
  Geom g;
  double cell_vol;

  void init(SummaryValue& v) const { v = SummaryValue{}; }
  void join(SummaryValue& dst, const SummaryValue& src) const {
    dst.vol += src.vol;
    dst.mass += src.mass;
    dst.ie += src.ie;
    dst.temp += src.temp;
  }
  void operator()(std::int64_t i, SummaryValue& v) const {
    int x, y;
    if (!g.interior(i, x, y)) return;
    v.vol += cell_vol;
    v.mass += density(x, y) * cell_vol;
    v.ie += density(x, y) * energy0(x, y) * cell_vol;
    v.temp += u(x, y) * cell_vol;
  }
};

/// Double dot product for the fused CG w sweep (custom init/join, like the
/// field summary).
struct DotsValue {
  double pw = 0.0, ww = 0.0;
};

struct CgWFusedFunctor {
  View p, kx, ky, w;
  Geom g;

  void init(DotsValue& v) const { v = DotsValue{}; }
  void join(DotsValue& dst, const DotsValue& src) const {
    dst.pw += src.pw;
    dst.ww += src.ww;
  }
  void operator()(std::int64_t i, DotsValue& v) const {
    int x, y;
    if (!g.interior(i, x, y)) return;
    const double ap = stencil(p, kx, ky, x, y);
    w(x, y) = ap;
    v.pw += ap * p(x, y);
    v.ww += ap * ap;
  }
};

/// Pipelined CG dots {r.r, w.r} (same custom init/join machinery).
struct PipeDotsValue {
  double rr = 0.0, rw = 0.0;
};

struct CgPipeInitFunctor {
  View r, kx, ky, w;
  Geom g;

  void init(PipeDotsValue& v) const { v = PipeDotsValue{}; }
  void join(PipeDotsValue& dst, const PipeDotsValue& src) const {
    dst.rr += src.rr;
    dst.rw += src.rw;
  }
  void operator()(std::int64_t i, PipeDotsValue& v) const {
    int x, y;
    if (!g.interior(i, x, y)) return;
    const double ar = stencil(r, kx, ky, x, y);
    w(x, y) = ar;
    v.rr += r(x, y) * r(x, y);
    v.rw += ar * r(x, y);
  }
};

struct CgPipeUpdateFunctor {
  View z, sd, p, u, r, w, q;
  Geom g;
  double alpha, beta;

  void init(PipeDotsValue& v) const { v = PipeDotsValue{}; }
  void join(PipeDotsValue& dst, const PipeDotsValue& src) const {
    dst.rr += src.rr;
    dst.rw += src.rw;
  }
  void operator()(std::int64_t i, PipeDotsValue& v) const {
    int x, y;
    if (!g.interior(i, x, y)) return;
    const double zn = q(x, y) + beta * z(x, y);
    z(x, y) = zn;
    const double sn = w(x, y) + beta * sd(x, y);
    sd(x, y) = sn;
    const double pn = r(x, y) + beta * p(x, y);
    p(x, y) = pn;
    u(x, y) += alpha * pn;
    const double rn = r(x, y) - alpha * sn;
    r(x, y) = rn;
    const double wn = w(x, y) - alpha * zn;
    w(x, y) = wn;
    v.rr += rn * rn;
    v.rw += wn * rn;
  }
};

}  // namespace

KokkosPort::KokkosPort(sim::Model model, sim::DeviceId device,
                       const core::Mesh& mesh, std::uint64_t run_seed)
    : PortBase(model, mesh), ctx_(model, device, run_seed) {
  for (const FieldId id : core::kAllFields) {
    views_[static_cast<std::size_t>(id)] =
        View(std::string(core::field_name(id)), width_, height_);
  }
}

void KokkosPort::upload_state(const core::Chunk& chunk) {
  for (const FieldId id : {FieldId::kDensity, FieldId::kEnergy0}) {
    const auto src = chunk.field(id);
    View dst = view(id);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) dst(x, y) = src(x, y);
    }
    ctx_.deep_copy_to_device(dst);
  }
}

void KokkosPort::init_u() {
  View density = view(FieldId::kDensity), energy0 = view(FieldId::kEnergy0);
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  // Whole padded range on purpose (halo gets coherent values immediately).
  ctx_.parallel_for(info(KernelId::kInitU), flat_policy(), [=](std::int64_t i) {
    const double v = energy0[static_cast<std::size_t>(i)] *
                     density[static_cast<std::size_t>(i)];
    u[static_cast<std::size_t>(i)] = v;
    u0[static_cast<std::size_t>(i)] = v;
  });
}

void KokkosPort::init_coefficients(core::Coefficient coefficient, double rx,
                                   double ry) {
  View density = view(FieldId::kDensity);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  const bool recip = coefficient == core::Coefficient::kRecipConductivity;
  const Geom g{width_, h_ - 1, nx_ + 2, ny_ + 2};  // one ring beyond interior
  ctx_.parallel_for(
      info(KernelId::kInitCoef), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        const double wc = recip ? 1.0 / density(x, y) : density(x, y);
        const double wl = recip ? 1.0 / density(x - 1, y) : density(x - 1, y);
        const double wb = recip ? 1.0 / density(x, y - 1) : density(x, y - 1);
        kx(x, y) = rx * (wl + wc) / (2.0 * wl * wc);
        ky(x, y) = ry * (wb + wc) / (2.0 * wb * wc);
      });
}

void KokkosPort::halo_update(unsigned fields, int depth) {
  ctx_.launcher().run(hinfo(fields, depth), [&] {
    auto reflect = [&](FieldId id) {
      comm::reflect_boundary(view(id).span(), h_, comm::kAllFaces);
    };
    if (fields & core::kMaskU) reflect(FieldId::kU);
    if (fields & core::kMaskP) reflect(FieldId::kP);
    if (fields & core::kMaskSd) reflect(FieldId::kSd);
    if (fields & core::kMaskR) reflect(FieldId::kR);
    if (fields & core::kMaskW) reflect(FieldId::kW);
    if (fields & core::kMaskDensity) reflect(FieldId::kDensity);
    if (fields & core::kMaskEnergy0) reflect(FieldId::kEnergy0);
  });
}

void KokkosPort::calc_residual() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy), r = view(FieldId::kR);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kCalcResidual), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        r(x, y) = u0(x, y) - stencil(u, kx, ky, x, y);
      });
}

double KokkosPort::calc_2norm(core::NormTarget target) {
  View v = view(target == core::NormTarget::kResidual ? FieldId::kR
                                                      : FieldId::kU0);
  const Geom g{width_, h_, nx_, ny_};
  double norm = 0.0;
  ctx_.parallel_reduce(info(KernelId::kCalc2Norm), flat_policy(),
                       [=](std::int64_t i, double& acc) {
                         int x, y;
                         if (!g.interior(i, x, y)) return;
                         acc += v(x, y) * v(x, y);
                       },
                       norm);
  return norm;
}

void KokkosPort::finalise() {
  View u = view(FieldId::kU), density = view(FieldId::kDensity);
  View energy = view(FieldId::kEnergy);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kFinalise), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        energy(x, y) = u(x, y) / density(x, y);
      });
}

core::FieldSummary KokkosPort::field_summary() {
  FieldSummaryFunctor functor{view(FieldId::kDensity), view(FieldId::kEnergy0),
                              view(FieldId::kU),
                              Geom{width_, h_, nx_, ny_},
                              mesh_.cell_area()};
  SummaryValue value;
  ctx_.parallel_reduce(info(KernelId::kFieldSummary), flat_policy(), functor,
                       value);
  return core::FieldSummary{value.vol, value.mass, value.ie, value.temp};
}

double KokkosPort::cg_init() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View w = view(FieldId::kW), r = view(FieldId::kR), p = view(FieldId::kP);
  const Geom g{width_, h_, nx_, ny_};
  double rro = 0.0;
  ctx_.parallel_reduce(info(KernelId::kCgInit), flat_policy(),
                       [=](std::int64_t i, double& acc) {
                         int x, y;
                         if (!g.interior(i, x, y)) return;
                         const double au = stencil(u, kx, ky, x, y);
                         w(x, y) = au;
                         const double res = u0(x, y) - au;
                         r(x, y) = res;
                         p(x, y) = res;
                         acc += res * res;
                       },
                       rro);
  return rro;
}

double KokkosPort::cg_calc_w() {
  View p = view(FieldId::kP), kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View w = view(FieldId::kW);
  const Geom g{width_, h_, nx_, ny_};
  double pw = 0.0;
  ctx_.parallel_reduce(info(KernelId::kCgCalcW), flat_policy(),
                       [=](std::int64_t i, double& acc) {
                         int x, y;
                         if (!g.interior(i, x, y)) return;
                         const double ap = stencil(p, kx, ky, x, y);
                         w(x, y) = ap;
                         acc += ap * p(x, y);
                       },
                       pw);
  return pw;
}

double KokkosPort::cg_calc_ur(double alpha) {
  View u = view(FieldId::kU), p = view(FieldId::kP);
  View r = view(FieldId::kR), w = view(FieldId::kW);
  const Geom g{width_, h_, nx_, ny_};
  double rrn = 0.0;
  ctx_.parallel_reduce(info(KernelId::kCgCalcUr), flat_policy(),
                       [=](std::int64_t i, double& acc) {
                         int x, y;
                         if (!g.interior(i, x, y)) return;
                         u(x, y) += alpha * p(x, y);
                         const double res = r(x, y) - alpha * w(x, y);
                         r(x, y) = res;
                         acc += res * res;
                       },
                       rrn);
  return rrn;
}

void KokkosPort::cg_calc_p(double beta) {
  View r = view(FieldId::kR), p = view(FieldId::kP);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kCgCalcP), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        p(x, y) = r(x, y) + beta * p(x, y);
      });
}

void KokkosPort::cheby_init(double theta) {
  View r = view(FieldId::kR), p = view(FieldId::kP), u = view(FieldId::kU);
  const Geom g{width_, h_, nx_, ny_};
  const double theta_inv = 1.0 / theta;
  ctx_.parallel_for(
      info(KernelId::kChebyInit), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        p(x, y) = r(x, y) * theta_inv;
        u(x, y) += p(x, y);
      });
}

void KokkosPort::cheby_iterate(double alpha, double beta) {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View r = view(FieldId::kR), p = view(FieldId::kP);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kChebyIterate), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        const double res = u0(x, y) - stencil(u, kx, ky, x, y);
        r(x, y) = res;
        p(x, y) = alpha * p(x, y) + beta * res;
      });
  // Second sweep of the fused iterate (metered once per the catalogue).
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) u(x, y) += p(x, y);
  }
}

void KokkosPort::ppcg_init_sd(double theta) {
  View r = view(FieldId::kR), sd = view(FieldId::kSd);
  const Geom g{width_, h_, nx_, ny_};
  const double theta_inv = 1.0 / theta;
  ctx_.parallel_for(
      info(KernelId::kPpcgInitSd), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        sd(x, y) = r(x, y) * theta_inv;
      });
}

void KokkosPort::ppcg_inner(double alpha, double beta) {
  View u = view(FieldId::kU), r = view(FieldId::kR), sd = view(FieldId::kSd);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kPpcgInner), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        r(x, y) -= stencil(sd, kx, ky, x, y);
        u(x, y) += sd(x, y);
      });
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) {
      sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
    }
  }
}

void KokkosPort::jacobi_copy_u() {
  View u = view(FieldId::kU), w = view(FieldId::kW);
  // Full padded range: the iterate's stencil reads w in the halo.
  ctx_.parallel_for(
      info(KernelId::kJacobiCopyU), flat_policy(), [=](std::int64_t i) {
        w[static_cast<std::size_t>(i)] = u[static_cast<std::size_t>(i)];
      });
}

void KokkosPort::jacobi_iterate() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0), w = view(FieldId::kW);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kJacobiIterate), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        const double diag =
            1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
        u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                   kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                   ky(x, y) * w(x, y - 1)) /
                  diag;
      });
}

core::CgFusedW KokkosPort::cg_calc_w_fused() {
  CgWFusedFunctor functor{view(FieldId::kP), view(FieldId::kKx),
                          view(FieldId::kKy), view(FieldId::kW),
                          Geom{width_, h_, nx_, ny_}};
  DotsValue value;
  ctx_.parallel_reduce(info(KernelId::kCgCalcWFused), flat_policy(), functor,
                       value);
  return core::CgFusedW{value.pw, value.ww};
}

double KokkosPort::cg_fused_ur_p(double alpha, double beta_prev) {
  View u = view(FieldId::kU), p = view(FieldId::kP);
  View r = view(FieldId::kR), w = view(FieldId::kW);
  const Geom g{width_, h_, nx_, ny_};
  double rrn = 0.0;
  ctx_.parallel_reduce(info(KernelId::kCgFusedUrP), flat_policy(),
                       [=](std::int64_t i, double& acc) {
                         int x, y;
                         if (!g.interior(i, x, y)) return;
                         u(x, y) += alpha * p(x, y);
                         const double res = r(x, y) - alpha * w(x, y);
                         r(x, y) = res;
                         p(x, y) = res + beta_prev * p(x, y);
                         acc += res * res;
                       },
                       rrn);
  return rrn;
}

double KokkosPort::fused_residual_norm() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy), r = view(FieldId::kR);
  const Geom g{width_, h_, nx_, ny_};
  double norm = 0.0;
  ctx_.parallel_reduce(info(KernelId::kFusedResidualNorm), flat_policy(),
                       [=](std::int64_t i, double& acc) {
                         int x, y;
                         if (!g.interior(i, x, y)) return;
                         const double res = u0(x, y) - stencil(u, kx, ky, x, y);
                         r(x, y) = res;
                         acc += res * res;
                       },
                       norm);
  return norm;
}

void KokkosPort::cheby_fused_iterate(double alpha, double beta) {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View r = view(FieldId::kR), p = view(FieldId::kP);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kChebyFusedIterate), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        const double res = u0(x, y) - stencil(u, kx, ky, x, y);
        r(x, y) = res;
        p(x, y) = alpha * p(x, y) + beta * res;
      });
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) u(x, y) += p(x, y);
  }
}

void KokkosPort::ppcg_fused_inner(double alpha, double beta) {
  View u = view(FieldId::kU), r = view(FieldId::kR), sd = view(FieldId::kSd);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kPpcgFusedInner), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        r(x, y) -= stencil(sd, kx, ky, x, y);
        u(x, y) += sd(x, y);
      });
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) {
      sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
    }
  }
}

void KokkosPort::jacobi_fused_copy_iterate() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0), w = view(FieldId::kW);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  // Copy over the full padded range (the stencil reads w in the halo), then
  // iterate — one fused charge.
  ctx_.parallel_for(
      info(KernelId::kJacobiFusedCopyIterate), flat_policy(),
      [=](std::int64_t i) {
        w[static_cast<std::size_t>(i)] = u[static_cast<std::size_t>(i)];
      });
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                 kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                 ky(x, y) * w(x, y - 1)) /
                diag;
    }
  }
}

core::CgPipeDots KokkosPort::cg_pipe_init() {
  CgPipeInitFunctor functor{view(FieldId::kR), view(FieldId::kKx),
                            view(FieldId::kKy), view(FieldId::kW),
                            Geom{width_, h_, nx_, ny_}};
  PipeDotsValue value;
  ctx_.parallel_reduce(info(KernelId::kCgPipeInit), flat_policy(), functor,
                       value);
  return core::CgPipeDots{value.rr, value.rw};
}

void KokkosPort::cg_pipe_calc_q() {
  View w = view(FieldId::kW), kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View q = view(FieldId::kQ);
  const Geom g{width_, h_, nx_, ny_};
  ctx_.parallel_for(
      info(KernelId::kCgPipeCalcQ), flat_policy(), [=](std::int64_t i) {
        int x, y;
        if (!g.interior(i, x, y)) return;
        q(x, y) = stencil(w, kx, ky, x, y);
      });
}

core::CgPipeDots KokkosPort::cg_pipe_update(double alpha, double beta) {
  CgPipeUpdateFunctor functor{view(FieldId::kZ),  view(FieldId::kSd),
                              view(FieldId::kP),  view(FieldId::kU),
                              view(FieldId::kR),  view(FieldId::kW),
                              view(FieldId::kQ),  Geom{width_, h_, nx_, ny_},
                              alpha,              beta};
  PipeDotsValue value;
  ctx_.parallel_reduce(info(KernelId::kCgPipeUpdate), flat_policy(), functor,
                       value);
  return core::CgPipeDots{value.rr, value.rw};
}

void KokkosPort::read_u(util::Span2D<double> out) {
  View u = view(FieldId::kU);
  ctx_.deep_copy_to_host(u);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) out(x, y) = u(x, y);
  }
}

void KokkosPort::download_energy(core::Chunk& chunk) {
  View energy = view(FieldId::kEnergy);
  ctx_.deep_copy_to_host(energy);
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) dst(x, y) = energy(x, y);
  }
}

// ---------------------------------------------------------------------------
// Hierarchical parallelism variant (paper Fig 7)
// ---------------------------------------------------------------------------

KokkosHpPort::KokkosHpPort(sim::DeviceId device, const core::Mesh& mesh,
                           std::uint64_t run_seed)
    : KokkosPort(sim::Model::kKokkosHp, device, mesh, run_seed) {}

void KokkosHpPort::calc_residual() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy), r = view(FieldId::kR);
  const int h = h_, nx = nx_;
  ctx_.parallel_for_team(
      info(KernelId::kCalcResidual), row_policy(), [=](const TeamMember& t) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          r(x, y) = u0(x, y) - stencil(u, kx, ky, x, y);
        });
      });
}

double KokkosHpPort::calc_2norm(core::NormTarget target) {
  View v = view(target == core::NormTarget::kResidual ? FieldId::kR
                                                      : FieldId::kU0);
  const int h = h_, nx = nx_;
  double norm = 0.0;
  ctx_.parallel_reduce_team(
      info(KernelId::kCalc2Norm), row_policy(),
      [=](const TeamMember& t, double& acc) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(
            t, nx, [&](int i) { acc += v(h + i, y) * v(h + i, y); });
      },
      norm);
  return norm;
}

double KokkosHpPort::cg_init() {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View w = view(FieldId::kW), r = view(FieldId::kR), p = view(FieldId::kP);
  const int h = h_, nx = nx_;
  double rro = 0.0;
  ctx_.parallel_reduce_team(
      info(KernelId::kCgInit), row_policy(),
      [=](const TeamMember& t, double& acc) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          const double au = stencil(u, kx, ky, x, y);
          w(x, y) = au;
          const double res = u0(x, y) - au;
          r(x, y) = res;
          p(x, y) = res;
          acc += res * res;
        });
      },
      rro);
  return rro;
}

double KokkosHpPort::cg_calc_w() {
  View p = view(FieldId::kP), kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View w = view(FieldId::kW);
  const int h = h_, nx = nx_;
  double pw = 0.0;
  ctx_.parallel_reduce_team(
      info(KernelId::kCgCalcW), row_policy(),
      [=](const TeamMember& t, double& acc) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          const double ap = stencil(p, kx, ky, x, y);
          w(x, y) = ap;
          acc += ap * p(x, y);
        });
      },
      pw);
  return pw;
}

double KokkosHpPort::cg_calc_ur(double alpha) {
  View u = view(FieldId::kU), p = view(FieldId::kP);
  View r = view(FieldId::kR), w = view(FieldId::kW);
  const int h = h_, nx = nx_;
  double rrn = 0.0;
  ctx_.parallel_reduce_team(
      info(KernelId::kCgCalcUr), row_policy(),
      [=](const TeamMember& t, double& acc) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          u(x, y) += alpha * p(x, y);
          const double res = r(x, y) - alpha * w(x, y);
          r(x, y) = res;
          acc += res * res;
        });
      },
      rrn);
  return rrn;
}

void KokkosHpPort::cg_calc_p(double beta) {
  View r = view(FieldId::kR), p = view(FieldId::kP);
  const int h = h_, nx = nx_;
  ctx_.parallel_for_team(
      info(KernelId::kCgCalcP), row_policy(), [=](const TeamMember& t) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          p(x, y) = r(x, y) + beta * p(x, y);
        });
      });
}

void KokkosHpPort::cheby_init(double theta) {
  View r = view(FieldId::kR), p = view(FieldId::kP), u = view(FieldId::kU);
  const int h = h_, nx = nx_;
  const double theta_inv = 1.0 / theta;
  ctx_.parallel_for_team(
      info(KernelId::kChebyInit), row_policy(), [=](const TeamMember& t) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          p(x, y) = r(x, y) * theta_inv;
          u(x, y) += p(x, y);
        });
      });
}

void KokkosHpPort::cheby_iterate(double alpha, double beta) {
  View u = view(FieldId::kU), u0 = view(FieldId::kU0);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  View r = view(FieldId::kR), p = view(FieldId::kP);
  const int h = h_, nx = nx_;
  ctx_.parallel_for_team(
      info(KernelId::kChebyIterate), row_policy(), [=](const TeamMember& t) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          const double res = u0(x, y) - stencil(u, kx, ky, x, y);
          r(x, y) = res;
          p(x, y) = alpha * p(x, y) + beta * res;
        });
      });
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) u(x, y) += p(x, y);
  }
}

void KokkosHpPort::ppcg_init_sd(double theta) {
  View r = view(FieldId::kR), sd = view(FieldId::kSd);
  const int h = h_, nx = nx_;
  const double theta_inv = 1.0 / theta;
  ctx_.parallel_for_team(
      info(KernelId::kPpcgInitSd), row_policy(), [=](const TeamMember& t) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(
            t, nx, [&](int i) { sd(h + i, y) = r(h + i, y) * theta_inv; });
      });
}

void KokkosHpPort::ppcg_inner(double alpha, double beta) {
  View u = view(FieldId::kU), r = view(FieldId::kR), sd = view(FieldId::kSd);
  View kx = view(FieldId::kKx), ky = view(FieldId::kKy);
  const int h = h_, nx = nx_;
  ctx_.parallel_for_team(
      info(KernelId::kPpcgInner), row_policy(), [=](const TeamMember& t) {
        const int y = h + t.league_rank();
        kokkoslike::team_thread_range(t, nx, [&](int i) {
          const int x = h + i;
          r(x, y) -= stencil(sd, kx, ky, x, y);
          u(x, y) += sd(x, y);
        });
      });
  for (int y = h_; y < h_ + ny_; ++y) {
    for (int x = h_; x < h_ + nx_; ++x) {
      sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
    }
  }
}

}  // namespace tl::ports
