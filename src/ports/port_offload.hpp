#pragma once
// Directive-offload TeaLeaf ports: OpenMP 4.0 `target` and OpenACC
// `kernels`. The paper found the two ports near-identical in structure (the
// OpenACC port was literally derived from the OpenMP 4.0 one, swapping
// directives while keeping the same data transitions); this class implements
// the shared structure and routes each kernel through the front-end matching
// its Model, so call sites read as `omp target` or `acc kernels` code.
//
// Data management mirrors the ports: a data region at the highest possible
// scope (one per step: upload_state maps density/energy0 `to`, work arrays
// `alloc`), `update from` for the energy readback, one synchronous target
// region per kernel (the per-invocation overhead the paper measured).

#include <optional>

#include "core/fields.hpp"
#include "models/offload/offload.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class OffloadPort final : public PortBase {
 public:
  OffloadPort(sim::Model model, sim::DeviceId device, const core::Mesh& mesh,
              std::uint64_t run_seed);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants: the multi-sum sweeps follow field_summary's shape — one
  // region, reduction clause on the primary sum, extra scalars riding along.
  // No kCapRegions: the distributed overlap pipeline falls back to full
  // sweeps behind a blocking halo exchange (see core/kernels_api.hpp).
  unsigned caps() const override {
    return core::kAllKernelCaps | core::kCapPipelined;
  }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG: reduction clause on r.r, w.r rides along as a mapped
  // scalar (the cg_calc_w_fused shape).
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override {
    return rt_.launcher().clock();
  }
  void begin_run(std::uint64_t run_seed) override {
    rt_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    return storage_.field(id);
  }

 private:
  double* fp(core::FieldId id) { return storage_.field(id).data(); }
  util::Span2D<double> f(core::FieldId id) { return storage_.field(id); }
  std::span<double> fspan(core::FieldId id) {
    return {storage_.field(id).data(), mesh_.padded_cells()};
  }

  /// Directive front-end dispatch: `#pragma omp target teams distribute
  /// parallel for collapse(2)` vs `#pragma acc kernels loop independent
  /// collapse(2)`. The body receives the flat *interior* cell index.
  template <typename Body>
  void pfor(const sim::LaunchInfo& info, Body&& body);
  template <typename Body>
  double preduce(const sim::LaunchInfo& info, Body&& body);

  /// Flat interior index -> padded flat index.
  std::int64_t pad_index(std::int64_t i) const {
    const std::int64_t x = h_ + (i % nx_);
    const std::int64_t y = h_ + (i / nx_);
    return y * width_ + x;
  }

  mutable offload::Runtime rt_;
  core::Chunk storage_;
  std::optional<offload::DataScope> step_scope_;
};

}  // namespace tl::ports
