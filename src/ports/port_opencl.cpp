#include "ports/port_opencl.hpp"

#include <stdexcept>

#include "comm/halo.hpp"

namespace tl::ports {

using core::FieldId;
using core::KernelId;
using ocllike::Buffer;
using ocllike::KernelArg;
using ocllike::NDItem;

namespace {

// Kernel argument convention ("program source" below): every kernel takes
//   [0] n (interior cells)  [1] width  [2] h  [3] nx
// then its buffers and scalars. Reductions take the partials buffer last.

struct Unpack {
  const std::vector<KernelArg>& args;
  Buffer& b(std::size_t i) const { return *std::get<Buffer*>(args[i]); }
  double d(std::size_t i) const { return std::get<double>(args[i]); }
  std::int64_t n(std::size_t i) const { return std::get<std::int64_t>(args[i]); }
};

/// Interior flat index -> padded flat index.
inline std::int64_t pad_index(std::int64_t idx, std::int64_t width,
                              std::int64_t h, std::int64_t nx) {
  const std::int64_t x = h + (idx % nx);
  const std::int64_t y = h + (idx / nx);
  return y * width + x;
}

inline double stencil(const Buffer& v, const Buffer& kx, const Buffer& ky,
                      std::size_t i, std::size_t width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}

/// Work-group reduction epilogue: store the item's value in local memory;
/// the final item of the group (in-order emulation) folds the group's local
/// memory into the partials buffer.
inline void wg_reduce(const NDItem& item, double value, Buffer& partials) {
  item.local_mem[item.local_id] = value;
  if (item.local_id + 1 == item.local_size) {
    double sum = 0.0;
    for (std::size_t l = 0; l < item.local_size; ++l) sum += item.local_mem[l];
    partials[item.group_id] = sum;
  }
}

std::map<std::string, ocllike::KernelFn> program_source() {
  std::map<std::string, ocllike::KernelFn> src;

  src["init_u"] = [](const NDItem& item, const std::vector<KernelArg>& args) {
    const Unpack a{args};
    // Whole padded allocation: n here is padded cells, no index reform.
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = item.global_id;
    Buffer& density = a.b(4);
    Buffer& energy0 = a.b(5);
    Buffer& u = a.b(6);
    Buffer& u0 = a.b(7);
    const double v = energy0[i] * density[i];
    u[i] = v;
    u0[i] = v;
  };

  src["init_coef"] = [](const NDItem& item,
                        const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    // Iterates the (nx+2)x(ny+2) ring-extended interior.
    const std::int64_t width = a.n(1), h = a.n(2), nx = a.n(3);
    const std::int64_t idx = static_cast<std::int64_t>(item.global_id);
    const std::int64_t x = (h - 1) + (idx % (nx + 2));
    const std::int64_t y = (h - 1) + (idx / (nx + 2));
    const std::size_t i = static_cast<std::size_t>(y * width + x);
    Buffer& density = a.b(4);
    Buffer& kx = a.b(5);
    Buffer& ky = a.b(6);
    const double rx = a.d(7), ry = a.d(8);
    const bool recip = a.n(9) != 0;
    auto w_of = [&](std::size_t j) {
      return recip ? 1.0 / density[j] : density[j];
    };
    const double wc = w_of(i);
    const double wl = w_of(i - 1);
    const double wb = w_of(i - static_cast<std::size_t>(width));
    kx[i] = rx * (wl + wc) / (2.0 * wl * wc);
    ky[i] = ry * (wb + wc) / (2.0 * wb * wc);
  };

  src["calc_residual"] = [](const NDItem& item,
                            const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& u = a.b(4);
    Buffer& u0 = a.b(5);
    Buffer& kx = a.b(6);
    Buffer& ky = a.b(7);
    Buffer& r = a.b(8);
    r[i] = u0[i] - stencil(u, kx, ky, i, static_cast<std::size_t>(a.n(1)));
  };

  src["calc_2norm"] = [](const NDItem& item,
                         const std::vector<KernelArg>& args) {
    const Unpack a{args};
    double value = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& v = a.b(4);
      value = v[i] * v[i];
    }
    wg_reduce(item, value, a.b(5));
  };

  src["finalise"] = [](const NDItem& item,
                       const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& u = a.b(4);
    Buffer& density = a.b(5);
    Buffer& energy = a.b(6);
    energy[i] = u[i] / density[i];
  };

  // field_summary reduces four quantities; the port runs it as a volume
  // reduction with the other three accumulated into dedicated partial rows
  // (partials buffer holds 4 strided sections).
  src["field_summary"] = [](const NDItem& item,
                            const std::vector<KernelArg>& args) {
    const Unpack a{args};
    const std::size_t groups = item.global_size / item.local_size;
    double vol = 0.0, mass = 0.0, ie = 0.0, temp = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& density = a.b(4);
      Buffer& energy0 = a.b(5);
      Buffer& u = a.b(6);
      const double cell_vol = a.d(7);
      vol = cell_vol;
      mass = density[i] * cell_vol;
      ie = density[i] * energy0[i] * cell_vol;
      temp = u[i] * cell_vol;
    }
    Buffer& partials = a.b(8);
    item.local_mem[item.local_id] = vol;
    if (item.local_id + 1 == item.local_size) {
      double sum = 0.0;
      for (std::size_t l = 0; l < item.local_size; ++l) sum += item.local_mem[l];
      partials[item.group_id] = sum;
    }
    // The three companion sums accumulate directly into their sections (the
    // in-order emulation makes this race-free).
    partials[groups + item.group_id] += mass;
    partials[2 * groups + item.group_id] += ie;
    partials[3 * groups + item.group_id] += temp;
  };

  src["cg_init"] = [](const NDItem& item, const std::vector<KernelArg>& args) {
    const Unpack a{args};
    double value = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& u = a.b(4);
      Buffer& u0 = a.b(5);
      Buffer& kx = a.b(6);
      Buffer& ky = a.b(7);
      Buffer& w = a.b(8);
      Buffer& r = a.b(9);
      Buffer& p = a.b(10);
      const double au = stencil(u, kx, ky, i, static_cast<std::size_t>(a.n(1)));
      w[i] = au;
      const double res = u0[i] - au;
      r[i] = res;
      p[i] = res;
      value = res * res;
    }
    wg_reduce(item, value, a.b(11));
  };

  src["cg_calc_w"] = [](const NDItem& item,
                        const std::vector<KernelArg>& args) {
    const Unpack a{args};
    double value = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& p = a.b(4);
      Buffer& kx = a.b(5);
      Buffer& ky = a.b(6);
      Buffer& w = a.b(7);
      const double ap = stencil(p, kx, ky, i, static_cast<std::size_t>(a.n(1)));
      w[i] = ap;
      value = ap * p[i];
    }
    wg_reduce(item, value, a.b(8));
  };

  src["cg_calc_ur"] = [](const NDItem& item,
                         const std::vector<KernelArg>& args) {
    const Unpack a{args};
    double value = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& u = a.b(4);
      Buffer& p = a.b(5);
      Buffer& r = a.b(6);
      Buffer& w = a.b(7);
      const double alpha = a.d(8);
      u[i] += alpha * p[i];
      const double res = r[i] - alpha * w[i];
      r[i] = res;
      value = res * res;
    }
    wg_reduce(item, value, a.b(9));
  };

  src["cg_calc_p"] = [](const NDItem& item,
                        const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& r = a.b(4);
    Buffer& p = a.b(5);
    const double beta = a.d(6);
    p[i] = r[i] + beta * p[i];
  };

  src["cheby_init"] = [](const NDItem& item,
                         const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& r = a.b(4);
    Buffer& p = a.b(5);
    Buffer& u = a.b(6);
    const double theta_inv = a.d(7);
    p[i] = r[i] * theta_inv;
    u[i] += p[i];
  };

  src["cheby_calc_p"] = [](const NDItem& item,
                           const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& u = a.b(4);
    Buffer& u0 = a.b(5);
    Buffer& kx = a.b(6);
    Buffer& ky = a.b(7);
    Buffer& r = a.b(8);
    Buffer& p = a.b(9);
    const double alpha = a.d(10), beta = a.d(11);
    const double res =
        u0[i] - stencil(u, kx, ky, i, static_cast<std::size_t>(a.n(1)));
    r[i] = res;
    p[i] = alpha * p[i] + beta * res;
  };

  src["cheby_calc_u"] = [](const NDItem& item,
                           const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& u = a.b(4);
    Buffer& p = a.b(5);
    u[i] += p[i];
  };

  src["ppcg_init_sd"] = [](const NDItem& item,
                           const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& r = a.b(4);
    Buffer& sd = a.b(5);
    const double theta_inv = a.d(6);
    sd[i] = r[i] * theta_inv;
  };

  src["ppcg_inner_ru"] = [](const NDItem& item,
                            const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& u = a.b(4);
    Buffer& r = a.b(5);
    Buffer& sd = a.b(6);
    Buffer& kx = a.b(7);
    Buffer& ky = a.b(8);
    r[i] -= stencil(sd, kx, ky, i, static_cast<std::size_t>(a.n(1)));
    u[i] += sd[i];
  };

  // Full padded range (like init_u): the iterate's stencil reads w's halo.
  src["jacobi_copy_u"] = [](const NDItem& item,
                            const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = item.global_id;
    Buffer& u = a.b(4);
    Buffer& w = a.b(5);
    w[i] = u[i];
  };

  src["jacobi_iterate"] = [](const NDItem& item,
                             const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t width = static_cast<std::size_t>(a.n(1));
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& u = a.b(4);
    Buffer& u0 = a.b(5);
    Buffer& w = a.b(6);
    Buffer& kx = a.b(7);
    Buffer& ky = a.b(8);
    const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
    u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
            ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
           diag;
  };

  // Fused CG w sweep: pw through the work-group reduction, ww into a
  // companion partial section (field_summary's layout).
  src["cg_calc_w_fused"] = [](const NDItem& item,
                              const std::vector<KernelArg>& args) {
    const Unpack a{args};
    const std::size_t groups = item.global_size / item.local_size;
    double pw = 0.0, ww = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& p = a.b(4);
      Buffer& kx = a.b(5);
      Buffer& ky = a.b(6);
      Buffer& w = a.b(7);
      const double ap = stencil(p, kx, ky, i, static_cast<std::size_t>(a.n(1)));
      w[i] = ap;
      pw = ap * p[i];
      ww = ap * ap;
    }
    Buffer& partials = a.b(8);
    wg_reduce(item, pw, partials);
    partials[groups + item.group_id] += ww;
  };

  src["cg_fused_ur_p"] = [](const NDItem& item,
                            const std::vector<KernelArg>& args) {
    const Unpack a{args};
    double value = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& u = a.b(4);
      Buffer& p = a.b(5);
      Buffer& r = a.b(6);
      Buffer& w = a.b(7);
      const double alpha = a.d(8);
      const double beta_prev = a.d(9);
      u[i] += alpha * p[i];
      const double res = r[i] - alpha * w[i];
      r[i] = res;
      p[i] = res + beta_prev * p[i];
      value = res * res;
    }
    wg_reduce(item, value, a.b(10));
  };

  src["fused_residual_norm"] = [](const NDItem& item,
                                  const std::vector<KernelArg>& args) {
    const Unpack a{args};
    double value = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& u = a.b(4);
      Buffer& u0 = a.b(5);
      Buffer& kx = a.b(6);
      Buffer& ky = a.b(7);
      Buffer& r = a.b(8);
      const double res =
          u0[i] - stencil(u, kx, ky, i, static_cast<std::size_t>(a.n(1)));
      r[i] = res;
      value = res * res;
    }
    wg_reduce(item, value, a.b(9));
  };

  // Pipelined CG: both dots per sweep — r.r through the work-group
  // reduction, w.r into a companion partial section (field_summary layout).
  src["cg_pipe_init"] = [](const NDItem& item,
                           const std::vector<KernelArg>& args) {
    const Unpack a{args};
    const std::size_t groups = item.global_size / item.local_size;
    double rr = 0.0, rw = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& r = a.b(4);
      Buffer& kx = a.b(5);
      Buffer& ky = a.b(6);
      Buffer& w = a.b(7);
      const double ar = stencil(r, kx, ky, i, static_cast<std::size_t>(a.n(1)));
      w[i] = ar;
      rr = r[i] * r[i];
      rw = ar * r[i];
    }
    Buffer& partials = a.b(8);
    wg_reduce(item, rr, partials);
    partials[groups + item.group_id] += rw;
  };

  src["cg_pipe_calc_q"] = [](const NDItem& item,
                             const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& w = a.b(4);
    Buffer& kx = a.b(5);
    Buffer& ky = a.b(6);
    Buffer& q = a.b(7);
    q[i] = stencil(w, kx, ky, i, static_cast<std::size_t>(a.n(1)));
  };

  src["cg_pipe_update"] = [](const NDItem& item,
                             const std::vector<KernelArg>& args) {
    const Unpack a{args};
    const std::size_t groups = item.global_size / item.local_size;
    double rr = 0.0, rw = 0.0;
    if (item.global_id < static_cast<std::size_t>(a.n(0))) {
      const std::size_t i = static_cast<std::size_t>(pad_index(
          static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
      Buffer& z = a.b(4);
      Buffer& sd = a.b(5);
      Buffer& p = a.b(6);
      Buffer& u = a.b(7);
      Buffer& r = a.b(8);
      Buffer& w = a.b(9);
      Buffer& q = a.b(10);
      const double alpha = a.d(11);
      const double beta = a.d(12);
      const double zn = q[i] + beta * z[i];
      z[i] = zn;
      const double sn = w[i] + beta * sd[i];
      sd[i] = sn;
      const double pn = r[i] + beta * p[i];
      p[i] = pn;
      u[i] += alpha * pn;
      const double rn = r[i] - alpha * sn;
      r[i] = rn;
      const double wn = w[i] - alpha * zn;
      w[i] = wn;
      rr = rn * rn;
      rw = wn * rn;
    }
    Buffer& partials = a.b(13);
    wg_reduce(item, rr, partials);
    partials[groups + item.group_id] += rw;
  };

  src["ppcg_inner_sd"] = [](const NDItem& item,
                            const std::vector<KernelArg>& args) {
    const Unpack a{args};
    if (item.global_id >= static_cast<std::size_t>(a.n(0))) return;
    const std::size_t i = static_cast<std::size_t>(pad_index(
        static_cast<std::int64_t>(item.global_id), a.n(1), a.n(2), a.n(3)));
    Buffer& r = a.b(4);
    Buffer& sd = a.b(5);
    const double alpha = a.d(6), beta = a.d(7);
    sd[i] = alpha * sd[i] + beta * r[i];
  };

  return src;
}

}  // namespace

OpenClPort::OpenClPort(sim::DeviceId device, const core::Mesh& mesh,
                       std::uint64_t run_seed)
    : PortBase(sim::Model::kOpenCl, mesh),
      ctx_(sim::Model::kOpenCl, device, run_seed),
      queue_(ctx_),
      program_(ocllike::Program::build(ctx_, program_source())) {
  // Boilerplate: confirm the requested device exists on a platform.
  bool found = false;
  for (const auto& pd : ocllike::get_platform_devices()) {
    if (pd.id == device) found = true;
  }
  if (!found) throw std::invalid_argument("OpenClPort: no such device");

  for (const FieldId id : core::kAllFields) {
    buffers_[static_cast<std::size_t>(id)] =
        std::make_unique<Buffer>(ctx_, mesh.padded_cells());
  }
  const std::size_t padded_groups =
      (mesh.padded_cells() + kWorkGroupSize - 1) / kWorkGroupSize;
  partials_ = std::make_unique<Buffer>(
      ctx_, 4 * std::max(group_count(), padded_groups));
  host_scratch_.resize(mesh.padded_cells());

  for (const char* name :
       {"init_u", "init_coef", "calc_residual", "calc_2norm", "finalise",
        "field_summary", "cg_init", "cg_calc_w", "cg_calc_ur", "cg_calc_p",
        "cheby_init", "cheby_calc_p", "cheby_calc_u", "ppcg_init_sd",
        "ppcg_inner_ru", "ppcg_inner_sd", "jacobi_copy_u", "jacobi_iterate",
        "cg_calc_w_fused", "cg_fused_ur_p", "fused_residual_norm",
        "cg_pipe_init", "cg_pipe_calc_q", "cg_pipe_update"}) {
    kernels_.emplace(name, ocllike::Kernel(program_, name));
  }
}

void OpenClPort::run_kernel(const std::string& name,
                            const sim::LaunchInfo& info) {
  queue_.enqueue_nd_range(kernels_.at(name), info, interior_global(),
                          kWorkGroupSize);
  queue_.finish();
}

double OpenClPort::run_reduction(const std::string& name,
                                 const sim::LaunchInfo& info) {
  run_kernel(name, info);
  // Finish the per-group partials (in-launch tree tail, priced by the
  // model's reduction overhead — see port_base metering notes).
  double sum = 0.0;
  for (std::size_t g = 0; g < group_count(); ++g) sum += (*partials_)[g];
  return sum;
}

void OpenClPort::upload_state(const core::Chunk& chunk) {
  for (const FieldId id : {FieldId::kDensity, FieldId::kEnergy0}) {
    const auto src = chunk.field(id);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        host_scratch_[static_cast<std::size_t>(y) * width_ + x] = src(x, y);
      }
    }
    queue_.enqueue_write(buf(id), host_scratch_);
  }
}

void OpenClPort::init_u() {
  ocllike::Kernel& k = kernels_.at("init_u");
  k.set_arg(0, static_cast<std::int64_t>(mesh_.padded_cells()));
  k.set_arg(1, static_cast<std::int64_t>(width_));
  k.set_arg(2, static_cast<std::int64_t>(h_));
  k.set_arg(3, static_cast<std::int64_t>(nx_));
  k.set_arg(4, &buf(FieldId::kDensity));
  k.set_arg(5, &buf(FieldId::kEnergy0));
  k.set_arg(6, &buf(FieldId::kU));
  k.set_arg(7, &buf(FieldId::kU0));
  const std::size_t global = (mesh_.padded_cells() + kWorkGroupSize - 1) /
                             kWorkGroupSize * kWorkGroupSize;
  queue_.enqueue_nd_range(k, info(KernelId::kInitU), global, kWorkGroupSize);
  queue_.finish();
}

void OpenClPort::init_coefficients(core::Coefficient coefficient, double rx,
                                   double ry) {
  ocllike::Kernel& k = kernels_.at("init_coef");
  const std::int64_t ring_cells =
      static_cast<std::int64_t>(nx_ + 2) * (ny_ + 2);
  k.set_arg(0, ring_cells);
  k.set_arg(1, static_cast<std::int64_t>(width_));
  k.set_arg(2, static_cast<std::int64_t>(h_));
  k.set_arg(3, static_cast<std::int64_t>(nx_));
  k.set_arg(4, &buf(FieldId::kDensity));
  k.set_arg(5, &buf(FieldId::kKx));
  k.set_arg(6, &buf(FieldId::kKy));
  k.set_arg(7, rx);
  k.set_arg(8, ry);
  k.set_arg(9, static_cast<std::int64_t>(
                   coefficient == core::Coefficient::kRecipConductivity));
  const std::size_t global =
      (static_cast<std::size_t>(ring_cells) + kWorkGroupSize - 1) /
      kWorkGroupSize * kWorkGroupSize;
  queue_.enqueue_nd_range(k, info(KernelId::kInitCoef), global, kWorkGroupSize);
  queue_.finish();
}

void OpenClPort::halo_update(unsigned fields, int depth) {
  // Device-resident halo reflection kernel.
  ctx_.launcher().run(hinfo(fields, depth), [&] {
    auto reflect = [&](FieldId id) {
      comm::reflect_boundary(device_span(id), h_, comm::kAllFaces);
    };
    if (fields & core::kMaskU) reflect(FieldId::kU);
    if (fields & core::kMaskP) reflect(FieldId::kP);
    if (fields & core::kMaskSd) reflect(FieldId::kSd);
    if (fields & core::kMaskR) reflect(FieldId::kR);
    if (fields & core::kMaskW) reflect(FieldId::kW);
    if (fields & core::kMaskDensity) reflect(FieldId::kDensity);
    if (fields & core::kMaskEnergy0) reflect(FieldId::kEnergy0);
  });
}

namespace {
void set_geometry_args(ocllike::Kernel& k, std::size_t n, int width, int h,
                       int nx) {
  k.set_arg(0, static_cast<std::int64_t>(n));
  k.set_arg(1, static_cast<std::int64_t>(width));
  k.set_arg(2, static_cast<std::int64_t>(h));
  k.set_arg(3, static_cast<std::int64_t>(nx));
}
}  // namespace

void OpenClPort::calc_residual() {
  ocllike::Kernel& k = kernels_.at("calc_residual");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kU0));
  k.set_arg(6, &buf(FieldId::kKx));
  k.set_arg(7, &buf(FieldId::kKy));
  k.set_arg(8, &buf(FieldId::kR));
  run_kernel("calc_residual", info(KernelId::kCalcResidual));
}

double OpenClPort::calc_2norm(core::NormTarget target) {
  ocllike::Kernel& k = kernels_.at("calc_2norm");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(target == core::NormTarget::kResidual ? FieldId::kR
                                                          : FieldId::kU0));
  k.set_arg(5, partials_.get());
  return run_reduction("calc_2norm", info(KernelId::kCalc2Norm));
}

void OpenClPort::finalise() {
  ocllike::Kernel& k = kernels_.at("finalise");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kDensity));
  k.set_arg(6, &buf(FieldId::kEnergy));
  run_kernel("finalise", info(KernelId::kFinalise));
}

core::FieldSummary OpenClPort::field_summary() {
  // Zero the companion partial sections (mass/ie/temp accumulate in place).
  const std::size_t groups = group_count();
  for (std::size_t i = 0; i < 4 * groups; ++i) (*partials_)[i] = 0.0;
  ocllike::Kernel& k = kernels_.at("field_summary");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kDensity));
  k.set_arg(5, &buf(FieldId::kEnergy0));
  k.set_arg(6, &buf(FieldId::kU));
  k.set_arg(7, mesh_.cell_area());
  k.set_arg(8, partials_.get());
  core::FieldSummary s;
  s.volume = run_reduction("field_summary", info(KernelId::kFieldSummary));
  for (std::size_t g = 0; g < groups; ++g) {
    s.mass += (*partials_)[groups + g];
    s.internal_energy += (*partials_)[2 * groups + g];
    s.temperature += (*partials_)[3 * groups + g];
  }
  return s;
}

double OpenClPort::cg_init() {
  ocllike::Kernel& k = kernels_.at("cg_init");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kU0));
  k.set_arg(6, &buf(FieldId::kKx));
  k.set_arg(7, &buf(FieldId::kKy));
  k.set_arg(8, &buf(FieldId::kW));
  k.set_arg(9, &buf(FieldId::kR));
  k.set_arg(10, &buf(FieldId::kP));
  k.set_arg(11, partials_.get());
  return run_reduction("cg_init", info(KernelId::kCgInit));
}

double OpenClPort::cg_calc_w() {
  ocllike::Kernel& k = kernels_.at("cg_calc_w");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kP));
  k.set_arg(5, &buf(FieldId::kKx));
  k.set_arg(6, &buf(FieldId::kKy));
  k.set_arg(7, &buf(FieldId::kW));
  k.set_arg(8, partials_.get());
  return run_reduction("cg_calc_w", info(KernelId::kCgCalcW));
}

double OpenClPort::cg_calc_ur(double alpha) {
  ocllike::Kernel& k = kernels_.at("cg_calc_ur");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kP));
  k.set_arg(6, &buf(FieldId::kR));
  k.set_arg(7, &buf(FieldId::kW));
  k.set_arg(8, alpha);
  k.set_arg(9, partials_.get());
  return run_reduction("cg_calc_ur", info(KernelId::kCgCalcUr));
}

void OpenClPort::cg_calc_p(double beta) {
  ocllike::Kernel& k = kernels_.at("cg_calc_p");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kR));
  k.set_arg(5, &buf(FieldId::kP));
  k.set_arg(6, beta);
  run_kernel("cg_calc_p", info(KernelId::kCgCalcP));
}

void OpenClPort::cheby_init(double theta) {
  ocllike::Kernel& k = kernels_.at("cheby_init");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kR));
  k.set_arg(5, &buf(FieldId::kP));
  k.set_arg(6, &buf(FieldId::kU));
  k.set_arg(7, 1.0 / theta);
  run_kernel("cheby_init", info(KernelId::kChebyInit));
}

void OpenClPort::cheby_iterate(double alpha, double beta) {
  // Two enqueues inside one metered kernel cost (the fused iterate): the
  // LaunchInfo rides on the first; the second is part of the same charge.
  ocllike::Kernel& kp = kernels_.at("cheby_calc_p");
  set_geometry_args(kp, mesh_.interior_cells(), width_, h_, nx_);
  kp.set_arg(4, &buf(FieldId::kU));
  kp.set_arg(5, &buf(FieldId::kU0));
  kp.set_arg(6, &buf(FieldId::kKx));
  kp.set_arg(7, &buf(FieldId::kKy));
  kp.set_arg(8, &buf(FieldId::kR));
  kp.set_arg(9, &buf(FieldId::kP));
  kp.set_arg(10, alpha);
  kp.set_arg(11, beta);
  run_kernel("cheby_calc_p", info(KernelId::kChebyIterate));

  // The u-update sweep (cheby_calc_u): its bytes are already counted in the
  // catalogue's fused iterate cost, so it runs in the same charge.
  double* u = buf(FieldId::kU).data();
  const double* p = buf(FieldId::kP).data();
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void OpenClPort::ppcg_init_sd(double theta) {
  ocllike::Kernel& k = kernels_.at("ppcg_init_sd");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kR));
  k.set_arg(5, &buf(FieldId::kSd));
  k.set_arg(6, 1.0 / theta);
  run_kernel("ppcg_init_sd", info(KernelId::kPpcgInitSd));
}

void OpenClPort::ppcg_inner(double alpha, double beta) {
  ocllike::Kernel& kr = kernels_.at("ppcg_inner_ru");
  set_geometry_args(kr, mesh_.interior_cells(), width_, h_, nx_);
  kr.set_arg(4, &buf(FieldId::kU));
  kr.set_arg(5, &buf(FieldId::kR));
  kr.set_arg(6, &buf(FieldId::kSd));
  kr.set_arg(7, &buf(FieldId::kKx));
  kr.set_arg(8, &buf(FieldId::kKy));
  run_kernel("ppcg_inner_ru", info(KernelId::kPpcgInner));

  // Second sweep (ppcg_inner_sd) within the same fused-kernel charge.
  const double* r = buf(FieldId::kR).data();
  double* sd = buf(FieldId::kSd).data();
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void OpenClPort::jacobi_copy_u() {
  ocllike::Kernel& k = kernels_.at("jacobi_copy_u");
  set_geometry_args(k, mesh_.padded_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kW));
  const std::size_t global = (mesh_.padded_cells() + kWorkGroupSize - 1) /
                             kWorkGroupSize * kWorkGroupSize;
  queue_.enqueue_nd_range(k, info(KernelId::kJacobiCopyU), global,
                          kWorkGroupSize);
  queue_.finish();
}

void OpenClPort::jacobi_iterate() {
  ocllike::Kernel& k = kernels_.at("jacobi_iterate");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kU0));
  k.set_arg(6, &buf(FieldId::kW));
  k.set_arg(7, &buf(FieldId::kKx));
  k.set_arg(8, &buf(FieldId::kKy));
  run_kernel("jacobi_iterate", info(KernelId::kJacobiIterate));
}

core::CgFusedW OpenClPort::cg_calc_w_fused() {
  // Zero the companion section (ww accumulates in place).
  const std::size_t groups = group_count();
  for (std::size_t i = 0; i < 2 * groups; ++i) (*partials_)[i] = 0.0;
  ocllike::Kernel& k = kernels_.at("cg_calc_w_fused");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kP));
  k.set_arg(5, &buf(FieldId::kKx));
  k.set_arg(6, &buf(FieldId::kKy));
  k.set_arg(7, &buf(FieldId::kW));
  k.set_arg(8, partials_.get());
  core::CgFusedW out;
  out.pw = run_reduction("cg_calc_w_fused", info(KernelId::kCgCalcWFused));
  for (std::size_t g = 0; g < groups; ++g) {
    out.ww += (*partials_)[groups + g];
  }
  return out;
}

double OpenClPort::cg_fused_ur_p(double alpha, double beta_prev) {
  ocllike::Kernel& k = kernels_.at("cg_fused_ur_p");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kP));
  k.set_arg(6, &buf(FieldId::kR));
  k.set_arg(7, &buf(FieldId::kW));
  k.set_arg(8, alpha);
  k.set_arg(9, beta_prev);
  k.set_arg(10, partials_.get());
  return run_reduction("cg_fused_ur_p", info(KernelId::kCgFusedUrP));
}

double OpenClPort::fused_residual_norm() {
  ocllike::Kernel& k = kernels_.at("fused_residual_norm");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kU0));
  k.set_arg(6, &buf(FieldId::kKx));
  k.set_arg(7, &buf(FieldId::kKy));
  k.set_arg(8, &buf(FieldId::kR));
  k.set_arg(9, partials_.get());
  return run_reduction("fused_residual_norm",
                       info(KernelId::kFusedResidualNorm));
}

void OpenClPort::cheby_fused_iterate(double alpha, double beta) {
  // Same two sweeps as cheby_iterate, enqueued under the fused charge.
  ocllike::Kernel& kp = kernels_.at("cheby_calc_p");
  set_geometry_args(kp, mesh_.interior_cells(), width_, h_, nx_);
  kp.set_arg(4, &buf(FieldId::kU));
  kp.set_arg(5, &buf(FieldId::kU0));
  kp.set_arg(6, &buf(FieldId::kKx));
  kp.set_arg(7, &buf(FieldId::kKy));
  kp.set_arg(8, &buf(FieldId::kR));
  kp.set_arg(9, &buf(FieldId::kP));
  kp.set_arg(10, alpha);
  kp.set_arg(11, beta);
  run_kernel("cheby_calc_p", info(KernelId::kChebyFusedIterate));

  double* u = buf(FieldId::kU).data();
  const double* p = buf(FieldId::kP).data();
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void OpenClPort::ppcg_fused_inner(double alpha, double beta) {
  ocllike::Kernel& kr = kernels_.at("ppcg_inner_ru");
  set_geometry_args(kr, mesh_.interior_cells(), width_, h_, nx_);
  kr.set_arg(4, &buf(FieldId::kU));
  kr.set_arg(5, &buf(FieldId::kR));
  kr.set_arg(6, &buf(FieldId::kSd));
  kr.set_arg(7, &buf(FieldId::kKx));
  kr.set_arg(8, &buf(FieldId::kKy));
  run_kernel("ppcg_inner_ru", info(KernelId::kPpcgFusedInner));

  const double* r = buf(FieldId::kR).data();
  double* sd = buf(FieldId::kSd).data();
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void OpenClPort::jacobi_fused_copy_iterate() {
  // Copy (full padded range) under the fused charge, then the iterate sweep.
  ocllike::Kernel& k = kernels_.at("jacobi_copy_u");
  set_geometry_args(k, mesh_.padded_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kU));
  k.set_arg(5, &buf(FieldId::kW));
  const std::size_t global = (mesh_.padded_cells() + kWorkGroupSize - 1) /
                             kWorkGroupSize * kWorkGroupSize;
  queue_.enqueue_nd_range(k, info(KernelId::kJacobiFusedCopyIterate), global,
                          kWorkGroupSize);
  queue_.finish();

  double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* w = buf(FieldId::kW).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  const std::size_t width = static_cast<std::size_t>(width_);
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width;
    for (int x = h_; x < h_ + nx_; ++x) {
      const std::size_t i = row + x;
      const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
      u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
              ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
             diag;
    }
  }
}

core::CgPipeDots OpenClPort::cg_pipe_init() {
  // Zero the companion section (rw accumulates in place).
  const std::size_t groups = group_count();
  for (std::size_t i = 0; i < 2 * groups; ++i) (*partials_)[i] = 0.0;
  ocllike::Kernel& k = kernels_.at("cg_pipe_init");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kR));
  k.set_arg(5, &buf(FieldId::kKx));
  k.set_arg(6, &buf(FieldId::kKy));
  k.set_arg(7, &buf(FieldId::kW));
  k.set_arg(8, partials_.get());
  core::CgPipeDots out;
  out.rr = run_reduction("cg_pipe_init", info(KernelId::kCgPipeInit));
  for (std::size_t g = 0; g < groups; ++g) {
    out.rw += (*partials_)[groups + g];
  }
  return out;
}

void OpenClPort::cg_pipe_calc_q() {
  ocllike::Kernel& k = kernels_.at("cg_pipe_calc_q");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kW));
  k.set_arg(5, &buf(FieldId::kKx));
  k.set_arg(6, &buf(FieldId::kKy));
  k.set_arg(7, &buf(FieldId::kQ));
  run_kernel("cg_pipe_calc_q", info(KernelId::kCgPipeCalcQ));
}

core::CgPipeDots OpenClPort::cg_pipe_update(double alpha, double beta) {
  const std::size_t groups = group_count();
  for (std::size_t i = 0; i < 2 * groups; ++i) (*partials_)[i] = 0.0;
  ocllike::Kernel& k = kernels_.at("cg_pipe_update");
  set_geometry_args(k, mesh_.interior_cells(), width_, h_, nx_);
  k.set_arg(4, &buf(FieldId::kZ));
  k.set_arg(5, &buf(FieldId::kSd));
  k.set_arg(6, &buf(FieldId::kP));
  k.set_arg(7, &buf(FieldId::kU));
  k.set_arg(8, &buf(FieldId::kR));
  k.set_arg(9, &buf(FieldId::kW));
  k.set_arg(10, &buf(FieldId::kQ));
  k.set_arg(11, alpha);
  k.set_arg(12, beta);
  k.set_arg(13, partials_.get());
  core::CgPipeDots out;
  out.rr = run_reduction("cg_pipe_update", info(KernelId::kCgPipeUpdate));
  for (std::size_t g = 0; g < groups; ++g) {
    out.rw += (*partials_)[groups + g];
  }
  return out;
}

void OpenClPort::read_u(util::Span2D<double> out) {
  queue_.enqueue_read(buf(FieldId::kU), host_scratch_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out(x, y) = host_scratch_[static_cast<std::size_t>(y) * width_ + x];
    }
  }
}

void OpenClPort::download_energy(core::Chunk& chunk) {
  queue_.enqueue_read(buf(FieldId::kEnergy), host_scratch_);
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      dst(x, y) = host_scratch_[static_cast<std::size_t>(y) * width_ + x];
    }
  }
}

}  // namespace tl::ports
