#pragma once
// RAJA-style TeaLeaf port.
//
// The interior iteration space is pre-computed once into an IndexSet of
// per-row ListSegments (the indirection arrays the paper identifies as the
// vectorisation blocker); every kernel is a lambda dispatched by
// forall<Policy>. Reductions go through ReduceSum objects. Model::kRajaSimd
// selects the paper's proof-of-concept variant whose loops carry an `omp
// simd` annotation (a codegen-profile property; the traversal is identical).

#include "core/fields.hpp"
#include "models/rajalike/raja.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class RajaPort final : public PortBase {
 public:
  RajaPort(sim::Model model, sim::DeviceId device, const core::Mesh& mesh,
           std::uint64_t run_seed);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants: one forall carrying several ReduceSum objects (the
  // multi-reduction traversal the paper flags for field_summary).
  // No kCapRegions: the distributed overlap pipeline falls back to full
  // sweeps behind a blocking halo exchange (see core/kernels_api.hpp).
  unsigned caps() const override {
    return core::kAllKernelCaps | core::kCapPipelined;
  }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG: two ReduceSum objects share each traversal.
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override {
    return ctx_.launcher().clock();
  }
  void begin_run(std::uint64_t run_seed) override {
    ctx_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    return storage_.field(id);
  }

 private:
  using Policy = rajalike::omp_parallel_for_exec;

  double* fp(core::FieldId id) { return storage_.field(id).data(); }
  util::Span2D<double> f(core::FieldId id) { return storage_.field(id); }

  mutable rajalike::Context ctx_;
  core::Chunk storage_;
  // Pre-computed traversals (the paper: "the pre-computation of those
  // indirection lists still had to occur earlier in the application").
  rajalike::IndexSet interior_;       // interior cells
  rajalike::IndexSet interior_wide_;  // interior + one ring (coefficients)
};

}  // namespace tl::ports
