#include "ports/port_cuda.hpp"

#include "comm/halo.hpp"

namespace tl::ports {

using core::FieldId;
using core::KernelId;
using culike::Dim3;
using culike::ThreadCtx;

namespace {
inline double stencil(const double* v, const double* kx, const double* ky,
                      std::size_t i, std::size_t width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}

/// Manual block reduction epilogue: thread value into shared memory; the
/// last thread of the block folds shared memory into the partials array
/// (in-order emulation stands in for __syncthreads + tree, see culike docs).
inline void block_reduce(const ThreadCtx& ctx, double value,
                         double* partials) {
  ctx.shared[ctx.thread_idx] = value;
  if (ctx.is_last_in_block()) {
    double sum = 0.0;
    for (unsigned t = 0; t < ctx.block_dim; ++t) sum += ctx.shared[t];
    partials[ctx.block_idx] = sum;
  }
}
}  // namespace

CudaPort::CudaPort(sim::DeviceId device, const core::Mesh& mesh,
                   std::uint64_t run_seed)
    : PortBase(sim::Model::kCuda, mesh), rt_(sim::Model::kCuda, device, run_seed) {
  for (const FieldId id : core::kAllFields) {
    buffers_[static_cast<std::size_t>(id)] =
        std::make_unique<culike::DeviceBuffer>(mesh.padded_cells());
  }
  partials_ = std::make_unique<culike::DeviceBuffer>(
      4 * culike::Runtime::blocks_for(mesh.padded_cells(), kBlockSize));
  host_scratch_.resize(mesh.padded_cells());
}

double CudaPort::sum_partials(unsigned blocks) const {
  double sum = 0.0;
  for (unsigned b = 0; b < blocks; ++b) sum += (*partials_)[b];
  return sum;
}

void CudaPort::upload_state(const core::Chunk& chunk) {
  for (const FieldId id : {FieldId::kDensity, FieldId::kEnergy0}) {
    const auto src = chunk.field(id);
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        host_scratch_[static_cast<std::size_t>(y) * width_ + x] = src(x, y);
      }
    }
    rt_.memcpy_htod(buf(id), host_scratch_);
  }
}

void CudaPort::init_u() {
  const double* density = buf(FieldId::kDensity).data();
  const double* energy0 = buf(FieldId::kEnergy0).data();
  double* u = buf(FieldId::kU).data();
  double* u0 = buf(FieldId::kU0).data();
  const std::size_t n = mesh_.padded_cells();
  rt_.launch(info(KernelId::kInitU),
             Dim3(culike::Runtime::blocks_for(n, kBlockSize)), Dim3(kBlockSize),
             0, [=](const ThreadCtx& ctx) {
               const std::size_t i = ctx.global_thread();
               if (i >= n) return;  // overspill guard
               const double v = energy0[i] * density[i];
               u[i] = v;
               u0[i] = v;
             });
}

void CudaPort::init_coefficients(core::Coefficient coefficient, double rx,
                                 double ry) {
  const double* density = buf(FieldId::kDensity).data();
  double* kx = buf(FieldId::kKx).data();
  double* ky = buf(FieldId::kKy).data();
  const bool recip = coefficient == core::Coefficient::kRecipConductivity;
  const std::size_t ring = static_cast<std::size_t>(nx_ + 2) * (ny_ + 2);
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kInitCoef),
             Dim3(culike::Runtime::blocks_for(ring, kBlockSize)),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= ring) return;
               const std::size_t x =
                   (h - 1) + (t % static_cast<std::size_t>(nx + 2));
               const std::size_t y =
                   (h - 1) + (t / static_cast<std::size_t>(nx + 2));
               const std::size_t i = y * width + x;
               auto w_of = [&](std::size_t j) {
                 return recip ? 1.0 / density[j] : density[j];
               };
               const double wc = w_of(i);
               const double wl = w_of(i - 1);
               const double wb = w_of(i - width);
               kx[i] = rx * (wl + wc) / (2.0 * wl * wc);
               ky[i] = ry * (wb + wc) / (2.0 * wb * wc);
             });
}

void CudaPort::halo_update(unsigned fields, int depth) {
  rt_.launcher().run(hinfo(fields, depth), [&] {
    auto reflect = [&](FieldId id) {
      comm::reflect_boundary(device_span(id), h_, comm::kAllFaces);
    };
    if (fields & core::kMaskU) reflect(FieldId::kU);
    if (fields & core::kMaskP) reflect(FieldId::kP);
    if (fields & core::kMaskSd) reflect(FieldId::kSd);
    if (fields & core::kMaskR) reflect(FieldId::kR);
    if (fields & core::kMaskW) reflect(FieldId::kW);
    if (fields & core::kMaskDensity) reflect(FieldId::kDensity);
    if (fields & core::kMaskEnergy0) reflect(FieldId::kEnergy0);
  });
}

void CudaPort::calc_residual() {
  const double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* r = buf(FieldId::kR).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kCalcResidual), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               r[i] = u0[i] - stencil(u, kx, ky, i, width);
             });
}

double CudaPort::calc_2norm(core::NormTarget target) {
  const double* v = buf(target == core::NormTarget::kResidual ? FieldId::kR
                                                              : FieldId::kU0)
                        .data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  rt_.launch(info(KernelId::kCalc2Norm), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double value = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 value = v[i] * v[i];
               }
               block_reduce(ctx, value, partials);
             });
  return sum_partials(blocks);
}

void CudaPort::finalise() {
  const double* u = buf(FieldId::kU).data();
  const double* density = buf(FieldId::kDensity).data();
  double* energy = buf(FieldId::kEnergy).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kFinalise), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               energy[i] = u[i] / density[i];
             });
}

core::FieldSummary CudaPort::field_summary() {
  const double* density = buf(FieldId::kDensity).data();
  const double* energy0 = buf(FieldId::kEnergy0).data();
  const double* u = buf(FieldId::kU).data();
  double* partials = partials_->data();
  const double cell_vol = mesh_.cell_area();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  for (unsigned i = 0; i < 4 * blocks; ++i) partials[i] = 0.0;
  rt_.launch(info(KernelId::kFieldSummary), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double vol = 0.0, mass = 0.0, ie = 0.0, temp = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 vol = cell_vol;
                 mass = density[i] * cell_vol;
                 ie = density[i] * energy0[i] * cell_vol;
                 temp = u[i] * cell_vol;
               }
               block_reduce(ctx, vol, partials);
               partials[blocks + ctx.block_idx] += mass;
               partials[2 * blocks + ctx.block_idx] += ie;
               partials[3 * blocks + ctx.block_idx] += temp;
             });
  core::FieldSummary s;
  s.volume = sum_partials(blocks);
  for (unsigned b = 0; b < blocks; ++b) {
    s.mass += partials[blocks + b];
    s.internal_energy += partials[2 * blocks + b];
    s.temperature += partials[3 * blocks + b];
  }
  return s;
}

double CudaPort::cg_init() {
  const double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* w = buf(FieldId::kW).data();
  double* r = buf(FieldId::kR).data();
  double* p = buf(FieldId::kP).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  rt_.launch(info(KernelId::kCgInit), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double value = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 const double au = stencil(u, kx, ky, i, width);
                 w[i] = au;
                 const double res = u0[i] - au;
                 r[i] = res;
                 p[i] = res;
                 value = res * res;
               }
               block_reduce(ctx, value, partials);
             });
  return sum_partials(blocks);
}

double CudaPort::cg_calc_w() {
  const double* p = buf(FieldId::kP).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* w = buf(FieldId::kW).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  rt_.launch(info(KernelId::kCgCalcW), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double value = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 const double ap = stencil(p, kx, ky, i, width);
                 w[i] = ap;
                 value = ap * p[i];
               }
               block_reduce(ctx, value, partials);
             });
  return sum_partials(blocks);
}

double CudaPort::cg_calc_ur(double alpha) {
  double* u = buf(FieldId::kU).data();
  const double* p = buf(FieldId::kP).data();
  double* r = buf(FieldId::kR).data();
  const double* w = buf(FieldId::kW).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  rt_.launch(info(KernelId::kCgCalcUr), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double value = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 u[i] += alpha * p[i];
                 const double res = r[i] - alpha * w[i];
                 r[i] = res;
                 value = res * res;
               }
               block_reduce(ctx, value, partials);
             });
  return sum_partials(blocks);
}

void CudaPort::cg_calc_p(double beta) {
  const double* r = buf(FieldId::kR).data();
  double* p = buf(FieldId::kP).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kCgCalcP), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               p[i] = r[i] + beta * p[i];
             });
}

void CudaPort::cheby_init(double theta) {
  const double* r = buf(FieldId::kR).data();
  double* p = buf(FieldId::kP).data();
  double* u = buf(FieldId::kU).data();
  const double theta_inv = 1.0 / theta;
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kChebyInit), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               p[i] = r[i] * theta_inv;
               u[i] += p[i];
             });
}

void CudaPort::cheby_iterate(double alpha, double beta) {
  double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* r = buf(FieldId::kR).data();
  double* p = buf(FieldId::kP).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kChebyIterate), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               const double res = u0[i] - stencil(u, kx, ky, i, width);
               r[i] = res;
               p[i] = alpha * p[i] + beta * res;
             });
  // Second sweep of the fused iterate (same metered charge).
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void CudaPort::ppcg_init_sd(double theta) {
  const double* r = buf(FieldId::kR).data();
  double* sd = buf(FieldId::kSd).data();
  const double theta_inv = 1.0 / theta;
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kPpcgInitSd), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               sd[i] = r[i] * theta_inv;
             });
}

void CudaPort::ppcg_inner(double alpha, double beta) {
  double* u = buf(FieldId::kU).data();
  double* r = buf(FieldId::kR).data();
  double* sd = buf(FieldId::kSd).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kPpcgInner), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               r[i] -= stencil(sd, kx, ky, i, width);
               u[i] += sd[i];
             });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void CudaPort::jacobi_copy_u() {
  const double* u = buf(FieldId::kU).data();
  double* w = buf(FieldId::kW).data();
  // Full padded range: the iterate's stencil reads w in the halo.
  const std::size_t n = mesh_.padded_cells();
  rt_.launch(info(KernelId::kJacobiCopyU),
             Dim3(culike::Runtime::blocks_for(n, kBlockSize)),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t i = ctx.global_thread();
               if (i >= n) return;
               w[i] = u[i];
             });
}

void CudaPort::jacobi_iterate() {
  double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* w = buf(FieldId::kW).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kJacobiIterate), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               const double diag =
                   1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
               u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
                       ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
                      diag;
             });
}

core::CgFusedW CudaPort::cg_calc_w_fused() {
  const double* p = buf(FieldId::kP).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* w = buf(FieldId::kW).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  // field_summary's layout: pw through the block reduction, ww into a
  // companion partial section accumulated in place.
  for (unsigned i = 0; i < 2 * blocks; ++i) partials[i] = 0.0;
  rt_.launch(info(KernelId::kCgCalcWFused), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double pwv = 0.0, wwv = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 const double ap = stencil(p, kx, ky, i, width);
                 w[i] = ap;
                 pwv = ap * p[i];
                 wwv = ap * ap;
               }
               block_reduce(ctx, pwv, partials);
               partials[blocks + ctx.block_idx] += wwv;
             });
  core::CgFusedW out;
  out.pw = sum_partials(blocks);
  for (unsigned b = 0; b < blocks; ++b) {
    out.ww += partials[blocks + b];
  }
  return out;
}

double CudaPort::cg_fused_ur_p(double alpha, double beta_prev) {
  double* u = buf(FieldId::kU).data();
  double* p = buf(FieldId::kP).data();
  double* r = buf(FieldId::kR).data();
  const double* w = buf(FieldId::kW).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  rt_.launch(info(KernelId::kCgFusedUrP), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double value = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 u[i] += alpha * p[i];
                 const double res = r[i] - alpha * w[i];
                 r[i] = res;
                 p[i] = res + beta_prev * p[i];
                 value = res * res;
               }
               block_reduce(ctx, value, partials);
             });
  return sum_partials(blocks);
}

double CudaPort::fused_residual_norm() {
  const double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* r = buf(FieldId::kR).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  rt_.launch(info(KernelId::kFusedResidualNorm), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double value = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 const double res = u0[i] - stencil(u, kx, ky, i, width);
                 r[i] = res;
                 value = res * res;
               }
               block_reduce(ctx, value, partials);
             });
  return sum_partials(blocks);
}

void CudaPort::cheby_fused_iterate(double alpha, double beta) {
  double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* r = buf(FieldId::kR).data();
  double* p = buf(FieldId::kP).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kChebyFusedIterate), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               const double res = u0[i] - stencil(u, kx, ky, i, width);
               r[i] = res;
               p[i] = alpha * p[i] + beta * res;
             });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) u[row + x] += p[row + x];
  }
}

void CudaPort::ppcg_fused_inner(double alpha, double beta) {
  double* u = buf(FieldId::kU).data();
  double* r = buf(FieldId::kR).data();
  double* sd = buf(FieldId::kSd).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kPpcgFusedInner), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               r[i] -= stencil(sd, kx, ky, i, width);
               u[i] += sd[i];
             });
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    for (int x = h_; x < h_ + nx_; ++x) {
      sd[row + x] = alpha * sd[row + x] + beta * r[row + x];
    }
  }
}

void CudaPort::jacobi_fused_copy_iterate() {
  double* u = buf(FieldId::kU).data();
  const double* u0 = buf(FieldId::kU0).data();
  double* w = buf(FieldId::kW).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  // Copy over the full padded range (the stencil reads w in the halo) under
  // the fused charge, then the iterate sweep.
  const std::size_t n = mesh_.padded_cells();
  rt_.launch(info(KernelId::kJacobiFusedCopyIterate),
             Dim3(culike::Runtime::blocks_for(n, kBlockSize)),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t i = ctx.global_thread();
               if (i >= n) return;
               w[i] = u[i];
             });
  const std::size_t width = static_cast<std::size_t>(width_);
  for (int y = h_; y < h_ + ny_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width;
    for (int x = h_; x < h_ + nx_; ++x) {
      const std::size_t i = row + x;
      const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
      u[i] = (u0[i] + kx[i + 1] * w[i + 1] + kx[i] * w[i - 1] +
              ky[i + width] * w[i + width] + ky[i] * w[i - width]) /
             diag;
    }
  }
}

core::CgPipeDots CudaPort::cg_pipe_init() {
  const double* r = buf(FieldId::kR).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* w = buf(FieldId::kW).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  for (unsigned i = 0; i < 2 * blocks; ++i) partials[i] = 0.0;
  rt_.launch(info(KernelId::kCgPipeInit), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double rrv = 0.0, rwv = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 const double ar = stencil(r, kx, ky, i, width);
                 w[i] = ar;
                 rrv = r[i] * r[i];
                 rwv = ar * r[i];
               }
               block_reduce(ctx, rrv, partials);
               partials[blocks + ctx.block_idx] += rwv;
             });
  core::CgPipeDots out;
  out.rr = sum_partials(blocks);
  for (unsigned b = 0; b < blocks; ++b) {
    out.rw += partials[blocks + b];
  }
  return out;
}

void CudaPort::cg_pipe_calc_q() {
  const double* w = buf(FieldId::kW).data();
  const double* kx = buf(FieldId::kKx).data();
  const double* ky = buf(FieldId::kKy).data();
  double* q = buf(FieldId::kQ).data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  rt_.launch(info(KernelId::kCgPipeCalcQ), Dim3(interior_blocks()),
             Dim3(kBlockSize), 0, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               if (t >= n) return;
               const std::size_t i =
                   (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
               q[i] = stencil(w, kx, ky, i, width);
             });
}

core::CgPipeDots CudaPort::cg_pipe_update(double alpha, double beta) {
  double* z = buf(FieldId::kZ).data();
  double* sd = buf(FieldId::kSd).data();
  double* p = buf(FieldId::kP).data();
  double* u = buf(FieldId::kU).data();
  double* r = buf(FieldId::kR).data();
  double* w = buf(FieldId::kW).data();
  const double* q = buf(FieldId::kQ).data();
  double* partials = partials_->data();
  const std::size_t n = mesh_.interior_cells();
  const int width = width_, h = h_, nx = nx_;
  const unsigned blocks = interior_blocks();
  for (unsigned i = 0; i < 2 * blocks; ++i) partials[i] = 0.0;
  rt_.launch(info(KernelId::kCgPipeUpdate), Dim3(blocks), Dim3(kBlockSize),
             kBlockSize, [=](const ThreadCtx& ctx) {
               const std::size_t t = ctx.global_thread();
               double rrv = 0.0, rwv = 0.0;
               if (t < n) {
                 const std::size_t i =
                     (h + t / nx) * static_cast<std::size_t>(width) + h + t % nx;
                 const double zn = q[i] + beta * z[i];
                 z[i] = zn;
                 const double sn = w[i] + beta * sd[i];
                 sd[i] = sn;
                 const double pn = r[i] + beta * p[i];
                 p[i] = pn;
                 u[i] += alpha * pn;
                 const double rn = r[i] - alpha * sn;
                 r[i] = rn;
                 const double wn = w[i] - alpha * zn;
                 w[i] = wn;
                 rrv = rn * rn;
                 rwv = wn * rn;
               }
               block_reduce(ctx, rrv, partials);
               partials[blocks + ctx.block_idx] += rwv;
             });
  core::CgPipeDots out;
  out.rr = sum_partials(blocks);
  for (unsigned b = 0; b < blocks; ++b) {
    out.rw += partials[blocks + b];
  }
  return out;
}

void CudaPort::read_u(util::Span2D<double> out) {
  rt_.memcpy_dtoh(host_scratch_, buf(FieldId::kU));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out(x, y) = host_scratch_[static_cast<std::size_t>(y) * width_ + x];
    }
  }
}

void CudaPort::download_energy(core::Chunk& chunk) {
  rt_.memcpy_dtoh(host_scratch_, buf(FieldId::kEnergy));
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      dst(x, y) = host_scratch_[static_cast<std::size_t>(y) * width_ + x];
    }
  }
}

}  // namespace tl::ports
