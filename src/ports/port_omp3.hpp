#pragma once
// OpenMP 3.0-style TeaLeaf port: `parallel for` loops over interior rows
// with reduction clauses — the structure of both the original Fortran 90
// TeaLeaf and the C port the paper derived every other port from. The same
// class serves the two baselines (Model::kFortran / Model::kOmp3Cpp): the
// source structure is identical, the codegen profile (vectorisation quality
// of the two compilers) is what differs — exactly the paper's finding that
// identical code compiled as C++ ran 15% slower on Chebyshev.

#include "core/fields.hpp"
#include "models/omp3/omp3.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class Omp3Port final : public PortBase {
 public:
  Omp3Port(sim::Model model, sim::DeviceId device, const core::Mesh& mesh,
           std::uint64_t run_seed, unsigned host_threads);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants: the same loop bodies welded into one metered launch per
  // solver step (the paper's ports fuse at source level; here the fusion is
  // visible to the cost model through the fused catalogue entries).
  unsigned caps() const override {
    return core::kAllKernelCaps | core::kCapRegions | core::kCapPipelined;
  }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG (kCapPipelined): one metered launch per kernel; the second
  // dot rides in per-row slots combined in row order (field_summary idiom).
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;

  // Region sweeps (kCapRegions). Metering: the kInterior call prices the
  // whole kernel once (one PerfModel draw — the same scheduler luck the
  // unsplit kernel would get) and charges the interior-cell fraction; the
  // finish charges the exact remainder, so total simulated time is
  // bit-identical to the blocking path and the interior charge is what the
  // in-flight exchange can hide behind. Edge sweeps charge nothing.
  void cg_calc_w_region(core::Region region) override;
  double cg_calc_w_region_finish() override;
  void cg_calc_w_fused_region(core::Region region) override;
  core::CgFusedW cg_calc_w_fused_region_finish() override;
  void cheby_fused_region(double alpha, double beta,
                          core::Region region) override;
  void cheby_fused_region_finish() override;
  void ppcg_fused_region(double alpha, double beta,
                         core::Region region) override;
  void ppcg_fused_region_finish(double alpha, double beta) override;
  void jacobi_fused_region(core::Region region) override;
  void jacobi_fused_region_finish() override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override { return rt_.launcher().clock(); }
  void begin_run(std::uint64_t run_seed) override {
    rt_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    return storage_.field(id);
  }

 private:
  util::Span2D<double> f(core::FieldId id) { return storage_.field(id); }

  // Region-split metering: price the kernel once at the interior call,
  // charge the interior-cell fraction immediately and the remainder at the
  // finish (see Launcher::price). Sweep helpers run the loop bodies serially
  // over one region's bounds; the finish reductions rerun through the pool
  // with the blocking path's exact chunking so sums stay bit-identical.
  void region_begin(core::KernelId id);
  void region_finish_charge();
  void sweep_cg_w(const core::RegionBounds& b);

  mutable omp3::Runtime rt_;
  core::Chunk storage_;

  sim::LaunchInfo region_info_{};
  double region_factor_ = 1.0;
  double region_rem_ns_ = 0.0;
  std::size_t region_rem_read_ = 0;
  std::size_t region_rem_written_ = 0;
  // jacobi region sweeps copy u into w per region; the first edge sweep after
  // the halo exchange completes must re-copy u's refreshed halo frame into w.
  bool jacobi_frame_synced_ = false;
};

}  // namespace tl::ports
