#pragma once
// OpenMP 3.0-style TeaLeaf port: `parallel for` loops over interior rows
// with reduction clauses — the structure of both the original Fortran 90
// TeaLeaf and the C port the paper derived every other port from. The same
// class serves the two baselines (Model::kFortran / Model::kOmp3Cpp): the
// source structure is identical, the codegen profile (vectorisation quality
// of the two compilers) is what differs — exactly the paper's finding that
// identical code compiled as C++ ran 15% slower on Chebyshev.

#include "core/fields.hpp"
#include "models/omp3/omp3.hpp"
#include "ports/port_base.hpp"

namespace tl::ports {

class Omp3Port final : public PortBase {
 public:
  Omp3Port(sim::Model model, sim::DeviceId device, const core::Mesh& mesh,
           std::uint64_t run_seed, unsigned host_threads);

  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(core::NormTarget target) override;
  void finalise() override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  // Fused variants: the same loop bodies welded into one metered launch per
  // solver step (the paper's ports fuse at source level; here the fusion is
  // visible to the cost model through the fused catalogue entries).
  unsigned caps() const override { return core::kAllKernelCaps; }
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  void read_u(util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const sim::SimClock& clock() const override { return rt_.launcher().clock(); }
  void begin_run(std::uint64_t run_seed) override {
    rt_.launcher().begin_run(run_seed);
  }
  util::Span2D<double> field_view(core::FieldId id) override {
    return storage_.field(id);
  }

 private:
  util::Span2D<double> f(core::FieldId id) { return storage_.field(id); }

  mutable omp3::Runtime rt_;
  core::Chunk storage_;
};

}  // namespace tl::ports
