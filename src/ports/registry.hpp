#pragma once
// Port registry: name -> factory, plus the paper's Table 1 support matrix.

#include <memory>
#include <vector>

#include "core/kernels_api.hpp"
#include "core/mesh.hpp"
#include "sim/codegen.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"

namespace tl::ports {

/// Creates the TeaLeaf port for `model` targeting simulated `device`.
/// Throws std::invalid_argument for unsupported pairs (Table 1).
std::unique_ptr<core::SolverKernels> make_port(sim::Model model,
                                               sim::DeviceId device,
                                               const core::Mesh& mesh,
                                               std::uint64_t run_seed = 1,
                                               unsigned host_threads = 1);

/// True when the (model, device) pair is supported (Table 1).
bool is_supported(sim::Model model, sim::DeviceId device);

/// The series the paper plots per device figure (Fig 8/9/10).
std::vector<sim::Model> figure_models(sim::DeviceId device);

}  // namespace tl::ports
