#include "models/host_pool.hpp"

#include <algorithm>

namespace models {

HostPool::HostPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread works chunk 0; spawn threads-1 workers.
  const unsigned workers = threads - 1;
  workers_empty_ = (workers == 0);
  tasks_.resize(threads);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

HostPool::~HostPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void HostPool::worker_loop(unsigned index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned, std::int64_t, std::int64_t)>* body;
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = active_body_;
      task = tasks_[index];
    }
    if (task.begin < task.end && body != nullptr) {
      (*body)(index, task.begin, task.end);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void HostPool::dispatch(
    std::int64_t begin, std::int64_t end,
    const std::function<void(unsigned, std::int64_t, std::int64_t)>& chunk_body) {
  if (begin >= end) return;
  const unsigned nthreads = static_cast<unsigned>(tasks_.size());
  const std::int64_t total = end - begin;
  const std::int64_t base = total / nthreads;
  const std::int64_t rem = total % nthreads;

  if (workers_empty_ || total < static_cast<std::int64_t>(nthreads)) {
    chunk_body(0, begin, end);  // not worth forking
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::int64_t cursor = begin;
    for (unsigned i = 0; i < nthreads; ++i) {
      const std::int64_t extent = base + (static_cast<std::int64_t>(i) < rem ? 1 : 0);
      tasks_[i] = Task{cursor, cursor + extent};
      cursor += extent;
    }
    active_body_ = &chunk_body;
    pending_ = nthreads - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  // The calling thread processes chunk 0.
  chunk_body(0, tasks_[0].begin, tasks_[0].end);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  active_body_ = nullptr;
}

void HostPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  dispatch(begin, end,
           [&body](unsigned, std::int64_t b, std::int64_t e) { body(b, e); });
}

double HostPool::parallel_reduce_sum(
    std::int64_t begin, std::int64_t end,
    const std::function<double(std::int64_t, std::int64_t)>& body) {
  std::vector<double> partials(tasks_.size(), 0.0);
  dispatch(begin, end, [&](unsigned index, std::int64_t b, std::int64_t e) {
    partials[index] = body(b, e);
  });
  // Combine in chunk order for determinism.
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

}  // namespace models
