#include "models/host_pool.hpp"

#include <algorithm>

namespace models {

HostPool::HostPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread participates in every job; spawn threads-1 workers.
  const unsigned workers = threads - 1;
  workers_empty_ = (workers == 0);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

HostPool::~HostPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void HostPool::claim_chunks() {
  for (;;) {
    const std::int64_t c = job_.cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= job_.nchunks) return;
    const std::int64_t b = job_.begin + c * job_.grain;
    job_.fn(job_.ctx, b, std::min(b + job_.grain, job_.end), c);
  }
}

void HostPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    claim_chunks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void HostPool::run_chunks(std::int64_t begin, std::int64_t end,
                          std::int64_t grain, ChunkFn fn, void* ctx) {
  const std::int64_t nchunks = (end - begin + grain - 1) / grain;
  if (workers_empty_ || nchunks == 1) {
    // Still chunked per grain so reduction slots match the forked path.
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const std::int64_t b = begin + c * grain;
      fn(ctx, b, std::min(b + grain, end), c);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.begin = begin;
    job_.end = end;
    job_.grain = grain;
    job_.nchunks = nchunks;
    job_.fn = fn;
    job_.ctx = ctx;
    job_.cursor.store(0, std::memory_order_relaxed);
    pending_ = static_cast<unsigned>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();

  claim_chunks();  // the calling thread races the workers for chunks

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace models
