#pragma once
// Directive-style offload runtime — the shared machinery behind the OpenMP
// 4.0 (`target`) and OpenACC (`kernels`) front-ends.
//
// Reproduced concepts (paper sections 2.1, 2.2, 3.1, 3.2):
//   - `target data` / `acc data` scopes: map arrays onto the device for the
//     scope's lifetime so multiple target regions reuse resident data;
//   - `map(to/from/tofrom/alloc)` direction semantics with transfer charging
//     at scope entry/exit;
//   - `update to/from`: explicit mid-scope consistency;
//   - per-region synchronous launch overhead — the paper's observed
//     "overhead dependent upon the number of target invocations", which the
//     OpenMP 4.5 `nowait` directive was expected to hide (modelled by the
//     fuse_regions knob used in the ablation bench);
//   - reductions through the directive reduction clause.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/launcher.hpp"

namespace offload {

enum class MapDir { kTo, kFrom, kToFrom, kAlloc };

struct MapSpec {
  const void* host_ptr = nullptr;
  std::size_t bytes = 0;
  MapDir dir = MapDir::kToFrom;
};

template <typename T>
MapSpec map(std::span<T> data, MapDir dir) {
  return MapSpec{data.data(), data.size_bytes(), dir};
}

class Runtime {
 public:
  Runtime(tl::sim::Model model, tl::sim::DeviceId device,
          std::uint64_t run_seed = 1)
      : launcher_(model, device, run_seed),
        offloads_(tl::sim::uses_device_residency(model, device)) {}

  models::Launcher& launcher() noexcept { return launcher_; }
  bool offloads() const noexcept { return offloads_; }

  /// Is this host array currently mapped on the device?
  bool is_present(const void* host_ptr) const {
    return resident_.count(host_ptr) != 0;
  }

  /// Explicit consistency (omp target update / acc update).
  void update_to(const void* host_ptr, std::size_t bytes) {
    require_present(host_ptr);
    charge_transfer(bytes, true);
  }
  void update_from(const void* host_ptr, std::size_t bytes) {
    require_present(host_ptr);
    charge_transfer(bytes, false);
  }

  /// Executes one target region. Kernels inside a data scope find their
  /// arrays resident; launching still pays the per-region overhead carried
  /// by the LaunchInfo-derived cost (the paper's target-region overhead).
  template <typename Body>
  void target_region(const tl::sim::LaunchInfo& info, Body&& body) {
    launcher_.run(info, std::forward<Body>(body));
  }

 private:
  friend class DataScope;

  void require_present(const void* host_ptr) const {
    if (offloads_ && resident_.count(host_ptr) == 0) {
      throw std::logic_error(
          "offload: array used on device without an enclosing data map");
    }
  }

  void enter(const MapSpec& spec) {
    if (!offloads_) return;
    if (++resident_[spec.host_ptr] == 1 &&
        (spec.dir == MapDir::kTo || spec.dir == MapDir::kToFrom)) {
      charge_transfer(spec.bytes, true);
    }
  }

  void exit(const MapSpec& spec) {
    if (!offloads_) return;
    const auto it = resident_.find(spec.host_ptr);
    if (it == resident_.end()) return;
    if (--it->second == 0) {
      resident_.erase(it);
      if (spec.dir == MapDir::kFrom || spec.dir == MapDir::kToFrom) {
        charge_transfer(spec.bytes, false);
      }
    }
  }

  void charge_transfer(std::size_t bytes, bool to_device) {
    if (!offloads_) return;
    launcher_.charge_transfer(
        tl::sim::TransferInfo{.name = "map", .bytes = bytes, .to_device = to_device});
  }

  models::Launcher launcher_;
  bool offloads_;
  std::unordered_map<const void*, int> resident_;  // ref-counted presence
};

/// RAII `target data` / `acc data` region: maps on construction, unmaps (and
/// copies `from`-direction arrays back) on destruction. Lexically structured,
/// exactly the constraint the paper calls out for OpenMP 4.0.
class DataScope {
 public:
  DataScope(Runtime& rt, std::vector<MapSpec> maps)
      : rt_(&rt), maps_(std::move(maps)) {
    for (const auto& m : maps_) rt_->enter(m);
  }
  ~DataScope() {
    for (const auto& m : maps_) rt_->exit(m);
  }
  DataScope(const DataScope&) = delete;
  DataScope& operator=(const DataScope&) = delete;

 private:
  Runtime* rt_;
  std::vector<MapSpec> maps_;
};

}  // namespace offload

// ---------------------------------------------------------------------------
// OpenMP 4.0 front-end: #pragma omp target teams distribute parallel for
// ---------------------------------------------------------------------------
namespace omp4 {

using offload::DataScope;
using offload::MapDir;
using offload::MapSpec;
using offload::Runtime;

/// `#pragma omp target teams distribute parallel for collapse(2)` over the
/// interior cells; the body receives the flat cell index.
template <typename Body>
void target_parallel_for(Runtime& rt, const tl::sim::LaunchInfo& info,
                         std::int64_t begin, std::int64_t end, Body&& body) {
  rt.target_region(info, [&] {
    for (std::int64_t i = begin; i < end; ++i) body(i);
  });
}

/// Same with a `reduction(+: result)` clause.
template <typename Body>
double target_parallel_reduce(Runtime& rt, const tl::sim::LaunchInfo& info,
                              std::int64_t begin, std::int64_t end,
                              Body&& body) {
  double acc = 0.0;
  rt.target_region(info, [&] {
    for (std::int64_t i = begin; i < end; ++i) body(i, acc);
  });
  return acc;
}

}  // namespace omp4

// ---------------------------------------------------------------------------
// OpenACC front-end: #pragma acc kernels loop independent collapse(2)
// ---------------------------------------------------------------------------
namespace acc {

using offload::DataScope;
using offload::MapDir;
using offload::MapSpec;
using offload::Runtime;

template <typename Body>
void kernels_loop(Runtime& rt, const tl::sim::LaunchInfo& info,
                  std::int64_t begin, std::int64_t end, Body&& body) {
  rt.target_region(info, [&] {
    for (std::int64_t i = begin; i < end; ++i) body(i);
  });
}

template <typename Body>
double kernels_loop_reduce(Runtime& rt, const tl::sim::LaunchInfo& info,
                           std::int64_t begin, std::int64_t end, Body&& body) {
  double acc = 0.0;
  rt.target_region(info, [&] {
    for (std::int64_t i = begin; i < end; ++i) body(i, acc);
  });
  return acc;
}

}  // namespace acc
