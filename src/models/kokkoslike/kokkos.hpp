#pragma once
// Kokkos-like programming model layer (from-scratch reimplementation of the
// API *style* the paper's Kokkos port uses — see DESIGN.md substitutions).
//
// Reproduced concepts, following Edwards et al. and the paper's section 2.4:
//   - execution/memory space distinction: Views have a host allocation and,
//     on offload devices, a device mirror; deep_copy moves data and is the
//     only way across the spaces;
//   - View<double**>: reference-counted 2-D array with label (shared_ptr
//     copy semantics, exactly as the paper describes);
//   - functors: any callable with operator()(int) — the port's classes with
//     captured Views;
//   - parallel_for / parallel_reduce over a flat RangePolicy (the paper's
//     flat iteration space that forces loop-body halo exclusion);
//   - TeamPolicy hierarchical parallelism: league of teams, nested
//     team_thread_range, the Sandia fix for the KNC halo-branch problem;
//   - custom reductions via init/join on the functor (the multi-variable
//     field summary).

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "models/launcher.hpp"
#include "util/buffer.hpp"
#include "util/span2d.hpp"

namespace kokkoslike {

/// Where a View's canonical data lives for kernel execution.
enum class Space { kHost, kDevice };

/// Rank-2 dense view of doubles with shared-ownership copy semantics.
class View {
 public:
  View() = default;
  View(std::string label, int nx, int ny)
      : state_(std::make_shared<State>()) {
    state_->label = std::move(label);
    state_->nx = nx;
    state_->ny = ny;
    state_->host.resize(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  }

  const std::string& label() const { return state_->label; }
  int nx() const { return state_->nx; }
  int ny() const { return state_->ny; }
  std::size_t size() const { return state_->host.size(); }
  std::size_t size_bytes() const { return size() * sizeof(double); }

  double& operator()(int x, int y) const {
    return state_->host.view2d(state_->nx, state_->ny)(x, y);
  }
  double& operator[](std::size_t i) const { return state_->host[i]; }

  tl::util::Span2D<double> span() const {
    return state_->host.view2d(state_->nx, state_->ny);
  }

  bool valid() const { return state_ != nullptr; }

 private:
  struct State {
    std::string label;
    int nx = 0, ny = 0;
    tl::util::Buffer<double> host;
  };
  std::shared_ptr<State> state_;
};

struct RangePolicy {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

/// Hierarchical parallelism: a league of `league_size` teams of
/// `team_size` threads (paper Fig 7).
struct TeamPolicy {
  int league_size = 0;
  int team_size = 1;
};

class TeamMember {
 public:
  TeamMember(int league_rank, int team_size)
      : league_rank_(league_rank), team_size_(team_size) {}
  int league_rank() const noexcept { return league_rank_; }
  int team_size() const noexcept { return team_size_; }

 private:
  int league_rank_;
  int team_size_;
};

/// Nested parallel loop over a team's threads (TeamThreadRange).
template <typename Body>
void team_thread_range(const TeamMember&, int count, Body&& body) {
  for (int i = 0; i < count; ++i) body(i);
}

/// The runtime instance a port holds: binds the API to one simulated device.
class Context {
 public:
  Context(tl::sim::Model model, tl::sim::DeviceId device,
          std::uint64_t run_seed = 1)
      : launcher_(model, device, run_seed),
        device_resident_(tl::sim::uses_device_residency(model, device)) {}

  models::Launcher& launcher() noexcept { return launcher_; }

  /// deep_copy between spaces; charges the link when the execution space is
  /// a discrete device. Host<->host copies are free metadata operations.
  void deep_copy_to_device(const View& v) { charge_copy(v, /*to=*/true); }
  void deep_copy_to_host(const View& v) { charge_copy(v, /*to=*/false); }

  template <typename Functor>
  void parallel_for(const tl::sim::LaunchInfo& info, RangePolicy policy,
                    Functor&& f) {
    launcher_.run(info, [&] {
      for (std::int64_t i = policy.begin; i < policy.end; ++i) f(i);
    });
  }

  /// Sum reduction (Kokkos' zero-initialised default).
  template <typename Functor>
  void parallel_reduce(const tl::sim::LaunchInfo& info, RangePolicy policy,
                       Functor&& f, double& result) {
    double acc = 0.0;
    launcher_.run(info, [&] {
      for (std::int64_t i = policy.begin; i < policy.end; ++i) f(i, acc);
    });
    result = acc;
  }

  /// Custom reduction: Value must be default-constructible; the functor
  /// provides init(Value&) and join(Value&, const Value&) (paper: the one
  /// TeaLeaf kernel needing a multi-variable reduction).
  template <typename Functor, typename Value>
  void parallel_reduce(const tl::sim::LaunchInfo& info, RangePolicy policy,
                       Functor&& f, Value& result) {
    Value acc{};
    f.init(acc);
    launcher_.run(info, [&] {
      for (std::int64_t i = policy.begin; i < policy.end; ++i) f(i, acc);
    });
    f.join(result, acc);
  }

  /// Hierarchical parallel_for: functor receives the team member.
  template <typename Functor>
  void parallel_for_team(const tl::sim::LaunchInfo& info, TeamPolicy policy,
                         Functor&& f) {
    launcher_.run(info, [&] {
      for (int t = 0; t < policy.league_size; ++t) {
        f(TeamMember(t, policy.team_size));
      }
    });
  }

  /// Hierarchical reduction: each team accumulates into a private value that
  /// is "critically added" (paper section 3.3) after the team completes.
  template <typename Functor>
  void parallel_reduce_team(const tl::sim::LaunchInfo& info, TeamPolicy policy,
                            Functor&& f, double& result) {
    double total = 0.0;
    launcher_.run(info, [&] {
      for (int t = 0; t < policy.league_size; ++t) {
        double team_acc = 0.0;
        f(TeamMember(t, policy.team_size), team_acc);
        total += team_acc;  // the critical section in real Kokkos
      }
    });
    result = total;
  }

 private:
  void charge_copy(const View& v, bool to_device) {
    if (!device_resident_) return;
    launcher_.charge_transfer(tl::sim::TransferInfo{
        .name = "deep_copy", .bytes = v.size_bytes(), .to_device = to_device});
  }

  models::Launcher launcher_;
  bool device_resident_;
};

}  // namespace kokkoslike
