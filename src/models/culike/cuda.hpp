#pragma once
// CUDA-like programming model layer (from-scratch reimplementation of the
// API *style* the paper's CUDA port uses — see DESIGN.md substitutions).
//
// Reproduced concepts (paper sections 2.6, 3.5): kernels launched over a 1-D
// grid of 1-D thread blocks, explicit block-size / block-count arithmetic
// with overspill guards inside the kernel, device buffers with explicit
// memcpy in each direction, shared-memory scratch per block, and the manual
// two-stage reduction (per-block partials to global memory, finished on the
// host) the paper cites as CUDA's main complexity cost over Kokkos.
//
// Emulation note: threads of a block run sequentially in-order, so
// __syncthreads() is correct as a no-op; reduction kernels follow the
// convention that the last thread of a block finalises the block partial.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "models/launcher.hpp"
#include "util/buffer.hpp"

namespace culike {

struct Dim3 {
  unsigned x = 1;
  constexpr explicit Dim3(unsigned x_) : x(x_) {}
};

/// Device allocation (cudaMalloc analogue). Host code moves data with
/// memcpy_htod / memcpy_dtoh; kernels index it directly.
class DeviceBuffer {
 public:
  explicit DeviceBuffer(std::size_t count) : storage_(count) {}

  std::size_t size() const noexcept { return storage_.size(); }
  std::size_t size_bytes() const noexcept { return size() * sizeof(double); }

  double& operator[](std::size_t i) noexcept { return storage_[i]; }
  double operator[](std::size_t i) const noexcept { return storage_[i]; }

  /// Raw device pointer (what a real kernel receives as its argument).
  double* data() noexcept { return storage_.data(); }
  const double* data() const noexcept { return storage_.data(); }

 private:
  tl::util::Buffer<double> storage_;
};

/// Thread coordinates handed to the kernel body, CUDA naming.
struct ThreadCtx {
  unsigned thread_idx = 0;  // threadIdx.x
  unsigned block_idx = 0;   // blockIdx.x
  unsigned block_dim = 1;   // blockDim.x
  unsigned grid_dim = 1;    // gridDim.x

  /// Per-block shared memory (dynamic shared mem analogue).
  std::span<double> shared;

  std::size_t global_thread() const noexcept {
    return static_cast<std::size_t>(block_idx) * block_dim + thread_idx;
  }
  bool is_last_in_block() const noexcept {
    return thread_idx + 1 == block_dim;
  }
};

class Runtime {
 public:
  Runtime(tl::sim::Model model, tl::sim::DeviceId device,
          std::uint64_t run_seed = 1)
      : launcher_(model, device, run_seed) {}

  models::Launcher& launcher() noexcept { return launcher_; }

  /// kernel<<<grid, block, shared_elems * 8>>>(...) analogue.
  template <typename Kernel>
  void launch(const tl::sim::LaunchInfo& info, Dim3 grid, Dim3 block,
              std::size_t shared_elems, Kernel&& kernel) {
    if (grid.x == 0 || block.x == 0) {
      throw std::invalid_argument("culike: empty launch configuration");
    }
    launcher_.run(info, [&] {
      shared_.assign(shared_elems, 0.0);
      ThreadCtx ctx;
      ctx.block_dim = block.x;
      ctx.grid_dim = grid.x;
      ctx.shared = std::span<double>(shared_);
      for (unsigned b = 0; b < grid.x; ++b) {
        std::fill(shared_.begin(), shared_.end(), 0.0);
        ctx.block_idx = b;
        for (unsigned t = 0; t < block.x; ++t) {
          ctx.thread_idx = t;
          kernel(ctx);
        }
      }
    });
  }

  void memcpy_htod(DeviceBuffer& dst, std::span<const double> src) {
    if (src.size() != dst.size()) {
      throw std::invalid_argument("culike: memcpy_htod size mismatch");
    }
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
    launcher_.charge_transfer(tl::sim::TransferInfo{
        .name = "cudaMemcpyHostToDevice", .bytes = src.size_bytes(),
        .to_device = true});
  }

  void memcpy_dtoh(std::span<double> dst, const DeviceBuffer& src) {
    if (dst.size() != src.size()) {
      throw std::invalid_argument("culike: memcpy_dtoh size mismatch");
    }
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    launcher_.charge_transfer(tl::sim::TransferInfo{
        .name = "cudaMemcpyDeviceToHost", .bytes = dst.size_bytes(),
        .to_device = false});
  }

  /// Block/grid sizing helper every CUDA port writes by hand.
  static unsigned blocks_for(std::size_t items, unsigned block_size) {
    return static_cast<unsigned>((items + block_size - 1) / block_size);
  }

 private:
  models::Launcher launcher_;
  std::vector<double> shared_;
};

}  // namespace culike
