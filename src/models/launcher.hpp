#pragma once
// Launcher: the seam between the programming-model API layers and the
// simulated hardware.
//
// Every model (Kokkos-like, RAJA-like, offload directives, OpenCL-like,
// CUDA-like) executes kernel bodies for real on the host, then charges the
// launch to a PerfModel/SimClock pair. The LaunchInfo cost descriptor (bytes
// streamed, traits) is declared by the caller — the port knows how many
// fields a kernel touches; tests pin the declared costs against analytic
// formulas so they cannot drift.

#include <cstdint>
#include <utility>

#include "sim/clock.hpp"
#include "sim/perf_model.hpp"
#include "sim/traits.hpp"

namespace models {

class Launcher {
 public:
  Launcher(tl::sim::Model model, tl::sim::DeviceId device,
           std::uint64_t run_seed = 1)
      : perf_(model, device, run_seed) {
    clock_.set_trace_context(model, device);
  }

  /// Executes `body()` on the host, then advances simulated time by the
  /// modelled cost of the launch.
  template <typename Body>
  void run(const tl::sim::LaunchInfo& info, Body&& body) {
    std::forward<Body>(body)();
    charge(info);
  }

  /// Meters a launch without executing anything (analytic big-mesh mode).
  void charge(const tl::sim::LaunchInfo& info) {
    const double ns = perf_.launch_ns(info);
    clock_.record_launch(info, ns, perf_.last_launch_factor());
  }

  /// One priced launch, for callers that charge it in instalments (the
  /// region-split kernels charge the interior fraction when the interior
  /// sweep runs and the remainder at the finish). Exactly one PerfModel draw
  /// — the same scheduler luck a single charge() would have consumed, so a
  /// split kernel's total cost is bit-identical to the unsplit one.
  struct Priced {
    double ns = 0.0;
    double factor = 1.0;
  };
  Priced price(const tl::sim::LaunchInfo& info) {
    const double ns = perf_.launch_ns(info);
    return Priced{ns, perf_.last_launch_factor()};
  }

  /// Meters a pre-priced (possibly partial) launch: no new PerfModel draw.
  void charge_priced(const tl::sim::LaunchInfo& info, double ns,
                     double factor) {
    clock_.record_launch(info, ns, factor);
  }

  /// Meters a host<->device transfer (data maps, buffer reads/writes).
  void charge_transfer(const tl::sim::TransferInfo& info) {
    clock_.record_transfer(info, perf_.transfer_ns(info));
  }

  /// Attaches a trace sink (nullptr detaches): one TraceEvent per metered
  /// launch/transfer from here on. Zero cost while detached.
  void set_trace_sink(tl::sim::TraceSink* sink) noexcept {
    clock_.set_trace_sink(sink);
  }

  /// Starts a fresh simulated run (re-seeds scheduler luck, zeroes the clock).
  void begin_run(std::uint64_t run_seed) {
    perf_.begin_run(run_seed);
    clock_.reset();
  }

  tl::sim::PerfModel& perf() noexcept { return perf_; }
  const tl::sim::PerfModel& perf() const noexcept { return perf_; }
  tl::sim::SimClock& clock() noexcept { return clock_; }
  const tl::sim::SimClock& clock() const noexcept { return clock_; }

 private:
  tl::sim::PerfModel perf_;
  tl::sim::SimClock clock_;
};

}  // namespace models
