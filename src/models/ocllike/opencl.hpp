#pragma once
// OpenCL-like programming model layer (from-scratch reimplementation of the
// API *style* the paper's OpenCL port uses — see DESIGN.md substitutions).
//
// Reproduced concepts (paper section 2.5): the platform model (platform ->
// device -> compute units), explicit contexts, command queues, device
// buffers that host code cannot touch directly (enqueueRead/WriteBuffer
// only), programs containing named kernels, per-kernel argument binding with
// setArg, and NDRange execution in work groups with work-group reductions
// through local memory. The boilerplate is the point: the paper's complexity
// finding for OpenCL rests on exactly these steps existing.
//
// Emulation note: work items of a group execute sequentially in-order, so
// work-group barriers are correct as no-ops; kernels follow the convention
// that the *last* work item of a group performs the group-level finish
// (where real OpenCL would barrier and use item 0).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "models/launcher.hpp"
#include "util/buffer.hpp"

namespace ocllike {

class Context;

/// Device memory object. Elements are doubles (TeaLeaf's only payload type).
class Buffer {
 public:
  Buffer(Context& ctx, std::size_t count);

  std::size_t size() const noexcept { return storage_.size(); }
  std::size_t size_bytes() const noexcept { return size() * sizeof(double); }

  /// Device-side access, only meaningful from inside a kernel.
  double& operator[](std::size_t i) noexcept { return storage_[i]; }
  double operator[](std::size_t i) const noexcept { return storage_[i]; }

  /// Raw device pointer (clEnqueueMapBuffer analogue): used by the port's
  /// device-resident halo kernel and reduction finishes.
  double* data() noexcept { return storage_.data(); }
  const double* data() const noexcept { return storage_.data(); }

 private:
  tl::util::Buffer<double> storage_;
};

/// One work item's coordinates within the NDRange.
struct NDItem {
  std::size_t global_id = 0;
  std::size_t local_id = 0;
  std::size_t group_id = 0;
  std::size_t local_size = 1;
  std::size_t global_size = 0;

  /// Work-group local memory (one double per work item in the group).
  std::span<double> local_mem;
};

using KernelArg = std::variant<Buffer*, double, std::int64_t>;

/// Kernel "source": a host function executed once per work item.
using KernelFn = std::function<void(const NDItem&, const std::vector<KernelArg>&)>;

/// Compiled program: a named collection of kernels (clBuildProgram analogue).
class Program {
 public:
  static Program build(Context& ctx, std::map<std::string, KernelFn> kernels);

  const KernelFn& kernel_fn(const std::string& name) const;

 private:
  std::map<std::string, KernelFn> kernels_;
};

class Kernel {
 public:
  Kernel(const Program& program, std::string name)
      : fn_(&program.kernel_fn(name)), name_(std::move(name)) {}

  /// clSetKernelArg analogue; args may be rebound between enqueues.
  void set_arg(std::size_t index, KernelArg arg) {
    if (args_.size() <= index) args_.resize(index + 1);
    args_[index] = arg;
  }

  const std::string& name() const noexcept { return name_; }

 private:
  friend class CommandQueue;
  const KernelFn* fn_;
  std::string name_;
  std::vector<KernelArg> args_;
};

/// Platform/device discovery boilerplate. Platforms mirror the simulated
/// device catalogue.
struct PlatformDevice {
  tl::sim::DeviceId id;
  std::string name;
};
std::vector<PlatformDevice> get_platform_devices();

class Context {
 public:
  Context(tl::sim::Model model, tl::sim::DeviceId device,
          std::uint64_t run_seed = 1)
      : launcher_(model, device, run_seed) {}

  models::Launcher& launcher() noexcept { return launcher_; }
  const models::Launcher& launcher() const noexcept { return launcher_; }

 private:
  models::Launcher launcher_;
};

class CommandQueue {
 public:
  explicit CommandQueue(Context& ctx) : ctx_(&ctx) {}

  /// clEnqueueNDRangeKernel analogue. `global` must be a multiple of
  /// `local`. The LaunchInfo carries the metered cost of this enqueue.
  void enqueue_nd_range(Kernel& kernel, const tl::sim::LaunchInfo& info,
                        std::size_t global, std::size_t local);

  void enqueue_write(Buffer& dst, std::span<const double> src);
  void enqueue_read(const Buffer& src, std::span<double> dst);

  /// In-order emulation: every enqueue completes eagerly.
  void finish() {}

 private:
  Context* ctx_;
  std::vector<double> local_mem_;
};

}  // namespace ocllike
