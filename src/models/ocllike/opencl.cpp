#include "models/ocllike/opencl.hpp"

namespace ocllike {

Buffer::Buffer(Context& ctx, std::size_t count) : storage_(count) {
  (void)ctx;  // real OpenCL ties buffers to a context; ours share the host heap
}

Program Program::build(Context& ctx, std::map<std::string, KernelFn> kernels) {
  (void)ctx;
  Program p;
  p.kernels_ = std::move(kernels);
  return p;
}

const KernelFn& Program::kernel_fn(const std::string& name) const {
  const auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    throw std::invalid_argument("ocllike: unknown kernel '" + name + "'");
  }
  return it->second;
}

std::vector<PlatformDevice> get_platform_devices() {
  std::vector<PlatformDevice> out;
  for (const tl::sim::DeviceId d : tl::sim::kAllDevices) {
    out.push_back(PlatformDevice{d, std::string(tl::sim::device_spec(d).name)});
  }
  return out;
}

void CommandQueue::enqueue_nd_range(Kernel& kernel,
                                    const tl::sim::LaunchInfo& info,
                                    std::size_t global, std::size_t local) {
  if (local == 0 || global % local != 0) {
    throw std::invalid_argument(
        "ocllike: global size must be a positive multiple of local size");
  }
  ctx_->launcher().run(info, [&] {
    local_mem_.assign(local, 0.0);
    const std::size_t groups = global / local;
    NDItem item;
    item.local_size = local;
    item.global_size = global;
    item.local_mem = std::span<double>(local_mem_);
    for (std::size_t g = 0; g < groups; ++g) {
      std::fill(local_mem_.begin(), local_mem_.end(), 0.0);
      item.group_id = g;
      for (std::size_t l = 0; l < local; ++l) {
        item.local_id = l;
        item.global_id = g * local + l;
        (*kernel.fn_)(item, kernel.args_);
      }
    }
  });
}

void CommandQueue::enqueue_write(Buffer& dst, std::span<const double> src) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("ocllike: enqueue_write size mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  ctx_->launcher().charge_transfer(tl::sim::TransferInfo{
      .name = "clEnqueueWriteBuffer", .bytes = src.size_bytes(),
      .to_device = true});
}

void CommandQueue::enqueue_read(const Buffer& src, std::span<double> dst) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("ocllike: enqueue_read size mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
  ctx_->launcher().charge_transfer(tl::sim::TransferInfo{
      .name = "clEnqueueReadBuffer", .bytes = dst.size_bytes(),
      .to_device = false});
}

}  // namespace ocllike
