#pragma once
// RAJA-like programming model layer (from-scratch reimplementation of the
// API *style* the paper's RAJA port uses — see DESIGN.md substitutions).
//
// Reproduced concepts, following Hornung et al. and the paper's section 2.3:
//   - decoupling of loop body (lambda) from traversal (execution policy);
//   - Segments: RangeSegment (contiguous) and ListSegment (indirection
//     array) partition the iteration space;
//   - IndexSets aggregate segments and are dispatched by forall<Policy>;
//     TeaLeaf's halo exclusion is encoded as per-row ListSegments, which is
//     precisely the indirection that precludes vectorisation in the paper;
//   - ReduceSum objects usable from inside the lambda;
//   - the simd_exec policy models the paper's RAJA SIMD proof of concept
//     (OpenMP 4.0 `simd` on the inner loops).

#include <cstdint>
#include <numeric>
#include <variant>
#include <vector>

#include "models/launcher.hpp"

namespace rajalike {

// Execution policy tags. The policy choice is reflected in the KernelTraits
// the port passes with each forall (indirection / simd_forced); these tags
// keep the call sites reading like RAJA.
struct seq_exec {};
struct omp_parallel_for_exec {};
struct omp_parallel_simd_exec {};

struct RangeSegment {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

/// Explicit indirection list: iteration visits idx[0], idx[1], ...
struct ListSegment {
  std::vector<std::int64_t> indices;
};

using Segment = std::variant<RangeSegment, ListSegment>;

class IndexSet {
 public:
  void push_back(RangeSegment s) { segments_.emplace_back(s); }
  void push_back(ListSegment s) { segments_.emplace_back(std::move(s)); }

  const std::vector<Segment>& segments() const noexcept { return segments_; }
  std::size_t segment_count() const noexcept { return segments_.size(); }

  std::int64_t total_length() const noexcept {
    std::int64_t n = 0;
    for (const auto& s : segments_) {
      if (const auto* r = std::get_if<RangeSegment>(&s)) {
        n += r->end - r->begin;
      } else {
        n += static_cast<std::int64_t>(std::get<ListSegment>(s).indices.size());
      }
    }
    return n;
  }

  /// True when any segment traverses through an indirection list.
  bool has_indirection() const noexcept {
    for (const auto& s : segments_) {
      if (std::holds_alternative<ListSegment>(s)) return true;
    }
    return false;
  }

 private:
  std::vector<Segment> segments_;
};

/// Builds the TeaLeaf interior IndexSet: one ListSegment per interior row of
/// an (nx + 2h) x (ny + 2h) field, excluding `pad` extra cells on each side
/// of the interior. This is the "pre-computation of indirection lists"
/// the paper discusses placing early in the application.
IndexSet make_interior_index_set(int nx, int ny, int halo_depth, int pad = 0);

/// Same iteration space as contiguous row ranges (no indirection): used by
/// tests to show both traversals visit identical cells, and by ablation
/// benches to isolate the indirection cost.
IndexSet make_interior_range_set(int nx, int ny, int halo_depth, int pad = 0);

class Context;

/// Reduction object following RAJA's style: constructed against the context,
/// accumulated into from the lambda, read once with get().
class ReduceSum {
 public:
  explicit ReduceSum(double initial = 0.0) : value_(initial) {}
  ReduceSum& operator+=(double v) {
    value_ += v;
    return *this;
  }
  double get() const noexcept { return value_; }

 private:
  double value_;
};

class Context {
 public:
  Context(tl::sim::Model model, tl::sim::DeviceId device,
          std::uint64_t run_seed = 1)
      : launcher_(model, device, run_seed) {}

  models::Launcher& launcher() noexcept { return launcher_; }

  /// Dispatches every segment of the IndexSet through the loop body. The
  /// LaunchInfo covers the whole forall (one conceptual kernel).
  template <typename Policy, typename Body>
  void forall(const tl::sim::LaunchInfo& info, const IndexSet& iset,
              Body&& body) {
    static_assert(std::is_same_v<Policy, seq_exec> ||
                      std::is_same_v<Policy, omp_parallel_for_exec> ||
                      std::is_same_v<Policy, omp_parallel_simd_exec>,
                  "unknown RAJA-like execution policy");
    launcher_.run(info, [&] {
      for (const Segment& s : iset.segments()) {
        if (const auto* r = std::get_if<RangeSegment>(&s)) {
          for (std::int64_t i = r->begin; i < r->end; ++i) body(i);
        } else {
          for (const std::int64_t i : std::get<ListSegment>(s).indices) body(i);
        }
      }
    });
  }

  /// Plain range forall (initialisation code, dot products over vectors).
  template <typename Policy, typename Body>
  void forall(const tl::sim::LaunchInfo& info, RangeSegment range, Body&& body) {
    launcher_.run(info, [&] {
      for (std::int64_t i = range.begin; i < range.end; ++i) body(i);
    });
  }

 private:
  models::Launcher launcher_;
};

}  // namespace rajalike
