#include "models/rajalike/raja.hpp"

#include <stdexcept>

namespace rajalike {

namespace {
void check_geometry(int nx, int ny, int halo_depth, int pad) {
  if (nx <= 0 || ny <= 0 || halo_depth < 0 || pad < 0) {
    throw std::invalid_argument("interior index set: bad geometry");
  }
  if (2 * pad >= nx || 2 * pad >= ny) {
    throw std::invalid_argument("interior index set: pad swallows interior");
  }
}
}  // namespace

IndexSet make_interior_index_set(int nx, int ny, int halo_depth, int pad) {
  check_geometry(nx, ny, halo_depth, pad);
  const int h = halo_depth;
  const std::int64_t row_stride = nx + 2 * h;
  IndexSet iset;
  for (int y = h + pad; y < h + ny - pad; ++y) {
    ListSegment seg;
    seg.indices.reserve(static_cast<std::size_t>(nx - 2 * pad));
    for (int x = h + pad; x < h + nx - pad; ++x) {
      seg.indices.push_back(static_cast<std::int64_t>(y) * row_stride + x);
    }
    iset.push_back(std::move(seg));
  }
  return iset;
}

IndexSet make_interior_range_set(int nx, int ny, int halo_depth, int pad) {
  check_geometry(nx, ny, halo_depth, pad);
  const int h = halo_depth;
  const std::int64_t row_stride = nx + 2 * h;
  IndexSet iset;
  for (int y = h + pad; y < h + ny - pad; ++y) {
    const std::int64_t row = static_cast<std::int64_t>(y) * row_stride;
    iset.push_back(RangeSegment{row + h + pad, row + h + nx - pad});
  }
  return iset;
}

}  // namespace rajalike
