#pragma once
// HostPool: a fork-join worker pool with static chunking, the execution
// engine behind the host-side model layers (OpenMP-style parallel_for).
//
// Reductions are deterministic: each worker accumulates a private partial
// over a statically assigned chunk, and partials are combined in chunk order
// regardless of completion order. With `threads == 1` (the default on this
// single-core machine) execution degenerates to a plain loop, but the pool
// is fully functional and is exercised multi-threaded by the test suite.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace models {

class HostPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit HostPool(unsigned threads = 1);
  ~HostPool();
  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  unsigned thread_count() const noexcept { return workers_empty_ ? 1u : static_cast<unsigned>(threads_.size() + 1); }

  /// Splits [begin, end) into contiguous chunks, one per worker, and runs
  /// `body(chunk_begin, chunk_end)` on each. Blocks until all complete.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// Reduction variant: `body(chunk_begin, chunk_end) -> double` partials are
  /// summed in chunk order.
  double parallel_reduce_sum(
      std::int64_t begin, std::int64_t end,
      const std::function<double(std::int64_t, std::int64_t)>& body);

 private:
  struct Task {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  void worker_loop(unsigned index);
  void dispatch(std::int64_t begin, std::int64_t end,
                const std::function<void(unsigned, std::int64_t, std::int64_t)>& chunk_body);

  std::vector<std::thread> threads_;
  bool workers_empty_ = true;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool shutdown_ = false;
  std::vector<Task> tasks_;
  const std::function<void(unsigned, std::int64_t, std::int64_t)>* active_body_ = nullptr;
};

}  // namespace models
