#pragma once
// HostPool: a fork-join worker pool, the execution engine behind the
// host-side model layers and the fused reference kernels.
//
// Work is split into `grain`-sized chunks that threads claim dynamically
// through an atomic cursor. The chunking depends only on (begin, end, grain)
// — never on the thread count or on claim order — so a reduction is
// bit-identical at 1, 2, or 8 threads: each chunk writes a private partial
// slot, and the slots are combined by a pairwise (tree) fold in chunk order,
// which also accumulates less rounding drift than a running left-fold.
//
// The public entry points are templates dispatching through a raw function
// pointer (ChunkFn), so hot loops never allocate or type-erase through
// std::function. With `threads == 1` (the default on this single-core
// machine) execution degenerates to a plain chunked loop, but the pool is
// fully functional and is exercised multi-threaded by the test suite.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace models {

class HostPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit HostPool(unsigned threads = 1);
  ~HostPool();
  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Raw dispatch seam: invoked once per chunk with that chunk's
  /// [begin, end) and its index in iteration order.
  using ChunkFn = void (*)(void* ctx, std::int64_t begin, std::int64_t end,
                           std::int64_t chunk_index);

  /// Chunk length actually used for a range of `total` iterations.
  /// grain > 0 is honoured exactly; grain == 0 picks a default aiming at
  /// kDefaultChunksPerRange chunks, a function of the range extent only
  /// (never the thread count), so default-grain reductions stay
  /// thread-count-invariant too. `align > 1` rounds the default grain up to
  /// a multiple of align — callers iterating vector-unrolled spans pass the
  /// active ISA's group width (core/isa.hpp isa_row_group) so chunk
  /// boundaries never split an accumulation group mid-vector; the historic
  /// default heuristic implicitly assumed SSE2's narrow step and could.
  static constexpr std::int64_t kDefaultChunksPerRange = 64;
  static std::int64_t effective_grain(std::int64_t total, std::int64_t grain,
                                      std::int64_t align = 1) noexcept {
    if (grain > 0) return grain;
    std::int64_t g = total / kDefaultChunksPerRange;
    if (g < 1) g = 1;
    if (align > 1) g = ((g + align - 1) / align) * align;
    return g;
  }

  /// Splits [begin, end) into grain-sized chunks and runs
  /// `body(chunk_begin, chunk_end)` on each. Blocks until all complete.
  template <typename Body>
  void parallel_for(std::int64_t begin, std::int64_t end, Body&& body,
                    std::int64_t grain = 0, std::int64_t align = 1) {
    if (begin >= end) return;
    run_chunks(begin, end, effective_grain(end - begin, grain, align),
               &invoke_for<std::remove_reference_t<Body>>,
               std::addressof(body));
  }

  /// Reduction variant: `body(chunk_begin, chunk_end) -> double` partials,
  /// one per chunk, combined pairwise in chunk order.
  template <typename Body>
  double parallel_reduce_sum(std::int64_t begin, std::int64_t end, Body&& body,
                             std::int64_t grain = 0, std::int64_t align = 1) {
    if (begin >= end) return 0.0;
    const std::int64_t g = effective_grain(end - begin, grain, align);
    const std::int64_t nchunks = (end - begin + g - 1) / g;
    partials_.assign(static_cast<std::size_t>(nchunks), 0.0);
    ReduceCtx<std::remove_reference_t<Body>> ctx{std::addressof(body),
                                                 partials_.data()};
    run_chunks(begin, end, g, &invoke_reduce<std::remove_reference_t<Body>>,
               &ctx);
    return combine_pairwise(partials_.data(), nchunks);
  }

 private:
  template <typename Body>
  static void invoke_for(void* ctx, std::int64_t b, std::int64_t e,
                         std::int64_t) {
    (*static_cast<Body*>(ctx))(b, e);
  }

  template <typename Body>
  struct ReduceCtx {
    Body* body;
    double* partials;
  };

  template <typename Body>
  static void invoke_reduce(void* ctx, std::int64_t b, std::int64_t e,
                            std::int64_t chunk_index) {
    auto* c = static_cast<ReduceCtx<Body>*>(ctx);
    c->partials[chunk_index] = (*c->body)(b, e);
  }

  /// In-place tree fold: (p0+p1) + (p2+p3), ... — pairing depends only on
  /// the chunk count.
  static double combine_pairwise(double* p, std::int64_t n) noexcept {
    for (std::int64_t width = 1; width < n; width *= 2) {
      for (std::int64_t i = 0; i + width < n; i += 2 * width) {
        p[i] += p[i + width];
      }
    }
    return n > 0 ? p[0] : 0.0;
  }

  void run_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ChunkFn fn, void* ctx);
  void claim_chunks();
  void worker_loop();

  /// The in-flight job. Written under mutex_ before the generation bump;
  /// stable until every participant has decremented pending_.
  struct Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t nchunks = 0;
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    std::atomic<std::int64_t> cursor{0};
  };

  std::vector<std::thread> threads_;
  bool workers_empty_ = true;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool shutdown_ = false;
  Job job_;
  std::vector<double> partials_;  // reduction slots, one per chunk
};

}  // namespace models
