#pragma once
// OpenMP 3.0-style host model: `#pragma omp parallel for` over shared
// memory, with static scheduling and reduction clauses. This is the model
// behind both the Fortran 90 baseline and the C/C++ port that seeded every
// other port in the paper.
//
// Bodies execute through the HostPool (fork-join, static chunking,
// deterministic chunk-ordered reductions); the Launcher meters simulated
// time for the target device (CPU, or KNC when natively compiled).

#include <cstdint>
#include <memory>

#include "models/host_pool.hpp"
#include "models/launcher.hpp"

namespace omp3 {

class Runtime {
 public:
  Runtime(tl::sim::Model model, tl::sim::DeviceId device,
          std::uint64_t run_seed = 1, unsigned threads = 1)
      : launcher_(model, device, run_seed),
        pool_(std::make_unique<models::HostPool>(threads)) {}

  models::Launcher& launcher() noexcept { return launcher_; }
  models::HostPool& pool() noexcept { return *pool_; }

  /// `#pragma omp parallel for schedule(static)` — body(i) per index.
  template <typename Body>
  void parallel_for(const tl::sim::LaunchInfo& info, std::int64_t begin,
                    std::int64_t end, Body&& body) {
    launcher_.run(info, [&] {
      pool_->parallel_for(begin, end, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) body(i);
      });
    });
  }

  /// `#pragma omp parallel for reduction(+: acc)` — body(i, acc).
  template <typename Body>
  double parallel_reduce(const tl::sim::LaunchInfo& info, std::int64_t begin,
                         std::int64_t end, Body&& body) {
    double result = 0.0;
    launcher_.run(info, [&] {
      result = pool_->parallel_reduce_sum(
          begin, end, [&](std::int64_t b, std::int64_t e) {
            double acc = 0.0;
            for (std::int64_t i = b; i < e; ++i) body(i, acc);
            return acc;
          });
    });
    return result;
  }

 private:
  models::Launcher launcher_;
  std::unique_ptr<models::HostPool> pool_;
};

}  // namespace omp3
