#pragma once
// Comm fault injection and the reliable ack/retry protocol (DESIGN.md §13).
//
// FaultyComm decorates a MiniComm Communicator with a seeded, deterministic
// fault schedule: any DATA send may be dropped, duplicated, or delayed,
// decided by hashing (seed, epoch, src, dst, tag, attempt) — never by wall
// clock — so a given schedule is reproducible across runs and machines.
// On top of the lossy sends sits `exchange()`: a poll-based reliable
// bidirectional exchange in which every payload is acknowledged, unacked
// sends are retransmitted with exponential backoff, and duplicate arrivals
// are absorbed (matching is by (source, wire tag), which the halo/reduction
// layers never reuse within a run). The protocol services incoming DATA,
// incoming ACKs, and retransmissions from one loop, so two peers exchanging
// payloads can never deadlock waiting on each other's ACKs.
//
// Unsurvivable schedules stay diagnosable instead of hanging: a sender that
// exhausts its retry budget throws CommRetryExhausted, and a receiver whose
// poll budget expires (its peer died or dropped everything) throws
// ReliableTimeout. Both derive from CommFaultError, the retryable class the
// solve service keys re-enqueue-from-checkpoint on.
//
// ACK tags sit one bit above the data wire-tag space: HaloExchanger derives
// wire tags as tag * 8 + subtag with tag < 2^20, so every data tag is below
// 2^23 and ACKs occupy [2^23, 2^24), still under kCollectiveTagBase.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/minimpi.hpp"

namespace tl::comm {

/// Added to a data wire tag to form its ACK tag.
inline constexpr int kAckTagOffset = 1 << 23;

/// A deterministic fault schedule plus the retry/deadlock budgets.
struct FaultSpec {
  std::uint64_t seed = 1;   // schedule seed (mixed with epoch)
  double drop = 0.0;        // P(DATA send vanishes)
  double duplicate = 0.0;   // P(DATA send delivered twice)
  double delay = 0.0;       // P(DATA send deferred by ~resend_polls/2 polls)
  int max_attempts = 10;    // sends per payload before CommRetryExhausted
  int resend_polls = 64;    // polls before the first retransmission; doubles
                            // per attempt (capped) for exponential backoff
  int poll_limit = 200'000; // per-exchange poll budget (deadlock guard)

  /// Deterministic hard failure for lifecycle tests: while the injected
  /// step equals hard_fail_step and epoch == 0, every DATA send from
  /// hard_fail_rank is dropped — the world fails diagnosably at a known
  /// step, and a resumed attempt (epoch > 0) sails through.
  int hard_fail_rank = -1;
  int hard_fail_step = -1;
  int epoch = 0;  // resume attempt counter; perturbs the schedule hash

  bool active() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || hard_fail_rank >= 0;
  }
};

/// Retryable communication failure (the service re-enqueues on this).
class CommFaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A sender used up its retry budget without seeing an ACK.
class CommRetryExhausted : public CommFaultError {
 public:
  using CommFaultError::CommFaultError;
};

/// A poll loop ran out of budget — the peer died or dropped everything.
class ReliableTimeout : public CommFaultError {
 public:
  using CommFaultError::CommFaultError;
};

/// Injection/retry tallies for one rank, folded into dist::CommStats.
struct FaultStats {
  std::uint64_t data_sends = 0;  // DATA send attempts (incl. retransmits)
  std::uint64_t retries = 0;     // retransmissions past the first attempt
  std::uint64_t dropped = 0;     // injected drops
  std::uint64_t duplicated = 0;  // injected duplicate deliveries
  std::uint64_t delayed = 0;     // injected deferrals
  std::uint64_t acks_sent = 0;   // ACKs emitted (never faulted)
};

/// One outbound / inbound payload of a reliable exchange. The spans must
/// stay valid until exchange() returns.
struct WireOut {
  int dest = 0;
  int tag = 0;
  std::span<const double> data;
};
struct WireIn {
  int source = 0;
  int tag = 0;
  std::span<double> data;
};

class FaultyComm {
 public:
  FaultyComm(Communicator& comm, FaultSpec spec)
      : comm_(comm), spec_(spec) {}

  /// Completes every out (ACKed by its receiver) and every in (payload
  /// delivered exactly once) under the fault schedule, or throws a
  /// CommFaultError subclass. Either span may be empty.
  void exchange(std::span<const WireOut> outs, std::span<const WireIn> ins);

  /// Step-boundary notification (arms/disarms the hard-fail trigger).
  void set_step(int step) noexcept { step_ = step; }

  const FaultStats& stats() const noexcept { return stats_; }
  const FaultSpec& spec() const noexcept { return spec_; }
  Communicator& comm() noexcept { return comm_; }

 private:
  double uniform(int dest, int tag, int attempt, int salt) const;
  /// Sends under the schedule; `poll` anchors injected delays.
  void faulty_send(const WireOut& out, int attempt, std::uint64_t poll);
  bool flush_due(std::uint64_t poll);

  struct Delayed {
    std::uint64_t due_poll = 0;
    int dest = 0;
    int tag = 0;
    std::vector<double> payload;
  };

  Communicator& comm_;
  FaultSpec spec_;
  FaultStats stats_;
  int step_ = 0;
  std::vector<Delayed> delayed_;
};

/// Fault-surviving allreduce(sum): reliable gather-to-0, combine in rank
/// order (bit-identical to MiniComm's sequential reduce), reliable
/// broadcast. `gather_tag`/`bcast_tag` are caller-provided data wire tags
/// (the halo scheme's spare subtags).
void reliable_allreduce_sum(FaultyComm& fc, std::span<double> values,
                            int gather_tag, int bcast_tag);

}  // namespace tl::comm
