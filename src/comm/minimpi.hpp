#pragma once
// MiniComm: an in-process message-passing substrate.
//
// The paper notes every evaluated model stops at node-level parallelism and
// TeaLeaf handles inter-node communication with MPI. This environment has no
// MPI (and no second node), so we provide the same primitives — ranks,
// blocking tagged send/recv, sendrecv, barrier, broadcast, allreduce — over
// threads in one process. Each rank runs as a std::thread; mailboxes are
// mutex+condvar protected queues. Semantics follow MPI's blocking point-to-
// point model closely enough that the TeaLeaf halo-exchange driver code is
// shaped exactly as it would be over real MPI.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace tl::comm {

class World;
class Communicator;

/// Tags at or above this value are reserved for the collectives built on
/// point-to-point messaging (broadcast, allreduce, gather). User-level
/// protocols — notably the halo exchanger's `tag * 8 + subtag` scheme —
/// must keep every derived tag strictly below this base; HaloExchanger
/// throws (and dist/kernels.cpp static_asserts) on violation so a tag
/// collision with a collective surfaces as an error, not a hang.
inline constexpr int kCollectiveTagBase = 1 << 24;

/// Handle for a nonblocking operation. Obtained from Communicator::isend /
/// Communicator::irecv; completed by wait()/test()/wait_all(). A request is
/// single-owner and movable; completing it twice is a no-op (duplicate
/// wait_all over the same span is safe). Default-constructed requests are
/// already complete.
///
/// isend requests complete immediately (MiniComm sends are buffered and
/// never block); irecv requests complete when a matching (source, tag)
/// message has been copied into the destination span. wait() inherits the
/// World's recv deadlock guard, so a mismatched-tag nonblocking exchange
/// throws the same diagnosable timeout error as the blocking path.
class CommRequest {
 public:
  CommRequest() = default;

  /// True once the operation has completed (payload delivered for irecv).
  bool done() const noexcept { return done_; }

  /// Nonblocking poll: attempts completion, returns done(). Out-of-order
  /// completion is natural — matching is by (source, tag), so whichever
  /// message has arrived can complete first regardless of post order.
  bool test();

  /// Blocks until complete (subject to the World's recv timeout guard).
  void wait();

 private:
  friend class Communicator;
  CommRequest(World* world, int rank, int source, int tag,
              std::span<double> dest)
      : world_(world), rank_(rank), source_(source), tag_(tag), dest_(dest),
        done_(false) {}

  World* world_ = nullptr;
  int rank_ = 0;
  int source_ = 0;
  int tag_ = 0;
  std::span<double> dest_{};
  bool done_ = true;
};

/// Per-rank handle passed to the rank body. Thread-compatible: each rank
/// uses its own Communicator from its own thread.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Blocking tagged send/recv of doubles. Messages between a (source,
  /// dest, tag) triple are delivered in order.
  void send(std::span<const double> data, int dest, int tag);
  void recv(std::span<double> data, int source, int tag);

  /// Nonblocking variants. isend buffers the payload and returns an
  /// already-complete request (symmetry with MPI_Isend; MiniComm sends
  /// never block). irecv registers interest in a (source, tag) match; the
  /// destination span must stay valid until the request completes.
  CommRequest isend(std::span<const double> data, int dest, int tag);
  CommRequest irecv(std::span<double> data, int source, int tag);

  /// Nonblocking probe-and-receive: delivers and returns true iff a
  /// matching (source, tag) message is already queued; never waits. The
  /// fault-tolerant retry protocol's poll loop is built on this.
  bool try_recv(std::span<double> data, int source, int tag);

  /// Completes every request in `reqs` (blocking). Safe to call again on
  /// the same span: already-complete requests are skipped.
  static void wait_all(std::span<CommRequest> reqs);

  /// Exchange with two peers in one step (the halo-exchange primitive).
  /// Either peer may be kNoRank, in which case that direction is skipped.
  static constexpr int kNoRank = -1;
  void sendrecv(std::span<const double> send_data, int dest,
                std::span<double> recv_data, int source, int tag);

  void barrier();

  /// Broadcast from root into `data` on every rank.
  void broadcast(std::span<double> data, int root);

  enum class ReduceOp { kSum, kMin, kMax };
  double allreduce(double value, ReduceOp op);
  void allreduce(std::span<double> values, ReduceOp op);

  /// Gather one double from every rank to root; non-roots get empty results.
  std::vector<double> gather(double value, int root);

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

/// Runs `body(comm)` on `nranks` threads, each with its own rank. Any
/// exception thrown by a rank is rethrown (first rank's exception wins)
/// after all threads join. A nonzero `recv_timeout` arms the World's
/// deadlock guard (see World::set_recv_timeout).
void run_ranks(int nranks, const std::function<void(Communicator&)>& body,
               std::chrono::milliseconds recv_timeout =
                   std::chrono::milliseconds{0});

/// The shared state behind a set of communicators. Exposed for tests that
/// want to drive ranks manually instead of via run_ranks.
class World {
 public:
  explicit World(int nranks);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return nranks_; }
  Communicator communicator(int rank);

  /// Deadlock guard: bounds every recv wait. A recv that sees no matching
  /// (source, tag) message within the window throws std::runtime_error
  /// instead of blocking forever — mismatched tags in a sendrecv pattern
  /// become a diagnosable failure, not a hang. Zero (the default) waits
  /// indefinitely. Set before the rank threads start.
  void set_recv_timeout(std::chrono::milliseconds timeout) noexcept {
    recv_timeout_ = timeout;
  }

 private:
  friend class Communicator;
  friend class CommRequest;

  struct Message {
    int source;
    int tag;
    std::vector<double> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  struct CollectiveState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    std::vector<double> scratch;
  };

  void send_impl(int source, int dest, int tag, std::span<const double> data);
  void recv_impl(int rank, int source, int tag, std::span<double> data);
  /// Nonblocking probe: delivers and returns true iff a matching message is
  /// already queued. Never waits.
  bool try_recv_impl(int rank, int source, int tag, std::span<double> data);
  void barrier_impl();

  int nranks_;
  std::chrono::milliseconds recv_timeout_{0};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveState collective_;
};

}  // namespace tl::comm
