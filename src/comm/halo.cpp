#include "comm/halo.hpp"

#include <cassert>
#include <stdexcept>

namespace tl::comm {

using tl::util::Span2D;

void reflect_boundary(Span2D<double> field, int halo_depth,
                      std::span<const Face> faces) {
  const int h = halo_depth;
  const int nx = field.nx() - 2 * h;
  const int ny = field.ny() - 2 * h;
  if (nx <= 0 || ny <= 0) {
    throw std::invalid_argument("reflect_boundary: field smaller than halo");
  }
  // x faces first over interior rows, then y faces over the full width so
  // corner halo cells are filled too (TeaLeaf's update_halo ordering).
  for (const Face f : faces) {
    switch (f) {
      case Face::kLeft:
        for (int y = h; y < h + ny; ++y) {
          for (int k = 0; k < h; ++k) field(h - 1 - k, y) = field(h + k, y);
        }
        break;
      case Face::kRight:
        for (int y = h; y < h + ny; ++y) {
          for (int k = 0; k < h; ++k) {
            field(h + nx + k, y) = field(h + nx - 1 - k, y);
          }
        }
        break;
      case Face::kBottom:
        for (int k = 0; k < h; ++k) {
          for (int x = 0; x < field.nx(); ++x) {
            field(x, h - 1 - k) = field(x, h + k);
          }
        }
        break;
      case Face::kTop:
        for (int k = 0; k < h; ++k) {
          for (int x = 0; x < field.nx(); ++x) {
            field(x, h + ny + k) = field(x, h + ny - 1 - k);
          }
        }
        break;
    }
  }
}

void reflect_physical_faces(Span2D<double> field, int halo_depth,
                            const Tile& tile) {
  std::vector<Face> faces;
  // Preserve x-before-y ordering for correct corner fill.
  if (!tile.has_neighbour(Face::kLeft)) faces.push_back(Face::kLeft);
  if (!tile.has_neighbour(Face::kRight)) faces.push_back(Face::kRight);
  if (!tile.has_neighbour(Face::kBottom)) faces.push_back(Face::kBottom);
  if (!tile.has_neighbour(Face::kTop)) faces.push_back(Face::kTop);
  reflect_boundary(field, halo_depth, faces);
}

HaloExchanger::HaloExchanger(const BlockDecomposition& decomp, int rank,
                             int halo_depth)
    : tile_(decomp.tile(rank)), halo_depth_(halo_depth) {
  const std::size_t max_strip =
      static_cast<std::size_t>(halo_depth) *
      static_cast<std::size_t>(
          std::max(tile_.ny(), tile_.nx() + 2 * halo_depth));
  send_buf_.resize(max_strip);
  recv_buf_.resize(max_strip);
  for (auto& buf : post_recv_bufs_) buf.resize(max_strip);
}

namespace {
// Shared by exchange() and post(): a tag whose derived sub-tags would reach
// the reserved collective range silently aliases collective traffic — turn
// that into a diagnosable error up front.
void check_tag_range(int tag) {
  if (tag < 0 || tag * 8 + 7 >= kCollectiveTagBase) {
    throw std::invalid_argument(
        "HaloExchanger: tag out of range — tag * 8 + subtag must stay below "
        "the reserved collective tag base (1 << 24)");
  }
}
}  // namespace

void HaloExchanger::pack(Span2D<const double> field, Face face, int depth,
                         std::vector<double>& buf) const {
  const int h = halo_depth_;
  const int nx = tile_.nx();
  const int ny = tile_.ny();
  std::size_t i = 0;
  switch (face) {
    case Face::kLeft:
      for (int y = h; y < h + ny; ++y)
        for (int k = 0; k < depth; ++k) buf[i++] = field(h + k, y);
      break;
    case Face::kRight:
      for (int y = h; y < h + ny; ++y)
        for (int k = 0; k < depth; ++k) buf[i++] = field(h + nx - depth + k, y);
      break;
    case Face::kBottom:
      for (int k = 0; k < depth; ++k)
        for (int x = 0; x < field.nx(); ++x) buf[i++] = field(x, h + k);
      break;
    case Face::kTop:
      for (int k = 0; k < depth; ++k)
        for (int x = 0; x < field.nx(); ++x) {
          buf[i++] = field(x, h + ny - depth + k);
        }
      break;
  }
}

void HaloExchanger::unpack(Span2D<double> field, Face face, int depth,
                           std::span<const double> buf) const {
  const int h = halo_depth_;
  const int nx = tile_.nx();
  const int ny = tile_.ny();
  std::size_t i = 0;
  switch (face) {
    case Face::kLeft:  // data from the left neighbour's right edge
      for (int y = h; y < h + ny; ++y)
        for (int k = 0; k < depth; ++k) field(h - depth + k, y) = buf[i++];
      break;
    case Face::kRight:
      for (int y = h; y < h + ny; ++y)
        for (int k = 0; k < depth; ++k) field(h + nx + k, y) = buf[i++];
      break;
    case Face::kBottom:
      for (int k = 0; k < depth; ++k)
        for (int x = 0; x < field.nx(); ++x) field(x, h - depth + k) = buf[i++];
      break;
    case Face::kTop:
      for (int k = 0; k < depth; ++k)
        for (int x = 0; x < field.nx(); ++x) field(x, h + ny + k) = buf[i++];
      break;
  }
}

void HaloExchanger::reflect_x_if_physical(Span2D<double> field) const {
  std::vector<Face> faces;
  if (!tile_.has_neighbour(Face::kLeft)) faces.push_back(Face::kLeft);
  if (!tile_.has_neighbour(Face::kRight)) faces.push_back(Face::kRight);
  reflect_boundary(field, halo_depth_, faces);
}

void HaloExchanger::reflect_y_if_physical(Span2D<double> field) const {
  std::vector<Face> faces;
  if (!tile_.has_neighbour(Face::kBottom)) faces.push_back(Face::kBottom);
  if (!tile_.has_neighbour(Face::kTop)) faces.push_back(Face::kTop);
  reflect_boundary(field, halo_depth_, faces);
}

void HaloExchanger::exchange(Communicator& comm, Span2D<double> field,
                             int depth, int tag) {
  if (depth <= 0 || depth > halo_depth_) {
    throw std::invalid_argument("HaloExchanger: bad exchange depth");
  }
  check_tag_range(tag);
  // Phase 1: x direction over interior rows; phase 2: y direction over the
  // full (halo-included) width so corner data propagates diagonally.
  const std::size_t x_count = static_cast<std::size_t>(depth) *
                              static_cast<std::size_t>(tile_.ny());
  const std::size_t y_count = static_cast<std::size_t>(depth) *
                              static_cast<std::size_t>(field.nx());

  auto swap_face = [&](Face send_face, Face recv_face, std::size_t count,
                       int subtag) {
    const int dest = tile_.neighbour_of(send_face);
    const int source = tile_.neighbour_of(recv_face);
    if (dest >= 0) pack(field, send_face, depth, send_buf_);
    comm.sendrecv(std::span<const double>(send_buf_.data(), dest >= 0 ? count : 0),
                  dest >= 0 ? dest : Communicator::kNoRank,
                  std::span<double>(recv_buf_.data(), source >= 0 ? count : 0),
                  source >= 0 ? source : Communicator::kNoRank,
                  tag * 8 + subtag);
    if (source >= 0) unpack(field, recv_face, depth, recv_buf_);
  };

  swap_face(Face::kLeft, Face::kRight, x_count, 0);
  swap_face(Face::kRight, Face::kLeft, x_count, 1);
  reflect_x_if_physical(field);

  swap_face(Face::kBottom, Face::kTop, y_count, 2);
  swap_face(Face::kTop, Face::kBottom, y_count, 3);
  reflect_y_if_physical(field);
}

namespace {
struct Direction {
  Face send_face;
  Face recv_face;
  int subtag;
};
// Same direction/subtag order as exchange()'s swap_face sequence.
constexpr Direction kDirections[4] = {
    {Face::kLeft, Face::kRight, 0},
    {Face::kRight, Face::kLeft, 1},
    {Face::kBottom, Face::kTop, 2},
    {Face::kTop, Face::kBottom, 3},
};
}  // namespace

void HaloExchanger::exchange_reliable(FaultyComm& fc, Span2D<double> field,
                                      int depth, int tag) {
  if (depth <= 0 || depth > halo_depth_) {
    throw std::invalid_argument("HaloExchanger: bad exchange depth");
  }
  check_tag_range(tag);
  const std::size_t x_count = static_cast<std::size_t>(depth) *
                              static_cast<std::size_t>(tile_.ny());
  const std::size_t y_count = static_cast<std::size_t>(depth) *
                              static_cast<std::size_t>(field.nx());

  // One reliable exchange per phase: both directions' payloads in flight at
  // once (send/recv completion is handled by the poll loop, so concurrent
  // directions cannot deadlock), then the same unpack order as exchange().
  auto phase = [&](int first_dir) {
    std::array<std::vector<double>, 2> sbuf, rbuf;
    std::vector<WireOut> outs;
    std::vector<WireIn> ins;
    for (int k = 0; k < 2; ++k) {
      const Direction& d = kDirections[first_dir + k];
      const std::size_t count =
          d.subtag < 2 ? x_count : y_count;
      const int dest = tile_.neighbour_of(d.send_face);
      const int source = tile_.neighbour_of(d.recv_face);
      if (dest >= 0) {
        auto& buf = sbuf[static_cast<std::size_t>(k)];
        buf.resize(count);
        pack(field, d.send_face, depth, buf);
        outs.push_back({dest, tag * 8 + d.subtag,
                        std::span<const double>(buf.data(), count)});
      }
      if (source >= 0) {
        auto& buf = rbuf[static_cast<std::size_t>(k)];
        buf.resize(count);
        ins.push_back({source, tag * 8 + d.subtag, std::span<double>(buf)});
      }
    }
    fc.exchange(outs, ins);
    for (int k = 0; k < 2; ++k) {
      const Direction& d = kDirections[first_dir + k];
      if (tile_.neighbour_of(d.recv_face) >= 0) {
        unpack(field, d.recv_face, depth, rbuf[static_cast<std::size_t>(k)]);
      }
    }
  };

  phase(0);
  reflect_x_if_physical(field);
  phase(2);
  reflect_y_if_physical(field);
}

void HaloExchanger::post(Communicator& comm, Span2D<const double> field,
                         int tag) {
  if (pending_) {
    throw std::logic_error(
        "HaloExchanger::post: previous overlapped exchange not completed");
  }
  check_tag_range(tag);
  constexpr int depth = 1;  // see header: corner staleness bounds us to 1
  const std::size_t x_count = static_cast<std::size_t>(tile_.ny());
  const std::size_t y_count = static_cast<std::size_t>(field.nx());
  for (const Direction& d : kDirections) {
    const std::size_t count = d.subtag < 2 ? x_count : y_count;
    const int dest = tile_.neighbour_of(d.send_face);
    const int source = tile_.neighbour_of(d.recv_face);
    if (dest >= 0) {
      // Sends are buffered, so one scratch buffer serves all four packs.
      pack(field, d.send_face, depth, send_buf_);
      comm.isend(std::span<const double>(send_buf_.data(), count), dest,
                 tag * 8 + d.subtag);
    }
    auto& req = post_reqs_[static_cast<std::size_t>(d.subtag)];
    if (source >= 0) {
      auto& buf = post_recv_bufs_[static_cast<std::size_t>(d.subtag)];
      req = comm.irecv(std::span<double>(buf.data(), count), source,
                       tag * 8 + d.subtag);
    } else {
      req = CommRequest{};  // nothing to wait for on this side
    }
  }
  pending_ = true;
}

void HaloExchanger::complete(Communicator& comm, Span2D<double> field) {
  (void)comm;  // requests carry their own world handle
  if (!pending_) {
    throw std::logic_error(
        "HaloExchanger::complete: no overlapped exchange pending");
  }
  constexpr int depth = 1;
  // Receiver-side order matches exchange(): x faces, physical-x reflect,
  // y faces, physical-y reflect (corner fill relies on it).
  for (int i = 0; i < 2; ++i) {
    const Direction& d = kDirections[i];
    if (tile_.neighbour_of(d.recv_face) >= 0) {
      auto& req = post_reqs_[static_cast<std::size_t>(d.subtag)];
      req.wait();
      unpack(field, d.recv_face, depth,
             post_recv_bufs_[static_cast<std::size_t>(d.subtag)]);
    }
  }
  reflect_x_if_physical(field);
  for (int i = 2; i < 4; ++i) {
    const Direction& d = kDirections[i];
    if (tile_.neighbour_of(d.recv_face) >= 0) {
      auto& req = post_reqs_[static_cast<std::size_t>(d.subtag)];
      req.wait();
      unpack(field, d.recv_face, depth,
             post_recv_bufs_[static_cast<std::size_t>(d.subtag)]);
    }
  }
  reflect_y_if_physical(field);
  pending_ = false;
}

}  // namespace tl::comm
