#include "comm/minimpi.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace tl::comm {

namespace {
// kCollectiveTagBase lives in the header so user-level tag schemes can
// assert they stay below the reserved collective range.
constexpr int kTagBroadcast = kCollectiveTagBase + 1;
constexpr int kTagReduceUp = kCollectiveTagBase + 2;
constexpr int kTagReduceDown = kCollectiveTagBase + 3;
constexpr int kTagGather = kCollectiveTagBase + 4;
}  // namespace

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int nranks) : nranks_(nranks) {
  if (nranks <= 0) throw std::invalid_argument("World: nranks must be > 0");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

World::~World() = default;

Communicator World::communicator(int rank) {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("World::communicator: bad rank");
  }
  return Communicator(this, rank);
}

void World::send_impl(int source, int dest, int tag,
                      std::span<const double> data) {
  if (dest < 0 || dest >= nranks_) {
    throw std::out_of_range("send: bad destination rank");
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(
        Message{source, tag, std::vector<double>(data.begin(), data.end())});
  }
  box.cv.notify_all();
}

void World::recv_impl(int rank, int source, int tag, std::span<double> data) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto find_match = [&] {
    return std::find_if(box.messages.begin(), box.messages.end(),
                        [&](const Message& m) {
                          return m.source == source && m.tag == tag;
                        });
  };
  for (;;) {
    const auto it = find_match();
    if (it != box.messages.end()) {
      if (it->payload.size() != data.size()) {
        throw std::runtime_error("recv: message size mismatch");
      }
      std::copy(it->payload.begin(), it->payload.end(), data.begin());
      box.messages.erase(it);
      return;
    }
    if (recv_timeout_.count() <= 0) {
      box.cv.wait(lock);
    } else if (!box.cv.wait_for(lock, recv_timeout_, [&] {
                 return find_match() != box.messages.end();
               })) {
      throw std::runtime_error(
          "recv: timed out waiting for (source=" + std::to_string(source) +
          ", tag=" + std::to_string(tag) +
          ") — likely deadlock (mismatched tags?)");
    }
  }
}

bool World::try_recv_impl(int rank, int source, int tag,
                          std::span<double> data) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mutex);
  const auto it = std::find_if(box.messages.begin(), box.messages.end(),
                               [&](const Message& m) {
                                 return m.source == source && m.tag == tag;
                               });
  if (it == box.messages.end()) return false;
  if (it->payload.size() != data.size()) {
    throw std::runtime_error("recv: message size mismatch");
  }
  std::copy(it->payload.begin(), it->payload.end(), data.begin());
  box.messages.erase(it);
  return true;
}

void World::barrier_impl() {
  std::unique_lock<std::mutex> lock(collective_.mutex);
  const std::uint64_t my_generation = collective_.generation;
  if (++collective_.arrived == nranks_) {
    collective_.arrived = 0;
    ++collective_.generation;
    collective_.cv.notify_all();
    return;
  }
  collective_.cv.wait(lock, [&] {
    return collective_.generation != my_generation;
  });
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

int Communicator::size() const noexcept { return world_->size(); }

void Communicator::send(std::span<const double> data, int dest, int tag) {
  world_->send_impl(rank_, dest, tag, data);
}

void Communicator::recv(std::span<double> data, int source, int tag) {
  world_->recv_impl(rank_, source, tag, data);
}

bool Communicator::try_recv(std::span<double> data, int source, int tag) {
  return world_->try_recv_impl(rank_, source, tag, data);
}

CommRequest Communicator::isend(std::span<const double> data, int dest,
                                int tag) {
  // Sends are buffered and never block, so the "nonblocking" send is
  // complete by the time it returns — exactly MPI_Isend over an eager
  // protocol with unlimited buffering.
  world_->send_impl(rank_, dest, tag, data);
  return CommRequest{};
}

CommRequest Communicator::irecv(std::span<double> data, int source, int tag) {
  return CommRequest(world_, rank_, source, tag, data);
}

void Communicator::wait_all(std::span<CommRequest> reqs) {
  for (CommRequest& r : reqs) r.wait();
}

// ---------------------------------------------------------------------------
// CommRequest
// ---------------------------------------------------------------------------

bool CommRequest::test() {
  if (done_) return true;
  done_ = world_->try_recv_impl(rank_, source_, tag_, dest_);
  return done_;
}

void CommRequest::wait() {
  if (done_) return;
  world_->recv_impl(rank_, source_, tag_, dest_);
  done_ = true;
}

void Communicator::sendrecv(std::span<const double> send_data, int dest,
                            std::span<double> recv_data, int source, int tag) {
  // Sends are buffered (never block), so send-then-receive cannot deadlock.
  if (dest != kNoRank) world_->send_impl(rank_, dest, tag, send_data);
  if (source != kNoRank) world_->recv_impl(rank_, source, tag, recv_data);
}

void Communicator::barrier() { world_->barrier_impl(); }

void Communicator::broadcast(std::span<double> data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) world_->send_impl(rank_, r, kTagBroadcast, data);
    }
  } else {
    world_->recv_impl(rank_, root, kTagBroadcast, data);
  }
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) {
  // Reduce-to-root then broadcast. Rank order of accumulation is fixed
  // (0..P-1), so the result is deterministic.
  constexpr int root = 0;
  if (rank_ == root) {
    std::vector<double> incoming(values.size());
    for (int r = 1; r < size(); ++r) {
      world_->recv_impl(rank_, r, kTagReduceUp, incoming);
      for (std::size_t i = 0; i < values.size(); ++i) {
        switch (op) {
          case ReduceOp::kSum: values[i] += incoming[i]; break;
          case ReduceOp::kMin: values[i] = std::min(values[i], incoming[i]); break;
          case ReduceOp::kMax: values[i] = std::max(values[i], incoming[i]); break;
        }
      }
    }
    for (int r = 1; r < size(); ++r) {
      world_->send_impl(rank_, r, kTagReduceDown, values);
    }
  } else {
    world_->send_impl(rank_, root, kTagReduceUp, values);
    world_->recv_impl(rank_, root, kTagReduceDown, values);
  }
}

double Communicator::allreduce(double value, ReduceOp op) {
  double buf[1] = {value};
  allreduce(std::span<double>(buf, 1), op);
  return buf[0];
}

std::vector<double> Communicator::gather(double value, int root) {
  if (rank_ == root) {
    std::vector<double> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = value;
    double buf[1];
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      world_->recv_impl(rank_, r, kTagGather, buf);
      out[static_cast<std::size_t>(r)] = buf[0];
    }
    return out;
  }
  const double buf[1] = {value};
  world_->send_impl(rank_, root, kTagGather, buf);
  return {};
}

// ---------------------------------------------------------------------------
// run_ranks
// ---------------------------------------------------------------------------

void run_ranks(int nranks, const std::function<void(Communicator&)>& body,
               std::chrono::milliseconds recv_timeout) {
  World world(nranks);
  world.set_recv_timeout(recv_timeout);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      try {
        Communicator comm = world.communicator(r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace tl::comm
