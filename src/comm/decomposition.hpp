#pragma once
// 2-D block decomposition of the global mesh over ranks, following TeaLeaf's
// chunking: choose the process grid px*py == nranks that minimises the
// communication surface, then split cells as evenly as possible (earlier
// rows/columns take the remainder).

#include <array>
#include <vector>

namespace tl::comm {

/// Neighbour directions in the 5-point stencil exchange.
enum class Face { kLeft = 0, kRight = 1, kBottom = 2, kTop = 3 };
inline constexpr std::array<Face, 4> kAllFaces = {Face::kLeft, Face::kRight,
                                                  Face::kBottom, Face::kTop};

struct Tile {
  int rank = 0;
  int px = 0, py = 0;       // position in the process grid
  int x_begin = 0, x_end = 0;  // global cell range [begin, end)
  int y_begin = 0, y_end = 0;
  std::array<int, 4> neighbour = {-1, -1, -1, -1};  // rank per Face or -1

  int nx() const noexcept { return x_end - x_begin; }
  int ny() const noexcept { return y_end - y_begin; }
  int neighbour_of(Face f) const noexcept {
    return neighbour[static_cast<std::size_t>(f)];
  }
  bool has_neighbour(Face f) const noexcept { return neighbour_of(f) >= 0; }
};

class BlockDecomposition {
 public:
  /// Throws std::invalid_argument for non-positive sizes/ranks or when there
  /// are more ranks than cells.
  BlockDecomposition(int global_nx, int global_ny, int nranks);

  int nranks() const noexcept { return static_cast<int>(tiles_.size()); }
  int grid_x() const noexcept { return grid_x_; }
  int grid_y() const noexcept { return grid_y_; }
  int global_nx() const noexcept { return global_nx_; }
  int global_ny() const noexcept { return global_ny_; }

  const Tile& tile(int rank) const { return tiles_.at(static_cast<std::size_t>(rank)); }
  const std::vector<Tile>& tiles() const noexcept { return tiles_; }

 private:
  static std::pair<int, int> best_grid(int nx, int ny, int nranks);

  int global_nx_, global_ny_;
  int grid_x_ = 1, grid_y_ = 1;
  std::vector<Tile> tiles_;
};

}  // namespace tl::comm
