#pragma once
// 2-D block decomposition of the global mesh over ranks, following TeaLeaf's
// chunking: choose the process grid px*py == nranks that minimises the
// communication surface, then split cells as evenly as possible (earlier
// rows/columns take the remainder).
//
// The elastic/heterogeneous extension adds a row-strip layout whose per-rank
// row counts follow caller-supplied weights (largest-remainder apportionment
// over the global row count). Row strips are what the elastic reduction path
// requires — every rank owns whole rows — and weighting lets a mixed
// cpu+gpu world give the fast devices proportionally more rows.

#include <array>
#include <vector>

namespace tl::comm {

/// Neighbour directions in the 5-point stencil exchange.
enum class Face { kLeft = 0, kRight = 1, kBottom = 2, kTop = 3 };
inline constexpr std::array<Face, 4> kAllFaces = {Face::kLeft, Face::kRight,
                                                  Face::kBottom, Face::kTop};

struct Tile {
  int rank = 0;
  int px = 0, py = 0;       // position in the process grid
  int x_begin = 0, x_end = 0;  // global cell range [begin, end)
  int y_begin = 0, y_end = 0;
  std::array<int, 4> neighbour = {-1, -1, -1, -1};  // rank per Face or -1

  int nx() const noexcept { return x_end - x_begin; }
  int ny() const noexcept { return y_end - y_begin; }
  int neighbour_of(Face f) const noexcept {
    return neighbour[static_cast<std::size_t>(f)];
  }
  bool has_neighbour(Face f) const noexcept { return neighbour_of(f) >= 0; }
};

/// Layout/weighting knobs for the decomposition.
struct DecompOptions {
  enum class Layout {
    kAuto,  // surface-minimising px*py grid (the classic default)
    kRows,  // 1 x nranks row strips (whole rows per rank)
  };
  Layout layout = Layout::kAuto;
  /// Per-rank load weights (relative device rates). Empty = equal split.
  /// Non-empty implies the row-strip layout and must have nranks entries,
  /// all positive. Row counts follow largest-remainder apportionment with a
  /// floor of one row per rank.
  std::vector<double> weights;
};

class BlockDecomposition {
 public:
  /// Throws std::invalid_argument for non-positive sizes/ranks or when there
  /// are more ranks than cells.
  BlockDecomposition(int global_nx, int global_ny, int nranks);

  /// Layout- and weight-aware variant. Row-strip layouts additionally throw
  /// when nranks > global_ny (every rank must own at least one whole row).
  BlockDecomposition(int global_nx, int global_ny, int nranks,
                     const DecompOptions& options);

  int nranks() const noexcept { return static_cast<int>(tiles_.size()); }
  int grid_x() const noexcept { return grid_x_; }
  int grid_y() const noexcept { return grid_y_; }
  int global_nx() const noexcept { return global_nx_; }
  int global_ny() const noexcept { return global_ny_; }
  /// True when every rank owns whole rows (grid_x == 1), the precondition
  /// for the elastic per-row reduction path.
  bool row_strips() const noexcept { return grid_x_ == 1; }

  const Tile& tile(int rank) const { return tiles_.at(static_cast<std::size_t>(rank)); }
  const std::vector<Tile>& tiles() const noexcept { return tiles_; }

 private:
  static std::pair<int, int> best_grid(int nx, int ny, int nranks);
  /// Largest-remainder split of `rows` over `weights` (size nranks, all
  /// positive), each part at least one row. Returns per-rank row counts.
  static std::vector<int> apportion_rows(int rows,
                                         const std::vector<double>& weights);
  void build(int nranks, const std::vector<int>* row_counts);

  int global_nx_, global_ny_;
  int grid_x_ = 1, grid_y_ = 1;
  std::vector<Tile> tiles_;
};

}  // namespace tl::comm
