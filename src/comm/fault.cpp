#include "comm/fault.hpp"

#include <algorithm>
#include <thread>

#include "util/string_util.hpp"

namespace tl::comm {

namespace {

/// splitmix64 finaliser — the schedule hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double FaultyComm::uniform(int dest, int tag, int attempt, int salt) const {
  std::uint64_t h = spec_.seed;
  h = mix64(h ^ (static_cast<std::uint64_t>(spec_.epoch) << 48));
  h = mix64(h ^ (static_cast<std::uint64_t>(comm_.rank()) << 32) ^
            static_cast<std::uint64_t>(dest));
  h = mix64(h ^ (static_cast<std::uint64_t>(tag) << 16) ^
            (static_cast<std::uint64_t>(attempt) << 8) ^
            static_cast<std::uint64_t>(salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultyComm::faulty_send(const WireOut& out, int attempt,
                             std::uint64_t poll) {
  ++stats_.data_sends;
  const bool hard_fail = spec_.epoch == 0 &&
                         comm_.rank() == spec_.hard_fail_rank &&
                         step_ == spec_.hard_fail_step;
  if (hard_fail || uniform(out.dest, out.tag, attempt, 0) < spec_.drop) {
    ++stats_.dropped;
    return;
  }
  if (uniform(out.dest, out.tag, attempt, 1) < spec_.delay) {
    ++stats_.delayed;
    Delayed d;
    d.due_poll = poll + static_cast<std::uint64_t>(
                            std::max(1, spec_.resend_polls / 2));
    d.dest = out.dest;
    d.tag = out.tag;
    d.payload.assign(out.data.begin(), out.data.end());
    delayed_.push_back(std::move(d));
    return;
  }
  comm_.send(out.data, out.dest, out.tag);
  if (uniform(out.dest, out.tag, attempt, 2) < spec_.duplicate) {
    ++stats_.duplicated;
    comm_.send(out.data, out.dest, out.tag);
  }
}

bool FaultyComm::flush_due(std::uint64_t poll) {
  bool any = false;
  for (std::size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].due_poll <= poll) {
      comm_.send(delayed_[i].payload, delayed_[i].dest, delayed_[i].tag);
      delayed_[i] = std::move(delayed_.back());
      delayed_.pop_back();
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

void FaultyComm::exchange(std::span<const WireOut> outs,
                          std::span<const WireIn> ins) {
  struct OutState {
    int attempt = 1;
    std::uint64_t next_resend = 0;
    bool acked = false;
  };
  std::vector<OutState> ostate(outs.size());
  std::vector<char> got(ins.size(), 0);
  delayed_.clear();

  std::size_t scratch_len = 0;
  for (const WireIn& in : ins) scratch_len = std::max(scratch_len, in.data.size());
  std::vector<double> dup_scratch(scratch_len);
  const double ack_payload = 1.0;
  double ack_buf = 0.0;

  std::uint64_t poll = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    faulty_send(outs[i], 1, poll);
    ostate[i].next_resend = static_cast<std::uint64_t>(spec_.resend_polls);
  }

  std::size_t remaining = outs.size() + ins.size();
  while (remaining > 0) {
    bool progress = flush_due(poll);

    for (std::size_t j = 0; j < ins.size(); ++j) {
      const WireIn& in = ins[j];
      if (got[j] == 0) {
        if (comm_.try_recv(in.data, in.source, in.tag)) {
          got[j] = 1;
          --remaining;
          progress = true;
          ++stats_.acks_sent;
          comm_.send(std::span<const double>(&ack_payload, 1), in.source,
                     in.tag + kAckTagOffset);
        }
      } else {
        // Absorb duplicate arrivals, re-ACKing each in case the sender
        // retransmitted before our first ACK landed.
        std::span<double> scratch(dup_scratch.data(), in.data.size());
        while (comm_.try_recv(scratch, in.source, in.tag)) {
          progress = true;
          ++stats_.acks_sent;
          comm_.send(std::span<const double>(&ack_payload, 1), in.source,
                     in.tag + kAckTagOffset);
        }
      }
    }

    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (ostate[i].acked) continue;
      if (comm_.try_recv(std::span<double>(&ack_buf, 1), outs[i].dest,
                         outs[i].tag + kAckTagOffset)) {
        ostate[i].acked = true;
        --remaining;
        progress = true;
        continue;
      }
      if (poll >= ostate[i].next_resend) {
        if (ostate[i].attempt >= spec_.max_attempts) {
          throw CommRetryExhausted(util::strf(
              "reliable exchange: rank %d -> %d tag %d unacked after %d "
              "attempt(s) (seed %llu, epoch %d)",
              comm_.rank(), outs[i].dest, outs[i].tag, ostate[i].attempt,
              static_cast<unsigned long long>(spec_.seed), spec_.epoch));
        }
        ++ostate[i].attempt;
        ++stats_.retries;
        faulty_send(outs[i], ostate[i].attempt, poll);
        const int shift = std::min(ostate[i].attempt - 1, 6);
        ostate[i].next_resend =
            poll + (static_cast<std::uint64_t>(spec_.resend_polls) << shift);
      }
    }

    ++poll;
    if (poll > static_cast<std::uint64_t>(spec_.poll_limit)) {
      std::size_t outs_left = 0, ins_left = 0;
      for (const OutState& s : ostate) outs_left += s.acked ? 0 : 1;
      for (char g : got) ins_left += g ? 0 : 1;
      throw ReliableTimeout(util::strf(
          "reliable exchange: rank %d poll budget %d exhausted with %zu "
          "send(s) unacked and %zu recv(s) missing (seed %llu, epoch %d) — "
          "peer dead or schedule unsurvivable",
          comm_.rank(), spec_.poll_limit, outs_left, ins_left,
          static_cast<unsigned long long>(spec_.seed), spec_.epoch));
    }
    if (!progress) std::this_thread::yield();
  }
}

void reliable_allreduce_sum(FaultyComm& fc, std::span<double> values,
                            int gather_tag, int bcast_tag) {
  Communicator& comm = fc.comm();
  const int rank = comm.rank();
  const int size = comm.size();
  if (size == 1) return;
  const std::size_t n = values.size();

  if (rank == 0) {
    std::vector<double> incoming(static_cast<std::size_t>(size - 1) * n);
    std::vector<WireIn> ins;
    ins.reserve(static_cast<std::size_t>(size - 1));
    for (int r = 1; r < size; ++r) {
      ins.push_back({r, gather_tag,
                     std::span<double>(incoming.data() +
                                           static_cast<std::size_t>(r - 1) * n,
                                       n)});
    }
    fc.exchange({}, ins);
    // Rank-order combine: bit-identical to MiniComm's sequential reduce.
    for (int r = 1; r < size; ++r) {
      const double* block = incoming.data() + static_cast<std::size_t>(r - 1) * n;
      for (std::size_t k = 0; k < n; ++k) values[k] += block[k];
    }
    std::vector<WireOut> outs;
    outs.reserve(static_cast<std::size_t>(size - 1));
    for (int r = 1; r < size; ++r) {
      outs.push_back({r, bcast_tag, std::span<const double>(values)});
    }
    fc.exchange(outs, {});
  } else {
    const WireOut contribute{0, gather_tag, std::span<const double>(values)};
    fc.exchange(std::span<const WireOut>(&contribute, 1), {});
    const WireIn result{0, bcast_tag, values};
    fc.exchange({}, std::span<const WireIn>(&result, 1));
  }
}

}  // namespace tl::comm
