#pragma once
// Halo exchange for depth-d cell-centred fields.
//
// Two pieces, mirroring TeaLeaf's update_halo:
//   - reflect_boundary: physical (reflective) boundary fill on the faces of
//     the global domain — used by every solver iteration even in the
//     single-tile case;
//   - HaloExchanger: pack/sendrecv/unpack across tile boundaries over a
//     MiniComm communicator, for the decomposed (multi-rank) configuration.

#include <span>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/minimpi.hpp"
#include "util/span2d.hpp"

namespace tl::comm {

/// Fills the halo of `field` (allocated (nx+2h)x(ny+2h)) on the faces listed
/// in `faces` by reflecting interior cells, matching TeaLeaf's reflective
/// boundary condition: halo row k mirrors interior row k (k = 0 .. depth-1).
void reflect_boundary(tl::util::Span2D<double> field, int halo_depth,
                      std::span<const Face> faces);

/// Reflects on every face that is a physical boundary of `tile`, and on all
/// four faces in the single-tile case.
void reflect_physical_faces(tl::util::Span2D<double> field, int halo_depth,
                            const Tile& tile);

class HaloExchanger {
 public:
  HaloExchanger(const BlockDecomposition& decomp, int rank, int halo_depth);

  /// Exchanges `depth` (<= halo_depth) halo layers of `field` with the four
  /// neighbours and reflects physical faces. Collective across ranks: every
  /// rank owning a neighbouring tile must call exchange with the same tag.
  void exchange(Communicator& comm, tl::util::Span2D<double> field, int depth,
                int tag);

  const Tile& tile() const noexcept { return tile_; }

 private:
  void reflect_x_if_physical(tl::util::Span2D<double> field) const;
  void reflect_y_if_physical(tl::util::Span2D<double> field) const;
  void pack(tl::util::Span2D<const double> field, Face face, int depth,
            std::vector<double>& buf) const;
  void unpack(tl::util::Span2D<double> field, Face face, int depth,
              std::span<const double> buf) const;

  Tile tile_;
  int halo_depth_;
  std::vector<double> send_buf_;
  std::vector<double> recv_buf_;
};

}  // namespace tl::comm
