#pragma once
// Halo exchange for depth-d cell-centred fields.
//
// Two pieces, mirroring TeaLeaf's update_halo:
//   - reflect_boundary: physical (reflective) boundary fill on the faces of
//     the global domain — used by every solver iteration even in the
//     single-tile case;
//   - HaloExchanger: pack/sendrecv/unpack across tile boundaries over a
//     MiniComm communicator, for the decomposed (multi-rank) configuration.

#include <array>
#include <span>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/fault.hpp"
#include "comm/minimpi.hpp"
#include "util/span2d.hpp"

namespace tl::comm {

/// Fills the halo of `field` (allocated (nx+2h)x(ny+2h)) on the faces listed
/// in `faces` by reflecting interior cells, matching TeaLeaf's reflective
/// boundary condition: halo row k mirrors interior row k (k = 0 .. depth-1).
void reflect_boundary(tl::util::Span2D<double> field, int halo_depth,
                      std::span<const Face> faces);

/// Reflects on every face that is a physical boundary of `tile`, and on all
/// four faces in the single-tile case.
void reflect_physical_faces(tl::util::Span2D<double> field, int halo_depth,
                            const Tile& tile);

class HaloExchanger {
 public:
  HaloExchanger(const BlockDecomposition& decomp, int rank, int halo_depth);

  /// Exchanges `depth` (<= halo_depth) halo layers of `field` with the four
  /// neighbours and reflects physical faces. Collective across ranks: every
  /// rank owning a neighbouring tile must call exchange with the same tag.
  void exchange(Communicator& comm, tl::util::Span2D<double> field, int depth,
                int tag);

  /// Fault-tolerant twin of exchange(): identical receiver-side structure
  /// (x faces, reflect-x, y faces, reflect-y — the corner relay), but each
  /// phase runs as one reliable ack/retry exchange under `fc`'s fault
  /// schedule. Numerically bit-identical to exchange(); only delivery is
  /// adversarial. Throws a CommFaultError subclass when the schedule is
  /// unsurvivable.
  void exchange_reliable(FaultyComm& fc, tl::util::Span2D<double> field,
                         int depth, int tag);

  /// Nonblocking half of the overlapped pipeline: packs all four faces,
  /// posts buffered sends and nonblocking receives, and returns without
  /// touching `field`'s halo. Finish with complete(). Only depth 1 is
  /// supported: posting all four directions at once skips the x-then-y
  /// corner relay of exchange(), so a receiver's corner-halo cells stay one
  /// exchange stale — unobservable to a depth-1 five-point stencil (which
  /// never reads corners), fatal to anything deeper, hence the hard throw.
  ///
  /// Tag scheme (shared with exchange()): message tag = tag * 8 + subtag,
  /// subtag 0 = left-edge data moving left, 1 = right-edge data moving
  /// right, 2 = bottom-edge data moving down, 3 = top-edge data moving up.
  /// Both entry points throw if tag * 8 + 7 reaches the reserved collective
  /// range (comm::kCollectiveTagBase), so a runaway tag surfaces as an
  /// error instead of a collective/halo match-up hang.
  void post(Communicator& comm, tl::util::Span2D<const double> field, int tag);

  /// Waits for the receives posted by post(), unpacks them into `field`
  /// (x faces, physical-x reflect, y faces, physical-y reflect — the same
  /// receiver-side order as exchange()), and clears the pending state.
  /// `field` must view the same storage that was packed by post().
  void complete(Communicator& comm, tl::util::Span2D<double> field);

  /// True between post() and complete().
  bool pending() const noexcept { return pending_; }

  const Tile& tile() const noexcept { return tile_; }

 private:
  void reflect_x_if_physical(tl::util::Span2D<double> field) const;
  void reflect_y_if_physical(tl::util::Span2D<double> field) const;
  void pack(tl::util::Span2D<const double> field, Face face, int depth,
            std::vector<double>& buf) const;
  void unpack(tl::util::Span2D<double> field, Face face, int depth,
              std::span<const double> buf) const;

  Tile tile_;
  int halo_depth_;
  std::vector<double> send_buf_;
  std::vector<double> recv_buf_;
  // Overlapped-exchange state: one persistent receive buffer + request per
  // direction (indexed by the subtag order 0..3 documented at post()).
  std::array<std::vector<double>, 4> post_recv_bufs_;
  std::array<CommRequest, 4> post_reqs_;
  bool pending_ = false;
};

}  // namespace tl::comm
