#include "comm/decomposition.hpp"

#include <limits>
#include <stdexcept>
#include <tuple>

namespace tl::comm {

std::pair<int, int> BlockDecomposition::best_grid(int nx, int ny, int nranks) {
  // Minimise the halo surface: for px*py == nranks, the exchanged surface is
  // proportional to px*ny + py*nx. Try every factorisation.
  double best_cost = std::numeric_limits<double>::max();
  std::pair<int, int> best{1, nranks};
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    if (px > nx || py > ny) continue;
    const double cost = static_cast<double>(px) * ny + static_cast<double>(py) * nx;
    if (cost < best_cost) {
      best_cost = cost;
      best = {px, py};
    }
  }
  if (best.first > nx || best.second > ny) {
    throw std::invalid_argument("BlockDecomposition: more ranks than cells");
  }
  return best;
}

BlockDecomposition::BlockDecomposition(int global_nx, int global_ny, int nranks)
    : global_nx_(global_nx), global_ny_(global_ny) {
  if (global_nx <= 0 || global_ny <= 0) {
    throw std::invalid_argument("BlockDecomposition: mesh must be positive");
  }
  if (nranks <= 0) {
    throw std::invalid_argument("BlockDecomposition: nranks must be positive");
  }
  const auto [gx, gy] = best_grid(global_nx, global_ny, nranks);
  grid_x_ = gx;
  grid_y_ = gy;

  // Even split; the first `rem` tiles in each dimension get one extra cell.
  auto split = [](int cells, int parts, int index) {
    const int base = cells / parts;
    const int rem = cells % parts;
    const int begin = index * base + std::min(index, rem);
    const int extent = base + (index < rem ? 1 : 0);
    return std::pair<int, int>{begin, begin + extent};
  };

  tiles_.resize(static_cast<std::size_t>(nranks));
  for (int py = 0; py < grid_y_; ++py) {
    for (int px = 0; px < grid_x_; ++px) {
      const int rank = py * grid_x_ + px;
      Tile& t = tiles_[static_cast<std::size_t>(rank)];
      t.rank = rank;
      t.px = px;
      t.py = py;
      std::tie(t.x_begin, t.x_end) = split(global_nx, grid_x_, px);
      std::tie(t.y_begin, t.y_end) = split(global_ny, grid_y_, py);
      t.neighbour[static_cast<std::size_t>(Face::kLeft)] =
          (px > 0) ? rank - 1 : -1;
      t.neighbour[static_cast<std::size_t>(Face::kRight)] =
          (px + 1 < grid_x_) ? rank + 1 : -1;
      t.neighbour[static_cast<std::size_t>(Face::kBottom)] =
          (py > 0) ? rank - grid_x_ : -1;
      t.neighbour[static_cast<std::size_t>(Face::kTop)] =
          (py + 1 < grid_y_) ? rank + grid_x_ : -1;
    }
  }
}

}  // namespace tl::comm
