#include "comm/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace tl::comm {

std::pair<int, int> BlockDecomposition::best_grid(int nx, int ny, int nranks) {
  // Minimise the halo surface: for px*py == nranks, the exchanged surface is
  // proportional to px*ny + py*nx. Try every factorisation.
  double best_cost = std::numeric_limits<double>::max();
  std::pair<int, int> best{1, nranks};
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    if (px > nx || py > ny) continue;
    const double cost = static_cast<double>(px) * ny + static_cast<double>(py) * nx;
    if (cost < best_cost) {
      best_cost = cost;
      best = {px, py};
    }
  }
  if (best.first > nx || best.second > ny) {
    throw std::invalid_argument("BlockDecomposition: more ranks than cells");
  }
  return best;
}

std::vector<int> BlockDecomposition::apportion_rows(
    int rows, const std::vector<double>& weights) {
  const int parts = static_cast<int>(weights.size());
  if (rows < parts) {
    throw std::invalid_argument(
        "BlockDecomposition: row-strip layout needs at least one row per rank");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "BlockDecomposition: weights must be positive and finite");
    }
    total += w;
  }

  // Largest-remainder apportionment with a one-row floor. Quotas are scaled
  // over the rows left after the floor so the floor never over-allocates.
  const int spare = rows - parts;
  std::vector<int> counts(static_cast<std::size_t>(parts), 1);
  std::vector<double> remainder(static_cast<std::size_t>(parts), 0.0);
  int assigned = 0;
  for (int i = 0; i < parts; ++i) {
    const double quota = static_cast<double>(spare) * weights[static_cast<std::size_t>(i)] / total;
    const int extra = static_cast<int>(std::floor(quota));
    counts[static_cast<std::size_t>(i)] += extra;
    remainder[static_cast<std::size_t>(i)] = quota - extra;
    assigned += extra;
  }
  // Hand the leftover rows to the largest fractional remainders; ties break
  // to the lower rank so the split is fully deterministic.
  std::vector<int> order(static_cast<std::size_t>(parts));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return remainder[static_cast<std::size_t>(a)] >
           remainder[static_cast<std::size_t>(b)];
  });
  for (int k = 0; k < spare - assigned; ++k) {
    ++counts[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])];
  }
  return counts;
}

void BlockDecomposition::build(int nranks, const std::vector<int>* row_counts) {
  // Even split; the first `rem` tiles in each dimension get one extra cell.
  auto split = [](int cells, int parts, int index) {
    const int base = cells / parts;
    const int rem = cells % parts;
    const int begin = index * base + std::min(index, rem);
    const int extent = base + (index < rem ? 1 : 0);
    return std::pair<int, int>{begin, begin + extent};
  };

  // Weighted row strips use prefix sums of the apportioned counts instead.
  std::vector<int> y_offsets;
  if (row_counts != nullptr) {
    y_offsets.resize(row_counts->size() + 1, 0);
    for (std::size_t i = 0; i < row_counts->size(); ++i) {
      y_offsets[i + 1] = y_offsets[i] + (*row_counts)[i];
    }
  }

  tiles_.resize(static_cast<std::size_t>(nranks));
  for (int py = 0; py < grid_y_; ++py) {
    for (int px = 0; px < grid_x_; ++px) {
      const int rank = py * grid_x_ + px;
      Tile& t = tiles_[static_cast<std::size_t>(rank)];
      t.rank = rank;
      t.px = px;
      t.py = py;
      std::tie(t.x_begin, t.x_end) = split(global_nx_, grid_x_, px);
      if (row_counts != nullptr) {
        t.y_begin = y_offsets[static_cast<std::size_t>(py)];
        t.y_end = y_offsets[static_cast<std::size_t>(py) + 1];
      } else {
        std::tie(t.y_begin, t.y_end) = split(global_ny_, grid_y_, py);
      }
      t.neighbour[static_cast<std::size_t>(Face::kLeft)] =
          (px > 0) ? rank - 1 : -1;
      t.neighbour[static_cast<std::size_t>(Face::kRight)] =
          (px + 1 < grid_x_) ? rank + 1 : -1;
      t.neighbour[static_cast<std::size_t>(Face::kBottom)] =
          (py > 0) ? rank - grid_x_ : -1;
      t.neighbour[static_cast<std::size_t>(Face::kTop)] =
          (py + 1 < grid_y_) ? rank + grid_x_ : -1;
    }
  }
}

BlockDecomposition::BlockDecomposition(int global_nx, int global_ny, int nranks)
    : BlockDecomposition(global_nx, global_ny, nranks, DecompOptions{}) {}

BlockDecomposition::BlockDecomposition(int global_nx, int global_ny, int nranks,
                                       const DecompOptions& options)
    : global_nx_(global_nx), global_ny_(global_ny) {
  if (global_nx <= 0 || global_ny <= 0) {
    throw std::invalid_argument("BlockDecomposition: mesh must be positive");
  }
  if (nranks <= 0) {
    throw std::invalid_argument("BlockDecomposition: nranks must be positive");
  }
  if (!options.weights.empty() &&
      static_cast<int>(options.weights.size()) != nranks) {
    throw std::invalid_argument(
        "BlockDecomposition: weights must have one entry per rank");
  }

  const bool rows = options.layout == DecompOptions::Layout::kRows ||
                    !options.weights.empty();
  if (rows) {
    if (nranks > global_ny) {
      throw std::invalid_argument(
          "BlockDecomposition: row-strip layout needs at least one row per rank");
    }
    grid_x_ = 1;
    grid_y_ = nranks;
    if (!options.weights.empty()) {
      const std::vector<int> counts = apportion_rows(global_ny, options.weights);
      build(nranks, &counts);
    } else {
      build(nranks, nullptr);
    }
  } else {
    const auto [gx, gy] = best_grid(global_nx, global_ny, nranks);
    grid_x_ = gx;
    grid_y_ = gy;
    build(nranks, nullptr);
  }
}

}  // namespace tl::comm
