#pragma once
// DistributedKernels: rank-aware decoration of any SolverKernels.
//
// TeaLeaf's inter-node layer in decorator form: the solver drivers stay
// byte-identical (they already speak SolverKernels), and every port gains
// distribution for free. halo_update runs the port's own (local, metered)
// update first, then exchanges tile boundaries through HaloExchanger; every
// reduction kernel's local partial is allreduced over the MiniComm world.
// Communication is charged to the rank's SimClock via the network cost model
// (sim/network.hpp) as "comm"-phase trace events carrying the wire bytes, so
// `--profile`/`--trace` and the scaling bench see comm time per rank.

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "comm/halo.hpp"
#include "comm/minimpi.hpp"
#include "core/kernels_api.hpp"
#include "sim/network.hpp"

namespace tl::dist {

/// Per-rank communication tally, aggregated alongside the SimClock counters.
struct CommStats {
  std::uint64_t halo_exchanges = 0;  // per-field exchange operations
  std::uint64_t allreduces = 0;
  std::size_t bytes = 0;             // wire bytes this rank moved (both ways)
  double comm_ns = 0.0;   // simulated interconnect time charged (exposed)
  // Overlapped-pipeline split: exchanges routed through post/complete, and
  // the simulated wire time they hid behind interior compute (comm_ns only
  // accumulates the exposed remainder for those exchanges).
  std::uint64_t overlapped_exchanges = 0;
  double hidden_ns = 0.0;
  // Pipelined-CG split: allreduces initiated nonblocking (these also count
  // in `allreduces`), and the simulated wire time they hid behind the matvec
  // posted between begin and complete. allreduce_ns is the total modelled
  // wire time of all scalar/vector allreduces, hidden or not, so the exposed
  // allreduce share is allreduce_ns - allreduce_hidden_ns (the quantity the
  // fig13 pipeline gate compares against classic CG).
  std::uint64_t iallreduces = 0;
  double allreduce_ns = 0.0;
  double allreduce_hidden_ns = 0.0;
  // Fault-injected runs (FaultyComm active): totals mirrored from the
  // injector after every reliable operation. The values are timing-dependent
  // (a retry races the first copy's delivery), so they are informational —
  // asserted > 0 or == 0, never exact-checked.
  std::uint64_t retries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
};

class DistributedKernels final : public core::SolverKernels {
 public:
  /// Wraps `inner` for `comm.rank()`'s tile of `decomp`. `halo_depth` is the
  /// mesh halo depth (exchange depth may be shallower per call). The
  /// communicator, decomposition, and network spec must outlive this object.
  ///
  /// With `overlap_comm` (and an inner port advertising kCapRegions), the
  /// depth-1 single-field exchanges that precede the fused solver kernels are
  /// posted nonblocking in halo_update and completed inside the consuming
  /// kernel between its interior and boundary sweeps, so the simulated wire
  /// time hides behind the interior compute charge. Everything else — and
  /// everything when the flag is off — takes the classic blocking path.
  DistributedKernels(std::unique_ptr<core::SolverKernels> inner,
                     comm::Communicator& comm,
                     const comm::BlockDecomposition& decomp, int halo_depth,
                     const sim::NetworkSpec& net = sim::node_interconnect(),
                     bool overlap_comm = true);

  // -- Forwarded with distribution -----------------------------------------
  void halo_update(unsigned fields, int depth) override;
  double calc_2norm(core::NormTarget target) override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;

  // -- Pipelined CG ----------------------------------------------------------
  // init/update forward verbatim (their returned dots are *local*; the
  // reduction happens in the begin/complete pair). dots_begin initiates the
  // iteration's single allreduce nonblocking when overlap is on — MiniComm
  // isend/irecv under dedicated subtags — so the wire time hides behind the
  // w-halo exchange and the q = A w matvec posted before dots_complete
  // waits. With overlap off, begin reduces immediately (blocking); both
  // paths accumulate in MiniComm's fixed rank order, so the solver sees
  // bit-identical dots either way.
  core::CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  core::CgPipeDots cg_pipe_update(double alpha, double beta) override;
  void cg_pipe_dots_begin(const core::CgPipeDots& local) override;
  core::CgPipeDots cg_pipe_dots_complete() override;

  // -- Forwarded, consuming a pending overlapped exchange when one matches --
  /// Fault-mode and elastic runs mask kCapPipelined: the reliable-protocol
  /// and row-partial reductions are blocking by construction, so the solver
  /// falls back to classic CG rather than pipelining a collective those
  /// paths cannot overlap.
  unsigned caps() const override {
    unsigned c = inner_->caps();
    if (fc_ || elastic_) c &= ~core::kCapPipelined;
    return c;
  }
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // -- Forwarded verbatim (after draining any pending exchange) -------------
  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void calc_residual() override;
  void finalise() override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;
  void read_u(tl::util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const tl::sim::SimClock& clock() const override;
  void begin_run(std::uint64_t run_seed) override;
  tl::util::Span2D<double> field_view(core::FieldId id) override;

  const CommStats& comm_stats() const noexcept { return stats_; }
  core::SolverKernels& inner() noexcept { return *inner_; }

  // -- Elastic mode ----------------------------------------------------------
  /// Rank-count-invariant reductions: the inner port computes one partial
  /// per interior row (set_row_reductions), and every reduction gathers the
  /// partials in global row order and folds one pairwise tree over global
  /// ny — identical for any row-strip split of the mesh. Requires a
  /// row-strip decomposition (the driver enforces it) and a port that
  /// honours set_row_reductions; throws std::invalid_argument otherwise.
  /// Forces the blocking exchange path (overlap off).
  void set_elastic(bool on);

  // -- Fault injection -------------------------------------------------------
  /// Routes every halo exchange and allreduce through the reliable ack/retry
  /// protocol under `spec`'s deterministic fault schedule. Numerics are
  /// unchanged (exactly-once delivery); an unsurvivable schedule throws a
  /// CommFaultError subclass. Forces the blocking exchange path.
  void enable_faults(const comm::FaultSpec& spec);
  /// Step-boundary notification for step-scoped fault triggers.
  void set_fault_step(int step);
  bool faults_active() const noexcept { return fc_ != nullptr; }

  /// Comm-phase perturbation for tl_verify --perturb: "halo_payload" scales
  /// one received halo cell on rank 1 after every exchange; "allreduce"
  /// scales rank 1's local contribution before the reduction. Throws
  /// std::invalid_argument for unknown targets. Forces the blocking path so
  /// the corruption is applied on every exchange.
  void set_comm_perturb(std::string_view target);

  /// Seeds the comm tally from a checkpoint cursor (same-rank-count resume).
  void restore_comm_stats(const CommStats& stats) { stats_ = stats; }

 private:
  void exchange_field(core::FieldId id, int depth);
  double allreduce_sum(double local);
  void allreduce_block(double* values, std::size_t n);
  void meter_comm(const char* name, std::size_t sent, std::size_t received,
                  double ns);
  /// Gathers the inner port's k blocks of per-row partials to rank 0 in
  /// global row order, pairwise-folds each block over global ny, and
  /// broadcasts the k folded values into `out`.
  void elastic_combine(int k, double* out);
  void sync_fault_stats();
  void perturb_halo_cell(core::FieldId id);

  // -- Overlapped halo pipeline ---------------------------------------------
  /// One in-flight exchange at most. `span` is the field view captured at
  /// post time: complete() must unpack into the storage the wires were packed
  /// against, even if the port has since swapped the field's storage (the
  /// reference jacobi region sweep swaps kU/kW before the edges run).
  struct PendingExchange {
    bool active = false;
    core::FieldId id{};
    tl::util::Span2D<double> span{};
    double posted_elapsed_ns = 0.0;  // inner clock when posted
    double comm_ns = 0.0;            // full modelled wire time
    std::size_t bytes = 0;           // one-way wire bytes
    int messages = 0;
  };

  // -- Nonblocking allreduce (pipelined CG) ---------------------------------
  /// One in-flight iallreduce at most (the solver's begin/complete pairs
  /// strictly alternate). Root accumulates over `values` in rank order —
  /// the same order as MiniComm's blocking allreduce — after its gather
  /// irecvs complete; non-roots irecv the broadcast result into `values`.
  struct PendingAllreduce {
    bool active = false;
    std::array<double, 2> values{};       // local dots; becomes the result
    std::vector<double> incoming;         // root: (P-1) x 2 staging
    std::vector<comm::CommRequest> reqs;  // root: gathers; others: one bcast
    int bcast_tag = 0;                    // root sends the result under this
    double posted_elapsed_ns = 0.0;       // inner clock at begin
    double comm_ns = 0.0;                 // full modelled wire time
  };

  /// Posts `fields` nonblocking if eligible (overlap on, regions-capable
  /// inner, depth 1, exactly one of the solver iteration fields). Returns
  /// false to fall through to the blocking exchange.
  bool try_post(unsigned fields, int depth);
  /// Waits for and unpacks the pending exchange (no-op when none): metering
  /// charges only the wire time not already covered by compute since the
  /// post; the hidden remainder is traced (phase "overlap") and tallied.
  void complete_pending();
  bool pending_is(core::FieldId id) const noexcept {
    return pending_.active && pending_.id == id;
  }

  std::unique_ptr<core::SolverKernels> inner_;
  comm::Communicator* comm_;
  const comm::BlockDecomposition* decomp_;
  comm::HaloExchanger exchanger_;
  const sim::NetworkSpec* net_;
  CommStats stats_;
  int nranks_;
  int halo_depth_;
  int next_tag_ = 0;
  bool overlap_;
  PendingExchange pending_;
  PendingAllreduce pipe_allreduce_;
  bool elastic_ = false;
  std::unique_ptr<comm::FaultyComm> fc_;
  bool perturb_halo_ = false;
  bool perturb_allreduce_ = false;
  std::vector<double> elastic_scratch_;
};

}  // namespace tl::dist
