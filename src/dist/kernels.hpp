#pragma once
// DistributedKernels: rank-aware decoration of any SolverKernels.
//
// TeaLeaf's inter-node layer in decorator form: the solver drivers stay
// byte-identical (they already speak SolverKernels), and every port gains
// distribution for free. halo_update runs the port's own (local, metered)
// update first, then exchanges tile boundaries through HaloExchanger; every
// reduction kernel's local partial is allreduced over the MiniComm world.
// Communication is charged to the rank's SimClock via the network cost model
// (sim/network.hpp) as "comm"-phase trace events carrying the wire bytes, so
// `--profile`/`--trace` and the scaling bench see comm time per rank.

#include <cstdint>
#include <memory>

#include "comm/halo.hpp"
#include "comm/minimpi.hpp"
#include "core/kernels_api.hpp"
#include "sim/network.hpp"

namespace tl::dist {

/// Per-rank communication tally, aggregated alongside the SimClock counters.
struct CommStats {
  std::uint64_t halo_exchanges = 0;  // per-field exchange operations
  std::uint64_t allreduces = 0;
  std::size_t bytes = 0;             // wire bytes this rank moved (both ways)
  double comm_ns = 0.0;   // simulated interconnect time charged (exposed)
  // Overlapped-pipeline split: exchanges routed through post/complete, and
  // the simulated wire time they hid behind interior compute (comm_ns only
  // accumulates the exposed remainder for those exchanges).
  std::uint64_t overlapped_exchanges = 0;
  double hidden_ns = 0.0;
};

class DistributedKernels final : public core::SolverKernels {
 public:
  /// Wraps `inner` for `comm.rank()`'s tile of `decomp`. `halo_depth` is the
  /// mesh halo depth (exchange depth may be shallower per call). The
  /// communicator, decomposition, and network spec must outlive this object.
  ///
  /// With `overlap_comm` (and an inner port advertising kCapRegions), the
  /// depth-1 single-field exchanges that precede the fused solver kernels are
  /// posted nonblocking in halo_update and completed inside the consuming
  /// kernel between its interior and boundary sweeps, so the simulated wire
  /// time hides behind the interior compute charge. Everything else — and
  /// everything when the flag is off — takes the classic blocking path.
  DistributedKernels(std::unique_ptr<core::SolverKernels> inner,
                     comm::Communicator& comm,
                     const comm::BlockDecomposition& decomp, int halo_depth,
                     const sim::NetworkSpec& net = sim::node_interconnect(),
                     bool overlap_comm = true);

  // -- Forwarded with distribution -----------------------------------------
  void halo_update(unsigned fields, int depth) override;
  double calc_2norm(core::NormTarget target) override;
  core::FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  core::CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;

  // -- Forwarded, consuming a pending overlapped exchange when one matches --
  unsigned caps() const override { return inner_->caps(); }
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // -- Forwarded verbatim (after draining any pending exchange) -------------
  void upload_state(const core::Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override;
  void calc_residual() override;
  void finalise() override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;
  void read_u(tl::util::Span2D<double> out) override;
  void download_energy(core::Chunk& chunk) override;
  const tl::sim::SimClock& clock() const override;
  void begin_run(std::uint64_t run_seed) override;
  tl::util::Span2D<double> field_view(core::FieldId id) override;

  const CommStats& comm_stats() const noexcept { return stats_; }
  core::SolverKernels& inner() noexcept { return *inner_; }

 private:
  void exchange_field(core::FieldId id, int depth);
  double allreduce_sum(double local);
  void meter_comm(const char* name, std::size_t sent, std::size_t received,
                  double ns);

  // -- Overlapped halo pipeline ---------------------------------------------
  /// One in-flight exchange at most. `span` is the field view captured at
  /// post time: complete() must unpack into the storage the wires were packed
  /// against, even if the port has since swapped the field's storage (the
  /// reference jacobi region sweep swaps kU/kW before the edges run).
  struct PendingExchange {
    bool active = false;
    core::FieldId id{};
    tl::util::Span2D<double> span{};
    double posted_elapsed_ns = 0.0;  // inner clock when posted
    double comm_ns = 0.0;            // full modelled wire time
    std::size_t bytes = 0;           // one-way wire bytes
    int messages = 0;
  };

  /// Posts `fields` nonblocking if eligible (overlap on, regions-capable
  /// inner, depth 1, exactly one of the solver iteration fields). Returns
  /// false to fall through to the blocking exchange.
  bool try_post(unsigned fields, int depth);
  /// Waits for and unpacks the pending exchange (no-op when none): metering
  /// charges only the wire time not already covered by compute since the
  /// post; the hidden remainder is traced (phase "overlap") and tallied.
  void complete_pending();
  bool pending_is(core::FieldId id) const noexcept {
    return pending_.active && pending_.id == id;
  }

  std::unique_ptr<core::SolverKernels> inner_;
  comm::Communicator* comm_;
  comm::HaloExchanger exchanger_;
  const sim::NetworkSpec* net_;
  CommStats stats_;
  int nranks_;
  int next_tag_ = 0;
  bool overlap_;
  PendingExchange pending_;
};

}  // namespace tl::dist
