#include "dist/driver.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/state_init.hpp"

namespace tl::dist {

namespace {

/// Settings-derived decomposition: elastic mode needs row strips (whole rows
/// per rank) for the rank-count-invariant reduction order.
comm::BlockDecomposition default_decomp(const core::Settings& s) {
  comm::DecompOptions opt;
  if (s.elastic) opt.layout = comm::DecompOptions::Layout::kRows;
  return comm::BlockDecomposition(s.nx, s.ny, s.nranks, opt);
}

core::Mesh global_mesh_from(const core::Settings& s) {
  core::Mesh mesh(s.nx, s.ny, s.halo_depth);
  mesh.x_min = s.x_min;
  mesh.x_max = s.x_max;
  mesh.y_min = s.y_min;
  mesh.y_max = s.y_max;
  return mesh;
}

/// One rank's step, mirroring core::Driver::run_step. rx/ry come from the
/// *global* mesh spacing so every rank applies the bit-identical operator
/// (tile extents are global multiples, but re-deriving dx from them can
/// drift by an ulp between tiles of different width).
core::StepReport run_one_step(DistributedKernels& k, core::Chunk& chunk,
                              const core::Settings& s, double rx, double ry,
                              int halo_depth, int step_index) {
  core::StepReport report;
  report.step = step_index;
  report.dt = s.dt_init;
  const double start_ns = k.clock().elapsed_ns();

  k.upload_state(chunk);
  k.halo_update(core::kMaskDensity | core::kMaskEnergy0, halo_depth);
  k.init_u();
  k.init_coefficients(s.coefficient, rx, ry);
  k.halo_update(core::kMaskU, 1);

  report.solve =
      core::solve(s.solver, k, core::SolveOptions::from_settings(s));

  k.finalise();
  report.summary = k.field_summary();
  k.download_energy(chunk);

  const core::Mesh& mesh = chunk.mesh();
  const auto energy = chunk.field(core::FieldId::kEnergy);
  auto energy0 = chunk.field(core::FieldId::kEnergy0);
  for (int y = 0; y < mesh.padded_ny(); ++y) {
    for (int x = 0; x < mesh.padded_nx(); ++x) energy0(x, y) = energy(x, y);
  }

  report.sim_step_ns = k.clock().elapsed_ns() - start_ns;
  return report;
}

}  // namespace

core::Mesh tile_mesh(const core::Mesh& global, const comm::Tile& tile) {
  core::Mesh mesh(tile.nx(), tile.ny(), global.halo_depth);
  mesh.x_min = global.x_min + tile.x_begin * global.dx();
  mesh.x_max = global.x_min + tile.x_end * global.dx();
  mesh.y_min = global.y_min + tile.y_begin * global.dy();
  mesh.y_max = global.y_min + tile.y_end * global.dy();
  return mesh;
}

std::size_t DistReport::total_comm_bytes() const {
  std::size_t bytes = 0;
  for (const RankReport& r : ranks) bytes += r.comm.bytes;
  return bytes;
}

DistributedDriver::DistributedDriver(const core::Settings& settings,
                                     PortFactory factory,
                                     const sim::NetworkSpec& net)
    : DistributedDriver(settings, std::move(factory), default_decomp(settings),
                        net) {}

DistributedDriver::DistributedDriver(const core::Settings& settings,
                                     PortFactory factory,
                                     comm::BlockDecomposition decomp,
                                     const sim::NetworkSpec& net)
    : settings_(settings),
      decomp_(std::move(decomp)),
      global_mesh_(global_mesh_from(settings)),
      factory_(std::move(factory)),
      net_(&net) {
  settings_.validate();
  if (!factory_) throw std::invalid_argument("DistributedDriver: null factory");
  if (decomp_.global_nx() != settings_.nx ||
      decomp_.global_ny() != settings_.ny ||
      decomp_.nranks() != settings_.nranks) {
    throw std::invalid_argument(
        "DistributedDriver: decomposition does not match settings");
  }
  if (settings_.elastic) {
    // The elastic fold is defined over whole rows in global order; fused and
    // overlapped paths would reorder the accumulation, so force them off.
    settings_.use_fused = false;
    settings_.overlap_comm = false;
    if (!decomp_.row_strips()) {
      throw std::invalid_argument(
          "DistributedDriver: elastic mode requires a row-strip "
          "decomposition (every rank must own whole rows)");
    }
  }
}

DistReport DistributedDriver::run() { return run(RunControl{}); }

DistReport DistributedDriver::run(const RunControl& ctl) {
  const int nranks = decomp_.nranks();
  const int h = settings_.halo_depth;
  const int gnx = settings_.nx;
  const int gny = settings_.ny;
  const double rx =
      settings_.dt_init / (global_mesh_.dx() * global_mesh_.dx());
  const double ry =
      settings_.dt_init / (global_mesh_.dy() * global_mesh_.dy());

  if (ctl.resume != nullptr) check_resume_compatible(*ctl.resume, settings_);
  const int first_step = ctl.resume ? ctl.resume->completed_steps + 1 : 1;
  int last_step = settings_.end_step;
  if (ctl.halt_after_step > 0) last_step = std::min(last_step, ctl.halt_after_step);
  if (last_step < first_step) {
    throw std::invalid_argument(
        "DistributedDriver: halt_after_step precedes the resume point");
  }
  const bool may_capture = static_cast<bool>(ctl.on_checkpoint) &&
                           (ctl.checkpoint_every > 0 || ctl.halt_after_step > 0);

  DistReport report;
  report.global_mesh = global_mesh_;
  report.u.resize(global_mesh_.padded_cells());
  report.energy.resize(global_mesh_.padded_cells());
  report.ranks.resize(static_cast<std::size_t>(nranks));

  // Checkpoint staging: every rank writes its tile's interiors and cursor
  // into these, then rank 0 assembles the Snapshot between two barriers.
  std::vector<double> stage_density, stage_energy0;
  std::vector<RankCursor> stage_cursors;
  if (may_capture) {
    const std::size_t cells =
        static_cast<std::size_t>(gnx) * static_cast<std::size_t>(gny);
    stage_density.assign(cells, 0.0);
    stage_energy0.assign(cells, 0.0);
    stage_cursors.resize(static_cast<std::size_t>(nranks));
  }

  // Rank threads write disjoint slots: their RankReport, their tile's
  // interior cells of the global field buffers, and (rank 0 only) run.steps.
  comm::run_ranks(nranks, [&](comm::Communicator& cm) {
    const int rank = cm.rank();
    const comm::Tile& tile = decomp_.tile(rank);
    const core::Mesh mesh = tile_mesh(global_mesh_, tile);

    core::Chunk chunk(mesh);
    core::Settings paint = settings_;
    paint.nx = mesh.nx;
    paint.ny = mesh.ny;
    core::apply_initial_states(chunk, paint);

    DistributedKernels k(factory_(mesh, rank), cm, decomp_, h, *net_,
                         settings_.overlap_comm);
    if (settings_.elastic) k.set_elastic(true);
    if (ctl.faults.active()) k.enable_faults(ctl.faults);
    if (!ctl.comm_perturb.empty()) k.set_comm_perturb(ctl.comm_perturb);
    if (static_cast<std::size_t>(rank) < sinks_.size() &&
        sinks_[static_cast<std::size_t>(rank)] != nullptr) {
      k.attach_trace_sink(sinks_[static_cast<std::size_t>(rank)]);
    }

    if (ctl.resume != nullptr) {
      // Redistribute the checkpointed interiors over the *current*
      // decomposition: rank 0 holds the snapshot's global fields, broadcasts
      // them through MiniComm, and every rank scatters its own tile.
      const Snapshot& snap = *ctl.resume;
      const std::size_t cells =
          static_cast<std::size_t>(gnx) * static_cast<std::size_t>(gny);
      std::vector<double> gdens(cells), gen0(cells);
      if (rank == 0) {
        gdens = snap.density;
        gen0 = snap.energy0;
      }
      cm.broadcast(std::span<double>(gdens), 0);
      cm.broadcast(std::span<double>(gen0), 0);
      auto d = chunk.field(core::FieldId::kDensity);
      auto e0 = chunk.field(core::FieldId::kEnergy0);
      for (int y = 0; y < tile.ny(); ++y) {
        for (int x = 0; x < tile.nx(); ++x) {
          const std::size_t g =
              static_cast<std::size_t>(tile.y_begin + y) * gnx +
              static_cast<std::size_t>(tile.x_begin + x);
          d(h + x, h + y) = gdens[g];
          e0(h + x, h + y) = gen0[g];
        }
      }
      if (snap.nranks_at_save == nranks &&
          static_cast<std::size_t>(rank) < snap.cursors.size()) {
        // Same world shape: continue the simulated clock and comm tally from
        // the capture point so timing reports match the uninterrupted run.
        // A different rank count drops the cursors (timers restart at zero);
        // numerics are unaffected either way.
        const RankCursor& c = snap.cursors[static_cast<std::size_t>(rank)];
        const_cast<sim::SimClock&>(k.clock())
            .restore(c.elapsed_ns, c.launches, c.transfers, c.kernel_bytes,
                     c.transfer_bytes);
        k.restore_comm_stats(c.comm);
      }
    }

    std::vector<core::StepReport> steps;
    steps.reserve(static_cast<std::size_t>(last_step));
    if (ctl.resume != nullptr) {
      steps.assign(ctl.resume->steps.begin(), ctl.resume->steps.end());
    }
    for (int s = first_step; s <= last_step; ++s) {
      k.set_fault_step(s);
      steps.push_back(run_one_step(k, chunk, settings_, rx, ry, h, s));

      const bool periodic =
          ctl.checkpoint_every > 0 && s % ctl.checkpoint_every == 0;
      const bool at_halt = ctl.halt_after_step > 0 && s == last_step;
      if (may_capture && (periodic || at_halt)) {
        const auto d = chunk.field(core::FieldId::kDensity);
        const auto e0 = chunk.field(core::FieldId::kEnergy0);
        for (int y = 0; y < tile.ny(); ++y) {
          for (int x = 0; x < tile.nx(); ++x) {
            const std::size_t g =
                static_cast<std::size_t>(tile.y_begin + y) * gnx +
                static_cast<std::size_t>(tile.x_begin + x);
            stage_density[g] = d(h + x, h + y);
            stage_energy0[g] = e0(h + x, h + y);
          }
        }
        RankCursor& cur = stage_cursors[static_cast<std::size_t>(rank)];
        cur.elapsed_ns = k.clock().elapsed_ns();
        cur.launches = k.clock().launches();
        cur.transfers = k.clock().transfers();
        cur.kernel_bytes = k.clock().kernel_bytes();
        cur.transfer_bytes = k.clock().transfer_bytes();
        cur.comm = k.comm_stats();
        cm.barrier();
        if (rank == 0) {
          Snapshot snap;
          snap.nx = gnx;
          snap.ny = gny;
          snap.halo_depth = h;
          snap.solver = settings_.solver;
          snap.end_step = settings_.end_step;
          snap.elastic = settings_.elastic;
          snap.use_fused = settings_.use_fused;
          snap.overlap_comm = settings_.overlap_comm;
          snap.eps = settings_.eps;
          snap.dt_init = settings_.dt_init;
          snap.completed_steps = s;
          snap.nranks_at_save = nranks;
          snap.steps = steps;  // rank 0's steps carry any resume prefix
          snap.cursors = stage_cursors;
          snap.density = stage_density;
          snap.energy0 = stage_energy0;
          ctl.on_checkpoint(snap);
        }
        cm.barrier();
      }
    }

    // Gather this tile's interiors into the global buffers.
    util::Buffer<double> tile_u(mesh.padded_cells());
    auto tu = tile_u.view2d(mesh.padded_nx(), mesh.padded_ny());
    k.read_u(tu);
    auto gu = report.u.view2d(global_mesh_.padded_nx(),
                              global_mesh_.padded_ny());
    auto ge = report.energy.view2d(global_mesh_.padded_nx(),
                                   global_mesh_.padded_ny());
    const auto te = chunk.field(core::FieldId::kEnergy);
    for (int y = 0; y < tile.ny(); ++y) {
      for (int x = 0; x < tile.nx(); ++x) {
        gu(h + tile.x_begin + x, h + tile.y_begin + y) = tu(h + x, h + y);
        ge(h + tile.x_begin + x, h + tile.y_begin + y) = te(h + x, h + y);
      }
    }

    RankReport& rr = report.ranks[static_cast<std::size_t>(rank)];
    rr.rank = rank;
    rr.tile = tile;
    rr.sim_seconds = k.clock().elapsed_seconds();
    rr.kernel_launches = k.clock().launches();
    rr.kernel_bytes = k.clock().kernel_bytes();
    rr.comm = k.comm_stats();

    if (rank == 0) report.run.steps = std::move(steps);
  });

  double max_seconds = 0.0;
  std::uint64_t launches = 0;
  std::size_t kernel_bytes = 0;
  for (const RankReport& r : report.ranks) {
    max_seconds = std::max(max_seconds, r.sim_seconds);
    launches += r.kernel_launches;
    kernel_bytes += r.kernel_bytes;
  }
  report.run.sim_total_seconds = max_seconds;
  report.run.kernel_launches = launches;
  report.run.achieved_bandwidth_gbs =
      max_seconds > 0.0 ? static_cast<double>(kernel_bytes) /
                              (max_seconds * 1e9)
                        : 0.0;
  return report;
}

}  // namespace tl::dist
