#pragma once
// DistributedDriver: the multi-rank timestep loop.
//
// Spawns a MiniComm world, block-decomposes the global mesh over
// settings.nranks, gives every rank its own tile-sized port (via the
// injected factory) wrapped in DistributedKernels, and runs the exact
// per-step sequence of core::Driver on every rank concurrently: upload,
// halo(density|energy0), init_u, init_coefficients, halo(u), solve,
// finalise, summary. Reduced scalars are identical on every rank (MiniComm's
// allreduce is deterministic), so all ranks take the same control flow and
// report the same solve statistics; with nranks == 1 the run is exactly the
// single-rank core::Driver run.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/fault.hpp"
#include "core/driver.hpp"
#include "core/settings.hpp"
#include "dist/checkpoint.hpp"
#include "dist/kernels.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "util/buffer.hpp"

namespace tl::dist {

/// Builds one rank's kernels for its tile mesh. Called concurrently from
/// every rank thread: must be thread-safe (ports::make_port is).
using PortFactory = std::function<std::unique_ptr<core::SolverKernels>(
    const core::Mesh& tile_mesh, int rank)>;

/// Per-rank outcome: the tile, the rank's simulated clock, and its comm tally.
struct RankReport {
  int rank = 0;
  comm::Tile tile;
  double sim_seconds = 0.0;
  std::uint64_t kernel_launches = 0;
  std::size_t kernel_bytes = 0;
  CommStats comm;
};

struct DistReport {
  /// Global view: step reports from rank 0 (solve statistics and summaries
  /// are allreduced, hence identical on every rank); sim_total_seconds is
  /// the slowest rank, kernel_launches the sum over ranks.
  core::RunReport run;
  std::vector<RankReport> ranks;
  core::Mesh global_mesh;
  /// Globally assembled final fields in the padded global layout (interiors
  /// gathered from every tile; halo cells left zero — checksums are
  /// interior-only).
  util::Buffer<double> u;
  util::Buffer<double> energy;

  std::size_t total_comm_bytes() const;
};

/// Elastic-execution controls for one run() call. Default-constructed, the
/// run is exactly the classic full run.
struct RunControl {
  /// > 0: stop after this step (a simulated kill at a step boundary). The
  /// returned report covers only the steps that ran; resume from the last
  /// snapshot to finish.
  int halt_after_step = 0;
  /// > 0: capture a Snapshot every N steps (and at a halt_after_step halt).
  int checkpoint_every = 0;
  /// Receives each captured snapshot, on rank 0's thread, while the other
  /// ranks hold at a barrier. Without it, captures are skipped.
  std::function<void(const Snapshot&)> on_checkpoint;
  /// Resume from this snapshot instead of step 1: fields are redistributed
  /// over the *current* decomposition (the rank count may differ from
  /// nranks_at_save), completed StepReports are prepended, and — same rank
  /// count only — per-rank clock/comm cursors are restored. Must stay valid
  /// for the run() call. Throws CheckpointError on a fingerprint mismatch.
  const Snapshot* resume = nullptr;
  /// active() schedules routed through FaultyComm's reliable protocol.
  comm::FaultSpec faults;
  /// "" (off), "halo_payload", or "allreduce" — in-flight comm corruption
  /// for tl_verify --perturb.
  std::string comm_perturb;
};

class DistributedDriver {
 public:
  /// Throws std::invalid_argument for bad settings (including a
  /// decomposition with more ranks than cells).
  DistributedDriver(const core::Settings& settings, PortFactory factory,
                    const sim::NetworkSpec& net = sim::node_interconnect());

  /// As above, but adopts a precomputed decomposition instead of deriving
  /// one from the settings — the solve service's Session caches
  /// decompositions across jobs with repeated mesh shapes. Throws
  /// std::invalid_argument when `decomp` does not match the settings'
  /// (nx, ny, nranks).
  DistributedDriver(const core::Settings& settings, PortFactory factory,
                    comm::BlockDecomposition decomp,
                    const sim::NetworkSpec& net = sim::node_interconnect());

  /// Runs settings.end_step steps over settings.nranks ranks.
  DistReport run();

  /// As run(), under elastic-execution controls (checkpoint capture, halted
  /// runs, snapshot resume, comm fault injection, comm perturbation).
  DistReport run(const RunControl& ctl);

  const comm::BlockDecomposition& decomposition() const noexcept {
    return decomp_;
  }
  const core::Mesh& global_mesh() const noexcept { return global_mesh_; }

  /// Optional per-rank trace sinks (index = rank; nullptr or a short vector
  /// leaves ranks unobserved). Sinks receive each rank's full event stream,
  /// including the "comm"-phase halo_exchange/allreduce events.
  void set_rank_sinks(std::vector<sim::TraceSink*> sinks) {
    sinks_ = std::move(sinks);
  }

 private:
  core::Settings settings_;
  comm::BlockDecomposition decomp_;
  core::Mesh global_mesh_;
  PortFactory factory_;
  const sim::NetworkSpec* net_;
  std::vector<sim::TraceSink*> sinks_;
};

/// The tile's Mesh: tile-sized with the tile's physical sub-extents, so
/// state painting by cell centre reproduces the global initial condition.
core::Mesh tile_mesh(const core::Mesh& global, const comm::Tile& tile);

}  // namespace tl::dist
