#include "dist/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "util/string_util.hpp"

namespace tl::dist {

namespace {

constexpr char kMagic[8] = {'T', 'L', 'C', 'K', 'P', 'T', '0', '1'};
// v2: RankCursor gained the pipelined-CG comm split (iallreduces,
// allreduce_ns, allreduce_hidden_ns).
constexpr std::uint32_t kVersion = 2;

// Loader sanity bounds: generous enough for any real configuration, tight
// enough that a flipped header byte surfaces as a diagnosable error instead
// of a multi-gigabyte allocation.
constexpr int kMaxDim = 1 << 20;
constexpr int kMaxHalo = 64;
constexpr int kMaxRanks = 1 << 16;
constexpr int kMaxSteps = 1 << 20;
constexpr std::uint64_t kMaxHistory = 1u << 24;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_bytes(out, &v, sizeof(v));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_bytes(out, &v, sizeof(v));
}
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_bytes(out, &v, sizeof(v));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_bytes(out, &v, sizeof(v));
}

/// Bounds-checked sequential reader: every read names what it was after, so
/// truncation errors say which record was cut short.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  void read(void* dst, std::size_t n, const char* what) {
    if (pos_ + n > data_.size()) {
      throw CheckpointError(util::strf(
          "checkpoint truncated: need %zu byte(s) for %s at offset %zu, "
          "file has %zu",
          n, what, pos_, data_.size()));
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    read(&v, sizeof(v), what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    read(&v, sizeof(v), what);
    return v;
  }
  std::int32_t i32(const char* what) {
    std::int32_t v;
    read(&v, sizeof(v), what);
    return v;
  }
  double f64(const char* what) {
    double v;
    read(&v, sizeof(v), what);
    return v;
  }

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void put_step(std::vector<std::uint8_t>& out, const core::StepReport& s) {
  put_i32(out, s.step);
  put_f64(out, s.dt);
  put_f64(out, s.sim_step_ns);
  put_f64(out, s.summary.volume);
  put_f64(out, s.summary.mass);
  put_f64(out, s.summary.internal_energy);
  put_f64(out, s.summary.temperature);
  const core::SolveStats& v = s.solve;
  put_i32(out, static_cast<std::int32_t>(v.solver));
  put_i32(out, v.converged ? 1 : 0);
  put_i32(out, v.iterations);
  put_i32(out, v.inner_iterations);
  put_f64(out, v.initial_rr);
  put_f64(out, v.final_rr);
  put_i32(out, v.converged_on_ur ? 1 : 0);
  put_i32(out, v.fused_iterations);
  put_i32(out, v.classic_iterations);
  put_f64(out, v.spectrum.min);
  put_f64(out, v.spectrum.max);
  put_i32(out, v.spectrum.valid ? 1 : 0);
  put_u64(out, v.rr_history.size());
  for (const double rr : v.rr_history) put_f64(out, rr);
}

core::StepReport get_step(Reader& r) {
  core::StepReport s;
  s.step = r.i32("step index");
  s.dt = r.f64("step dt");
  s.sim_step_ns = r.f64("step sim time");
  s.summary.volume = r.f64("summary volume");
  s.summary.mass = r.f64("summary mass");
  s.summary.internal_energy = r.f64("summary internal energy");
  s.summary.temperature = r.f64("summary temperature");
  const std::int32_t solver = r.i32("solve solver kind");
  if (solver < 0 || solver > 3) {
    throw CheckpointError(
        util::strf("checkpoint corrupt: solver kind %d out of range", solver));
  }
  s.solve.solver = static_cast<core::SolverKind>(solver);
  s.solve.converged = r.i32("solve converged flag") != 0;
  s.solve.iterations = r.i32("solve iterations");
  s.solve.inner_iterations = r.i32("solve inner iterations");
  s.solve.initial_rr = r.f64("solve initial rr");
  s.solve.final_rr = r.f64("solve final rr");
  s.solve.converged_on_ur = r.i32("solve converged_on_ur flag") != 0;
  s.solve.fused_iterations = r.i32("solve fused iterations");
  s.solve.classic_iterations = r.i32("solve classic iterations");
  s.solve.spectrum.min = r.f64("spectrum min");
  s.solve.spectrum.max = r.f64("spectrum max");
  s.solve.spectrum.valid = r.i32("spectrum valid flag") != 0;
  const std::uint64_t n = r.u64("rr history length");
  if (n > kMaxHistory) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: rr history length %llu exceeds bound %llu",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(kMaxHistory)));
  }
  s.solve.rr_history.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    s.solve.rr_history[i] = r.f64("rr history entry");
  }
  return s;
}

void put_cursor(std::vector<std::uint8_t>& out, const RankCursor& c) {
  put_f64(out, c.elapsed_ns);
  put_u64(out, c.launches);
  put_u64(out, c.transfers);
  put_u64(out, c.kernel_bytes);
  put_u64(out, c.transfer_bytes);
  put_u64(out, c.comm.halo_exchanges);
  put_u64(out, c.comm.allreduces);
  put_u64(out, c.comm.bytes);
  put_f64(out, c.comm.comm_ns);
  put_u64(out, c.comm.overlapped_exchanges);
  put_f64(out, c.comm.hidden_ns);
  put_u64(out, c.comm.iallreduces);
  put_f64(out, c.comm.allreduce_ns);
  put_f64(out, c.comm.allreduce_hidden_ns);
  put_u64(out, c.comm.retries);
  put_u64(out, c.comm.dropped);
  put_u64(out, c.comm.duplicated);
  put_u64(out, c.comm.delayed);
}

RankCursor get_cursor(Reader& r) {
  RankCursor c;
  c.elapsed_ns = r.f64("cursor elapsed ns");
  c.launches = r.u64("cursor launches");
  c.transfers = r.u64("cursor transfers");
  c.kernel_bytes = r.u64("cursor kernel bytes");
  c.transfer_bytes = r.u64("cursor transfer bytes");
  c.comm.halo_exchanges = r.u64("cursor halo exchanges");
  c.comm.allreduces = r.u64("cursor allreduces");
  c.comm.bytes = static_cast<std::size_t>(r.u64("cursor comm bytes"));
  c.comm.comm_ns = r.f64("cursor comm ns");
  c.comm.overlapped_exchanges = r.u64("cursor overlapped exchanges");
  c.comm.hidden_ns = r.f64("cursor hidden ns");
  c.comm.iallreduces = r.u64("cursor iallreduces");
  c.comm.allreduce_ns = r.f64("cursor allreduce ns");
  c.comm.allreduce_hidden_ns = r.f64("cursor allreduce hidden ns");
  c.comm.retries = r.u64("cursor retries");
  c.comm.dropped = r.u64("cursor dropped");
  c.comm.duplicated = r.u64("cursor duplicated");
  c.comm.delayed = r.u64("cursor delayed");
  return c;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Snapshot& snap) {
  std::vector<std::uint8_t> out;
  put_bytes(out, kMagic, sizeof(kMagic));
  put_u32(out, kVersion);

  put_i32(out, snap.nx);
  put_i32(out, snap.ny);
  put_i32(out, snap.halo_depth);
  put_i32(out, static_cast<std::int32_t>(snap.solver));
  put_i32(out, snap.end_step);
  put_i32(out, snap.completed_steps);
  put_i32(out, snap.nranks_at_save);
  put_i32(out, (snap.elastic ? 1 : 0) | (snap.use_fused ? 2 : 0) |
                   (snap.overlap_comm ? 4 : 0));
  put_f64(out, snap.eps);
  put_f64(out, snap.dt_init);

  put_u32(out, static_cast<std::uint32_t>(snap.steps.size()));
  for (const core::StepReport& s : snap.steps) put_step(out, s);
  for (const RankCursor& c : snap.cursors) put_cursor(out, c);
  for (const double v : snap.density) put_f64(out, v);
  for (const double v : snap.energy0) put_f64(out, v);

  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

Snapshot deserialize(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);

  char magic[8];
  r.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: bad magic (got \"%.8s\", want \"TLCKPT01\")",
        magic));
  }
  const std::uint32_t version = r.u32("format version");
  if (version != kVersion) {
    throw CheckpointError(util::strf(
        "checkpoint version %u unsupported (this build reads version %u)",
        version, kVersion));
  }

  Snapshot snap;
  snap.nx = r.i32("header nx");
  snap.ny = r.i32("header ny");
  snap.halo_depth = r.i32("header halo depth");
  const std::int32_t solver = r.i32("header solver kind");
  snap.end_step = r.i32("header end step");
  snap.completed_steps = r.i32("header completed steps");
  snap.nranks_at_save = r.i32("header rank count");
  const std::int32_t flags = r.i32("header flags");
  snap.eps = r.f64("header eps");
  snap.dt_init = r.f64("header dt");

  if (snap.nx <= 0 || snap.nx > kMaxDim || snap.ny <= 0 || snap.ny > kMaxDim) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: mesh %d x %d out of range", snap.nx, snap.ny));
  }
  if (snap.halo_depth < 1 || snap.halo_depth > kMaxHalo) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: halo depth %d out of range", snap.halo_depth));
  }
  if (solver < 0 || solver > 3) {
    throw CheckpointError(
        util::strf("checkpoint corrupt: solver kind %d out of range", solver));
  }
  snap.solver = static_cast<core::SolverKind>(solver);
  if (snap.end_step < 1 || snap.end_step > kMaxSteps ||
      snap.completed_steps < 0 || snap.completed_steps > snap.end_step) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: %d completed of %d step(s) is not a valid "
        "progress state",
        snap.completed_steps, snap.end_step));
  }
  if (snap.nranks_at_save < 1 || snap.nranks_at_save > kMaxRanks) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: rank count %d out of range", snap.nranks_at_save));
  }
  snap.elastic = (flags & 1) != 0;
  snap.use_fused = (flags & 2) != 0;
  snap.overlap_comm = (flags & 4) != 0;

  const std::uint32_t nsteps = r.u32("step report count");
  if (nsteps != static_cast<std::uint32_t>(snap.completed_steps)) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: %u step report(s) for %d completed step(s)",
        nsteps, snap.completed_steps));
  }
  snap.steps.reserve(nsteps);
  for (std::uint32_t i = 0; i < nsteps; ++i) snap.steps.push_back(get_step(r));

  snap.cursors.reserve(static_cast<std::size_t>(snap.nranks_at_save));
  for (int i = 0; i < snap.nranks_at_save; ++i) {
    snap.cursors.push_back(get_cursor(r));
  }

  const std::size_t cells =
      static_cast<std::size_t>(snap.nx) * static_cast<std::size_t>(snap.ny);
  snap.density.resize(cells);
  r.read(snap.density.data(), cells * sizeof(double), "density field");
  snap.energy0.resize(cells);
  r.read(snap.energy0.data(), cells * sizeof(double), "energy0 field");

  const std::size_t body_end = r.pos();
  const std::uint64_t stored = r.u64("trailing checksum");
  if (r.remaining() != 0) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: %zu trailing byte(s) after the checksum",
        r.remaining()));
  }
  const std::uint64_t computed = fnv1a(bytes.data(), body_end);
  if (stored != computed) {
    throw CheckpointError(util::strf(
        "checkpoint corrupt: checksum mismatch (stored %016llx, computed "
        "%016llx)",
        static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(computed)));
  }
  return snap;
}

void save_snapshot(const std::string& path, const Snapshot& snap) {
  const std::vector<std::uint8_t> bytes = serialize(snap);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CheckpointError("checkpoint: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw CheckpointError("checkpoint: short write to " + path);
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw CheckpointError("checkpoint: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw CheckpointError("checkpoint: short read from " + path);
  return deserialize(bytes);
}

void check_resume_compatible(const Snapshot& snap,
                             const core::Settings& settings) {
  if (snap.nx != settings.nx || snap.ny != settings.ny ||
      snap.halo_depth != settings.halo_depth) {
    throw CheckpointError(util::strf(
        "checkpoint resume: mesh mismatch (snapshot %d x %d halo %d, "
        "settings %d x %d halo %d)",
        snap.nx, snap.ny, snap.halo_depth, settings.nx, settings.ny,
        settings.halo_depth));
  }
  if (snap.solver != settings.solver) {
    throw CheckpointError(util::strf(
        "checkpoint resume: solver mismatch (snapshot %s, settings %s)",
        std::string(core::solver_name(snap.solver)).c_str(),
        std::string(core::solver_name(settings.solver)).c_str()));
  }
  if (snap.eps != settings.eps || snap.dt_init != settings.dt_init) {
    throw CheckpointError(
        "checkpoint resume: eps/dt fingerprint mismatch — the snapshot was "
        "taken under different solver tolerances");
  }
  if (snap.elastic != settings.elastic) {
    throw CheckpointError(
        "checkpoint resume: elastic-mode flag mismatch between snapshot and "
        "settings");
  }
  if (snap.completed_steps >= settings.end_step) {
    throw CheckpointError(util::strf(
        "checkpoint resume: snapshot already has %d of %d step(s) — nothing "
        "to run",
        snap.completed_steps, settings.end_step));
  }
}

}  // namespace tl::dist
