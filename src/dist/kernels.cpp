#include "dist/kernels.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace tl::dist {

namespace {

using comm::Face;

// Exchange order is fixed (bit order) so every rank issues the same tagged
// exchanges in the same sequence.
constexpr std::array<std::pair<unsigned, core::FieldId>, 6> kMaskFields = {{
    {core::kMaskU, core::FieldId::kU},
    {core::kMaskP, core::FieldId::kP},
    {core::kMaskSd, core::FieldId::kSd},
    {core::kMaskR, core::FieldId::kR},
    {core::kMaskDensity, core::FieldId::kDensity},
    {core::kMaskEnergy0, core::FieldId::kEnergy0},
}};

// Tag scheme: exchange_field/try_post consume one rolling tag per field
// exchange, and HaloExchanger derives the wire tag as tag * 8 + subtag with
// subtag in [0, 4) — 0 left-edge data moving left, 1 right-edge moving
// right, 2 bottom moving down, 3 top moving up (see comm/halo.hpp). The
// modulus keeps every derived wire tag strictly below MiniComm's reserved
// collective tag base, so a mismatched halo tag can never alias a
// barrier/allreduce message: it surfaces as a stuck recv (the deadlock-guard
// timeout throws) in both the blocking and the nonblocking path, never as
// silent data corruption. The static_assert pins the comment to the code.
constexpr int kTagModulus = 1 << 20;
static_assert(static_cast<long long>(kTagModulus) * 8 <=
                  comm::kCollectiveTagBase,
              "halo wire tags (tag * 8 + subtag) must stay below the "
              "reserved collective tag base");

}  // namespace

DistributedKernels::DistributedKernels(
    std::unique_ptr<core::SolverKernels> inner, comm::Communicator& comm,
    const comm::BlockDecomposition& decomp, int halo_depth,
    const sim::NetworkSpec& net, bool overlap_comm)
    : inner_(std::move(inner)),
      comm_(&comm),
      exchanger_(decomp, comm.rank(), halo_depth),
      net_(&net),
      nranks_(decomp.nranks()),
      overlap_(overlap_comm) {
  if (!inner_) throw std::invalid_argument("DistributedKernels: null inner");
  if (nranks_ != comm.size()) {
    throw std::invalid_argument(
        "DistributedKernels: decomposition/communicator rank mismatch");
  }
}

void DistributedKernels::meter_comm(const char* name, std::size_t sent,
                                    std::size_t received, double ns) {
  sim::LaunchInfo info;
  info.name = name;  // literal: static storage, safe for retained sinks
  info.kernel_id = -1;
  info.phase = "comm";
  info.bytes_read = received;
  info.bytes_written = sent;
  const_cast<sim::SimClock&>(inner_->clock()).record_launch(info, ns, 1.0);
  stats_.bytes += sent + received;
  stats_.comm_ns += ns;
}

void DistributedKernels::exchange_field(core::FieldId id, int depth) {
  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  auto field = inner_->field_view(id);
  exchanger_.exchange(*comm_, field, depth, tag);

  // Wire accounting: a strip of `depth` layers per present neighbour; x
  // strips span the tile height, y strips the full padded width (corner
  // propagation). Receives mirror sends exactly.
  const comm::Tile& tile = exchanger_.tile();
  std::size_t doubles = 0;
  int messages = 0;
  for (const Face f : {Face::kLeft, Face::kRight}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(depth) *
                 static_cast<std::size_t>(tile.ny());
      ++messages;
    }
  }
  for (const Face f : {Face::kBottom, Face::kTop}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(depth) *
                 static_cast<std::size_t>(field.nx());
      ++messages;
    }
  }
  const std::size_t bytes = doubles * sizeof(double);
  ++stats_.halo_exchanges;
  meter_comm("halo_exchange", bytes, bytes,
             sim::halo_exchange_ns(*net_, bytes, messages));
}

bool DistributedKernels::try_post(unsigned fields, int depth) {
  if (!overlap_ || depth != 1) return false;
  if ((inner_->caps() & core::kCapRegions) == 0) return false;
  // Only the single-field depth-1 exchanges feeding the solver iteration
  // kernels overlap; multi-field updates (bootstrap, residual prep) and deep
  // halos keep the blocking path.
  core::FieldId id;
  if (fields == core::kMaskP) {
    id = core::FieldId::kP;
  } else if (fields == core::kMaskU) {
    id = core::FieldId::kU;
  } else if (fields == core::kMaskSd) {
    id = core::FieldId::kSd;
  } else {
    return false;
  }

  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  auto field = inner_->field_view(id);
  exchanger_.post(*comm_, field, tag);

  // Same wire accounting as exchange_field at depth 1.
  const comm::Tile& tile = exchanger_.tile();
  std::size_t doubles = 0;
  int messages = 0;
  for (const Face f : {Face::kLeft, Face::kRight}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(tile.ny());
      ++messages;
    }
  }
  for (const Face f : {Face::kBottom, Face::kTop}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(field.nx());
      ++messages;
    }
  }
  pending_.active = true;
  pending_.id = id;
  pending_.span = field;
  pending_.posted_elapsed_ns = inner_->clock().elapsed_ns();
  pending_.bytes = doubles * sizeof(double);
  pending_.messages = messages;
  pending_.comm_ns = sim::halo_exchange_ns(*net_, pending_.bytes, messages);
  return true;
}

void DistributedKernels::complete_pending() {
  if (!pending_.active) return;
  exchanger_.complete(*comm_, pending_.span);
  // Compute charged since the post covers that much of the wire time; only
  // the exposed remainder advances the clock. The hidden share becomes a
  // trace-only "overlap" event so profiles show where the transfer sat.
  const double elapsed =
      inner_->clock().elapsed_ns() - pending_.posted_elapsed_ns;
  const double exposed = std::max(0.0, pending_.comm_ns - elapsed);
  const double hidden = pending_.comm_ns - exposed;
  ++stats_.halo_exchanges;
  ++stats_.overlapped_exchanges;
  meter_comm("halo_exchange", pending_.bytes, pending_.bytes, exposed);
  if (hidden > 0.0) {
    sim::LaunchInfo info;
    info.name = "halo_overlap";  // literal: static storage
    info.kernel_id = -1;
    info.phase = "overlap";
    info.bytes_read = pending_.bytes;
    info.bytes_written = pending_.bytes;
    const_cast<sim::SimClock&>(inner_->clock()).record_overlap(info, hidden);
  }
  stats_.hidden_ns += hidden;
  pending_.active = false;
}

double DistributedKernels::allreduce_sum(double local) {
  if (nranks_ == 1) return local;
  const double global =
      comm_->allreduce(local, comm::Communicator::ReduceOp::kSum);
  ++stats_.allreduces;
  const std::size_t level_bytes = sizeof(double) * [](int p) {
    int d = 0;
    while ((1 << d) < p) ++d;
    return static_cast<std::size_t>(d);
  }(nranks_);
  meter_comm("allreduce", level_bytes, level_bytes,
             sim::allreduce_ns(*net_, sizeof(double), nranks_));
  return global;
}

void DistributedKernels::halo_update(unsigned fields, int depth) {
  complete_pending();
  // The port's own update does the local work (and the per-rank metering):
  // it reflects all four faces as if the tile were the whole domain. The
  // exchange then overwrites the halos on interior faces with neighbour
  // data, leaving physical faces reflected — TeaLeaf's update_halo split.
  inner_->halo_update(fields, depth);
  if (nranks_ == 1) return;
  // Eligible exchanges post nonblocking here and complete inside the next
  // consuming kernel, between its interior and boundary sweeps.
  if (try_post(fields, depth)) return;
  for (const auto& [mask, id] : kMaskFields) {
    if ((fields & mask) != 0) exchange_field(id, depth);
  }
}

double DistributedKernels::calc_2norm(core::NormTarget target) {
  complete_pending();
  return allreduce_sum(inner_->calc_2norm(target));
}

core::FieldSummary DistributedKernels::field_summary() {
  complete_pending();
  core::FieldSummary s = inner_->field_summary();
  if (nranks_ == 1) return s;
  std::array<double, 4> values = {s.volume, s.mass, s.internal_energy,
                                  s.temperature};
  comm_->allreduce(std::span<double>(values.data(), values.size()),
                   comm::Communicator::ReduceOp::kSum);
  ++stats_.allreduces;
  const std::size_t payload = sizeof(values);
  meter_comm("allreduce", payload, payload,
             sim::allreduce_ns(*net_, payload, nranks_));
  return core::FieldSummary{values[0], values[1], values[2], values[3]};
}

double DistributedKernels::cg_init() {
  complete_pending();
  return allreduce_sum(inner_->cg_init());
}

double DistributedKernels::cg_calc_w() {
  double local;
  if (pending_is(core::FieldId::kP)) {
    // p's halo is in flight: sweep the interior (which never reads it),
    // drain the exchange, then sweep the boundary ring against fresh halos.
    // The finish recomputes the dot in the blocking kernel's exact order.
    inner_->cg_calc_w_region(core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->cg_calc_w_region(r);
    }
    local = inner_->cg_calc_w_region_finish();
  } else {
    complete_pending();
    local = inner_->cg_calc_w();
  }
  return allreduce_sum(local);
}

double DistributedKernels::cg_calc_ur(double alpha) {
  complete_pending();
  return allreduce_sum(inner_->cg_calc_ur(alpha));
}

core::CgFusedW DistributedKernels::cg_calc_w_fused() {
  core::CgFusedW local;
  if (pending_is(core::FieldId::kP)) {
    inner_->cg_calc_w_fused_region(core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->cg_calc_w_fused_region(r);
    }
    local = inner_->cg_calc_w_fused_region_finish();
  } else {
    complete_pending();
    local = inner_->cg_calc_w_fused();
  }
  if (nranks_ == 1) return local;
  // The fused sweep's two dots travel in one allreduce (the fusion's comm
  // win: one latency instead of two).
  std::array<double, 2> values = {local.pw, local.ww};
  comm_->allreduce(std::span<double>(values.data(), values.size()),
                   comm::Communicator::ReduceOp::kSum);
  ++stats_.allreduces;
  const std::size_t payload = sizeof(values);
  meter_comm("allreduce", payload, payload,
             sim::allreduce_ns(*net_, payload, nranks_));
  return core::CgFusedW{values[0], values[1]};
}

double DistributedKernels::cg_fused_ur_p(double alpha, double beta_prev) {
  complete_pending();
  return allreduce_sum(inner_->cg_fused_ur_p(alpha, beta_prev));
}

double DistributedKernels::fused_residual_norm() {
  complete_pending();
  return allreduce_sum(inner_->fused_residual_norm());
}

void DistributedKernels::cheby_fused_iterate(double alpha, double beta) {
  if (pending_is(core::FieldId::kU)) {
    inner_->cheby_fused_region(alpha, beta, core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->cheby_fused_region(alpha, beta, r);
    }
    inner_->cheby_fused_region_finish();
  } else {
    complete_pending();
    inner_->cheby_fused_iterate(alpha, beta);
  }
}

void DistributedKernels::ppcg_fused_inner(double alpha, double beta) {
  if (pending_is(core::FieldId::kSd)) {
    inner_->ppcg_fused_region(alpha, beta, core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->ppcg_fused_region(alpha, beta, r);
    }
    inner_->ppcg_fused_region_finish(alpha, beta);
  } else {
    complete_pending();
    inner_->ppcg_fused_inner(alpha, beta);
  }
}

void DistributedKernels::jacobi_fused_copy_iterate() {
  if (pending_is(core::FieldId::kU)) {
    inner_->jacobi_fused_region(core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->jacobi_fused_region(r);
    }
    inner_->jacobi_fused_region_finish();
  } else {
    complete_pending();
    inner_->jacobi_fused_copy_iterate();
  }
}

// Every verbatim forward drains a pending exchange first: the overlapped
// window only ever spans halo_update -> next consuming kernel, and no other
// method may observe a half-exchanged halo.
void DistributedKernels::upload_state(const core::Chunk& chunk) {
  complete_pending();
  inner_->upload_state(chunk);
}
void DistributedKernels::init_u() {
  complete_pending();
  inner_->init_u();
}
void DistributedKernels::init_coefficients(core::Coefficient coefficient,
                                           double rx, double ry) {
  complete_pending();
  inner_->init_coefficients(coefficient, rx, ry);
}
void DistributedKernels::calc_residual() {
  complete_pending();
  inner_->calc_residual();
}
void DistributedKernels::finalise() {
  complete_pending();
  inner_->finalise();
}
void DistributedKernels::cg_calc_p(double beta) {
  complete_pending();
  inner_->cg_calc_p(beta);
}
void DistributedKernels::cheby_init(double theta) {
  complete_pending();
  inner_->cheby_init(theta);
}
void DistributedKernels::cheby_iterate(double alpha, double beta) {
  complete_pending();
  inner_->cheby_iterate(alpha, beta);
}
void DistributedKernels::ppcg_init_sd(double theta) {
  complete_pending();
  inner_->ppcg_init_sd(theta);
}
void DistributedKernels::ppcg_inner(double alpha, double beta) {
  complete_pending();
  inner_->ppcg_inner(alpha, beta);
}
void DistributedKernels::jacobi_copy_u() {
  complete_pending();
  inner_->jacobi_copy_u();
}
void DistributedKernels::jacobi_iterate() {
  complete_pending();
  inner_->jacobi_iterate();
}
void DistributedKernels::read_u(tl::util::Span2D<double> out) {
  complete_pending();
  inner_->read_u(out);
}
void DistributedKernels::download_energy(core::Chunk& chunk) {
  complete_pending();
  inner_->download_energy(chunk);
}
const tl::sim::SimClock& DistributedKernels::clock() const {
  return inner_->clock();
}
void DistributedKernels::begin_run(std::uint64_t run_seed) {
  complete_pending();  // drain in-flight wires before the clock resets
  inner_->begin_run(run_seed);
  stats_ = CommStats{};
  next_tag_ = 0;
}
tl::util::Span2D<double> DistributedKernels::field_view(core::FieldId id) {
  complete_pending();
  return inner_->field_view(id);
}

}  // namespace tl::dist
