#include "dist/kernels.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace tl::dist {

namespace {

using comm::Face;

// Exchange order is fixed (bit order) so every rank issues the same tagged
// exchanges in the same sequence.
constexpr std::array<std::pair<unsigned, core::FieldId>, 7> kMaskFields = {{
    {core::kMaskU, core::FieldId::kU},
    {core::kMaskP, core::FieldId::kP},
    {core::kMaskSd, core::FieldId::kSd},
    {core::kMaskR, core::FieldId::kR},
    {core::kMaskDensity, core::FieldId::kDensity},
    {core::kMaskEnergy0, core::FieldId::kEnergy0},
    {core::kMaskW, core::FieldId::kW},
}};

// Tag scheme: exchange_field/try_post consume one rolling tag per field
// exchange, and HaloExchanger derives the wire tag as tag * 8 + subtag with
// subtag in [0, 4) — 0 left-edge data moving left, 1 right-edge moving
// right, 2 bottom moving down, 3 top moving up (see comm/halo.hpp). The
// modulus keeps every derived wire tag strictly below MiniComm's reserved
// collective tag base, so a mismatched halo tag can never alias a
// barrier/allreduce message: it surfaces as a stuck recv (the deadlock-guard
// timeout throws) in both the blocking and the nonblocking path, never as
// silent data corruption. The static_assert pins the comment to the code.
constexpr int kTagModulus = 1 << 20;
static_assert(static_cast<long long>(kTagModulus) * 8 <=
                  comm::kCollectiveTagBase,
              "halo wire tags (tag * 8 + subtag) must stay below the "
              "reserved collective tag base");

// Subtags 4 and 5 of the tag * 8 scheme (halo uses 0-3) carry the elastic
// row-partial gather/broadcast and the fault-mode reliable allreduce, so
// every wire message in a run still has a unique tag.
constexpr int kSubtagGather = 4;
constexpr int kSubtagBcast = 5;
// Subtags 6 and 7 carry the pipelined-CG nonblocking allreduce (gather leg
// and broadcast leg), keeping its wires distinct from the w-halo exchange
// that flies between the same begin/complete pair.
constexpr int kSubtagIGather = 6;
constexpr int kSubtagIBcast = 7;

// In-flight corruption model: scale-plus-offset, applied to one payload
// value per comm phase. The offset matters — early in a solve, rank 1's
// reduction partials (and some halo cells) are exactly zero, where a pure
// scale would be invisible. The magnitude (1e-3) is chosen to clear
// ToleranceSpec::distributed (history rel 1e-6, checksums rel 1e-8) by
// orders of magnitude, so the conformance checker must flag it.
constexpr double kPerturbFactor = 1.0 + 1e-3;
constexpr double kPerturbOffset = 1e-3;

double perturb(double x) { return x * kPerturbFactor + kPerturbOffset; }

/// In-place pairwise tree fold over `n` row partials — the same tree the
/// ports fold locally, here applied to the *global* row vector so the result
/// is invariant under any row-strip split.
double pairwise_sum(double* p, std::int64_t n) {
  for (std::int64_t width = 1; width < n; width *= 2) {
    for (std::int64_t i = 0; i + width < n; i += 2 * width) {
      p[i] += p[i + width];
    }
  }
  return n > 0 ? p[0] : 0.0;
}

}  // namespace

DistributedKernels::DistributedKernels(
    std::unique_ptr<core::SolverKernels> inner, comm::Communicator& comm,
    const comm::BlockDecomposition& decomp, int halo_depth,
    const sim::NetworkSpec& net, bool overlap_comm)
    : inner_(std::move(inner)),
      comm_(&comm),
      decomp_(&decomp),
      exchanger_(decomp, comm.rank(), halo_depth),
      net_(&net),
      nranks_(decomp.nranks()),
      halo_depth_(halo_depth),
      overlap_(overlap_comm) {
  if (!inner_) throw std::invalid_argument("DistributedKernels: null inner");
  if (nranks_ != comm.size()) {
    throw std::invalid_argument(
        "DistributedKernels: decomposition/communicator rank mismatch");
  }
}

void DistributedKernels::meter_comm(const char* name, std::size_t sent,
                                    std::size_t received, double ns) {
  sim::LaunchInfo info;
  info.name = name;  // literal: static storage, safe for retained sinks
  info.kernel_id = -1;
  info.phase = "comm";
  info.bytes_read = received;
  info.bytes_written = sent;
  const_cast<sim::SimClock&>(inner_->clock()).record_launch(info, ns, 1.0);
  stats_.bytes += sent + received;
  stats_.comm_ns += ns;
}

void DistributedKernels::set_elastic(bool on) {
  if (on && !inner_->set_row_reductions(true)) {
    throw std::invalid_argument(
        "DistributedKernels: elastic mode needs a port with per-row "
        "reductions (set_row_reductions refused)");
  }
  if (!on) inner_->set_row_reductions(false);
  elastic_ = on;
  if (on) overlap_ = false;
}

void DistributedKernels::enable_faults(const comm::FaultSpec& spec) {
  fc_ = std::make_unique<comm::FaultyComm>(*comm_, spec);
  overlap_ = false;
}

void DistributedKernels::set_fault_step(int step) {
  if (fc_) fc_->set_step(step);
}

void DistributedKernels::set_comm_perturb(std::string_view target) {
  if (target == "halo_payload") {
    perturb_halo_ = true;
  } else if (target == "allreduce") {
    perturb_allreduce_ = true;
  } else {
    throw std::invalid_argument("unknown comm perturb target: " +
                                std::string(target));
  }
  overlap_ = false;  // blocking path only: the corruption must always apply
}

void DistributedKernels::sync_fault_stats() {
  const comm::FaultStats& fs = fc_->stats();
  if (fs.retries > stats_.retries) {
    // Trace-only breadcrumb (bytes = new retries): makes retry storms
    // visible in Chrome traces without touching the metered timeline.
    if (sim::TraceSink* sink = inner_->clock().trace_sink()) {
      sim::TraceEvent ev;
      ev.kind = sim::TraceEvent::Kind::kLaunch;
      ev.name = "comm_retry";
      ev.kernel_id = -1;
      ev.phase = "comm";
      ev.start_ns = inner_->clock().elapsed_ns();
      ev.duration_ns = 0.0;
      ev.bytes = static_cast<std::size_t>(fs.retries - stats_.retries);
      sink->on_event(ev);
    }
  }
  stats_.retries = fs.retries;
  stats_.dropped = fs.dropped;
  stats_.duplicated = fs.duplicated;
  stats_.delayed = fs.delayed;
}

void DistributedKernels::perturb_halo_cell(core::FieldId id) {
  auto f = inner_->field_view(id);
  const comm::Tile& t = exchanger_.tile();
  const int h = halo_depth_;
  // Scale one halo cell that was just received from a neighbour (rank 1
  // always has at least one); the corrupted value feeds the next stencil
  // sweep exactly as an in-flight payload flip would.
  if (t.has_neighbour(Face::kBottom)) {
    f(h, h - 1) = perturb(f(h, h - 1));
  } else if (t.has_neighbour(Face::kLeft)) {
    f(h - 1, h) = perturb(f(h - 1, h));
  } else if (t.has_neighbour(Face::kTop)) {
    f(h, h + t.ny()) = perturb(f(h, h + t.ny()));
  } else if (t.has_neighbour(Face::kRight)) {
    f(h + t.nx(), h) = perturb(f(h + t.nx(), h));
  }
}

void DistributedKernels::exchange_field(core::FieldId id, int depth) {
  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  auto field = inner_->field_view(id);
  if (fc_) {
    exchanger_.exchange_reliable(*fc_, field, depth, tag);
    sync_fault_stats();
  } else {
    exchanger_.exchange(*comm_, field, depth, tag);
  }
  if (perturb_halo_ && comm_->rank() == 1) perturb_halo_cell(id);

  // Wire accounting: a strip of `depth` layers per present neighbour; x
  // strips span the tile height, y strips the full padded width (corner
  // propagation). Receives mirror sends exactly.
  const comm::Tile& tile = exchanger_.tile();
  std::size_t doubles = 0;
  int messages = 0;
  for (const Face f : {Face::kLeft, Face::kRight}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(depth) *
                 static_cast<std::size_t>(tile.ny());
      ++messages;
    }
  }
  for (const Face f : {Face::kBottom, Face::kTop}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(depth) *
                 static_cast<std::size_t>(field.nx());
      ++messages;
    }
  }
  const std::size_t bytes = doubles * sizeof(double);
  ++stats_.halo_exchanges;
  meter_comm("halo_exchange", bytes, bytes,
             sim::halo_exchange_ns(*net_, bytes, messages));
}

bool DistributedKernels::try_post(unsigned fields, int depth) {
  if (!overlap_ || depth != 1) return false;
  if ((inner_->caps() & core::kCapRegions) == 0) return false;
  // Only the single-field depth-1 exchanges feeding the solver iteration
  // kernels overlap; multi-field updates (bootstrap, residual prep) and deep
  // halos keep the blocking path.
  core::FieldId id;
  if (fields == core::kMaskP) {
    id = core::FieldId::kP;
  } else if (fields == core::kMaskU) {
    id = core::FieldId::kU;
  } else if (fields == core::kMaskSd) {
    id = core::FieldId::kSd;
  } else {
    return false;
  }

  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  auto field = inner_->field_view(id);
  exchanger_.post(*comm_, field, tag);

  // Same wire accounting as exchange_field at depth 1.
  const comm::Tile& tile = exchanger_.tile();
  std::size_t doubles = 0;
  int messages = 0;
  for (const Face f : {Face::kLeft, Face::kRight}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(tile.ny());
      ++messages;
    }
  }
  for (const Face f : {Face::kBottom, Face::kTop}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(field.nx());
      ++messages;
    }
  }
  pending_.active = true;
  pending_.id = id;
  pending_.span = field;
  pending_.posted_elapsed_ns = inner_->clock().elapsed_ns();
  pending_.bytes = doubles * sizeof(double);
  pending_.messages = messages;
  pending_.comm_ns = sim::halo_exchange_ns(*net_, pending_.bytes, messages);
  return true;
}

void DistributedKernels::complete_pending() {
  if (!pending_.active) return;
  exchanger_.complete(*comm_, pending_.span);
  // Compute charged since the post covers that much of the wire time; only
  // the exposed remainder advances the clock. The hidden share becomes a
  // trace-only "overlap" event so profiles show where the transfer sat.
  const double elapsed =
      inner_->clock().elapsed_ns() - pending_.posted_elapsed_ns;
  const double exposed = std::max(0.0, pending_.comm_ns - elapsed);
  const double hidden = pending_.comm_ns - exposed;
  ++stats_.halo_exchanges;
  ++stats_.overlapped_exchanges;
  meter_comm("halo_exchange", pending_.bytes, pending_.bytes, exposed);
  if (hidden > 0.0) {
    sim::LaunchInfo info;
    info.name = "halo_overlap";  // literal: static storage
    info.kernel_id = -1;
    info.phase = "overlap";
    info.bytes_read = pending_.bytes;
    info.bytes_written = pending_.bytes;
    const_cast<sim::SimClock&>(inner_->clock()).record_overlap(info, hidden);
  }
  stats_.hidden_ns += hidden;
  pending_.active = false;
}

double DistributedKernels::allreduce_sum(double local) {
  if (perturb_allreduce_ && comm_->rank() == 1) local = perturb(local);
  if (nranks_ == 1) return local;
  double global;
  if (fc_) {
    const int tag = next_tag_;
    next_tag_ = (next_tag_ + 1) % kTagModulus;
    double v = local;
    comm::reliable_allreduce_sum(*fc_, std::span<double>(&v, 1),
                                 tag * 8 + kSubtagGather,
                                 tag * 8 + kSubtagBcast);
    sync_fault_stats();
    global = v;
  } else {
    global = comm_->allreduce(local, comm::Communicator::ReduceOp::kSum);
  }
  ++stats_.allreduces;
  const std::size_t level_bytes = sizeof(double) * [](int p) {
    int d = 0;
    while ((1 << d) < p) ++d;
    return static_cast<std::size_t>(d);
  }(nranks_);
  stats_.allreduce_ns += sim::allreduce_ns(*net_, sizeof(double), nranks_);
  meter_comm("allreduce", level_bytes, level_bytes,
             sim::allreduce_ns(*net_, sizeof(double), nranks_));
  return global;
}

void DistributedKernels::allreduce_block(double* values, std::size_t n) {
  if (perturb_allreduce_ && comm_->rank() == 1) values[0] = perturb(values[0]);
  if (nranks_ == 1) return;
  if (fc_) {
    const int tag = next_tag_;
    next_tag_ = (next_tag_ + 1) % kTagModulus;
    comm::reliable_allreduce_sum(*fc_, std::span<double>(values, n),
                                 tag * 8 + kSubtagGather,
                                 tag * 8 + kSubtagBcast);
    sync_fault_stats();
  } else {
    comm_->allreduce(std::span<double>(values, n),
                     comm::Communicator::ReduceOp::kSum);
  }
  ++stats_.allreduces;
  const std::size_t payload = n * sizeof(double);
  stats_.allreduce_ns += sim::allreduce_ns(*net_, payload, nranks_);
  meter_comm("allreduce", payload, payload,
             sim::allreduce_ns(*net_, payload, nranks_));
}

void DistributedKernels::elastic_combine(int k, double* out) {
  const std::span<const double> local = inner_->row_partials();
  const int local_ny = exchanger_.tile().ny();
  if (local.size() !=
      static_cast<std::size_t>(k) * static_cast<std::size_t>(local_ny)) {
    throw std::runtime_error(
        "DistributedKernels: elastic port published a row-partial vector of "
        "unexpected size");
  }
  const int gny = decomp_->global_ny();
  const std::size_t gny_z = static_cast<std::size_t>(gny);

  if (nranks_ == 1) {
    elastic_scratch_.assign(local.begin(), local.end());
    for (int j = 0; j < k; ++j) {
      out[j] = pairwise_sum(
          elastic_scratch_.data() + static_cast<std::size_t>(j) * gny_z, gny);
    }
    return;
  }

  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  const int gather_tag = tag * 8 + kSubtagGather;
  const int bcast_tag = tag * 8 + kSubtagBcast;
  std::span<double> result(out, static_cast<std::size_t>(k));

  if (comm_->rank() == 0) {
    // Assemble the k global row vectors: rank r's rows land at its tile's
    // y_begin, so rank-order placement IS global row order for row strips.
    elastic_scratch_.assign(static_cast<std::size_t>(k) * gny_z, 0.0);
    auto place = [&](int rank, std::span<const double> partials) {
      const comm::Tile& t = decomp_->tile(rank);
      const std::size_t rows = static_cast<std::size_t>(t.ny());
      for (int j = 0; j < k; ++j) {
        std::copy_n(partials.data() + static_cast<std::size_t>(j) * rows, rows,
                    elastic_scratch_.data() +
                        static_cast<std::size_t>(j) * gny_z +
                        static_cast<std::size_t>(t.y_begin));
      }
    };
    place(0, local);

    std::vector<std::size_t> offsets(static_cast<std::size_t>(nranks_), 0);
    std::size_t total = 0;
    for (int r = 1; r < nranks_; ++r) {
      offsets[static_cast<std::size_t>(r)] = total;
      total += static_cast<std::size_t>(k) *
               static_cast<std::size_t>(decomp_->tile(r).ny());
    }
    std::vector<double> incoming(total);
    if (fc_) {
      std::vector<comm::WireIn> ins;
      ins.reserve(static_cast<std::size_t>(nranks_ - 1));
      for (int r = 1; r < nranks_; ++r) {
        const std::size_t count = static_cast<std::size_t>(k) *
                                  static_cast<std::size_t>(decomp_->tile(r).ny());
        ins.push_back({r, gather_tag,
                       std::span<double>(
                           incoming.data() + offsets[static_cast<std::size_t>(r)],
                           count)});
      }
      fc_->exchange({}, ins);
    } else {
      for (int r = 1; r < nranks_; ++r) {
        const std::size_t count = static_cast<std::size_t>(k) *
                                  static_cast<std::size_t>(decomp_->tile(r).ny());
        comm_->recv(std::span<double>(
                        incoming.data() + offsets[static_cast<std::size_t>(r)],
                        count),
                    r, gather_tag);
      }
    }
    for (int r = 1; r < nranks_; ++r) {
      const std::size_t count = static_cast<std::size_t>(k) *
                                static_cast<std::size_t>(decomp_->tile(r).ny());
      place(r, std::span<const double>(
                   incoming.data() + offsets[static_cast<std::size_t>(r)],
                   count));
    }

    for (int j = 0; j < k; ++j) {
      out[j] = pairwise_sum(
          elastic_scratch_.data() + static_cast<std::size_t>(j) * gny_z, gny);
    }

    if (fc_) {
      std::vector<comm::WireOut> outs;
      outs.reserve(static_cast<std::size_t>(nranks_ - 1));
      for (int r = 1; r < nranks_; ++r) {
        outs.push_back({r, bcast_tag, std::span<const double>(result)});
      }
      fc_->exchange(outs, {});
      sync_fault_stats();
    } else {
      comm_->broadcast(result, 0);
    }
  } else {
    if (fc_) {
      const comm::WireOut contribute{0, gather_tag, local};
      fc_->exchange(std::span<const comm::WireOut>(&contribute, 1), {});
      const comm::WireIn back{0, bcast_tag, result};
      fc_->exchange({}, std::span<const comm::WireIn>(&back, 1));
      sync_fault_stats();
    } else {
      comm_->send(local, 0, gather_tag);
      comm_->broadcast(result, 0);
    }
  }

  ++stats_.allreduces;
  const std::size_t payload =
      static_cast<std::size_t>(k) * gny_z * sizeof(double);
  meter_comm("row_allreduce", payload, payload,
             sim::allreduce_ns(*net_, payload, nranks_));
}

void DistributedKernels::halo_update(unsigned fields, int depth) {
  complete_pending();
  // The port's own update does the local work (and the per-rank metering):
  // it reflects all four faces as if the tile were the whole domain. The
  // exchange then overwrites the halos on interior faces with neighbour
  // data, leaving physical faces reflected — TeaLeaf's update_halo split.
  inner_->halo_update(fields, depth);
  if (nranks_ == 1) return;
  // Eligible exchanges post nonblocking here and complete inside the next
  // consuming kernel, between its interior and boundary sweeps.
  if (try_post(fields, depth)) return;
  for (const auto& [mask, id] : kMaskFields) {
    if ((fields & mask) != 0) exchange_field(id, depth);
  }
}

double DistributedKernels::calc_2norm(core::NormTarget target) {
  complete_pending();
  const double local = inner_->calc_2norm(target);
  if (elastic_) {
    double v;
    elastic_combine(1, &v);
    return v;
  }
  return allreduce_sum(local);
}

core::FieldSummary DistributedKernels::field_summary() {
  complete_pending();
  core::FieldSummary s = inner_->field_summary();
  if (elastic_) {
    double v[4];
    elastic_combine(4, v);
    return core::FieldSummary{v[0], v[1], v[2], v[3]};
  }
  if (nranks_ == 1) return s;
  std::array<double, 4> values = {s.volume, s.mass, s.internal_energy,
                                  s.temperature};
  allreduce_block(values.data(), values.size());
  return core::FieldSummary{values[0], values[1], values[2], values[3]};
}

double DistributedKernels::cg_init() {
  complete_pending();
  const double local = inner_->cg_init();
  if (elastic_) {
    double v;
    elastic_combine(1, &v);
    return v;
  }
  return allreduce_sum(local);
}

double DistributedKernels::cg_calc_w() {
  double local;
  if (pending_is(core::FieldId::kP)) {
    // p's halo is in flight: sweep the interior (which never reads it),
    // drain the exchange, then sweep the boundary ring against fresh halos.
    // The finish recomputes the dot in the blocking kernel's exact order.
    inner_->cg_calc_w_region(core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->cg_calc_w_region(r);
    }
    local = inner_->cg_calc_w_region_finish();
  } else {
    complete_pending();
    local = inner_->cg_calc_w();
  }
  if (elastic_) {
    double v;
    elastic_combine(1, &v);
    return v;
  }
  return allreduce_sum(local);
}

double DistributedKernels::cg_calc_ur(double alpha) {
  complete_pending();
  const double local = inner_->cg_calc_ur(alpha);
  if (elastic_) {
    double v;
    elastic_combine(1, &v);
    return v;
  }
  return allreduce_sum(local);
}

core::CgFusedW DistributedKernels::cg_calc_w_fused() {
  core::CgFusedW local;
  if (pending_is(core::FieldId::kP)) {
    inner_->cg_calc_w_fused_region(core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->cg_calc_w_fused_region(r);
    }
    local = inner_->cg_calc_w_fused_region_finish();
  } else {
    complete_pending();
    local = inner_->cg_calc_w_fused();
  }
  if (nranks_ == 1) return local;
  // The fused sweep's two dots travel in one allreduce (the fusion's comm
  // win: one latency instead of two).
  std::array<double, 2> values = {local.pw, local.ww};
  allreduce_block(values.data(), values.size());
  return core::CgFusedW{values[0], values[1]};
}

double DistributedKernels::cg_fused_ur_p(double alpha, double beta_prev) {
  complete_pending();
  return allreduce_sum(inner_->cg_fused_ur_p(alpha, beta_prev));
}

double DistributedKernels::fused_residual_norm() {
  complete_pending();
  return allreduce_sum(inner_->fused_residual_norm());
}

// -- Pipelined CG -----------------------------------------------------------
// init/update return *local* dots: the solver hands them straight to
// cg_pipe_dots_begin, which owns the (possibly nonblocking) reduction.

core::CgPipeDots DistributedKernels::cg_pipe_init() {
  complete_pending();
  return inner_->cg_pipe_init();
}

void DistributedKernels::cg_pipe_calc_q() {
  complete_pending();
  inner_->cg_pipe_calc_q();
}

core::CgPipeDots DistributedKernels::cg_pipe_update(double alpha, double beta) {
  complete_pending();
  return inner_->cg_pipe_update(alpha, beta);
}

void DistributedKernels::cg_pipe_dots_begin(const core::CgPipeDots& local) {
  complete_pending();
  core::CgPipeDots v = local;
  if (perturb_allreduce_ && comm_->rank() == 1) v.rr = perturb(v.rr);
  pipe_allreduce_.values = {v.rr, v.rw};
  pipe_allreduce_.active = true;
  if (nranks_ == 1) return;  // complete() is an identity read

  std::span<double> vals(pipe_allreduce_.values.data(), 2);
  if (!overlap_) {
    // Blocking twin: reduce now; the full wire time is exposed. The
    // accumulation order (root folds rank 0, then 1..P-1) matches the
    // nonblocking path exactly, so the dots are bit-identical.
    comm_->allreduce(vals, comm::Communicator::ReduceOp::kSum);
    ++stats_.allreduces;
    const std::size_t payload = vals.size() * sizeof(double);
    stats_.allreduce_ns += sim::allreduce_ns(*net_, payload, nranks_);
    meter_comm("allreduce", payload, payload,
               sim::allreduce_ns(*net_, payload, nranks_));
    return;
  }

  // Nonblocking: isend the local dots toward root (buffered, never blocks)
  // and register the receives; the wire time starts hiding behind whatever
  // compute the port charges before dots_complete waits.
  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  const int gather_tag = tag * 8 + kSubtagIGather;
  pipe_allreduce_.bcast_tag = tag * 8 + kSubtagIBcast;
  pipe_allreduce_.reqs.clear();
  if (comm_->rank() == 0) {
    pipe_allreduce_.incoming.assign(
        static_cast<std::size_t>(nranks_ - 1) * vals.size(), 0.0);
    for (int r = 1; r < nranks_; ++r) {
      pipe_allreduce_.reqs.push_back(comm_->irecv(
          std::span<double>(pipe_allreduce_.incoming.data() +
                                static_cast<std::size_t>(r - 1) * vals.size(),
                            vals.size()),
          r, gather_tag));
    }
  } else {
    comm_->isend(vals, 0, gather_tag);
    pipe_allreduce_.reqs.push_back(
        comm_->irecv(vals, 0, pipe_allreduce_.bcast_tag));
  }
  pipe_allreduce_.posted_elapsed_ns = inner_->clock().elapsed_ns();
  pipe_allreduce_.comm_ns =
      sim::allreduce_ns(*net_, vals.size() * sizeof(double), nranks_);
}

core::CgPipeDots DistributedKernels::cg_pipe_dots_complete() {
  if (!pipe_allreduce_.active) {
    throw std::logic_error(
        "DistributedKernels: cg_pipe_dots_complete without a pending begin");
  }
  pipe_allreduce_.active = false;
  std::span<double> vals(pipe_allreduce_.values.data(), 2);
  if (nranks_ == 1 || !overlap_) {
    return core::CgPipeDots{vals[0], vals[1]};
  }

  comm::Communicator::wait_all(pipe_allreduce_.reqs);
  if (comm_->rank() == 0) {
    // Fold in rank order 1..P-1 — byte-for-byte the blocking allreduce's
    // accumulation — then broadcast the result.
    for (int r = 1; r < nranks_; ++r) {
      const double* in = pipe_allreduce_.incoming.data() +
                         static_cast<std::size_t>(r - 1) * vals.size();
      for (std::size_t i = 0; i < vals.size(); ++i) vals[i] += in[i];
    }
    for (int r = 1; r < nranks_; ++r) {
      comm_->send(vals, r, pipe_allreduce_.bcast_tag);
    }
  }

  // Compute charged since the begin covers that much of the wire time; only
  // the exposed remainder advances the clock, and the hidden share becomes a
  // trace-only "overlap" event (the halo pipeline's accounting, reused).
  const double elapsed =
      inner_->clock().elapsed_ns() - pipe_allreduce_.posted_elapsed_ns;
  const double exposed = std::max(0.0, pipe_allreduce_.comm_ns - elapsed);
  const double hidden = pipe_allreduce_.comm_ns - exposed;
  ++stats_.allreduces;
  ++stats_.iallreduces;
  stats_.allreduce_ns += pipe_allreduce_.comm_ns;
  const std::size_t payload = vals.size() * sizeof(double);
  meter_comm("allreduce", payload, payload, exposed);
  if (hidden > 0.0) {
    sim::LaunchInfo info;
    info.name = "allreduce_overlap";  // literal: static storage
    info.kernel_id = -1;
    info.phase = "overlap";
    info.bytes_read = payload;
    info.bytes_written = payload;
    const_cast<sim::SimClock&>(inner_->clock()).record_overlap(info, hidden);
  }
  stats_.allreduce_hidden_ns += hidden;
  return core::CgPipeDots{vals[0], vals[1]};
}

void DistributedKernels::cheby_fused_iterate(double alpha, double beta) {
  if (pending_is(core::FieldId::kU)) {
    inner_->cheby_fused_region(alpha, beta, core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->cheby_fused_region(alpha, beta, r);
    }
    inner_->cheby_fused_region_finish();
  } else {
    complete_pending();
    inner_->cheby_fused_iterate(alpha, beta);
  }
}

void DistributedKernels::ppcg_fused_inner(double alpha, double beta) {
  if (pending_is(core::FieldId::kSd)) {
    inner_->ppcg_fused_region(alpha, beta, core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->ppcg_fused_region(alpha, beta, r);
    }
    inner_->ppcg_fused_region_finish(alpha, beta);
  } else {
    complete_pending();
    inner_->ppcg_fused_inner(alpha, beta);
  }
}

void DistributedKernels::jacobi_fused_copy_iterate() {
  if (pending_is(core::FieldId::kU)) {
    inner_->jacobi_fused_region(core::Region::kInterior);
    complete_pending();
    for (const core::Region r : core::kEdgeRegions) {
      inner_->jacobi_fused_region(r);
    }
    inner_->jacobi_fused_region_finish();
  } else {
    complete_pending();
    inner_->jacobi_fused_copy_iterate();
  }
}

// Every verbatim forward drains a pending exchange first: the overlapped
// window only ever spans halo_update -> next consuming kernel, and no other
// method may observe a half-exchanged halo.
void DistributedKernels::upload_state(const core::Chunk& chunk) {
  complete_pending();
  inner_->upload_state(chunk);
}
void DistributedKernels::init_u() {
  complete_pending();
  inner_->init_u();
}
void DistributedKernels::init_coefficients(core::Coefficient coefficient,
                                           double rx, double ry) {
  complete_pending();
  inner_->init_coefficients(coefficient, rx, ry);
}
void DistributedKernels::calc_residual() {
  complete_pending();
  inner_->calc_residual();
}
void DistributedKernels::finalise() {
  complete_pending();
  inner_->finalise();
}
void DistributedKernels::cg_calc_p(double beta) {
  complete_pending();
  inner_->cg_calc_p(beta);
}
void DistributedKernels::cheby_init(double theta) {
  complete_pending();
  inner_->cheby_init(theta);
}
void DistributedKernels::cheby_iterate(double alpha, double beta) {
  complete_pending();
  inner_->cheby_iterate(alpha, beta);
}
void DistributedKernels::ppcg_init_sd(double theta) {
  complete_pending();
  inner_->ppcg_init_sd(theta);
}
void DistributedKernels::ppcg_inner(double alpha, double beta) {
  complete_pending();
  inner_->ppcg_inner(alpha, beta);
}
void DistributedKernels::jacobi_copy_u() {
  complete_pending();
  inner_->jacobi_copy_u();
}
void DistributedKernels::jacobi_iterate() {
  complete_pending();
  inner_->jacobi_iterate();
}
void DistributedKernels::read_u(tl::util::Span2D<double> out) {
  complete_pending();
  inner_->read_u(out);
}
void DistributedKernels::download_energy(core::Chunk& chunk) {
  complete_pending();
  inner_->download_energy(chunk);
}
const tl::sim::SimClock& DistributedKernels::clock() const {
  return inner_->clock();
}
void DistributedKernels::begin_run(std::uint64_t run_seed) {
  complete_pending();  // drain in-flight wires before the clock resets
  if (pipe_allreduce_.active) cg_pipe_dots_complete();  // ditto (tags reset)
  inner_->begin_run(run_seed);
  stats_ = CommStats{};
  next_tag_ = 0;
}
tl::util::Span2D<double> DistributedKernels::field_view(core::FieldId id) {
  complete_pending();
  return inner_->field_view(id);
}

}  // namespace tl::dist
