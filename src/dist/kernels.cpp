#include "dist/kernels.hpp"

#include <array>
#include <stdexcept>
#include <utility>

namespace tl::dist {

namespace {

using comm::Face;

// Exchange order is fixed (bit order) so every rank issues the same tagged
// exchanges in the same sequence.
constexpr std::array<std::pair<unsigned, core::FieldId>, 6> kMaskFields = {{
    {core::kMaskU, core::FieldId::kU},
    {core::kMaskP, core::FieldId::kP},
    {core::kMaskSd, core::FieldId::kSd},
    {core::kMaskR, core::FieldId::kR},
    {core::kMaskDensity, core::FieldId::kDensity},
    {core::kMaskEnergy0, core::FieldId::kEnergy0},
}};

// HaloExchanger derives sub-tags as tag*8+k; keep the rolling tag well under
// MiniComm's reserved collective range (1 << 24).
constexpr int kTagModulus = 1 << 20;

}  // namespace

DistributedKernels::DistributedKernels(
    std::unique_ptr<core::SolverKernels> inner, comm::Communicator& comm,
    const comm::BlockDecomposition& decomp, int halo_depth,
    const sim::NetworkSpec& net)
    : inner_(std::move(inner)),
      comm_(&comm),
      exchanger_(decomp, comm.rank(), halo_depth),
      net_(&net),
      nranks_(decomp.nranks()) {
  if (!inner_) throw std::invalid_argument("DistributedKernels: null inner");
  if (nranks_ != comm.size()) {
    throw std::invalid_argument(
        "DistributedKernels: decomposition/communicator rank mismatch");
  }
}

void DistributedKernels::meter_comm(const char* name, std::size_t sent,
                                    std::size_t received, double ns) {
  sim::LaunchInfo info;
  info.name = name;  // literal: static storage, safe for retained sinks
  info.kernel_id = -1;
  info.phase = "comm";
  info.bytes_read = received;
  info.bytes_written = sent;
  const_cast<sim::SimClock&>(inner_->clock()).record_launch(info, ns, 1.0);
  stats_.bytes += sent + received;
  stats_.comm_ns += ns;
}

void DistributedKernels::exchange_field(core::FieldId id, int depth) {
  const int tag = next_tag_;
  next_tag_ = (next_tag_ + 1) % kTagModulus;
  auto field = inner_->field_view(id);
  exchanger_.exchange(*comm_, field, depth, tag);

  // Wire accounting: a strip of `depth` layers per present neighbour; x
  // strips span the tile height, y strips the full padded width (corner
  // propagation). Receives mirror sends exactly.
  const comm::Tile& tile = exchanger_.tile();
  std::size_t doubles = 0;
  int messages = 0;
  for (const Face f : {Face::kLeft, Face::kRight}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(depth) *
                 static_cast<std::size_t>(tile.ny());
      ++messages;
    }
  }
  for (const Face f : {Face::kBottom, Face::kTop}) {
    if (tile.has_neighbour(f)) {
      doubles += static_cast<std::size_t>(depth) *
                 static_cast<std::size_t>(field.nx());
      ++messages;
    }
  }
  const std::size_t bytes = doubles * sizeof(double);
  ++stats_.halo_exchanges;
  meter_comm("halo_exchange", bytes, bytes,
             sim::halo_exchange_ns(*net_, bytes, messages));
}

double DistributedKernels::allreduce_sum(double local) {
  if (nranks_ == 1) return local;
  const double global =
      comm_->allreduce(local, comm::Communicator::ReduceOp::kSum);
  ++stats_.allreduces;
  const std::size_t level_bytes = sizeof(double) * [](int p) {
    int d = 0;
    while ((1 << d) < p) ++d;
    return static_cast<std::size_t>(d);
  }(nranks_);
  meter_comm("allreduce", level_bytes, level_bytes,
             sim::allreduce_ns(*net_, sizeof(double), nranks_));
  return global;
}

void DistributedKernels::halo_update(unsigned fields, int depth) {
  // The port's own update does the local work (and the per-rank metering):
  // it reflects all four faces as if the tile were the whole domain. The
  // exchange then overwrites the halos on interior faces with neighbour
  // data, leaving physical faces reflected — TeaLeaf's update_halo split.
  inner_->halo_update(fields, depth);
  if (nranks_ == 1) return;
  for (const auto& [mask, id] : kMaskFields) {
    if ((fields & mask) != 0) exchange_field(id, depth);
  }
}

double DistributedKernels::calc_2norm(core::NormTarget target) {
  return allreduce_sum(inner_->calc_2norm(target));
}

core::FieldSummary DistributedKernels::field_summary() {
  core::FieldSummary s = inner_->field_summary();
  if (nranks_ == 1) return s;
  std::array<double, 4> values = {s.volume, s.mass, s.internal_energy,
                                  s.temperature};
  comm_->allreduce(std::span<double>(values.data(), values.size()),
                   comm::Communicator::ReduceOp::kSum);
  ++stats_.allreduces;
  const std::size_t payload = sizeof(values);
  meter_comm("allreduce", payload, payload,
             sim::allreduce_ns(*net_, payload, nranks_));
  return core::FieldSummary{values[0], values[1], values[2], values[3]};
}

double DistributedKernels::cg_init() { return allreduce_sum(inner_->cg_init()); }
double DistributedKernels::cg_calc_w() {
  return allreduce_sum(inner_->cg_calc_w());
}
double DistributedKernels::cg_calc_ur(double alpha) {
  return allreduce_sum(inner_->cg_calc_ur(alpha));
}

core::CgFusedW DistributedKernels::cg_calc_w_fused() {
  core::CgFusedW local = inner_->cg_calc_w_fused();
  if (nranks_ == 1) return local;
  // The fused sweep's two dots travel in one allreduce (the fusion's comm
  // win: one latency instead of two).
  std::array<double, 2> values = {local.pw, local.ww};
  comm_->allreduce(std::span<double>(values.data(), values.size()),
                   comm::Communicator::ReduceOp::kSum);
  ++stats_.allreduces;
  const std::size_t payload = sizeof(values);
  meter_comm("allreduce", payload, payload,
             sim::allreduce_ns(*net_, payload, nranks_));
  return core::CgFusedW{values[0], values[1]};
}

double DistributedKernels::cg_fused_ur_p(double alpha, double beta_prev) {
  return allreduce_sum(inner_->cg_fused_ur_p(alpha, beta_prev));
}

double DistributedKernels::fused_residual_norm() {
  return allreduce_sum(inner_->fused_residual_norm());
}

void DistributedKernels::cheby_fused_iterate(double alpha, double beta) {
  inner_->cheby_fused_iterate(alpha, beta);
}
void DistributedKernels::ppcg_fused_inner(double alpha, double beta) {
  inner_->ppcg_fused_inner(alpha, beta);
}
void DistributedKernels::jacobi_fused_copy_iterate() {
  inner_->jacobi_fused_copy_iterate();
}

void DistributedKernels::upload_state(const core::Chunk& chunk) {
  inner_->upload_state(chunk);
}
void DistributedKernels::init_u() { inner_->init_u(); }
void DistributedKernels::init_coefficients(core::Coefficient coefficient,
                                           double rx, double ry) {
  inner_->init_coefficients(coefficient, rx, ry);
}
void DistributedKernels::calc_residual() { inner_->calc_residual(); }
void DistributedKernels::finalise() { inner_->finalise(); }
void DistributedKernels::cg_calc_p(double beta) { inner_->cg_calc_p(beta); }
void DistributedKernels::cheby_init(double theta) { inner_->cheby_init(theta); }
void DistributedKernels::cheby_iterate(double alpha, double beta) {
  inner_->cheby_iterate(alpha, beta);
}
void DistributedKernels::ppcg_init_sd(double theta) {
  inner_->ppcg_init_sd(theta);
}
void DistributedKernels::ppcg_inner(double alpha, double beta) {
  inner_->ppcg_inner(alpha, beta);
}
void DistributedKernels::jacobi_copy_u() { inner_->jacobi_copy_u(); }
void DistributedKernels::jacobi_iterate() { inner_->jacobi_iterate(); }
void DistributedKernels::read_u(tl::util::Span2D<double> out) {
  inner_->read_u(out);
}
void DistributedKernels::download_energy(core::Chunk& chunk) {
  inner_->download_energy(chunk);
}
const tl::sim::SimClock& DistributedKernels::clock() const {
  return inner_->clock();
}
void DistributedKernels::begin_run(std::uint64_t run_seed) {
  inner_->begin_run(run_seed);
  stats_ = CommStats{};
  next_tag_ = 0;
}
tl::util::Span2D<double> DistributedKernels::field_view(core::FieldId id) {
  return inner_->field_view(id);
}

}  // namespace tl::dist
