#pragma once
// Checkpoint/restart for the distributed timestep loop.
//
// A Snapshot captures everything needed to resume a run at a step boundary:
// the solver configuration fingerprint, every completed StepReport (the
// residual histories included), per-rank simulated-clock and comm cursors,
// and the global {density, energy0} interiors. That pair is the complete
// step-boundary state: every halo cell is deterministically rebuilt by the
// halo update at the top of the next step, and u/kx/ky/r/p are recomputed
// from density/energy0 before the solve. A resume may therefore re-decompose
// the fields over a *different* rank count; in elastic mode (per-row
// reductions, row-strip decomposition) the continued run is bit-identical to
// the uninterrupted one.
//
// Wire format "TLCKPT01" (host-endian, in-process lifetime): magic, version,
// fixed header, step reports, per-rank cursors, field interiors, and a
// trailing FNV-1a checksum over everything before it. The loader is strict:
// truncation, bad magic/version, nonsense dimensions, or a checksum mismatch
// throw CheckpointError with a message naming what failed — never a crash,
// never a silent mis-resume.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/settings.hpp"
#include "dist/kernels.hpp"

namespace tl::dist {

/// Diagnosable checkpoint failure (malformed bytes, incompatible resume).
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One rank's simulated-clock and comm tally at the capture point. Restored
/// verbatim on a same-rank-count resume; dropped (cursors restart at zero)
/// when the rank count changes — numerics are unaffected either way.
struct RankCursor {
  double elapsed_ns = 0.0;
  std::uint64_t launches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t kernel_bytes = 0;
  std::uint64_t transfer_bytes = 0;
  CommStats comm;
};

struct Snapshot {
  // Configuration fingerprint: a resume must match all of these.
  int nx = 0;
  int ny = 0;
  int halo_depth = 0;
  core::SolverKind solver = core::SolverKind::kCg;
  int end_step = 0;
  bool elastic = false;
  bool use_fused = false;
  bool overlap_comm = false;
  double eps = 0.0;
  double dt_init = 0.0;

  int completed_steps = 0;
  int nranks_at_save = 0;

  /// One report per completed step, residual histories included; a resumed
  /// run prepends these so its final report equals the uninterrupted one's.
  std::vector<core::StepReport> steps;
  std::vector<RankCursor> cursors;  // size nranks_at_save

  /// Global interiors, row-major nx * ny (no halo — halos are rebuilt).
  std::vector<double> density;
  std::vector<double> energy0;
};

/// Snapshot -> TLCKPT01 bytes.
std::vector<std::uint8_t> serialize(const Snapshot& snap);

/// TLCKPT01 bytes -> Snapshot; throws CheckpointError on anything malformed.
Snapshot deserialize(std::span<const std::uint8_t> bytes);

/// File convenience wrappers around (de)serialize. load_snapshot throws
/// CheckpointError when the file is unreadable or malformed.
void save_snapshot(const std::string& path, const Snapshot& snap);
Snapshot load_snapshot(const std::string& path);

/// Throws CheckpointError when `snap` cannot resume a run configured by
/// `settings` (mesh/solver/tolerance fingerprint mismatch, or nothing left
/// to run). The rank count may differ — that is the elastic resume path.
void check_resume_compatible(const Snapshot& snap,
                             const core::Settings& settings);

}  // namespace tl::dist
