#include "core/state_init.hpp"

#include <stdexcept>

namespace tl::core {

void apply_initial_states(Chunk& chunk, const Settings& settings) {
  if (settings.states.empty()) {
    throw std::invalid_argument("apply_initial_states: no states");
  }
  const Mesh& mesh = chunk.mesh();
  auto density = chunk.field(FieldId::kDensity);
  auto energy0 = chunk.field(FieldId::kEnergy0);

  const StateRegion& background = settings.states.front();
  for (int y = 0; y < mesh.padded_ny(); ++y) {
    for (int x = 0; x < mesh.padded_nx(); ++x) {
      density(x, y) = background.density;
      energy0(x, y) = background.energy;
    }
  }

  for (std::size_t s = 1; s < settings.states.size(); ++s) {
    const StateRegion& region = settings.states[s];
    for (int y = 0; y < mesh.padded_ny(); ++y) {
      const double cy = mesh.cell_centre_y(y);
      if (cy < region.y_min || cy > region.y_max) continue;
      for (int x = 0; x < mesh.padded_nx(); ++x) {
        const double cx = mesh.cell_centre_x(x);
        if (cx < region.x_min || cx > region.x_max) continue;
        density(x, y) = region.density;
        energy0(x, y) = region.energy;
      }
    }
  }
}

}  // namespace tl::core
