#include "core/settings.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace tl::core {

Settings Settings::default_problem() {
  Settings s;
  // tea.in benchmark states: dense cold background, hot light region.
  s.states.push_back(StateRegion{.density = 100.0, .energy = 0.0001,
                                 .x_min = 0.0, .x_max = 10.0,
                                 .y_min = 0.0, .y_max = 10.0});
  s.states.push_back(StateRegion{.density = 0.1, .energy = 25.0,
                                 .x_min = 0.0, .x_max = 5.0,
                                 .y_min = 0.0, .y_max = 2.0});
  s.states.push_back(StateRegion{.density = 0.1, .energy = 0.1,
                                 .x_min = 3.0, .x_max = 7.0,
                                 .y_min = 5.0, .y_max = 8.0});
  return s;
}

Settings Settings::from_config(const tl::util::IniConfig& cfg) {
  Settings s = default_problem();
  s.nx = static_cast<int>(cfg.get_long_or("x_cells", s.nx));
  s.ny = static_cast<int>(cfg.get_long_or("y_cells", s.ny));
  s.x_min = cfg.get_double_or("xmin", s.x_min);
  s.x_max = cfg.get_double_or("xmax", s.x_max);
  s.y_min = cfg.get_double_or("ymin", s.y_min);
  s.y_max = cfg.get_double_or("ymax", s.y_max);
  s.dt_init = cfg.get_double_or("initial_timestep", s.dt_init);
  s.end_step = static_cast<int>(cfg.get_long_or("end_step", s.end_step));
  s.nranks = static_cast<int>(cfg.get_long_or("ranks", s.nranks));
  s.eps = cfg.get_double_or("tl_eps", s.eps);
  s.max_iters = static_cast<int>(cfg.get_long_or("tl_max_iters", s.max_iters));
  s.ppcg_inner_steps =
      static_cast<int>(cfg.get_long_or("tl_ppcg_inner_steps", s.ppcg_inner_steps));
  s.cg_prep_iters =
      static_cast<int>(cfg.get_long_or("tl_chebyshev_prep_iters", s.cg_prep_iters));
  s.use_fused = cfg.get_bool_or("tl_use_fused", s.use_fused);
  s.overlap_comm = cfg.get_bool_or("tl_overlap_comm", s.overlap_comm);
  s.elastic = cfg.get_bool_or("tl_elastic", s.elastic);
  s.use_pipelined = cfg.get_bool_or("tl_pipelined_cg", s.use_pipelined);
  s.force_isa = cfg.get_or("tl_force_isa", s.force_isa);

  if (cfg.get_bool_or("tl_use_jacobi", false)) s.solver = SolverKind::kJacobi;
  if (cfg.get_bool_or("tl_use_cg", false)) s.solver = SolverKind::kCg;
  if (cfg.get_bool_or("tl_use_chebyshev", false)) s.solver = SolverKind::kCheby;
  if (cfg.get_bool_or("tl_use_ppcg", false)) s.solver = SolverKind::kPpcg;

  const std::string coef = tl::util::to_lower(
      cfg.get_or("tl_coefficient", "conductivity"));
  if (coef == "conductivity") {
    s.coefficient = Coefficient::kConductivity;
  } else if (coef == "recip_conductivity") {
    s.coefficient = Coefficient::kRecipConductivity;
  } else {
    throw std::invalid_argument("Settings: unknown tl_coefficient " + coef);
  }

  if (!cfg.states().empty()) {
    s.states.clear();
    for (const auto& line : cfg.states()) {
      StateRegion region;
      auto get = [&](const char* key, double fallback) {
        const auto it = line.fields.find(key);
        return it == line.fields.end() ? fallback : it->second;
      };
      region.density = get("density", 1.0);
      region.energy = get("energy", 1.0);
      region.x_min = get("xmin", s.x_min);
      region.x_max = get("xmax", s.x_max);
      region.y_min = get("ymin", s.y_min);
      region.y_max = get("ymax", s.y_max);
      s.states.push_back(region);
    }
  }

  s.validate();
  return s;
}

void Settings::validate() const {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("Settings: bad mesh");
  if (halo_depth < 1) throw std::invalid_argument("Settings: halo_depth < 1");
  if (x_max <= x_min || y_max <= y_min) {
    throw std::invalid_argument("Settings: bad physical extents");
  }
  if (dt_init <= 0.0) throw std::invalid_argument("Settings: bad timestep");
  if (end_step < 1) throw std::invalid_argument("Settings: end_step < 1");
  if (nranks < 1) throw std::invalid_argument("Settings: nranks < 1");
  if (elastic && nranks > ny) {
    throw std::invalid_argument(
        "Settings: elastic row-strip decomposition needs nranks <= ny");
  }
  if (eps <= 0.0) throw std::invalid_argument("Settings: eps must be > 0");
  if (max_iters < 1) throw std::invalid_argument("Settings: max_iters < 1");
  if (ppcg_inner_steps < 1) {
    throw std::invalid_argument("Settings: ppcg_inner_steps < 1");
  }
  if (cg_prep_iters < 2) {
    throw std::invalid_argument("Settings: need >= 2 CG prep iterations");
  }
  if (use_pipelined && solver != SolverKind::kCg) {
    throw std::invalid_argument(
        "Settings: tl_pipelined_cg applies to the CG solver only");
  }
  if (!force_isa.empty() && force_isa != "scalar" && force_isa != "sse2" &&
      force_isa != "avx2" && force_isa != "avx512") {
    throw std::invalid_argument(
        "Settings: tl_force_isa must be scalar|sse2|avx2|avx512");
  }
  if (states.empty()) throw std::invalid_argument("Settings: no states");
}

}  // namespace tl::core
