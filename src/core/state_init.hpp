#pragma once
// Initial-state painting: applies the deck's rectangular state regions to
// the density and energy0 fields of a chunk (TeaLeaf's generate_chunk).

#include "core/fields.hpp"
#include "core/settings.hpp"

namespace tl::core {

/// Paints states in deck order: the first state covers everything (the
/// background), later states overwrite cells whose centres fall inside their
/// rectangle. Fills the halo too (reflective values are identical for a
/// region touching a boundary; the solver re-reflects before use anyway).
void apply_initial_states(Chunk& chunk, const Settings& settings);

}  // namespace tl::core
