// AVX-512F row kernel table (see fused_rows_avx2.cpp for the linkage and
// dispatch rules — the same anonymous-namespace discipline applies; this is
// the only TU compiled with -mavx512f -mno-fma -ffp-contract=off).
//
// Bit-identity scheme: each 512-bit step covers two 4-element groups. Dot
// products compute one 8-wide product vector, then fold it into the same
// four positional chains the scalar path keeps — one 256-bit add for the low
// group (elements i..i+3) followed by one for the high group (i+4..i+7).
// That is exactly the scalar unrolled loop's two per-chain adds for those
// eight elements, in the same order, so every chain sees the same addend
// sequence. Elementwise recurrences are 8-wide with positional scalar tails
// (residues 0-7).

#include "isa.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace tl::core::isa {
namespace {

using fused::RowDots;

double combine4(const double* c) { return (c[0] + c[2]) + (c[1] + c[3]); }

double stencil_at_s(const double* __restrict v, const double* __restrict kx,
                    const double* __restrict ky, std::size_t i,
                    std::size_t width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}

double stencil_at_fused_s(const double* __restrict v,
                          const double* __restrict kx,
                          const double* __restrict ky, std::size_t i,
                          std::size_t width) {
  const double kxl = kx[i], kxr = kx[i + 1];
  const double kyb = ky[i], kyt = ky[i + width];
  return (1.0 + kxl + kxr + kyb + kyt) * v[i] - kxr * v[i + 1] -
         kxl * v[i - 1] - kyt * v[i + width] - kyb * v[i - width];
}

/// Folds an 8-wide product into the 4-chain accumulator: low group first,
/// then high — the scalar loop's two sequential per-chain adds.
__m256d fold_groups(__m256d acc, __m512d prod) {
  acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(prod));
  return _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
}

/// 5-point stencil for eight consecutive elements, apply_stencil
/// association per lane.
__m512d stencil8(const double* __restrict v, const double* __restrict kx,
                 const double* __restrict ky, std::size_t i,
                 std::size_t width) {
  const __m512d kxr = _mm512_loadu_pd(kx + i + 1);
  const __m512d kxl = _mm512_loadu_pd(kx + i);
  const __m512d kyt = _mm512_loadu_pd(ky + i + width);
  const __m512d kyb = _mm512_loadu_pd(ky + i);
  const __m512d diag = _mm512_add_pd(
      _mm512_add_pd(
          _mm512_add_pd(_mm512_add_pd(_mm512_set1_pd(1.0), kxr), kxl), kyt),
      kyb);
  __m512d ap = _mm512_mul_pd(diag, _mm512_loadu_pd(v + i));
  ap = _mm512_sub_pd(ap, _mm512_mul_pd(kxr, _mm512_loadu_pd(v + i + 1)));
  ap = _mm512_sub_pd(ap, _mm512_mul_pd(kxl, _mm512_loadu_pd(v + i - 1)));
  ap = _mm512_sub_pd(ap, _mm512_mul_pd(kyt, _mm512_loadu_pd(v + i + width)));
  ap = _mm512_sub_pd(ap, _mm512_mul_pd(kyb, _mm512_loadu_pd(v + i - width)));
  return ap;
}

/// Same, with the fused iterates' association.
__m512d stencil8_fused(const double* __restrict v, const double* __restrict kx,
                       const double* __restrict ky, std::size_t i,
                       std::size_t width) {
  const __m512d kxl = _mm512_loadu_pd(kx + i);
  const __m512d kxr = _mm512_loadu_pd(kx + i + 1);
  const __m512d kyb = _mm512_loadu_pd(ky + i);
  const __m512d kyt = _mm512_loadu_pd(ky + i + width);
  const __m512d diag = _mm512_add_pd(
      _mm512_add_pd(
          _mm512_add_pd(_mm512_add_pd(_mm512_set1_pd(1.0), kxl), kxr), kyb),
      kyt);
  __m512d av = _mm512_mul_pd(diag, _mm512_loadu_pd(v + i));
  av = _mm512_sub_pd(av, _mm512_mul_pd(kxr, _mm512_loadu_pd(v + i + 1)));
  av = _mm512_sub_pd(av, _mm512_mul_pd(kxl, _mm512_loadu_pd(v + i - 1)));
  av = _mm512_sub_pd(av, _mm512_mul_pd(kyt, _mm512_loadu_pd(v + i + width)));
  av = _mm512_sub_pd(av, _mm512_mul_pd(kyb, _mm512_loadu_pd(v + i - width)));
  return av;
}

RowDots w_row(const double* __restrict p, const double* __restrict kx,
              const double* __restrict ky, double* __restrict w,
              std::size_t b, std::size_t e, std::size_t width) {
  double cpw[4], cww[4];
  __m256d pw = _mm256_setzero_pd(), ww = _mm256_setzero_pd();
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d ap = stencil8(p, kx, ky, i, width);
    _mm512_storeu_pd(w + i, ap);
    pw = fold_groups(pw, _mm512_mul_pd(ap, _mm512_loadu_pd(p + i)));
    ww = fold_groups(ww, _mm512_mul_pd(ap, ap));
  }
  _mm256_storeu_pd(cpw, pw);
  _mm256_storeu_pd(cww, ww);
  for (; i < e; ++i) {
    const double ap = stencil_at_s(p, kx, ky, i, width);
    w[i] = ap;
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine4(cpw), combine4(cww)};
}

RowDots w_row_dots(const double* __restrict p, const double* __restrict w,
                   std::size_t b, std::size_t e) {
  double cpw[4], cww[4];
  __m256d pw = _mm256_setzero_pd(), ww = _mm256_setzero_pd();
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d ap = _mm512_loadu_pd(w + i);
    pw = fold_groups(pw, _mm512_mul_pd(ap, _mm512_loadu_pd(p + i)));
    ww = fold_groups(ww, _mm512_mul_pd(ap, ap));
  }
  _mm256_storeu_pd(cpw, pw);
  _mm256_storeu_pd(cww, ww);
  for (; i < e; ++i) {
    const double ap = w[i];
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine4(cpw), combine4(cww)};
}

double urp_row(double* __restrict u, double* __restrict r,
               double* __restrict p, const double* __restrict w,
               std::size_t b, std::size_t e, double a, double bp) {
  double crr[4];
  const __m512d av = _mm512_set1_pd(a);
  const __m512d bpv = _mm512_set1_pd(bp);
  __m256d rr = _mm256_setzero_pd();
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d pv = _mm512_loadu_pd(p + i);
    _mm512_storeu_pd(
        u + i, _mm512_add_pd(_mm512_loadu_pd(u + i), _mm512_mul_pd(av, pv)));
    const __m512d res = _mm512_sub_pd(
        _mm512_loadu_pd(r + i), _mm512_mul_pd(av, _mm512_loadu_pd(w + i)));
    _mm512_storeu_pd(r + i, res);
    _mm512_storeu_pd(p + i, _mm512_add_pd(res, _mm512_mul_pd(bpv, pv)));
    rr = fold_groups(rr, _mm512_mul_pd(res, res));
  }
  _mm256_storeu_pd(crr, rr);
  for (; i < e; ++i) {
    u[i] += a * p[i];
    const double res = r[i] - a * w[i];
    r[i] = res;
    p[i] = res + bp * p[i];
    crr[(i - b) & 3] += res * res;
  }
  return combine4(crr);
}

double residual_row(const double* __restrict u, const double* __restrict u0,
                    const double* __restrict kx, const double* __restrict ky,
                    double* __restrict r, std::size_t b, std::size_t e,
                    std::size_t width) {
  double crr[4];
  __m256d rr = _mm256_setzero_pd();
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d res =
        _mm512_sub_pd(_mm512_loadu_pd(u0 + i), stencil8(u, kx, ky, i, width));
    _mm512_storeu_pd(r + i, res);
    rr = fold_groups(rr, _mm512_mul_pd(res, res));
  }
  _mm256_storeu_pd(crr, rr);
  for (; i < e; ++i) {
    const double res = u0[i] - stencil_at_s(u, kx, ky, i, width);
    r[i] = res;
    crr[(i - b) & 3] += res * res;
  }
  return combine4(crr);
}

void cheby_row(const double* __restrict u, const double* __restrict u0,
               const double* __restrict kx, const double* __restrict ky,
               double* __restrict r, double* __restrict p,
               double* __restrict un, std::size_t b, std::size_t e,
               std::size_t width, double a, double bt) {
  const __m512d av = _mm512_set1_pd(a);
  const __m512d btv = _mm512_set1_pd(bt);
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d res = _mm512_sub_pd(_mm512_loadu_pd(u0 + i),
                                      stencil8_fused(u, kx, ky, i, width));
    _mm512_storeu_pd(r + i, res);
    const __m512d pn = _mm512_add_pd(
        _mm512_mul_pd(av, _mm512_loadu_pd(p + i)), _mm512_mul_pd(btv, res));
    _mm512_storeu_pd(p + i, pn);
    _mm512_storeu_pd(un + i, _mm512_add_pd(_mm512_loadu_pd(u + i), pn));
  }
  for (; i < e; ++i) {
    const double res = u0[i] - stencil_at_fused_s(u, kx, ky, i, width);
    r[i] = res;
    const double pn = a * p[i] + bt * res;
    p[i] = pn;
    un[i] = u[i] + pn;
  }
}

void ppcg_row(const double* __restrict sd, const double* __restrict kx,
              const double* __restrict ky, double* __restrict u,
              double* __restrict r, double* __restrict sn, std::size_t b,
              std::size_t e, std::size_t width, double a, double bt) {
  const __m512d av = _mm512_set1_pd(a);
  const __m512d btv = _mm512_set1_pd(bt);
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d sdv = _mm512_loadu_pd(sd + i);
    const __m512d rn = _mm512_sub_pd(_mm512_loadu_pd(r + i),
                                     stencil8_fused(sd, kx, ky, i, width));
    _mm512_storeu_pd(r + i, rn);
    _mm512_storeu_pd(u + i, _mm512_add_pd(_mm512_loadu_pd(u + i), sdv));
    _mm512_storeu_pd(
        sn + i, _mm512_add_pd(_mm512_mul_pd(av, sdv), _mm512_mul_pd(btv, rn)));
  }
  for (; i < e; ++i) {
    const double rn = r[i] - stencil_at_fused_s(sd, kx, ky, i, width);
    r[i] = rn;
    u[i] += sd[i];
    sn[i] = a * sd[i] + bt * rn;
  }
}

void jacobi_row(const double* __restrict u0, const double* __restrict w,
                const double* __restrict kx, const double* __restrict ky,
                double* __restrict u, std::size_t b, std::size_t e,
                std::size_t width) {
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d kxl = _mm512_loadu_pd(kx + i);
    const __m512d kxr = _mm512_loadu_pd(kx + i + 1);
    const __m512d kyb = _mm512_loadu_pd(ky + i);
    const __m512d kyt = _mm512_loadu_pd(ky + i + width);
    const __m512d diag = _mm512_add_pd(
        _mm512_add_pd(
            _mm512_add_pd(_mm512_add_pd(_mm512_set1_pd(1.0), kxl), kxr), kyb),
        kyt);
    __m512d num = _mm512_add_pd(
        _mm512_loadu_pd(u0 + i),
        _mm512_mul_pd(kxr, _mm512_loadu_pd(w + i + 1)));
    num = _mm512_add_pd(num, _mm512_mul_pd(kxl, _mm512_loadu_pd(w + i - 1)));
    num = _mm512_add_pd(num,
                        _mm512_mul_pd(kyt, _mm512_loadu_pd(w + i + width)));
    num = _mm512_add_pd(num,
                        _mm512_mul_pd(kyb, _mm512_loadu_pd(w + i - width)));
    _mm512_storeu_pd(u + i, _mm512_div_pd(num, diag));
  }
  for (; i < e; ++i) {
    const double kxl = kx[i], kxr = kx[i + 1];
    const double kyb = ky[i], kyt = ky[i + width];
    const double diag = 1.0 + kxl + kxr + kyb + kyt;
    u[i] = (u0[i] + kxr * w[i + 1] + kxl * w[i - 1] + kyt * w[i + width] +
            kyb * w[i - width]) /
           diag;
  }
}

void stencil_row(const double* __restrict v, const double* __restrict kx,
                 const double* __restrict ky, double* __restrict q,
                 std::size_t b, std::size_t e, std::size_t width) {
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    _mm512_storeu_pd(q + i, stencil8(v, kx, ky, i, width));
  }
  for (; i < e; ++i) {
    q[i] = stencil_at_s(v, kx, ky, i, width);
  }
}

RowDots pipe_init_row(const double* __restrict r, const double* __restrict kx,
                      const double* __restrict ky, double* __restrict w,
                      std::size_t b, std::size_t e, std::size_t width) {
  double crr[4], crw[4];
  __m256d rr = _mm256_setzero_pd(), rw = _mm256_setzero_pd();
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d ar = stencil8(r, kx, ky, i, width);
    _mm512_storeu_pd(w + i, ar);
    const __m512d rv = _mm512_loadu_pd(r + i);
    rr = fold_groups(rr, _mm512_mul_pd(rv, rv));
    rw = fold_groups(rw, _mm512_mul_pd(ar, rv));
  }
  _mm256_storeu_pd(crr, rr);
  _mm256_storeu_pd(crw, rw);
  for (; i < e; ++i) {
    const double ar = stencil_at_s(r, kx, ky, i, width);
    w[i] = ar;
    crr[(i - b) & 3] += r[i] * r[i];
    crw[(i - b) & 3] += ar * r[i];
  }
  return RowDots{combine4(crr), combine4(crw)};
}

RowDots pipe_update_row(double* __restrict z, double* __restrict s,
                        double* __restrict p, double* __restrict u,
                        double* __restrict r, double* __restrict w,
                        const double* __restrict q, std::size_t b,
                        std::size_t e, double a, double bt) {
  double crr[4], crw[4];
  const __m512d av = _mm512_set1_pd(a);
  const __m512d btv = _mm512_set1_pd(bt);
  __m256d rr = _mm256_setzero_pd(), rw = _mm256_setzero_pd();
  std::size_t i = b;
  for (; i + 8 <= e; i += 8) {
    const __m512d rv = _mm512_loadu_pd(r + i);
    const __m512d wv = _mm512_loadu_pd(w + i);
    const __m512d zn = _mm512_add_pd(
        _mm512_loadu_pd(q + i), _mm512_mul_pd(btv, _mm512_loadu_pd(z + i)));
    _mm512_storeu_pd(z + i, zn);
    const __m512d sn =
        _mm512_add_pd(wv, _mm512_mul_pd(btv, _mm512_loadu_pd(s + i)));
    _mm512_storeu_pd(s + i, sn);
    const __m512d pn =
        _mm512_add_pd(rv, _mm512_mul_pd(btv, _mm512_loadu_pd(p + i)));
    _mm512_storeu_pd(p + i, pn);
    _mm512_storeu_pd(
        u + i, _mm512_add_pd(_mm512_loadu_pd(u + i), _mm512_mul_pd(av, pn)));
    const __m512d rn = _mm512_sub_pd(rv, _mm512_mul_pd(av, sn));
    _mm512_storeu_pd(r + i, rn);
    const __m512d wn = _mm512_sub_pd(wv, _mm512_mul_pd(av, zn));
    _mm512_storeu_pd(w + i, wn);
    rr = fold_groups(rr, _mm512_mul_pd(rn, rn));
    rw = fold_groups(rw, _mm512_mul_pd(wn, rn));
  }
  _mm256_storeu_pd(crr, rr);
  _mm256_storeu_pd(crw, rw);
  for (; i < e; ++i) {
    const double zn = q[i] + bt * z[i];
    z[i] = zn;
    const double sn = w[i] + bt * s[i];
    s[i] = sn;
    const double pn = r[i] + bt * p[i];
    p[i] = pn;
    u[i] += a * pn;
    const double rn = r[i] - a * sn;
    r[i] = rn;
    const double wn = w[i] - a * zn;
    w[i] = wn;
    crr[(i - b) & 3] += rn * rn;
    crw[(i - b) & 3] += wn * rn;
  }
  return RowDots{combine4(crr), combine4(crw)};
}

const RowKernelTable kAvx512Table = {
    &w_row,    &w_row_dots, &urp_row,     &residual_row,  &cheby_row,
    &ppcg_row, &jacobi_row, &stencil_row, &pipe_init_row, &pipe_update_row,
};

}  // namespace

const RowKernelTable* avx512_row_table() { return &kAvx512Table; }

}  // namespace tl::core::isa

#else  // !__AVX512F__

namespace tl::core::isa {
const RowKernelTable* avx512_row_table() { return nullptr; }
}  // namespace tl::core::isa

#endif
