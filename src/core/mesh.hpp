#pragma once
// Mesh geometry for the 2-D cell-centred TeaLeaf grid.
//
// Fields are allocated (nx + 2h) x (ny + 2h) with halo depth h (default 2,
// which lets the PPCG inner smoothing steps run on shallower exchanges).
// Interior cells occupy x,y in [h, h+n). The physical domain spans
// [x_min, x_max] x [y_min, y_max] split into uniform cells.

#include <cstddef>
#include <stdexcept>

namespace tl::core {

struct Mesh {
  int nx = 0;
  int ny = 0;
  int halo_depth = 2;
  double x_min = 0.0;
  double x_max = 10.0;
  double y_min = 0.0;
  double y_max = 10.0;

  Mesh() = default;
  Mesh(int nx_, int ny_, int halo_depth_ = 2) : nx(nx_), ny(ny_), halo_depth(halo_depth_) {
    if (nx <= 0 || ny <= 0 || halo_depth < 1) {
      throw std::invalid_argument("Mesh: bad geometry");
    }
  }

  int padded_nx() const noexcept { return nx + 2 * halo_depth; }
  int padded_ny() const noexcept { return ny + 2 * halo_depth; }
  std::size_t padded_cells() const noexcept {
    return static_cast<std::size_t>(padded_nx()) *
           static_cast<std::size_t>(padded_ny());
  }
  std::size_t interior_cells() const noexcept {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }

  double dx() const noexcept { return (x_max - x_min) / nx; }
  double dy() const noexcept { return (y_max - y_min) / ny; }
  double cell_area() const noexcept { return dx() * dy(); }

  /// Physical x-centre of interior cell column `x` (padded coordinates).
  double cell_centre_x(int x) const noexcept {
    return x_min + (x - halo_depth + 0.5) * dx();
  }
  double cell_centre_y(int y) const noexcept {
    return y_min + (y - halo_depth + 0.5) * dy();
  }

  bool is_interior(int x, int y) const noexcept {
    return x >= halo_depth && x < halo_depth + nx && y >= halo_depth &&
           y < halo_depth + ny;
  }
};

}  // namespace tl::core
