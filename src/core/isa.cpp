#include "isa.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace tl::core::isa {

namespace {

const RowKernelTable kScalarTable = {
    &fused::fused_w_row_scalar,
    &fused::fused_w_row_dots,
    &fused::fused_urp_row_scalar,
    &fused::fused_residual_row_scalar,
    &fused::cheby_row_scalar,
    &fused::ppcg_row_scalar,
    &fused::jacobi_row_scalar,
    &fused::stencil_row_scalar,
    &fused::pipe_init_row_scalar,
    &fused::pipe_update_row_scalar,
};

#if TL_FUSED_SIMD
const RowKernelTable kSse2Table = {
    &fused::fused_w_row_simd,
    &fused::fused_w_row_dots_sse2,
    &fused::fused_urp_row_simd,
    &fused::fused_residual_row_simd,
    &fused::cheby_row_sse2,
    &fused::ppcg_row_sse2,
    &fused::jacobi_row_sse2,
    &fused::stencil_row_sse2,
    &fused::pipe_init_row_sse2,
    &fused::pipe_update_row_sse2,
};
#endif

bool cpu_has(Isa isa) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (isa) {
    case Isa::kScalar:
    case Isa::kSse2:
      return true;  // SSE2 is part of the x86-64 baseline
    case Isa::kAvx2:
#if defined(__GNUC__) || defined(__clang__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__GNUC__) || defined(__clang__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

std::mutex g_mutex;
std::optional<Isa> g_forced;                 // guarded by g_mutex
std::atomic<int> g_active{-1};               // -1 = unresolved

Isa resolve_locked() {
  std::optional<Isa> want = g_forced;
  if (!want) {
    if (const char* env = std::getenv("TL_FORCE_ISA")) {
      want = parse_isa(env);  // unparseable -> fall through to detection
    }
  }
  if (want) {
    // Graceful degradation: a forced ISA this build/CPU cannot execute runs
    // the portable scalar path rather than faulting.
    return isa_available(*want) ? *want : Isa::kScalar;
  }
  return detect_best();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<Isa> parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "sse2") return Isa::kSse2;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  return std::nullopt;
}

std::size_t isa_lanes(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return 1;
    case Isa::kSse2:
      return 2;
    case Isa::kAvx2:
      return 4;
    case Isa::kAvx512:
      return 8;
  }
  return 1;
}

std::size_t isa_row_group(Isa isa) {
  return isa == Isa::kAvx512 ? 8 : 4;
}

bool isa_available(Isa isa) { return row_table(isa) != nullptr; }

Isa detect_best() {
  if (isa_available(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_available(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_available(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

void force_isa(std::optional<Isa> isa) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_forced = isa;
  g_active.store(-1, std::memory_order_release);
}

Isa active_isa() {
  int cached = g_active.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Isa>(cached);
  std::lock_guard<std::mutex> lock(g_mutex);
  cached = g_active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Isa>(cached);
  const Isa resolved = resolve_locked();
  g_active.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

const RowKernelTable* row_table(Isa isa) {
  if (!cpu_has(isa)) return nullptr;  // a table the CPU can't execute is
  switch (isa) {                      // as unavailable as an unbuilt one
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kSse2:
#if TL_FUSED_SIMD
      return &kSse2Table;
#else
      return nullptr;
#endif
    case Isa::kAvx2:
      return avx2_row_table();
    case Isa::kAvx512:
      return avx512_row_table();
  }
  return nullptr;
}

const RowKernelTable* active_row_table() {
  const RowKernelTable* t = row_table(active_isa());
  return t != nullptr ? t : &kScalarTable;
}

}  // namespace tl::core::isa
