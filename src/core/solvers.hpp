#pragma once
// Solver drivers: the algorithmic logic of CG, Chebyshev, and PPCG, written
// once against the SolverKernels interface so every port runs *identical*
// solver logic and parameters (the paper's comparison methodology).
//
// Preconditions for each solve_*: the port's u/u0/kx/ky are initialised and
// u's halo is current (Driver::run_step arranges this).

#include <vector>

#include "core/eigen.hpp"
#include "core/kernels_api.hpp"
#include "core/settings.hpp"

namespace tl::core {

struct SolveOptions {
  double eps = 1e-15;     // convergence: rr (squared 2-norm of r) < eps
  int max_iters = 10'000;
  int cg_prep_iters = 20;   // CG bootstrap length for eigen-estimation
  int ppcg_inner_steps = 10;
  int check_interval = 20;  // Chebyshev residual-check cadence
  double eigen_safety = 0.10;
  /// Dispatch the fused kernel paths for ports that advertise them via
  /// SolverKernels::caps(). Off forces the classic kernel sequence even on
  /// capable ports (the fused-vs-unfused bench and tests use this).
  bool use_fused = true;
  /// Pipelined (Ghysels–Vanroose) CG: one fused {r.r, w.r} allreduce per
  /// iteration, begun before the overlappable matvec q = A w. Takes effect
  /// only for SolverKind::kCg on ports advertising kCapPipelined; other
  /// solvers and incapable ports run their usual paths.
  bool use_pipelined = false;

  static SolveOptions from_settings(const Settings& s) {
    return SolveOptions{s.eps,
                        s.max_iters,
                        s.cg_prep_iters,
                        s.ppcg_inner_steps,
                        s.check_interval,
                        s.eigen_safety,
                        s.use_fused,
                        s.use_pipelined};
  }
};

struct SolveStats {
  SolverKind solver = SolverKind::kCg;
  bool converged = false;
  int iterations = 0;        // outer iterations (CG prep included)
  int inner_iterations = 0;  // PPCG smoothing steps
  double initial_rr = 0.0;
  double final_rr = 0.0;
  /// Every squared residual norm the solver observed, in control-flow order:
  /// initial_rr first, then one entry per outer iteration (CG's rrn) or per
  /// norm check (Chebyshev/PPCG/Jacobi). Two kernel implementations running
  /// the identical algorithm must produce element-wise matching histories —
  /// the conformance checker (src/verify) asserts exactly that.
  std::vector<double> rr_history;
  /// True when convergence fired on the cg_calc_ur return value (PPCG can
  /// alternatively converge on the post-smoothing norm check). The analytic
  /// replay needs this to reproduce the control flow exactly.
  bool converged_on_ur = false;
  /// Dispatch accounting for telemetry: iterations (outer, plus PPCG inner
  /// smoothing steps) that ran a caps()-advertised fused kernel path vs. the
  /// classic kernel sequence. Purely observational — the conformance checker
  /// compares rr_history/control flow, never these.
  int fused_iterations = 0;
  int classic_iterations = 0;
  EigenEstimate spectrum;    // Chebyshev/PPCG only
};

SolveStats solve_cg(SolverKernels& k, const SolveOptions& opt);
SolveStats solve_cheby(SolverKernels& k, const SolveOptions& opt);
SolveStats solve_ppcg(SolverKernels& k, const SolveOptions& opt);
SolveStats solve_jacobi(SolverKernels& k, const SolveOptions& opt);

/// Dispatch by kind.
SolveStats solve(SolverKind kind, SolverKernels& k, const SolveOptions& opt);

}  // namespace tl::core
