#include "core/reference_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "comm/halo.hpp"
#include "core/fused_rows.hpp"
#include "core/isa.hpp"

namespace tl::core {

namespace ref {

void init_u(const Mesh& m, CSpan density, CSpan energy0, Span u, Span u0) {
  // Full padded extent: the halo gets consistent values straight away
  // (TeaLeaf initialises u over the whole chunk then exchanges).
  for (int y = 0; y < m.padded_ny(); ++y) {
    for (int x = 0; x < m.padded_nx(); ++x) {
      const double v = energy0(x, y) * density(x, y);
      u(x, y) = v;
      u0(x, y) = v;
    }
  }
}

void init_coefficients(const Mesh& m, Coefficient coefficient, double rx,
                       double ry, CSpan density, Span kx, Span ky) {
  const int h = m.halo_depth;
  // Face conductivity from the two adjacent cell densities (TeaLeaf's
  // (wL + wC) / (2 wL wC) harmonic form), pre-scaled by rx/ry. Computed one
  // layer beyond the interior so A u is valid on every interior cell.
  auto w_of = [&](int x, int y) {
    return coefficient == Coefficient::kConductivity ? density(x, y)
                                                     : 1.0 / density(x, y);
  };
  for (int y = h - 1; y < h + m.ny + 1; ++y) {
    for (int x = h - 1; x < h + m.nx + 1; ++x) {
      const double wc = w_of(x, y);
      const double wl = w_of(x - 1, y);
      const double wb = w_of(x, y - 1);
      kx(x, y) = rx * (wl + wc) / (2.0 * wl * wc);
      ky(x, y) = ry * (wb + wc) / (2.0 * wb * wc);
    }
  }
}

double apply_stencil(CSpan v, CSpan kx, CSpan ky, int x, int y) {
  const double diag =
      1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
  return diag * v(x, y) - kx(x + 1, y) * v(x + 1, y) - kx(x, y) * v(x - 1, y) -
         ky(x, y + 1) * v(x, y + 1) - ky(x, y) * v(x, y - 1);
}

void calc_residual(const Mesh& m, CSpan u, CSpan u0, CSpan kx, CSpan ky,
                   Span r) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      r(x, y) = u0(x, y) - apply_stencil(u, kx, ky, x, y);
    }
  }
}

double calc_2norm(const Mesh& m, CSpan v) {
  const int h = m.halo_depth;
  double norm = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) norm += v(x, y) * v(x, y);
  }
  return norm;
}

void finalise(const Mesh& m, CSpan u, CSpan density, Span energy) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) energy(x, y) = u(x, y) / density(x, y);
  }
}

FieldSummary field_summary(const Mesh& m, CSpan density, CSpan energy0,
                           CSpan u) {
  const int h = m.halo_depth;
  const double cell_vol = m.cell_area();
  FieldSummary s;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      s.volume += cell_vol;
      s.mass += density(x, y) * cell_vol;
      s.internal_energy += density(x, y) * energy0(x, y) * cell_vol;
      s.temperature += u(x, y) * cell_vol;
    }
  }
  return s;
}

double cg_init(const Mesh& m, CSpan u, CSpan u0, CSpan kx, CSpan ky, Span w,
               Span r, Span p) {
  const int h = m.halo_depth;
  double rro = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double au = apply_stencil(u, kx, ky, x, y);
      w(x, y) = au;
      const double res = u0(x, y) - au;
      r(x, y) = res;
      p(x, y) = res;
      rro += res * res;
    }
  }
  return rro;
}

double cg_calc_w(const Mesh& m, CSpan p, CSpan kx, CSpan ky, Span w) {
  const int h = m.halo_depth;
  double pw = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double ap = apply_stencil(p, kx, ky, x, y);
      w(x, y) = ap;
      pw += ap * p(x, y);
    }
  }
  return pw;
}

double cg_calc_ur(const Mesh& m, double alpha, CSpan p, CSpan w, Span u,
                  Span r) {
  const int h = m.halo_depth;
  double rrn = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      u(x, y) += alpha * p(x, y);
      const double res = r(x, y) - alpha * w(x, y);
      r(x, y) = res;
      rrn += res * res;
    }
  }
  return rrn;
}

void cg_calc_p(const Mesh& m, double beta, CSpan r, Span p) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      p(x, y) = r(x, y) + beta * p(x, y);
    }
  }
}

void cheby_init(const Mesh& m, double theta, CSpan r, Span p, Span u) {
  const int h = m.halo_depth;
  const double theta_inv = 1.0 / theta;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      p(x, y) = r(x, y) * theta_inv;
      u(x, y) += p(x, y);
    }
  }
}

void cheby_iterate(const Mesh& m, double alpha, double beta, CSpan u0,
                   CSpan kx, CSpan ky, Span u, Span r, Span p) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double res = u0(x, y) - apply_stencil(u, kx, ky, x, y);
      r(x, y) = res;
      p(x, y) = alpha * p(x, y) + beta * res;
    }
  }
  // u update is a second sweep: the stencil above must see the pre-update u.
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) u(x, y) += p(x, y);
  }
}

void ppcg_init_sd(const Mesh& m, double theta, CSpan r, Span sd) {
  const int h = m.halo_depth;
  const double theta_inv = 1.0 / theta;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) sd(x, y) = r(x, y) * theta_inv;
  }
}

void ppcg_inner(const Mesh& m, double alpha, double beta, CSpan kx, CSpan ky,
                Span u, Span r, Span sd) {
  const int h = m.halo_depth;
  // r -= A sd and u += sd first (stencil must see the pre-update sd), then
  // the sd recurrence from the fresh residual.
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      r(x, y) -= apply_stencil(sd, kx, ky, x, y);
      u(x, y) += sd(x, y);
    }
  }
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
    }
  }
}

void jacobi_copy_u(const Mesh& m, CSpan u, Span w) {
  // Full padded extent: the iterate's stencil reads w in the halo, and u's
  // halo is current here (updated after the previous iterate). The padded
  // allocation is one contiguous row-major block, so this is one memcpy.
  (void)m;
  std::memcpy(w.data(), u.data(), u.size() * sizeof(double));
}

void jacobi_iterate(const Mesh& m, CSpan u0, CSpan w, CSpan kx, CSpan ky,
                    Span u) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                 kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                 ky(x, y) * w(x, y - 1)) /
                diag;
    }
  }
}

}  // namespace ref

namespace {

/// In-place pairwise tree fold over `n` row partials.
double pairwise_sum(double* p, std::int64_t n) {
  for (std::int64_t width = 1; width < n; width *= 2) {
    for (std::int64_t i = 0; i + width < n; i += 2 * width) {
      p[i] += p[i + width];
    }
  }
  return n > 0 ? p[0] : 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReferenceKernels
// ---------------------------------------------------------------------------

ReferenceKernels::ReferenceKernels(const Mesh& mesh, unsigned pool_threads)
    : mesh_(mesh), chunk_(mesh), pool_(pool_threads) {}

void ReferenceKernels::upload_state(const Chunk& chunk) {
  const auto src_d = chunk.field(FieldId::kDensity);
  const auto src_e = chunk.field(FieldId::kEnergy0);
  std::memcpy(chunk_.field(FieldId::kDensity).data(), src_d.data(),
              src_d.size() * sizeof(double));
  std::memcpy(chunk_.field(FieldId::kEnergy0).data(), src_e.data(),
              src_e.size() * sizeof(double));
}

void ReferenceKernels::init_u() {
  ref::init_u(mesh_, chunk_.field(FieldId::kDensity),
              chunk_.field(FieldId::kEnergy0), chunk_.field(FieldId::kU),
              chunk_.field(FieldId::kU0));
}

void ReferenceKernels::init_coefficients(Coefficient coefficient, double rx,
                                         double ry) {
  ref::init_coefficients(mesh_, coefficient, rx, ry,
                         chunk_.field(FieldId::kDensity),
                         chunk_.field(FieldId::kKx), chunk_.field(FieldId::kKy));
}

void ReferenceKernels::halo_update(unsigned fields, int depth) {
  (void)depth;  // reflection always fills the full halo
  auto reflect = [&](FieldId f) {
    tl::comm::reflect_boundary(chunk_.field(f), mesh_.halo_depth,
                               tl::comm::kAllFaces);
  };
  if (fields & kMaskU) reflect(FieldId::kU);
  if (fields & kMaskP) reflect(FieldId::kP);
  if (fields & kMaskSd) reflect(FieldId::kSd);
  if (fields & kMaskR) reflect(FieldId::kR);
  if (fields & kMaskDensity) reflect(FieldId::kDensity);
  if (fields & kMaskEnergy0) reflect(FieldId::kEnergy0);
  if (fields & kMaskW) reflect(FieldId::kW);
}

void ReferenceKernels::calc_residual() {
  ref::calc_residual(mesh_, chunk_.field(FieldId::kU),
                     chunk_.field(FieldId::kU0), chunk_.field(FieldId::kKx),
                     chunk_.field(FieldId::kKy), chunk_.field(FieldId::kR));
}

double ReferenceKernels::calc_2norm(NormTarget target) {
  const auto v = chunk_.field(
      target == NormTarget::kResidual ? FieldId::kR : FieldId::kU0);
  if (!row_mode_) return ref::calc_2norm(mesh_, v);
  const int h = mesh_.halo_depth;
  row_partials_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  for (int y = h; y < h + mesh_.ny; ++y) {
    double s = 0.0;
    for (int x = h; x < h + mesh_.nx; ++x) s += v(x, y) * v(x, y);
    row_partials_[static_cast<std::size_t>(y - h)] = s;
  }
  return fold_rows(1);
}

void ReferenceKernels::finalise() {
  ref::finalise(mesh_, chunk_.field(FieldId::kU),
                chunk_.field(FieldId::kDensity),
                chunk_.field(FieldId::kEnergy));
}

FieldSummary ReferenceKernels::field_summary() {
  if (!row_mode_) {
    return ref::field_summary(mesh_, chunk_.field(FieldId::kDensity),
                              chunk_.field(FieldId::kEnergy0),
                              chunk_.field(FieldId::kU));
  }
  const auto density = chunk_.field(FieldId::kDensity);
  const auto energy0 = chunk_.field(FieldId::kEnergy0);
  const auto u = chunk_.field(FieldId::kU);
  const int h = mesh_.halo_depth;
  const int ny = mesh_.ny;
  const double cell_vol = mesh_.cell_area();
  row_partials_.assign(static_cast<std::size_t>(ny) * 4, 0.0);
  for (int y = h; y < h + ny; ++y) {
    double vol = 0.0, mass = 0.0, ie = 0.0, temp = 0.0;
    for (int x = h; x < h + mesh_.nx; ++x) {
      vol += cell_vol;
      mass += density(x, y) * cell_vol;
      ie += density(x, y) * energy0(x, y) * cell_vol;
      temp += u(x, y) * cell_vol;
    }
    const std::size_t slot = static_cast<std::size_t>(y - h);
    row_partials_[slot] = vol;
    row_partials_[static_cast<std::size_t>(ny) + slot] = mass;
    row_partials_[static_cast<std::size_t>(ny) * 2 + slot] = ie;
    row_partials_[static_cast<std::size_t>(ny) * 3 + slot] = temp;
  }
  FieldSummary s;
  s.volume = fold_rows(4, 0);
  s.mass = fold_rows(4, 1);
  s.internal_energy = fold_rows(4, 2);
  s.temperature = fold_rows(4, 3);
  return s;
}

double ReferenceKernels::cg_init() {
  if (!row_mode_) {
    return ref::cg_init(mesh_, chunk_.field(FieldId::kU),
                        chunk_.field(FieldId::kU0), chunk_.field(FieldId::kKx),
                        chunk_.field(FieldId::kKy), chunk_.field(FieldId::kW),
                        chunk_.field(FieldId::kR), chunk_.field(FieldId::kP));
  }
  const auto u = chunk_.field(FieldId::kU);
  const auto u0 = chunk_.field(FieldId::kU0);
  const auto kx = chunk_.field(FieldId::kKx);
  const auto ky = chunk_.field(FieldId::kKy);
  auto w = chunk_.field(FieldId::kW);
  auto r = chunk_.field(FieldId::kR);
  auto p = chunk_.field(FieldId::kP);
  const int h = mesh_.halo_depth;
  row_partials_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  for (int y = h; y < h + mesh_.ny; ++y) {
    double rro = 0.0;
    for (int x = h; x < h + mesh_.nx; ++x) {
      const double au = ref::apply_stencil(u, kx, ky, x, y);
      w(x, y) = au;
      const double res = u0(x, y) - au;
      r(x, y) = res;
      p(x, y) = res;
      rro += res * res;
    }
    row_partials_[static_cast<std::size_t>(y - h)] = rro;
  }
  return fold_rows(1);
}

double ReferenceKernels::cg_calc_w() {
  if (!row_mode_) {
    return ref::cg_calc_w(mesh_, chunk_.field(FieldId::kP),
                          chunk_.field(FieldId::kKx),
                          chunk_.field(FieldId::kKy),
                          chunk_.field(FieldId::kW));
  }
  const auto p = chunk_.field(FieldId::kP);
  const auto kx = chunk_.field(FieldId::kKx);
  const auto ky = chunk_.field(FieldId::kKy);
  auto w = chunk_.field(FieldId::kW);
  const int h = mesh_.halo_depth;
  row_partials_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  for (int y = h; y < h + mesh_.ny; ++y) {
    double pw = 0.0;
    for (int x = h; x < h + mesh_.nx; ++x) {
      const double ap = ref::apply_stencil(p, kx, ky, x, y);
      w(x, y) = ap;
      pw += ap * p(x, y);
    }
    row_partials_[static_cast<std::size_t>(y - h)] = pw;
  }
  return fold_rows(1);
}

double ReferenceKernels::cg_calc_ur(double alpha) {
  if (!row_mode_) {
    return ref::cg_calc_ur(mesh_, alpha, chunk_.field(FieldId::kP),
                           chunk_.field(FieldId::kW), chunk_.field(FieldId::kU),
                           chunk_.field(FieldId::kR));
  }
  const auto p = chunk_.field(FieldId::kP);
  const auto w = chunk_.field(FieldId::kW);
  auto u = chunk_.field(FieldId::kU);
  auto r = chunk_.field(FieldId::kR);
  const int h = mesh_.halo_depth;
  row_partials_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  for (int y = h; y < h + mesh_.ny; ++y) {
    double rrn = 0.0;
    for (int x = h; x < h + mesh_.nx; ++x) {
      u(x, y) += alpha * p(x, y);
      const double res = r(x, y) - alpha * w(x, y);
      r(x, y) = res;
      rrn += res * res;
    }
    row_partials_[static_cast<std::size_t>(y - h)] = rrn;
  }
  return fold_rows(1);
}

void ReferenceKernels::cg_calc_p(double beta) {
  ref::cg_calc_p(mesh_, beta, chunk_.field(FieldId::kR),
                 chunk_.field(FieldId::kP));
}

void ReferenceKernels::cheby_init(double theta) {
  ref::cheby_init(mesh_, theta, chunk_.field(FieldId::kR),
                  chunk_.field(FieldId::kP), chunk_.field(FieldId::kU));
}

void ReferenceKernels::cheby_iterate(double alpha, double beta) {
  ref::cheby_iterate(mesh_, alpha, beta, chunk_.field(FieldId::kU0),
                     chunk_.field(FieldId::kKx), chunk_.field(FieldId::kKy),
                     chunk_.field(FieldId::kU), chunk_.field(FieldId::kR),
                     chunk_.field(FieldId::kP));
}

void ReferenceKernels::ppcg_init_sd(double theta) {
  ref::ppcg_init_sd(mesh_, theta, chunk_.field(FieldId::kR),
                    chunk_.field(FieldId::kSd));
}

void ReferenceKernels::ppcg_inner(double alpha, double beta) {
  ref::ppcg_inner(mesh_, alpha, beta, chunk_.field(FieldId::kKx),
                  chunk_.field(FieldId::kKy), chunk_.field(FieldId::kU),
                  chunk_.field(FieldId::kR), chunk_.field(FieldId::kSd));
}

void ReferenceKernels::jacobi_copy_u() {
  ref::jacobi_copy_u(mesh_, chunk_.field(FieldId::kU), chunk_.field(FieldId::kW));
}

void ReferenceKernels::jacobi_iterate() {
  ref::jacobi_iterate(mesh_, chunk_.field(FieldId::kU0),
                      chunk_.field(FieldId::kW), chunk_.field(FieldId::kKx),
                      chunk_.field(FieldId::kKy), chunk_.field(FieldId::kU));
}

bool ReferenceKernels::set_row_reductions(bool on) {
  row_mode_ = on;
  if (!on) row_partials_.clear();
  return true;
}

std::span<const double> ReferenceKernels::row_partials() const {
  return row_mode_ ? std::span<const double>(row_partials_)
                   : std::span<const double>{};
}

double ReferenceKernels::fold_rows(int k, int block) {
  fold_scratch_ = row_partials_;
  const std::int64_t ny =
      static_cast<std::int64_t>(row_partials_.size()) / std::max(k, 1);
  return pairwise_sum(
      fold_scratch_.data() + static_cast<std::size_t>(block) *
                                 static_cast<std::size_t>(ny),
      ny);
}

void ReferenceKernels::read_u(tl::util::Span2D<double> out) {
  const auto u = chunk_.field(FieldId::kU);
  std::memcpy(out.data(), u.data(), u.size() * sizeof(double));
}

void ReferenceKernels::download_energy(Chunk& chunk) {
  const auto src = chunk_.field(FieldId::kEnergy);
  std::memcpy(chunk.field(FieldId::kEnergy).data(), src.data(),
              src.size() * sizeof(double));
}

// ---------------------------------------------------------------------------
// Fused kernels: the measured hot path.
//
// Traversal: the interior rows are split into tiles whose working set
// (nfields rows of the padded width) fits in half of an assumed 256 KiB L2;
// tiles are claimed from the HostPool with the tile height as the grain.
// The row sweeps themselves come from the runtime ISA dispatch table in
// core/isa.hpp (scalar / SSE2 / AVX2 / AVX-512, selected by CPUID or
// TL_FORCE_ISA); every table entry accumulates dots in four fixed chains
// c = (index in row) & 3 combined as (c0 + c2) + (c1 + c3), so all ISAs
// produce the same bits. Row sums land in per-row slots combined by a
// pairwise tree over the row index — the result depends only on the mesh,
// never on thread count, tile schedule, or dispatched ISA.
// ---------------------------------------------------------------------------

int ReferenceKernels::tile_rows(int nfields) const {
  constexpr std::size_t kL2Bytes = 256u * 1024u;
  const std::size_t row_bytes = static_cast<std::size_t>(mesh_.padded_nx()) *
                                static_cast<std::size_t>(nfields) *
                                sizeof(double);
  const std::size_t rows = (kL2Bytes / 2) / std::max<std::size_t>(row_bytes, 1);
  // Round the tile height to a whole number of unrolled accumulation groups
  // (2 rows per 8-element AVX-512 group on odd-width meshes never happens —
  // groups live within a row — but keeping tile heights a multiple of the
  // group-to-chain ratio keeps tile/steal boundaries identical across ISAs
  // of different widths, so the schedule is ISA-independent too).
  const std::size_t align = std::max<std::size_t>(
      isa::isa_row_group(isa::active_isa()) / 4, 1);
  const std::size_t aligned = ((rows + align - 1) / align) * align;
  return static_cast<int>(std::clamp<std::size_t>(aligned, align, 64));
}

CgFusedW ReferenceKernels::cg_calc_w_fused() {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* p_ = data(FieldId::kP);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* w_ = data(FieldId::kW);
  row_a_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  row_b_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          const fused::RowDots dots = t.w_row(
              p_, kx_, ky_, w_, b, b + static_cast<std::size_t>(nx), width);
          const std::size_t slot = static_cast<std::size_t>(y - h);
          row_a_[slot] = dots.pw;
          row_b_[slot] = dots.ww;
        }
      },
      tile_rows(4));

  CgFusedW out;
  out.pw = pairwise_sum(row_a_.data(), mesh_.ny);
  out.ww = pairwise_sum(row_b_.data(), mesh_.ny);
  return out;
}

double ReferenceKernels::cg_fused_ur_p(double alpha, double beta_prev) {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  double* u_ = data(FieldId::kU);
  double* r_ = data(FieldId::kR);
  double* p_ = data(FieldId::kP);
  const double* w_ = data(FieldId::kW);
  row_a_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          row_a_[static_cast<std::size_t>(y - h)] = t.urp_row(
              u_, r_, p_, w_, b, b + static_cast<std::size_t>(nx), alpha,
              beta_prev);
        }
      },
      tile_rows(4));

  return pairwise_sum(row_a_.data(), mesh_.ny);
}

double ReferenceKernels::fused_residual_norm() {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* u_ = data(FieldId::kU);
  const double* u0_ = data(FieldId::kU0);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* r_ = data(FieldId::kR);
  row_a_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          row_a_[static_cast<std::size_t>(y - h)] = t.residual_row(
              u_, u0_, kx_, ky_, r_, b, b + static_cast<std::size_t>(nx),
              width);
        }
      },
      tile_rows(5));

  return pairwise_sum(row_a_.data(), mesh_.ny);
}

void ReferenceKernels::cheby_fused_iterate(double alpha, double beta) {
  // Single sweep: the classic iterate needs two (the stencil must see the
  // pre-update u). Here the new u is written into the dead w scratch while
  // the stencil reads the old u, then the buffers are swapped — the solver
  // refreshes u's halo immediately afterwards, exactly as for the classic
  // path, so the stale halo in the swapped-in buffer is never observed.
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* u_ = data(FieldId::kU);
  const double* u0_ = data(FieldId::kU0);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* r_ = data(FieldId::kR);
  double* p_ = data(FieldId::kP);
  double* un_ = data(FieldId::kW);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          t.cheby_row(u_, u0_, kx_, ky_, r_, p_, un_, b,
                      b + static_cast<std::size_t>(nx), width, alpha, beta);
        }
      },
      tile_rows(7));

  chunk_.swap_fields(FieldId::kU, FieldId::kW);
}

void ReferenceKernels::ppcg_fused_inner(double alpha, double beta) {
  // Same single-sweep trick as the Chebyshev iterate: the new sd goes into
  // the dead w scratch while the stencil reads the old sd; the solver
  // refreshes sd's halo right after. w is recomputed from scratch by the
  // next outer cg_calc_w, so clobbering it here is safe.
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* sd_ = data(FieldId::kSd);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* u_ = data(FieldId::kU);
  double* r_ = data(FieldId::kR);
  double* sn_ = data(FieldId::kW);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          t.ppcg_row(sd_, kx_, ky_, u_, r_, sn_, b,
                     b + static_cast<std::size_t>(nx), width, alpha, beta);
        }
      },
      tile_rows(6));

  chunk_.swap_fields(FieldId::kSd, FieldId::kW);
}

void ReferenceKernels::jacobi_fused_copy_iterate() {
  // The copy sweep vanishes: swapping u into the w scratch makes w the
  // previous iterate (halo included — it was refreshed after the last
  // iterate), and the Jacobi sweep writes the new u over the swapped-in
  // buffer's interior. The solver refreshes u's halo right after.
  chunk_.swap_fields(FieldId::kU, FieldId::kW);
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* u0_ = data(FieldId::kU0);
  const double* w_ = data(FieldId::kW);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* u_ = data(FieldId::kU);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          t.jacobi_row(u0_, w_, kx_, ky_, u_, b,
                       b + static_cast<std::size_t>(nx), width);
        }
      },
      tile_rows(5));
}

// ---------------------------------------------------------------------------
// Pipelined CG (kCapPipelined): same traversal scheme as the fused kernels —
// HostPool row tiles dispatched through the ISA table, per-row dot slots
// folded by the pairwise tree — so the recurrences are bit-identical for any
// thread count and any dispatched ISA.
// ---------------------------------------------------------------------------

CgPipeDots ReferenceKernels::cg_pipe_init() {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* r_ = data(FieldId::kR);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* w_ = data(FieldId::kW);
  row_a_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  row_b_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          const fused::RowDots dots = t.pipe_init_row(
              r_, kx_, ky_, w_, b, b + static_cast<std::size_t>(nx), width);
          const std::size_t slot = static_cast<std::size_t>(y - h);
          row_a_[slot] = dots.pw;  // r.r
          row_b_[slot] = dots.ww;  // w.r
        }
      },
      tile_rows(4));

  CgPipeDots out;
  out.rr = pairwise_sum(row_a_.data(), mesh_.ny);
  out.rw = pairwise_sum(row_b_.data(), mesh_.ny);
  return out;
}

void ReferenceKernels::cg_pipe_calc_q() {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* w_ = data(FieldId::kW);
  const double* kx_ = data(FieldId::kKx);
  const double* ky_ = data(FieldId::kKy);
  double* q_ = data(FieldId::kQ);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          t.stencil_row(w_, kx_, ky_, q_, b, b + static_cast<std::size_t>(nx),
                        width);
        }
      },
      tile_rows(3));
}

CgPipeDots ReferenceKernels::cg_pipe_update(double alpha, double beta) {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  double* z_ = data(FieldId::kZ);
  double* s_ = data(FieldId::kSd);  // s lives in the unused kSd slot
  double* p_ = data(FieldId::kP);
  double* u_ = data(FieldId::kU);
  double* r_ = data(FieldId::kR);
  double* w_ = data(FieldId::kW);
  const double* q_ = data(FieldId::kQ);
  row_a_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  row_b_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  const isa::RowKernelTable& t = *isa::active_row_table();

  pool_.parallel_for(
      h, h + mesh_.ny,
      [&](std::int64_t yb, std::int64_t ye) {
        for (std::int64_t y = yb; y < ye; ++y) {
          const std::size_t b = static_cast<std::size_t>(y) * width +
                                static_cast<std::size_t>(h);
          const fused::RowDots dots = t.pipe_update_row(
              z_, s_, p_, u_, r_, w_, q_, b, b + static_cast<std::size_t>(nx),
              alpha, beta);
          const std::size_t slot = static_cast<std::size_t>(y - h);
          row_a_[slot] = dots.pw;  // r.r
          row_b_[slot] = dots.ww;  // w.r
        }
      },
      tile_rows(7));

  CgPipeDots out;
  out.rr = pairwise_sum(row_a_.data(), mesh_.ny);
  out.rw = pairwise_sum(row_b_.data(), mesh_.ny);
  return out;
}

// ---------------------------------------------------------------------------
// Region sweeps (kCapRegions): the fused kernels split for comm/compute
// overlap. Each region sweep repeats the corresponding full sweep's per-cell
// arithmetic verbatim over a sub-range, so the written field values carry
// identical bits; the finish methods then recompute any reductions in the
// full sweep's exact accumulation order (four positional chains per row,
// pairwise tree over rows), making interior+edges+finish indistinguishable
// from one full sweep no matter when the halo exchange completed.
// ---------------------------------------------------------------------------

void ReferenceKernels::cg_calc_w_region(Region region) {
  const RegionBounds b =
      region_bounds(region, mesh_.halo_depth, mesh_.nx, mesh_.ny);
  if (b.empty()) return;
  const auto p = chunk_.field(FieldId::kP);
  const auto kx = chunk_.field(FieldId::kKx);
  const auto ky = chunk_.field(FieldId::kKy);
  auto w = chunk_.field(FieldId::kW);
  for (int y = b.y0; y < b.y1; ++y) {
    for (int x = b.x0; x < b.x1; ++x) {
      w(x, y) = ref::apply_stencil(p, kx, ky, x, y);
    }
  }
}

double ReferenceKernels::cg_calc_w_region_finish() {
  // Classic cg_calc_w accumulates pw serially in row-major order; reading
  // the stored w back gives the same doubles the sweep produced.
  const int h = mesh_.halo_depth;
  const auto p = chunk_.field(FieldId::kP);
  const auto w = chunk_.field(FieldId::kW);
  double pw = 0.0;
  for (int y = h; y < h + mesh_.ny; ++y) {
    for (int x = h; x < h + mesh_.nx; ++x) pw += w(x, y) * p(x, y);
  }
  return pw;
}

void ReferenceKernels::cg_calc_w_fused_region(Region region) {
  // Same per-cell w as fused_w_row (each lane evaluates stencil_at, which is
  // apply_stencil's association); only the dots differ, and those are the
  // finish method's job.
  cg_calc_w_region(region);
}

CgFusedW ReferenceKernels::cg_calc_w_fused_region_finish() {
  const int h = mesh_.halo_depth;
  const int nx = mesh_.nx;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* p_ = data(FieldId::kP);
  const double* w_ = data(FieldId::kW);
  row_a_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  row_b_.assign(static_cast<std::size_t>(mesh_.ny), 0.0);
  const isa::RowKernelTable& t = *isa::active_row_table();
  for (int y = h; y < h + mesh_.ny; ++y) {
    const std::size_t b = static_cast<std::size_t>(y) * width +
                          static_cast<std::size_t>(h);
    const fused::RowDots dots =
        t.w_row_dots(p_, w_, b, b + static_cast<std::size_t>(nx));
    const std::size_t slot = static_cast<std::size_t>(y - h);
    row_a_[slot] = dots.pw;
    row_b_[slot] = dots.ww;
  }
  CgFusedW out;
  out.pw = pairwise_sum(row_a_.data(), mesh_.ny);
  out.ww = pairwise_sum(row_b_.data(), mesh_.ny);
  return out;
}

void ReferenceKernels::cheby_fused_region(double alpha, double beta,
                                          Region region) {
  const RegionBounds bd =
      region_bounds(region, mesh_.halo_depth, mesh_.nx, mesh_.ny);
  if (bd.empty()) return;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* __restrict u = data(FieldId::kU);
  const double* __restrict u0 = data(FieldId::kU0);
  const double* __restrict kx = data(FieldId::kKx);
  const double* __restrict ky = data(FieldId::kKy);
  double* __restrict r = data(FieldId::kR);
  double* __restrict p = data(FieldId::kP);
  double* __restrict un = data(FieldId::kW);
  const double a = alpha, bt = beta;
  // Per-cell body copied from cheby_fused_iterate: reads u (old iterate) at
  // the stencil points, writes r/p at the own cell and the new u into the w
  // scratch — regions never read each other's writes.
  for (int y = bd.y0; y < bd.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width;
    const std::size_t b = row + static_cast<std::size_t>(bd.x0);
    const std::size_t e = row + static_cast<std::size_t>(bd.x1);
    for (std::size_t i = b; i < e; ++i) {
      const double kxl = kx[i], kxr = kx[i + 1];
      const double kyb = ky[i], kyt = ky[i + width];
      const double au = (1.0 + kxl + kxr + kyb + kyt) * u[i] -
                        kxr * u[i + 1] - kxl * u[i - 1] -
                        kyt * u[i + width] - kyb * u[i - width];
      const double res = u0[i] - au;
      r[i] = res;
      const double pn = a * p[i] + bt * res;
      p[i] = pn;
      un[i] = u[i] + pn;
    }
  }
}

void ReferenceKernels::cheby_fused_region_finish() {
  chunk_.swap_fields(FieldId::kU, FieldId::kW);
}

void ReferenceKernels::ppcg_fused_region(double alpha, double beta,
                                         Region region) {
  const RegionBounds bd =
      region_bounds(region, mesh_.halo_depth, mesh_.nx, mesh_.ny);
  if (bd.empty()) return;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* __restrict sd = data(FieldId::kSd);
  const double* __restrict kx = data(FieldId::kKx);
  const double* __restrict ky = data(FieldId::kKy);
  double* __restrict u = data(FieldId::kU);
  double* __restrict r = data(FieldId::kR);
  double* __restrict sn = data(FieldId::kW);
  const double a = alpha, bt = beta;
  // Per-cell body copied from ppcg_fused_inner: the stencil reads the old sd
  // (untouched — the new sd goes into the w scratch until the finish swap).
  for (int y = bd.y0; y < bd.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width;
    const std::size_t b = row + static_cast<std::size_t>(bd.x0);
    const std::size_t e = row + static_cast<std::size_t>(bd.x1);
    for (std::size_t i = b; i < e; ++i) {
      const double kxl = kx[i], kxr = kx[i + 1];
      const double kyb = ky[i], kyt = ky[i + width];
      const double asd = (1.0 + kxl + kxr + kyb + kyt) * sd[i] -
                         kxr * sd[i + 1] - kxl * sd[i - 1] -
                         kyt * sd[i + width] - kyb * sd[i - width];
      const double rn = r[i] - asd;
      r[i] = rn;
      u[i] += sd[i];
      sn[i] = a * sd[i] + bt * rn;
    }
  }
}

void ReferenceKernels::ppcg_fused_region_finish(double, double) {
  chunk_.swap_fields(FieldId::kSd, FieldId::kW);
}

void ReferenceKernels::jacobi_fused_region(Region region) {
  // The kInterior call must come first: it performs the ping-pong swap that
  // turns the old u into w (see jacobi_fused_copy_iterate). The interior
  // region is inset one cell from every interior edge, so its stencil never
  // reads w's halo — the in-flight exchange (which targets the pre-swap u
  // storage, i.e. the current w) only has to land before the edge sweeps.
  if (region == Region::kInterior) {
    chunk_.swap_fields(FieldId::kU, FieldId::kW);
  }
  const RegionBounds bd =
      region_bounds(region, mesh_.halo_depth, mesh_.nx, mesh_.ny);
  if (bd.empty()) return;
  const std::size_t width = static_cast<std::size_t>(mesh_.padded_nx());
  const double* __restrict u0 = data(FieldId::kU0);
  const double* __restrict w = data(FieldId::kW);
  const double* __restrict kx = data(FieldId::kKx);
  const double* __restrict ky = data(FieldId::kKy);
  double* __restrict u = data(FieldId::kU);
  for (int y = bd.y0; y < bd.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width;
    const std::size_t b = row + static_cast<std::size_t>(bd.x0);
    const std::size_t e = row + static_cast<std::size_t>(bd.x1);
    for (std::size_t i = b; i < e; ++i) {
      const double kxl = kx[i], kxr = kx[i + 1];
      const double kyb = ky[i], kyt = ky[i + width];
      const double diag = 1.0 + kxl + kxr + kyb + kyt;
      u[i] = (u0[i] + kxr * w[i + 1] + kxl * w[i - 1] +
              kyt * w[i + width] + kyb * w[i - width]) /
             diag;
    }
  }
}

void ReferenceKernels::jacobi_fused_region_finish() {
  // Nothing deferred: the swap happened at kInterior and there is no
  // reduction. Present for pipeline symmetry.
}

}  // namespace tl::core
