#include "core/reference_kernels.hpp"

#include <cmath>

#include "comm/halo.hpp"

namespace tl::core {

namespace ref {

void init_u(const Mesh& m, CSpan density, CSpan energy0, Span u, Span u0) {
  // Full padded extent: the halo gets consistent values straight away
  // (TeaLeaf initialises u over the whole chunk then exchanges).
  for (int y = 0; y < m.padded_ny(); ++y) {
    for (int x = 0; x < m.padded_nx(); ++x) {
      const double v = energy0(x, y) * density(x, y);
      u(x, y) = v;
      u0(x, y) = v;
    }
  }
}

void init_coefficients(const Mesh& m, Coefficient coefficient, double rx,
                       double ry, CSpan density, Span kx, Span ky) {
  const int h = m.halo_depth;
  // Face conductivity from the two adjacent cell densities (TeaLeaf's
  // (wL + wC) / (2 wL wC) harmonic form), pre-scaled by rx/ry. Computed one
  // layer beyond the interior so A u is valid on every interior cell.
  auto w_of = [&](int x, int y) {
    return coefficient == Coefficient::kConductivity ? density(x, y)
                                                     : 1.0 / density(x, y);
  };
  for (int y = h - 1; y < h + m.ny + 1; ++y) {
    for (int x = h - 1; x < h + m.nx + 1; ++x) {
      const double wc = w_of(x, y);
      const double wl = w_of(x - 1, y);
      const double wb = w_of(x, y - 1);
      kx(x, y) = rx * (wl + wc) / (2.0 * wl * wc);
      ky(x, y) = ry * (wb + wc) / (2.0 * wb * wc);
    }
  }
}

double apply_stencil(CSpan v, CSpan kx, CSpan ky, int x, int y) {
  const double diag =
      1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
  return diag * v(x, y) - kx(x + 1, y) * v(x + 1, y) - kx(x, y) * v(x - 1, y) -
         ky(x, y + 1) * v(x, y + 1) - ky(x, y) * v(x, y - 1);
}

void calc_residual(const Mesh& m, CSpan u, CSpan u0, CSpan kx, CSpan ky,
                   Span r) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      r(x, y) = u0(x, y) - apply_stencil(u, kx, ky, x, y);
    }
  }
}

double calc_2norm(const Mesh& m, CSpan v) {
  const int h = m.halo_depth;
  double norm = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) norm += v(x, y) * v(x, y);
  }
  return norm;
}

void finalise(const Mesh& m, CSpan u, CSpan density, Span energy) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) energy(x, y) = u(x, y) / density(x, y);
  }
}

FieldSummary field_summary(const Mesh& m, CSpan density, CSpan energy0,
                           CSpan u) {
  const int h = m.halo_depth;
  const double cell_vol = m.cell_area();
  FieldSummary s;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      s.volume += cell_vol;
      s.mass += density(x, y) * cell_vol;
      s.internal_energy += density(x, y) * energy0(x, y) * cell_vol;
      s.temperature += u(x, y) * cell_vol;
    }
  }
  return s;
}

double cg_init(const Mesh& m, CSpan u, CSpan u0, CSpan kx, CSpan ky, Span w,
               Span r, Span p) {
  const int h = m.halo_depth;
  double rro = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double au = apply_stencil(u, kx, ky, x, y);
      w(x, y) = au;
      const double res = u0(x, y) - au;
      r(x, y) = res;
      p(x, y) = res;
      rro += res * res;
    }
  }
  return rro;
}

double cg_calc_w(const Mesh& m, CSpan p, CSpan kx, CSpan ky, Span w) {
  const int h = m.halo_depth;
  double pw = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double ap = apply_stencil(p, kx, ky, x, y);
      w(x, y) = ap;
      pw += ap * p(x, y);
    }
  }
  return pw;
}

double cg_calc_ur(const Mesh& m, double alpha, CSpan p, CSpan w, Span u,
                  Span r) {
  const int h = m.halo_depth;
  double rrn = 0.0;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      u(x, y) += alpha * p(x, y);
      const double res = r(x, y) - alpha * w(x, y);
      r(x, y) = res;
      rrn += res * res;
    }
  }
  return rrn;
}

void cg_calc_p(const Mesh& m, double beta, CSpan r, Span p) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      p(x, y) = r(x, y) + beta * p(x, y);
    }
  }
}

void cheby_init(const Mesh& m, double theta, CSpan r, Span p, Span u) {
  const int h = m.halo_depth;
  const double theta_inv = 1.0 / theta;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      p(x, y) = r(x, y) * theta_inv;
      u(x, y) += p(x, y);
    }
  }
}

void cheby_iterate(const Mesh& m, double alpha, double beta, CSpan u0,
                   CSpan kx, CSpan ky, Span u, Span r, Span p) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double res = u0(x, y) - apply_stencil(u, kx, ky, x, y);
      r(x, y) = res;
      p(x, y) = alpha * p(x, y) + beta * res;
    }
  }
  // u update is a second sweep: the stencil above must see the pre-update u.
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) u(x, y) += p(x, y);
  }
}

void ppcg_init_sd(const Mesh& m, double theta, CSpan r, Span sd) {
  const int h = m.halo_depth;
  const double theta_inv = 1.0 / theta;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) sd(x, y) = r(x, y) * theta_inv;
  }
}

void ppcg_inner(const Mesh& m, double alpha, double beta, CSpan kx, CSpan ky,
                Span u, Span r, Span sd) {
  const int h = m.halo_depth;
  // r -= A sd and u += sd first (stencil must see the pre-update sd), then
  // the sd recurrence from the fresh residual.
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      r(x, y) -= apply_stencil(sd, kx, ky, x, y);
      u(x, y) += sd(x, y);
    }
  }
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      sd(x, y) = alpha * sd(x, y) + beta * r(x, y);
    }
  }
}

void jacobi_copy_u(const Mesh& m, CSpan u, Span w) {
  // Full padded extent: the iterate's stencil reads w in the halo, and u's
  // halo is current here (updated after the previous iterate).
  for (int y = 0; y < m.padded_ny(); ++y) {
    for (int x = 0; x < m.padded_nx(); ++x) w(x, y) = u(x, y);
  }
}

void jacobi_iterate(const Mesh& m, CSpan u0, CSpan w, CSpan kx, CSpan ky,
                    Span u) {
  const int h = m.halo_depth;
  for (int y = h; y < h + m.ny; ++y) {
    for (int x = h; x < h + m.nx; ++x) {
      const double diag =
          1.0 + kx(x + 1, y) + kx(x, y) + ky(x, y + 1) + ky(x, y);
      u(x, y) = (u0(x, y) + kx(x + 1, y) * w(x + 1, y) +
                 kx(x, y) * w(x - 1, y) + ky(x, y + 1) * w(x, y + 1) +
                 ky(x, y) * w(x, y - 1)) /
                diag;
    }
  }
}

}  // namespace ref

// ---------------------------------------------------------------------------
// ReferenceKernels
// ---------------------------------------------------------------------------

ReferenceKernels::ReferenceKernels(const Mesh& mesh)
    : mesh_(mesh), chunk_(mesh) {}

void ReferenceKernels::upload_state(const Chunk& chunk) {
  const auto src_d = chunk.field(FieldId::kDensity);
  const auto src_e = chunk.field(FieldId::kEnergy0);
  auto dst_d = chunk_.field(FieldId::kDensity);
  auto dst_e = chunk_.field(FieldId::kEnergy0);
  for (int y = 0; y < mesh_.padded_ny(); ++y) {
    for (int x = 0; x < mesh_.padded_nx(); ++x) {
      dst_d(x, y) = src_d(x, y);
      dst_e(x, y) = src_e(x, y);
    }
  }
}

void ReferenceKernels::init_u() {
  ref::init_u(mesh_, chunk_.field(FieldId::kDensity),
              chunk_.field(FieldId::kEnergy0), chunk_.field(FieldId::kU),
              chunk_.field(FieldId::kU0));
}

void ReferenceKernels::init_coefficients(Coefficient coefficient, double rx,
                                         double ry) {
  ref::init_coefficients(mesh_, coefficient, rx, ry,
                         chunk_.field(FieldId::kDensity),
                         chunk_.field(FieldId::kKx), chunk_.field(FieldId::kKy));
}

void ReferenceKernels::halo_update(unsigned fields, int depth) {
  (void)depth;  // reflection always fills the full halo
  auto reflect = [&](FieldId f) {
    tl::comm::reflect_boundary(chunk_.field(f), mesh_.halo_depth,
                               tl::comm::kAllFaces);
  };
  if (fields & kMaskU) reflect(FieldId::kU);
  if (fields & kMaskP) reflect(FieldId::kP);
  if (fields & kMaskSd) reflect(FieldId::kSd);
  if (fields & kMaskR) reflect(FieldId::kR);
  if (fields & kMaskDensity) reflect(FieldId::kDensity);
  if (fields & kMaskEnergy0) reflect(FieldId::kEnergy0);
}

void ReferenceKernels::calc_residual() {
  ref::calc_residual(mesh_, chunk_.field(FieldId::kU),
                     chunk_.field(FieldId::kU0), chunk_.field(FieldId::kKx),
                     chunk_.field(FieldId::kKy), chunk_.field(FieldId::kR));
}

double ReferenceKernels::calc_2norm(NormTarget target) {
  return ref::calc_2norm(mesh_,
                         chunk_.field(target == NormTarget::kResidual
                                          ? FieldId::kR
                                          : FieldId::kU0));
}

void ReferenceKernels::finalise() {
  ref::finalise(mesh_, chunk_.field(FieldId::kU),
                chunk_.field(FieldId::kDensity),
                chunk_.field(FieldId::kEnergy));
}

FieldSummary ReferenceKernels::field_summary() {
  return ref::field_summary(mesh_, chunk_.field(FieldId::kDensity),
                            chunk_.field(FieldId::kEnergy0),
                            chunk_.field(FieldId::kU));
}

double ReferenceKernels::cg_init() {
  return ref::cg_init(mesh_, chunk_.field(FieldId::kU),
                      chunk_.field(FieldId::kU0), chunk_.field(FieldId::kKx),
                      chunk_.field(FieldId::kKy), chunk_.field(FieldId::kW),
                      chunk_.field(FieldId::kR), chunk_.field(FieldId::kP));
}

double ReferenceKernels::cg_calc_w() {
  return ref::cg_calc_w(mesh_, chunk_.field(FieldId::kP),
                        chunk_.field(FieldId::kKx), chunk_.field(FieldId::kKy),
                        chunk_.field(FieldId::kW));
}

double ReferenceKernels::cg_calc_ur(double alpha) {
  return ref::cg_calc_ur(mesh_, alpha, chunk_.field(FieldId::kP),
                         chunk_.field(FieldId::kW), chunk_.field(FieldId::kU),
                         chunk_.field(FieldId::kR));
}

void ReferenceKernels::cg_calc_p(double beta) {
  ref::cg_calc_p(mesh_, beta, chunk_.field(FieldId::kR),
                 chunk_.field(FieldId::kP));
}

void ReferenceKernels::cheby_init(double theta) {
  ref::cheby_init(mesh_, theta, chunk_.field(FieldId::kR),
                  chunk_.field(FieldId::kP), chunk_.field(FieldId::kU));
}

void ReferenceKernels::cheby_iterate(double alpha, double beta) {
  ref::cheby_iterate(mesh_, alpha, beta, chunk_.field(FieldId::kU0),
                     chunk_.field(FieldId::kKx), chunk_.field(FieldId::kKy),
                     chunk_.field(FieldId::kU), chunk_.field(FieldId::kR),
                     chunk_.field(FieldId::kP));
}

void ReferenceKernels::ppcg_init_sd(double theta) {
  ref::ppcg_init_sd(mesh_, theta, chunk_.field(FieldId::kR),
                    chunk_.field(FieldId::kSd));
}

void ReferenceKernels::ppcg_inner(double alpha, double beta) {
  ref::ppcg_inner(mesh_, alpha, beta, chunk_.field(FieldId::kKx),
                  chunk_.field(FieldId::kKy), chunk_.field(FieldId::kU),
                  chunk_.field(FieldId::kR), chunk_.field(FieldId::kSd));
}

void ReferenceKernels::jacobi_copy_u() {
  ref::jacobi_copy_u(mesh_, chunk_.field(FieldId::kU), chunk_.field(FieldId::kW));
}

void ReferenceKernels::jacobi_iterate() {
  ref::jacobi_iterate(mesh_, chunk_.field(FieldId::kU0),
                      chunk_.field(FieldId::kW), chunk_.field(FieldId::kKx),
                      chunk_.field(FieldId::kKy), chunk_.field(FieldId::kU));
}

void ReferenceKernels::read_u(tl::util::Span2D<double> out) {
  const auto u = chunk_.field(FieldId::kU);
  for (int y = 0; y < mesh_.padded_ny(); ++y) {
    for (int x = 0; x < mesh_.padded_nx(); ++x) out(x, y) = u(x, y);
  }
}

void ReferenceKernels::download_energy(Chunk& chunk) {
  const auto src = chunk_.field(FieldId::kEnergy);
  auto dst = chunk.field(FieldId::kEnergy);
  for (int y = 0; y < mesh_.padded_ny(); ++y) {
    for (int x = 0; x < mesh_.padded_nx(); ++x) dst(x, y) = src(x, y);
  }
}

}  // namespace tl::core
