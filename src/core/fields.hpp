#pragma once
// Field identifiers and the host-side chunk: the canonical storage every
// port initialises from and writes results back to.

#include <array>
#include <string_view>
#include <utility>

#include "core/mesh.hpp"
#include "util/buffer.hpp"
#include "util/span2d.hpp"

namespace tl::core {

/// TeaLeaf's working arrays (2-D solver, matching the reference code).
enum class FieldId {
  kDensity,  // cell density (input state)
  kEnergy0,  // specific energy at step start (input state)
  kEnergy,   // specific energy at step end (output of finalise)
  kU,        // solution vector (temperature-like)
  kU0,       // right-hand side for the implicit solve
  kP,        // CG/Chebyshev search direction
  kR,        // residual
  kW,        // A*p scratch
  kSd,       // PPCG inner smoothing direction
  kKx,       // x-face diffusion coefficient (pre-scaled by rx)
  kKy,       // y-face diffusion coefficient (pre-scaled by ry)
  kQ,        // pipelined CG: A w (the overlapped matvec's output)
  kZ,        // pipelined CG: the q-direction recurrence z = q + beta z
};

inline constexpr std::array<FieldId, 13> kAllFields = {
    FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy, FieldId::kU,
    FieldId::kU0,      FieldId::kP,       FieldId::kR,      FieldId::kW,
    FieldId::kSd,      FieldId::kKx,      FieldId::kKy,     FieldId::kQ,
    FieldId::kZ};

constexpr std::string_view field_name(FieldId f) {
  switch (f) {
    case FieldId::kDensity: return "density";
    case FieldId::kEnergy0: return "energy0";
    case FieldId::kEnergy: return "energy";
    case FieldId::kU: return "u";
    case FieldId::kU0: return "u0";
    case FieldId::kP: return "p";
    case FieldId::kR: return "r";
    case FieldId::kW: return "w";
    case FieldId::kSd: return "sd";
    case FieldId::kKx: return "kx";
    case FieldId::kKy: return "ky";
    case FieldId::kQ: return "q";
    case FieldId::kZ: return "z";
  }
  return "?";
}

/// Host-side storage for one mesh chunk: all fields, padded with halo.
class Chunk {
 public:
  explicit Chunk(const Mesh& mesh) : mesh_(mesh) {
    for (auto& b : buffers_) b.resize(mesh.padded_cells());
  }

  const Mesh& mesh() const noexcept { return mesh_; }

  tl::util::Span2D<double> field(FieldId f) noexcept {
    return buffers_[static_cast<std::size_t>(f)].view2d(mesh_.padded_nx(),
                                                        mesh_.padded_ny());
  }
  tl::util::Span2D<const double> field(FieldId f) const noexcept {
    return buffers_[static_cast<std::size_t>(f)].view2d(mesh_.padded_nx(),
                                                        mesh_.padded_ny());
  }

  /// Exchanges the storage behind two fields (O(1) pointer swap). The fused
  /// reference kernels ping-pong u through the w scratch instead of copying.
  void swap_fields(FieldId a, FieldId b) noexcept {
    std::swap(buffers_[static_cast<std::size_t>(a)],
              buffers_[static_cast<std::size_t>(b)]);
  }

 private:
  Mesh mesh_;
  std::array<tl::util::Buffer<double>, kAllFields.size()> buffers_;
};

}  // namespace tl::core
