#pragma once
// PhantomKernels: metering-only SolverKernels.
//
// Charges the exact launch/transfer sequence a real port produces — same
// catalogue costs, same per-model trait decoration — without allocating
// fields or doing arithmetic. Scalar returns are scripted so the solver
// drivers execute a prescribed number of iterations.
//
// Two uses:
//   - the paper-scale benches (4096^2 meshes: 10^7 cells x thousands of
//     iterations is not computable for real on this machine; iteration
//     counts come from IterationModel power-law fits of real small-mesh
//     solves), and
//   - the port<->replay consistency tests: a real port's clock must equal a
//     PhantomKernels replay configured with the port's recorded stats.

#include <cstdint>

#include "core/kernels_api.hpp"
#include "core/mesh.hpp"
#include "core/model_traits.hpp"
#include "models/launcher.hpp"

namespace tl::core {

/// Scripted convergence plan.
struct PhantomScript {
  /// Converge after this many cg_calc_ur calls (CG, bootstrap, PPCG outer).
  int converge_after_ur = 100;
  /// Converge after this many cheby_iterate calls (Chebyshev main loop).
  int converge_after_cheby = 0;
  /// Converge after this many jacobi_iterate calls (Jacobi main loop).
  int converge_after_jacobi = 0;
  /// When true the cg_calc_ur return value itself signals convergence at
  /// the threshold; when false only the norm checks do (PPCG's usual path).
  bool converge_on_ur = true;
  double eps = 1e-15;
};

class PhantomKernels final : public SolverKernels {
 public:
  PhantomKernels(tl::sim::Model model, tl::sim::DeviceId device,
                 const Mesh& mesh, const PhantomScript& script,
                 std::uint64_t run_seed = 1);

  void upload_state(const Chunk&) override { upload_state(); }
  /// Chunk-free variant (benches never build a host chunk).
  void upload_state();

  void init_u() override { charge(KernelId::kInitU); }
  void init_coefficients(Coefficient, double, double) override {
    charge(KernelId::kInitCoef);
  }
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override { charge(KernelId::kCalcResidual); }
  double calc_2norm(NormTarget) override;
  void finalise() override { charge(KernelId::kFinalise); }
  FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double) override;
  void cg_calc_p(double) override { charge(KernelId::kCgCalcP); }
  void cheby_init(double) override { charge(KernelId::kChebyInit); }
  void cheby_iterate(double, double) override;
  void ppcg_init_sd(double) override { charge(KernelId::kPpcgInitSd); }
  void ppcg_inner(double, double) override { charge(KernelId::kPpcgInner); }
  void jacobi_copy_u() override { charge(KernelId::kJacobiCopyU); }
  void jacobi_iterate() override;

  // The replay must follow the same control flow as a live fused run, so the
  // phantom advertises every capability and scripts the fused returns to
  // reproduce the classic scripted values (pw=1, rw=0.5, ww=1 keeps the
  // solver's predicted beta at 1, matching the classic alpha/beta=1 replay).
  unsigned caps() const override { return kAllKernelCaps | kCapPipelined; }
  CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double, double) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double, double) override;
  void ppcg_fused_inner(double, double) override {
    charge(KernelId::kPpcgFusedInner);
  }
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG replay: with gamma scripted to 1 and the update returning
  // rw = 2, the solver's denominator stays 1 (2 - beta*gamma/alpha = 1) and
  // alpha/beta stay 1 — the same Lanczos inputs as the classic replay.
  CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  CgPipeDots cg_pipe_update(double, double) override;

  void read_u(tl::util::Span2D<double>) override;
  void download_energy(Chunk&) override { download_energy(); }
  void download_energy();

  const tl::sim::SimClock& clock() const override {
    return launcher_.clock();
  }
  void begin_run(std::uint64_t run_seed) override;

 private:
  void charge(KernelId id);
  bool converged() const {
    return ur_calls_ >= script_.converge_after_ur &&
           cheby_calls_ >= script_.converge_after_cheby &&
           jacobi_calls_ >= script_.converge_after_jacobi;
  }
  double norm_value() const { return converged() ? script_.eps * 0.25 : 1.0; }

  tl::sim::Model model_;
  Mesh mesh_;
  PhantomScript script_;
  models::Launcher launcher_;
  int ur_calls_ = 0;
  int cheby_calls_ = 0;
  int jacobi_calls_ = 0;
};

}  // namespace tl::core
