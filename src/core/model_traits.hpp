#pragma once
// Per-model trait decoration: the code *shape* each programming model's port
// gives a kernel, layered on the base catalogue costs.
//
//   - flat Kokkos functors flatten the iteration space and test for halo
//     cells inside the body           -> interior_branch
//   - Kokkos HP re-encodes the halo exclusion with TeamPolicy nesting
//                                      -> hierarchical, no branch
//   - RAJA traverses ListSegment indirection arrays -> indirection
//     (RAJA SIMD keeps the indirection; its simd directive is a codegen
//     profile property, not a kernel shape)
//   - every other model iterates the interior directly.
//
// Used by both the live ports and the analytic replay, so the two meter
// identical launches.

#include "core/kernel_catalog.hpp"
#include "sim/model_id.hpp"
#include "sim/traits.hpp"

namespace tl::core {

/// Decorated LaunchInfo for `kernel` over `interior_cells` cells under model `m`.
tl::sim::LaunchInfo make_launch_info(tl::sim::Model m, KernelId id,
                                     std::size_t interior_cells);

/// Decorated halo-update LaunchInfo (halo kernels are shape-neutral: no
/// model decorates them).
tl::sim::LaunchInfo make_halo_info(tl::sim::Model m, int nx, int ny,
                                   int nfields, int depth);

}  // namespace tl::core
