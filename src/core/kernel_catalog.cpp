#include "core/kernel_catalog.hpp"

namespace tl::core {

namespace {
constexpr double kCgSensitivity = 0.2;
constexpr double kFusedSensitivity = 0.4;  // Chebyshev/PPCG fused iterate

constexpr std::array kCatalog = {
    KernelCost{"init_u", 2, 2, 2, false, kCgSensitivity},
    KernelCost{"init_coef", 1, 2, 8, false, kCgSensitivity},
    KernelCost{"calc_residual", 4, 1, 13, false, kCgSensitivity},
    KernelCost{"calc_2norm", 1, 0, 2, true, kCgSensitivity},
    KernelCost{"finalise", 2, 1, 1, false, kCgSensitivity},
    KernelCost{"field_summary", 3, 0, 9, true, kCgSensitivity},
    KernelCost{"cg_init", 4, 3, 15, true, kCgSensitivity},
    KernelCost{"cg_calc_w", 3, 1, 13, true, kCgSensitivity},
    KernelCost{"cg_calc_ur", 4, 2, 6, true, kCgSensitivity},
    KernelCost{"cg_calc_p", 2, 1, 2, false, kCgSensitivity},
    KernelCost{"cheby_init", 2, 2, 3, false, kCgSensitivity},
    KernelCost{"cheby_iterate", 7, 3, 18, false, kFusedSensitivity},
    KernelCost{"ppcg_init_sd", 1, 1, 1, false, kCgSensitivity},
    // The PPCG inner step is fused but less vector-bound than the Chebyshev
    // iterate (paper section 4.1: RAJA penalties were ~20% for CG *and*
    // PPCG vs ~40% for Chebyshev).
    KernelCost{"ppcg_inner", 7, 3, 18, false, 0.25},
    KernelCost{"jacobi_copy_u", 1, 1, 0, false, kCgSensitivity},
    KernelCost{"jacobi_iterate", 4, 1, 12, false, 0.3},
    KernelCost{"halo_update", 1, 1, 0, false, 0.0},
    // Fused entries. Stream accounting (classic -> fused per call):
    //   cg_calc_w_fused      w(3r,1w) + one extra dot (conjugacy supplies
    //                        r.w = p.w, so r is never streamed)  -> 3r,1w
    //   cg_fused_ur_p        ur(4r,2w) + p(2r,1w) = 9 streams -> 4r,3w = 7
    //   fused_residual_norm  residual(4r,1w) + 2norm(1r)      -> 4r,1w
    //   cheby_fused_iterate  7r,3w                            -> 5r,3w
    //   ppcg_fused_inner     7r,3w                            -> 5r,3w
    //   jacobi_fused         copy(1r,1w) + iterate(4r,1w)     -> 4r,1w
    KernelCost{"cg_calc_w_fused", 3, 1, 15, true, kCgSensitivity},
    KernelCost{"cg_fused_ur_p", 4, 3, 8, true, kCgSensitivity},
    KernelCost{"fused_residual_norm", 4, 1, 15, true, kCgSensitivity},
    KernelCost{"cheby_fused_iterate", 5, 3, 18, false, kFusedSensitivity},
    KernelCost{"ppcg_fused_inner", 5, 3, 18, false, 0.25},
    KernelCost{"jacobi_fused_copy_iterate", 4, 1, 12, false, 0.3},
    // Pipelined CG. Stream accounting:
    //   cg_pipe_init    r,kx,ky read; w written; two dots    -> 3r,1w
    //   cg_pipe_calc_q  w,kx,ky read; q written (no dots)    -> 3r,1w
    //   cg_pipe_update  q,w,r,p,u,s,z read; z,s,p,u,r,w
    //                   written; two dots                    -> 7r,6w
    // More streams per iteration than classic CG (the price of hiding the
    // allreduce) — pipelining only pays off once communication dominates.
    KernelCost{"cg_pipe_init", 3, 1, 15, true, kCgSensitivity},
    KernelCost{"cg_pipe_calc_q", 3, 1, 13, false, kCgSensitivity},
    KernelCost{"cg_pipe_update", 7, 6, 16, true, kCgSensitivity},
};
}  // namespace

const KernelCost& kernel_cost(KernelId id) {
  return kCatalog[static_cast<std::size_t>(id)];
}

std::string_view kernel_phase(KernelId id) {
  switch (id) {
    case KernelId::kInitU:
    case KernelId::kInitCoef: return "setup";
    case KernelId::kCalcResidual:
    case KernelId::kCalc2Norm: return "shared";
    case KernelId::kFinalise:
    case KernelId::kFieldSummary: return "diagnostics";
    case KernelId::kCgInit:
    case KernelId::kCgCalcW:
    case KernelId::kCgCalcUr:
    case KernelId::kCgCalcP: return "cg";
    case KernelId::kChebyInit:
    case KernelId::kChebyIterate: return "cheby";
    case KernelId::kPpcgInitSd:
    case KernelId::kPpcgInner: return "ppcg";
    case KernelId::kJacobiCopyU:
    case KernelId::kJacobiIterate: return "jacobi";
    case KernelId::kHaloUpdate: return "halo";
    case KernelId::kCgCalcWFused:
    case KernelId::kCgFusedUrP: return "cg";
    case KernelId::kFusedResidualNorm: return "shared";
    case KernelId::kChebyFusedIterate: return "cheby";
    case KernelId::kPpcgFusedInner: return "ppcg";
    case KernelId::kJacobiFusedCopyIterate: return "jacobi";
    case KernelId::kCgPipeInit:
    case KernelId::kCgPipeCalcQ:
    case KernelId::kCgPipeUpdate: return "cg";
  }
  return "kernel";
}

tl::sim::LaunchInfo base_launch_info(KernelId id, std::size_t interior_cells) {
  const KernelCost& cost = kernel_cost(id);
  tl::sim::LaunchInfo info;
  info.name = cost.name;
  info.kernel_id = static_cast<int>(id);
  info.phase = kernel_phase(id);
  info.items = interior_cells;
  info.bytes_read =
      static_cast<std::size_t>(cost.reads) * interior_cells * sizeof(double);
  info.bytes_written =
      static_cast<std::size_t>(cost.writes) * interior_cells * sizeof(double);
  info.flops = static_cast<std::size_t>(cost.flops_per_cell) * interior_cells;
  info.working_set_bytes = info.bytes_read + info.bytes_written;
  info.traits.reduction = cost.reduction;
  info.traits.vector_sensitivity = cost.vector_sensitivity;
  return info;
}

tl::sim::LaunchInfo halo_launch_info(int nx, int ny, int nfields, int depth) {
  const KernelCost& cost = kernel_cost(KernelId::kHaloUpdate);
  const std::size_t perimeter_cells =
      2 * static_cast<std::size_t>(depth) *
      (static_cast<std::size_t>(nx) + static_cast<std::size_t>(ny));
  const std::size_t bytes =
      perimeter_cells * static_cast<std::size_t>(nfields) * sizeof(double);
  tl::sim::LaunchInfo info;
  info.name = cost.name;
  info.kernel_id = static_cast<int>(KernelId::kHaloUpdate);
  info.phase = kernel_phase(KernelId::kHaloUpdate);
  info.items = perimeter_cells * static_cast<std::size_t>(nfields);
  info.bytes_read = bytes;
  info.bytes_written = bytes;
  info.working_set_bytes = 2 * bytes;
  info.traits.vector_sensitivity = 0.0;
  return info;
}

}  // namespace tl::core
