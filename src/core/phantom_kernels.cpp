#include "core/phantom_kernels.hpp"

namespace tl::core {

PhantomKernels::PhantomKernels(tl::sim::Model model, tl::sim::DeviceId device,
                               const Mesh& mesh, const PhantomScript& script,
                               std::uint64_t run_seed)
    : model_(model), mesh_(mesh), script_(script),
      launcher_(model, device, run_seed) {}

void PhantomKernels::charge(KernelId id) {
  launcher_.charge(make_launch_info(model_, id, mesh_.interior_cells()));
}

void PhantomKernels::upload_state() {
  // A new step begins: the scripted convergence plan restarts (each step of
  // a multi-step run replays the same iteration budget).
  ur_calls_ = 0;
  cheby_calls_ = 0;
  jacobi_calls_ = 0;
  // Two arrays (density, energy0) map to the device as separate transfers,
  // matching every offload port's per-array map/copy calls.
  for (int i = 0; i < 2; ++i) {
    launcher_.charge_transfer(tl::sim::TransferInfo{
        .name = "upload_state",
        .bytes = mesh_.padded_cells() * sizeof(double),
        .to_device = true});
  }
}

void PhantomKernels::download_energy() {
  launcher_.charge_transfer(tl::sim::TransferInfo{
      .name = "download_energy",
      .bytes = mesh_.padded_cells() * sizeof(double),
      .to_device = false});
}

void PhantomKernels::read_u(tl::util::Span2D<double>) {
  launcher_.charge_transfer(tl::sim::TransferInfo{
      .name = "read_u",
      .bytes = mesh_.padded_cells() * sizeof(double),
      .to_device = false});
}

void PhantomKernels::halo_update(unsigned fields, int depth) {
  launcher_.charge(make_halo_info(model_, mesh_.nx, mesh_.ny,
                                  mask_field_count(fields), depth));
}

double PhantomKernels::calc_2norm(NormTarget) {
  charge(KernelId::kCalc2Norm);
  return norm_value();
}

FieldSummary PhantomKernels::field_summary() {
  charge(KernelId::kFieldSummary);
  return FieldSummary{};
}

double PhantomKernels::cg_init() {
  charge(KernelId::kCgInit);
  return 1.0;  // rro
}

double PhantomKernels::cg_calc_w() {
  charge(KernelId::kCgCalcW);
  return 1.0;  // pw
}

double PhantomKernels::cg_calc_ur(double) {
  charge(KernelId::kCgCalcUr);
  ++ur_calls_;
  if (script_.converge_on_ur && converged()) return script_.eps * 0.25;
  return 1.0;  // rrn: keeps alpha/beta == 1 (valid Lanczos input)
}

void PhantomKernels::cheby_iterate(double, double) {
  charge(KernelId::kChebyIterate);
  ++cheby_calls_;
}

CgFusedW PhantomKernels::cg_calc_w_fused() {
  charge(KernelId::kCgCalcWFused);
  // With rro = 1 these give alpha = 1 and predicted rrn = 1^2 * 2 - 1 = 1,
  // so beta = 1: the same Lanczos inputs as the classic scripted replay.
  return CgFusedW{1.0, 2.0};
}

double PhantomKernels::cg_fused_ur_p(double, double) {
  charge(KernelId::kCgFusedUrP);
  ++ur_calls_;
  if (script_.converge_on_ur && converged()) return script_.eps * 0.25;
  return 1.0;
}

CgPipeDots PhantomKernels::cg_pipe_init() {
  charge(KernelId::kCgPipeInit);
  return CgPipeDots{1.0, 1.0};  // gamma = 1, delta = 1 -> alpha = 1
}

void PhantomKernels::cg_pipe_calc_q() { charge(KernelId::kCgPipeCalcQ); }

CgPipeDots PhantomKernels::cg_pipe_update(double, double) {
  charge(KernelId::kCgPipeUpdate);
  ++ur_calls_;
  // rw = 2 keeps the recurrence denominator at 1 once beta = 1 kicks in.
  if (script_.converge_on_ur && converged()) {
    return CgPipeDots{script_.eps * 0.25, 2.0};
  }
  return CgPipeDots{1.0, 2.0};
}

double PhantomKernels::fused_residual_norm() {
  charge(KernelId::kFusedResidualNorm);
  return norm_value();
}

void PhantomKernels::cheby_fused_iterate(double, double) {
  charge(KernelId::kChebyFusedIterate);
  ++cheby_calls_;
}

void PhantomKernels::jacobi_fused_copy_iterate() {
  charge(KernelId::kJacobiFusedCopyIterate);
  ++jacobi_calls_;
}

void PhantomKernels::jacobi_iterate() {
  charge(KernelId::kJacobiIterate);
  ++jacobi_calls_;
}

void PhantomKernels::begin_run(std::uint64_t run_seed) {
  launcher_.begin_run(run_seed);
  ur_calls_ = 0;
  cheby_calls_ = 0;
  jacobi_calls_ = 0;
}

}  // namespace tl::core
