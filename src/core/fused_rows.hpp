#pragma once
// Row primitives for the fused reference kernels' hot sweeps.
//
// Each function processes one padded row [b, e) of a field with raw
// __restrict pointers. Every dot product accumulates into four fixed chains
// c = (element index in row) & 3, combined as (c0 + c2) + (c1 + c3) — the
// chain a value lands in depends only on its position, never on the code
// path, so the two implementations below are bit-identical:
//
//   * `*_simd`   — x86-64 SSE2 (baseline ISA, always present on x86-64):
//                  chains {0,1} and {2,3} live in the two lanes of a pair of
//                  128-bit accumulators; one vector add per two elements
//                  halves the instruction stream of these load-bound loops.
//   * `*_scalar` — portable fallback with the identical chain assignment
//                  and per-element association.
//
// The unsuffixed dispatchers pick SIMD when available. tests/test_fusion.cpp
// asserts the two paths agree exactly, and per-element arithmetic follows
// apply_stencil's association (diag = 1 + kxr + kxl + kyt + kyb) so the
// fused results track the classic kernels as closely as FP reassociation of
// the reductions allows. No FMA contraction happens in the SIMD path under
// default flags (SSE2 has no FMA), keeping default builds reproducible
// across gcc and clang.

#include <cstddef>

#if defined(__SSE2__)
#include <emmintrin.h>
#define TL_FUSED_SIMD 1
#else
#define TL_FUSED_SIMD 0
#endif

namespace tl::core::fused {

struct RowDots {
  double pw = 0.0;
  double ww = 0.0;
};

/// Scalar 5-point stencil at flat index i (apply_stencil's association).
inline double stencil_at(const double* __restrict v,
                         const double* __restrict kx,
                         const double* __restrict ky, std::size_t i,
                         std::size_t width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}

/// Combines the four dot-product chains in the fixed (c0+c2)+(c1+c3) order.
inline double combine_chains(const double* c) {
  return (c[0] + c[2]) + (c[1] + c[3]);
}

/// Recomputes fused_w_row's {p.w, w.w} from an already-written w row,
/// preserving the positional four-chain accumulation bit-for-bit: chain
/// (i - b) & 3 sees its elements in the same ascending-i order as both the
/// unrolled scalar and the SSE2 lane accumulators, so the result is
/// identical whether the row was swept whole or assembled region-by-region
/// (the overlap pipeline's finish path relies on this).
inline RowDots fused_w_row_dots(const double* __restrict p,
                                const double* __restrict w, std::size_t b,
                                std::size_t e) {
  double cpw[4] = {0.0, 0.0, 0.0, 0.0};
  double cww[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = b; i < e; ++i) {
    const double ap = w[i];
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

// -- Portable fallback ------------------------------------------------------

/// w = A p over one row [b, e): returns {p.w, w.w}.
inline RowDots fused_w_row_scalar(const double* __restrict p,
                                  const double* __restrict kx,
                                  const double* __restrict ky,
                                  double* __restrict w, std::size_t b,
                                  std::size_t e, std::size_t width) {
  double cpw[4] = {0.0, 0.0, 0.0, 0.0};
  double cww[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double ap = stencil_at(p, kx, ky, i + c, width);
      w[i + c] = ap;
      cpw[c] += ap * p[i + c];
      cww[c] += ap * ap;
    }
  }
  for (; i < e; ++i) {  // tail keeps the positional chain assignment
    const double ap = stencil_at(p, kx, ky, i, width);
    w[i] = ap;
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

/// u += a p; r -= a w; p = r_new + bp p over one row [b, e): returns r.r.
inline double fused_urp_row_scalar(double* __restrict u, double* __restrict r,
                                   double* __restrict p,
                                   const double* __restrict w, std::size_t b,
                                   std::size_t e, double a, double bp) {
  double crr[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      u[i + c] += a * p[i + c];
      const double res = r[i + c] - a * w[i + c];
      r[i + c] = res;
      p[i + c] = res + bp * p[i + c];
      crr[c] += res * res;
    }
  }
  for (; i < e; ++i) {
    u[i] += a * p[i];
    const double res = r[i] - a * w[i];
    r[i] = res;
    p[i] = res + bp * p[i];
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

/// r = u0 - A u over one row [b, e): returns r.r.
inline double fused_residual_row_scalar(
    const double* __restrict u, const double* __restrict u0,
    const double* __restrict kx, const double* __restrict ky,
    double* __restrict r, std::size_t b, std::size_t e, std::size_t width) {
  double crr[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double res = u0[i + c] - stencil_at(u, kx, ky, i + c, width);
      r[i + c] = res;
      crr[c] += res * res;
    }
  }
  for (; i < e; ++i) {
    const double res = u0[i] - stencil_at(u, kx, ky, i, width);
    r[i] = res;
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

// -- SSE2 -------------------------------------------------------------------

#if TL_FUSED_SIMD

/// 5-point stencil for the two elements at flat indices {i, i+1}; each lane
/// evaluates exactly the stencil_at expression (mul and sub stay separate
/// ops — SSE2 cannot contract them).
inline __m128d stencil2(const double* __restrict v,
                        const double* __restrict kx,
                        const double* __restrict ky, std::size_t i,
                        std::size_t width) {
  const __m128d kxr = _mm_loadu_pd(kx + i + 1);
  const __m128d kxl = _mm_loadu_pd(kx + i);
  const __m128d kyt = _mm_loadu_pd(ky + i + width);
  const __m128d kyb = _mm_loadu_pd(ky + i);
  const __m128d diag = _mm_add_pd(
      _mm_add_pd(_mm_add_pd(_mm_add_pd(_mm_set1_pd(1.0), kxr), kxl), kyt),
      kyb);
  __m128d ap = _mm_mul_pd(diag, _mm_loadu_pd(v + i));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kxr, _mm_loadu_pd(v + i + 1)));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kxl, _mm_loadu_pd(v + i - 1)));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kyt, _mm_loadu_pd(v + i + width)));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kyb, _mm_loadu_pd(v + i - width)));
  return ap;
}

inline RowDots fused_w_row_simd(const double* __restrict p,
                                const double* __restrict kx,
                                const double* __restrict ky,
                                double* __restrict w, std::size_t b,
                                std::size_t e, std::size_t width) {
  double cpw[4], cww[4];
  __m128d pw01 = _mm_setzero_pd(), pw23 = _mm_setzero_pd();
  __m128d ww01 = _mm_setzero_pd(), ww23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d ap01 = stencil2(p, kx, ky, i, width);
    const __m128d ap23 = stencil2(p, kx, ky, i + 2, width);
    _mm_storeu_pd(w + i, ap01);
    _mm_storeu_pd(w + i + 2, ap23);
    pw01 = _mm_add_pd(pw01, _mm_mul_pd(ap01, _mm_loadu_pd(p + i)));
    pw23 = _mm_add_pd(pw23, _mm_mul_pd(ap23, _mm_loadu_pd(p + i + 2)));
    ww01 = _mm_add_pd(ww01, _mm_mul_pd(ap01, ap01));
    ww23 = _mm_add_pd(ww23, _mm_mul_pd(ap23, ap23));
  }
  _mm_storeu_pd(cpw, pw01);
  _mm_storeu_pd(cpw + 2, pw23);
  _mm_storeu_pd(cww, ww01);
  _mm_storeu_pd(cww + 2, ww23);
  for (; i < e; ++i) {
    const double ap = stencil_at(p, kx, ky, i, width);
    w[i] = ap;
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

inline double fused_urp_row_simd(double* __restrict u, double* __restrict r,
                                 double* __restrict p,
                                 const double* __restrict w, std::size_t b,
                                 std::size_t e, double a, double bp) {
  double crr[4];
  const __m128d av = _mm_set1_pd(a);
  const __m128d bpv = _mm_set1_pd(bp);
  __m128d rr01 = _mm_setzero_pd(), rr23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d p01 = _mm_loadu_pd(p + i);
    const __m128d p23 = _mm_loadu_pd(p + i + 2);
    _mm_storeu_pd(u + i,
                  _mm_add_pd(_mm_loadu_pd(u + i), _mm_mul_pd(av, p01)));
    _mm_storeu_pd(u + i + 2,
                  _mm_add_pd(_mm_loadu_pd(u + i + 2), _mm_mul_pd(av, p23)));
    const __m128d r01 =
        _mm_sub_pd(_mm_loadu_pd(r + i), _mm_mul_pd(av, _mm_loadu_pd(w + i)));
    const __m128d r23 = _mm_sub_pd(_mm_loadu_pd(r + i + 2),
                                   _mm_mul_pd(av, _mm_loadu_pd(w + i + 2)));
    _mm_storeu_pd(r + i, r01);
    _mm_storeu_pd(r + i + 2, r23);
    _mm_storeu_pd(p + i, _mm_add_pd(r01, _mm_mul_pd(bpv, p01)));
    _mm_storeu_pd(p + i + 2, _mm_add_pd(r23, _mm_mul_pd(bpv, p23)));
    rr01 = _mm_add_pd(rr01, _mm_mul_pd(r01, r01));
    rr23 = _mm_add_pd(rr23, _mm_mul_pd(r23, r23));
  }
  _mm_storeu_pd(crr, rr01);
  _mm_storeu_pd(crr + 2, rr23);
  for (; i < e; ++i) {
    u[i] += a * p[i];
    const double res = r[i] - a * w[i];
    r[i] = res;
    p[i] = res + bp * p[i];
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

inline double fused_residual_row_simd(
    const double* __restrict u, const double* __restrict u0,
    const double* __restrict kx, const double* __restrict ky,
    double* __restrict r, std::size_t b, std::size_t e, std::size_t width) {
  double crr[4];
  __m128d rr01 = _mm_setzero_pd(), rr23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d r01 =
        _mm_sub_pd(_mm_loadu_pd(u0 + i), stencil2(u, kx, ky, i, width));
    const __m128d r23 = _mm_sub_pd(_mm_loadu_pd(u0 + i + 2),
                                   stencil2(u, kx, ky, i + 2, width));
    _mm_storeu_pd(r + i, r01);
    _mm_storeu_pd(r + i + 2, r23);
    rr01 = _mm_add_pd(rr01, _mm_mul_pd(r01, r01));
    rr23 = _mm_add_pd(rr23, _mm_mul_pd(r23, r23));
  }
  _mm_storeu_pd(crr, rr01);
  _mm_storeu_pd(crr + 2, rr23);
  for (; i < e; ++i) {
    const double res = u0[i] - stencil_at(u, kx, ky, i, width);
    r[i] = res;
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

#endif  // TL_FUSED_SIMD

// -- Dispatchers ------------------------------------------------------------

inline RowDots fused_w_row(const double* __restrict p,
                           const double* __restrict kx,
                           const double* __restrict ky, double* __restrict w,
                           std::size_t b, std::size_t e, std::size_t width) {
#if TL_FUSED_SIMD
  return fused_w_row_simd(p, kx, ky, w, b, e, width);
#else
  return fused_w_row_scalar(p, kx, ky, w, b, e, width);
#endif
}

inline double fused_urp_row(double* __restrict u, double* __restrict r,
                            double* __restrict p, const double* __restrict w,
                            std::size_t b, std::size_t e, double a,
                            double bp) {
#if TL_FUSED_SIMD
  return fused_urp_row_simd(u, r, p, w, b, e, a, bp);
#else
  return fused_urp_row_scalar(u, r, p, w, b, e, a, bp);
#endif
}

inline double fused_residual_row(const double* __restrict u,
                                 const double* __restrict u0,
                                 const double* __restrict kx,
                                 const double* __restrict ky,
                                 double* __restrict r, std::size_t b,
                                 std::size_t e, std::size_t width) {
#if TL_FUSED_SIMD
  return fused_residual_row_simd(u, u0, kx, ky, r, b, e, width);
#else
  return fused_residual_row_scalar(u, u0, kx, ky, r, b, e, width);
#endif
}

}  // namespace tl::core::fused
