#pragma once
// Row primitives for the fused reference kernels' hot sweeps.
//
// Each function processes one padded row [b, e) of a field with raw
// __restrict pointers. Every dot product accumulates into four fixed chains
// c = (element index in row) & 3, combined as (c0 + c2) + (c1 + c3) — the
// chain a value lands in depends only on its position, never on the code
// path, so the two implementations below are bit-identical:
//
//   * `*_simd`   — x86-64 SSE2 (baseline ISA, always present on x86-64):
//                  chains {0,1} and {2,3} live in the two lanes of a pair of
//                  128-bit accumulators; one vector add per two elements
//                  halves the instruction stream of these load-bound loops.
//   * `*_scalar` — portable fallback with the identical chain assignment
//                  and per-element association.
//
// Wider implementations (AVX2: the four chains in one 256-bit accumulator;
// AVX-512: two 4-element groups per step folded low-then-high into the same
// four chains) live in fused_rows_avx2.cpp / fused_rows_avx512.cpp, compiled
// with their own ISA flags, and are reached only through the runtime
// dispatch table in core/isa.hpp — callers never include ISA-specific code.
// tests/test_fusion.cpp asserts scalar and SSE2 agree exactly;
// tests/test_isa.cpp extends the bit-identity battery to every table entry
// of every supported ISA. Per-element arithmetic follows each consuming
// kernel's exact association — apply_stencil's (diag = 1 + kxr + kxl + kyt
// + kyb) for the matvec rows, the fused iterates' (diag = 1 + kxl + kxr +
// kyb + kyt) for the cheby/ppcg/jacobi rows — so the fused results track
// the classic kernels bit-for-bit per path. No FMA contraction happens on
// any path: SSE2 has no FMA, and the AVX TUs are compiled with -mno-fma
// -ffp-contract=off, keeping all builds reproducible across gcc and clang.

#include <cstddef>

#if defined(__SSE2__)
#include <emmintrin.h>
#define TL_FUSED_SIMD 1
#else
#define TL_FUSED_SIMD 0
#endif

namespace tl::core::fused {

struct RowDots {
  double pw = 0.0;
  double ww = 0.0;
};

/// Scalar 5-point stencil at flat index i (apply_stencil's association).
inline double stencil_at(const double* __restrict v,
                         const double* __restrict kx,
                         const double* __restrict ky, std::size_t i,
                         std::size_t width) {
  const double diag = 1.0 + kx[i + 1] + kx[i] + ky[i + width] + ky[i];
  return diag * v[i] - kx[i + 1] * v[i + 1] - kx[i] * v[i - 1] -
         ky[i + width] * v[i + width] - ky[i] * v[i - width];
}

/// Combines the four dot-product chains in the fixed (c0+c2)+(c1+c3) order.
inline double combine_chains(const double* c) {
  return (c[0] + c[2]) + (c[1] + c[3]);
}

/// Recomputes fused_w_row's {p.w, w.w} from an already-written w row,
/// preserving the positional four-chain accumulation bit-for-bit: chain
/// (i - b) & 3 sees its elements in the same ascending-i order as both the
/// unrolled scalar and the SSE2 lane accumulators, so the result is
/// identical whether the row was swept whole or assembled region-by-region
/// (the overlap pipeline's finish path relies on this).
inline RowDots fused_w_row_dots(const double* __restrict p,
                                const double* __restrict w, std::size_t b,
                                std::size_t e) {
  double cpw[4] = {0.0, 0.0, 0.0, 0.0};
  double cww[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = b; i < e; ++i) {
    const double ap = w[i];
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

// -- Portable fallback ------------------------------------------------------

/// w = A p over one row [b, e): returns {p.w, w.w}.
inline RowDots fused_w_row_scalar(const double* __restrict p,
                                  const double* __restrict kx,
                                  const double* __restrict ky,
                                  double* __restrict w, std::size_t b,
                                  std::size_t e, std::size_t width) {
  double cpw[4] = {0.0, 0.0, 0.0, 0.0};
  double cww[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double ap = stencil_at(p, kx, ky, i + c, width);
      w[i + c] = ap;
      cpw[c] += ap * p[i + c];
      cww[c] += ap * ap;
    }
  }
  for (; i < e; ++i) {  // tail keeps the positional chain assignment
    const double ap = stencil_at(p, kx, ky, i, width);
    w[i] = ap;
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

/// u += a p; r -= a w; p = r_new + bp p over one row [b, e): returns r.r.
inline double fused_urp_row_scalar(double* __restrict u, double* __restrict r,
                                   double* __restrict p,
                                   const double* __restrict w, std::size_t b,
                                   std::size_t e, double a, double bp) {
  double crr[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      u[i + c] += a * p[i + c];
      const double res = r[i + c] - a * w[i + c];
      r[i + c] = res;
      p[i + c] = res + bp * p[i + c];
      crr[c] += res * res;
    }
  }
  for (; i < e; ++i) {
    u[i] += a * p[i];
    const double res = r[i] - a * w[i];
    r[i] = res;
    p[i] = res + bp * p[i];
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

/// r = u0 - A u over one row [b, e): returns r.r.
inline double fused_residual_row_scalar(
    const double* __restrict u, const double* __restrict u0,
    const double* __restrict kx, const double* __restrict ky,
    double* __restrict r, std::size_t b, std::size_t e, std::size_t width) {
  double crr[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double res = u0[i + c] - stencil_at(u, kx, ky, i + c, width);
      r[i + c] = res;
      crr[c] += res * res;
    }
  }
  for (; i < e; ++i) {
    const double res = u0[i] - stencil_at(u, kx, ky, i, width);
    r[i] = res;
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

/// Scalar 5-point stencil with the fused iterates' diag association
/// (diag = 1 + kxl + kxr + kyb + kyt — the cheby/ppcg loop bodies' order,
/// which differs from stencil_at's; both are preserved exactly per kernel).
inline double stencil_at_fused(const double* __restrict v,
                               const double* __restrict kx,
                               const double* __restrict ky, std::size_t i,
                               std::size_t width) {
  const double kxl = kx[i], kxr = kx[i + 1];
  const double kyb = ky[i], kyt = ky[i + width];
  return (1.0 + kxl + kxr + kyb + kyt) * v[i] - kxr * v[i + 1] -
         kxl * v[i - 1] - kyt * v[i + width] - kyb * v[i - width];
}

/// Chebyshev fused row: r = u0 - A u, p = a p + bt r, un = u + p (un is the
/// w scratch; the caller swaps u <-> w after the sweep). No reduction.
inline void cheby_row_scalar(const double* __restrict u,
                             const double* __restrict u0,
                             const double* __restrict kx,
                             const double* __restrict ky, double* __restrict r,
                             double* __restrict p, double* __restrict un,
                             std::size_t b, std::size_t e, std::size_t width,
                             double a, double bt) {
  for (std::size_t i = b; i < e; ++i) {
    const double res = u0[i] - stencil_at_fused(u, kx, ky, i, width);
    r[i] = res;
    const double pn = a * p[i] + bt * res;
    p[i] = pn;
    un[i] = u[i] + pn;
  }
}

/// PPCG fused inner row: r -= A sd, u += sd, sn = a sd + bt r (sn is the w
/// scratch; the caller swaps sd <-> w after the sweep). No reduction.
inline void ppcg_row_scalar(const double* __restrict sd,
                            const double* __restrict kx,
                            const double* __restrict ky, double* __restrict u,
                            double* __restrict r, double* __restrict sn,
                            std::size_t b, std::size_t e, std::size_t width,
                            double a, double bt) {
  for (std::size_t i = b; i < e; ++i) {
    const double rn = r[i] - stencil_at_fused(sd, kx, ky, i, width);
    r[i] = rn;
    u[i] += sd[i];
    sn[i] = a * sd[i] + bt * rn;
  }
}

/// Jacobi fused row: u = (u0 + k.w neighbours) / diag, w the previous
/// iterate (the numerator's left-to-right association is the kernel's).
inline void jacobi_row_scalar(const double* __restrict u0,
                              const double* __restrict w,
                              const double* __restrict kx,
                              const double* __restrict ky,
                              double* __restrict u, std::size_t b,
                              std::size_t e, std::size_t width) {
  for (std::size_t i = b; i < e; ++i) {
    const double kxl = kx[i], kxr = kx[i + 1];
    const double kyb = ky[i], kyt = ky[i + width];
    const double diag = 1.0 + kxl + kxr + kyb + kyt;
    u[i] = (u0[i] + kxr * w[i + 1] + kxl * w[i - 1] + kyt * w[i + width] +
            kyb * w[i - width]) /
           diag;
  }
}

/// q = A v over one row (stencil_at's association). The pipelined CG matvec
/// that overlaps the in-flight allreduce; no reduction rides along.
inline void stencil_row_scalar(const double* __restrict v,
                               const double* __restrict kx,
                               const double* __restrict ky,
                               double* __restrict q, std::size_t b,
                               std::size_t e, std::size_t width) {
  for (std::size_t i = b; i < e; ++i) {
    q[i] = stencil_at(v, kx, ky, i, width);
  }
}

/// Pipelined CG init row: w = A r, returning {r.r, w.r} in RowDots{pw, ww}.
inline RowDots pipe_init_row_scalar(const double* __restrict r,
                                    const double* __restrict kx,
                                    const double* __restrict ky,
                                    double* __restrict w, std::size_t b,
                                    std::size_t e, std::size_t width) {
  double crr[4] = {0.0, 0.0, 0.0, 0.0};
  double crw[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double ar = stencil_at(r, kx, ky, i + c, width);
      w[i + c] = ar;
      crr[c] += r[i + c] * r[i + c];
      crw[c] += ar * r[i + c];
    }
  }
  for (; i < e; ++i) {
    const double ar = stencil_at(r, kx, ky, i, width);
    w[i] = ar;
    crr[(i - b) & 3] += r[i] * r[i];
    crw[(i - b) & 3] += ar * r[i];
  }
  return RowDots{combine_chains(crr), combine_chains(crw)};
}

/// Pipelined CG update row (Ghysels–Vanroose recurrences):
///   z = q + bt z;  s = w + bt s;  p = r + bt p;
///   u += a p;      r -= a s;      w -= a z;
/// returning the next iteration's local dots {r.r, w.r} in RowDots{pw, ww}.
inline RowDots pipe_update_row_scalar(double* __restrict z,
                                      double* __restrict s,
                                      double* __restrict p,
                                      double* __restrict u,
                                      double* __restrict r,
                                      double* __restrict w,
                                      const double* __restrict q,
                                      std::size_t b, std::size_t e, double a,
                                      double bt) {
  double crr[4] = {0.0, 0.0, 0.0, 0.0};
  double crw[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double zn = q[i + c] + bt * z[i + c];
      z[i + c] = zn;
      const double sn = w[i + c] + bt * s[i + c];
      s[i + c] = sn;
      const double pn = r[i + c] + bt * p[i + c];
      p[i + c] = pn;
      u[i + c] += a * pn;
      const double rn = r[i + c] - a * sn;
      r[i + c] = rn;
      const double wn = w[i + c] - a * zn;
      w[i + c] = wn;
      crr[c] += rn * rn;
      crw[c] += wn * rn;
    }
  }
  for (; i < e; ++i) {
    const double zn = q[i] + bt * z[i];
    z[i] = zn;
    const double sn = w[i] + bt * s[i];
    s[i] = sn;
    const double pn = r[i] + bt * p[i];
    p[i] = pn;
    u[i] += a * pn;
    const double rn = r[i] - a * sn;
    r[i] = rn;
    const double wn = w[i] - a * zn;
    w[i] = wn;
    crr[(i - b) & 3] += rn * rn;
    crw[(i - b) & 3] += wn * rn;
  }
  return RowDots{combine_chains(crr), combine_chains(crw)};
}

// -- SSE2 -------------------------------------------------------------------

#if TL_FUSED_SIMD

/// 5-point stencil for the two elements at flat indices {i, i+1}; each lane
/// evaluates exactly the stencil_at expression (mul and sub stay separate
/// ops — SSE2 cannot contract them).
inline __m128d stencil2(const double* __restrict v,
                        const double* __restrict kx,
                        const double* __restrict ky, std::size_t i,
                        std::size_t width) {
  const __m128d kxr = _mm_loadu_pd(kx + i + 1);
  const __m128d kxl = _mm_loadu_pd(kx + i);
  const __m128d kyt = _mm_loadu_pd(ky + i + width);
  const __m128d kyb = _mm_loadu_pd(ky + i);
  const __m128d diag = _mm_add_pd(
      _mm_add_pd(_mm_add_pd(_mm_add_pd(_mm_set1_pd(1.0), kxr), kxl), kyt),
      kyb);
  __m128d ap = _mm_mul_pd(diag, _mm_loadu_pd(v + i));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kxr, _mm_loadu_pd(v + i + 1)));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kxl, _mm_loadu_pd(v + i - 1)));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kyt, _mm_loadu_pd(v + i + width)));
  ap = _mm_sub_pd(ap, _mm_mul_pd(kyb, _mm_loadu_pd(v + i - width)));
  return ap;
}

inline RowDots fused_w_row_simd(const double* __restrict p,
                                const double* __restrict kx,
                                const double* __restrict ky,
                                double* __restrict w, std::size_t b,
                                std::size_t e, std::size_t width) {
  double cpw[4], cww[4];
  __m128d pw01 = _mm_setzero_pd(), pw23 = _mm_setzero_pd();
  __m128d ww01 = _mm_setzero_pd(), ww23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d ap01 = stencil2(p, kx, ky, i, width);
    const __m128d ap23 = stencil2(p, kx, ky, i + 2, width);
    _mm_storeu_pd(w + i, ap01);
    _mm_storeu_pd(w + i + 2, ap23);
    pw01 = _mm_add_pd(pw01, _mm_mul_pd(ap01, _mm_loadu_pd(p + i)));
    pw23 = _mm_add_pd(pw23, _mm_mul_pd(ap23, _mm_loadu_pd(p + i + 2)));
    ww01 = _mm_add_pd(ww01, _mm_mul_pd(ap01, ap01));
    ww23 = _mm_add_pd(ww23, _mm_mul_pd(ap23, ap23));
  }
  _mm_storeu_pd(cpw, pw01);
  _mm_storeu_pd(cpw + 2, pw23);
  _mm_storeu_pd(cww, ww01);
  _mm_storeu_pd(cww + 2, ww23);
  for (; i < e; ++i) {
    const double ap = stencil_at(p, kx, ky, i, width);
    w[i] = ap;
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

inline double fused_urp_row_simd(double* __restrict u, double* __restrict r,
                                 double* __restrict p,
                                 const double* __restrict w, std::size_t b,
                                 std::size_t e, double a, double bp) {
  double crr[4];
  const __m128d av = _mm_set1_pd(a);
  const __m128d bpv = _mm_set1_pd(bp);
  __m128d rr01 = _mm_setzero_pd(), rr23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d p01 = _mm_loadu_pd(p + i);
    const __m128d p23 = _mm_loadu_pd(p + i + 2);
    _mm_storeu_pd(u + i,
                  _mm_add_pd(_mm_loadu_pd(u + i), _mm_mul_pd(av, p01)));
    _mm_storeu_pd(u + i + 2,
                  _mm_add_pd(_mm_loadu_pd(u + i + 2), _mm_mul_pd(av, p23)));
    const __m128d r01 =
        _mm_sub_pd(_mm_loadu_pd(r + i), _mm_mul_pd(av, _mm_loadu_pd(w + i)));
    const __m128d r23 = _mm_sub_pd(_mm_loadu_pd(r + i + 2),
                                   _mm_mul_pd(av, _mm_loadu_pd(w + i + 2)));
    _mm_storeu_pd(r + i, r01);
    _mm_storeu_pd(r + i + 2, r23);
    _mm_storeu_pd(p + i, _mm_add_pd(r01, _mm_mul_pd(bpv, p01)));
    _mm_storeu_pd(p + i + 2, _mm_add_pd(r23, _mm_mul_pd(bpv, p23)));
    rr01 = _mm_add_pd(rr01, _mm_mul_pd(r01, r01));
    rr23 = _mm_add_pd(rr23, _mm_mul_pd(r23, r23));
  }
  _mm_storeu_pd(crr, rr01);
  _mm_storeu_pd(crr + 2, rr23);
  for (; i < e; ++i) {
    u[i] += a * p[i];
    const double res = r[i] - a * w[i];
    r[i] = res;
    p[i] = res + bp * p[i];
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

inline double fused_residual_row_simd(
    const double* __restrict u, const double* __restrict u0,
    const double* __restrict kx, const double* __restrict ky,
    double* __restrict r, std::size_t b, std::size_t e, std::size_t width) {
  double crr[4];
  __m128d rr01 = _mm_setzero_pd(), rr23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d r01 =
        _mm_sub_pd(_mm_loadu_pd(u0 + i), stencil2(u, kx, ky, i, width));
    const __m128d r23 = _mm_sub_pd(_mm_loadu_pd(u0 + i + 2),
                                   stencil2(u, kx, ky, i + 2, width));
    _mm_storeu_pd(r + i, r01);
    _mm_storeu_pd(r + i + 2, r23);
    rr01 = _mm_add_pd(rr01, _mm_mul_pd(r01, r01));
    rr23 = _mm_add_pd(rr23, _mm_mul_pd(r23, r23));
  }
  _mm_storeu_pd(crr, rr01);
  _mm_storeu_pd(crr + 2, rr23);
  for (; i < e; ++i) {
    const double res = u0[i] - stencil_at(u, kx, ky, i, width);
    r[i] = res;
    crr[(i - b) & 3] += res * res;
  }
  return combine_chains(crr);
}

/// SSE2 stencil pair with the fused iterates' diag association (the SIMD
/// twin of stencil_at_fused, as stencil2 is of stencil_at).
inline __m128d stencil2_fused(const double* __restrict v,
                              const double* __restrict kx,
                              const double* __restrict ky, std::size_t i,
                              std::size_t width) {
  const __m128d kxl = _mm_loadu_pd(kx + i);
  const __m128d kxr = _mm_loadu_pd(kx + i + 1);
  const __m128d kyb = _mm_loadu_pd(ky + i);
  const __m128d kyt = _mm_loadu_pd(ky + i + width);
  const __m128d diag = _mm_add_pd(
      _mm_add_pd(_mm_add_pd(_mm_add_pd(_mm_set1_pd(1.0), kxl), kxr), kyb),
      kyt);
  __m128d av = _mm_mul_pd(diag, _mm_loadu_pd(v + i));
  av = _mm_sub_pd(av, _mm_mul_pd(kxr, _mm_loadu_pd(v + i + 1)));
  av = _mm_sub_pd(av, _mm_mul_pd(kxl, _mm_loadu_pd(v + i - 1)));
  av = _mm_sub_pd(av, _mm_mul_pd(kyt, _mm_loadu_pd(v + i + width)));
  av = _mm_sub_pd(av, _mm_mul_pd(kyb, _mm_loadu_pd(v + i - width)));
  return av;
}

inline void cheby_row_sse2(const double* __restrict u,
                           const double* __restrict u0,
                           const double* __restrict kx,
                           const double* __restrict ky, double* __restrict r,
                           double* __restrict p, double* __restrict un,
                           std::size_t b, std::size_t e, std::size_t width,
                           double a, double bt) {
  const __m128d av = _mm_set1_pd(a);
  const __m128d btv = _mm_set1_pd(bt);
  std::size_t i = b;
  for (; i + 2 <= e; i += 2) {
    const __m128d res =
        _mm_sub_pd(_mm_loadu_pd(u0 + i), stencil2_fused(u, kx, ky, i, width));
    _mm_storeu_pd(r + i, res);
    const __m128d pn = _mm_add_pd(_mm_mul_pd(av, _mm_loadu_pd(p + i)),
                                  _mm_mul_pd(btv, res));
    _mm_storeu_pd(p + i, pn);
    _mm_storeu_pd(un + i, _mm_add_pd(_mm_loadu_pd(u + i), pn));
  }
  if (i < e) cheby_row_scalar(u, u0, kx, ky, r, p, un, i, e, width, a, bt);
}

inline void ppcg_row_sse2(const double* __restrict sd,
                          const double* __restrict kx,
                          const double* __restrict ky, double* __restrict u,
                          double* __restrict r, double* __restrict sn,
                          std::size_t b, std::size_t e, std::size_t width,
                          double a, double bt) {
  const __m128d av = _mm_set1_pd(a);
  const __m128d btv = _mm_set1_pd(bt);
  std::size_t i = b;
  for (; i + 2 <= e; i += 2) {
    const __m128d sdv = _mm_loadu_pd(sd + i);
    const __m128d rn =
        _mm_sub_pd(_mm_loadu_pd(r + i), stencil2_fused(sd, kx, ky, i, width));
    _mm_storeu_pd(r + i, rn);
    _mm_storeu_pd(u + i, _mm_add_pd(_mm_loadu_pd(u + i), sdv));
    _mm_storeu_pd(sn + i,
                  _mm_add_pd(_mm_mul_pd(av, sdv), _mm_mul_pd(btv, rn)));
  }
  if (i < e) ppcg_row_scalar(sd, kx, ky, u, r, sn, i, e, width, a, bt);
}

inline void jacobi_row_sse2(const double* __restrict u0,
                            const double* __restrict w,
                            const double* __restrict kx,
                            const double* __restrict ky, double* __restrict u,
                            std::size_t b, std::size_t e, std::size_t width) {
  std::size_t i = b;
  for (; i + 2 <= e; i += 2) {
    const __m128d kxl = _mm_loadu_pd(kx + i);
    const __m128d kxr = _mm_loadu_pd(kx + i + 1);
    const __m128d kyb = _mm_loadu_pd(ky + i);
    const __m128d kyt = _mm_loadu_pd(ky + i + width);
    const __m128d diag = _mm_add_pd(
        _mm_add_pd(_mm_add_pd(_mm_add_pd(_mm_set1_pd(1.0), kxl), kxr), kyb),
        kyt);
    __m128d num = _mm_add_pd(_mm_loadu_pd(u0 + i),
                             _mm_mul_pd(kxr, _mm_loadu_pd(w + i + 1)));
    num = _mm_add_pd(num, _mm_mul_pd(kxl, _mm_loadu_pd(w + i - 1)));
    num = _mm_add_pd(num, _mm_mul_pd(kyt, _mm_loadu_pd(w + i + width)));
    num = _mm_add_pd(num, _mm_mul_pd(kyb, _mm_loadu_pd(w + i - width)));
    _mm_storeu_pd(u + i, _mm_div_pd(num, diag));
  }
  if (i < e) jacobi_row_scalar(u0, w, kx, ky, u, i, e, width);
}

inline void stencil_row_sse2(const double* __restrict v,
                             const double* __restrict kx,
                             const double* __restrict ky,
                             double* __restrict q, std::size_t b,
                             std::size_t e, std::size_t width) {
  std::size_t i = b;
  for (; i + 2 <= e; i += 2) {
    _mm_storeu_pd(q + i, stencil2(v, kx, ky, i, width));
  }
  if (i < e) stencil_row_scalar(v, kx, ky, q, i, e, width);
}

inline RowDots pipe_init_row_sse2(const double* __restrict r,
                                  const double* __restrict kx,
                                  const double* __restrict ky,
                                  double* __restrict w, std::size_t b,
                                  std::size_t e, std::size_t width) {
  double crr[4], crw[4];
  __m128d rr01 = _mm_setzero_pd(), rr23 = _mm_setzero_pd();
  __m128d rw01 = _mm_setzero_pd(), rw23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d ar01 = stencil2(r, kx, ky, i, width);
    const __m128d ar23 = stencil2(r, kx, ky, i + 2, width);
    _mm_storeu_pd(w + i, ar01);
    _mm_storeu_pd(w + i + 2, ar23);
    const __m128d r01 = _mm_loadu_pd(r + i);
    const __m128d r23 = _mm_loadu_pd(r + i + 2);
    rr01 = _mm_add_pd(rr01, _mm_mul_pd(r01, r01));
    rr23 = _mm_add_pd(rr23, _mm_mul_pd(r23, r23));
    rw01 = _mm_add_pd(rw01, _mm_mul_pd(ar01, r01));
    rw23 = _mm_add_pd(rw23, _mm_mul_pd(ar23, r23));
  }
  _mm_storeu_pd(crr, rr01);
  _mm_storeu_pd(crr + 2, rr23);
  _mm_storeu_pd(crw, rw01);
  _mm_storeu_pd(crw + 2, rw23);
  for (; i < e; ++i) {
    const double ar = stencil_at(r, kx, ky, i, width);
    w[i] = ar;
    crr[(i - b) & 3] += r[i] * r[i];
    crw[(i - b) & 3] += ar * r[i];
  }
  return RowDots{combine_chains(crr), combine_chains(crw)};
}

inline RowDots pipe_update_row_sse2(double* __restrict z, double* __restrict s,
                                    double* __restrict p, double* __restrict u,
                                    double* __restrict r, double* __restrict w,
                                    const double* __restrict q, std::size_t b,
                                    std::size_t e, double a, double bt) {
  double crr[4], crw[4];
  const __m128d av = _mm_set1_pd(a);
  const __m128d btv = _mm_set1_pd(bt);
  __m128d rr01 = _mm_setzero_pd(), rr23 = _mm_setzero_pd();
  __m128d rw01 = _mm_setzero_pd(), rw23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    for (std::size_t o = 0; o < 4; o += 2) {
      const __m128d rv = _mm_loadu_pd(r + i + o);
      const __m128d wv = _mm_loadu_pd(w + i + o);
      const __m128d zn = _mm_add_pd(_mm_loadu_pd(q + i + o),
                                    _mm_mul_pd(btv, _mm_loadu_pd(z + i + o)));
      _mm_storeu_pd(z + i + o, zn);
      const __m128d sn =
          _mm_add_pd(wv, _mm_mul_pd(btv, _mm_loadu_pd(s + i + o)));
      _mm_storeu_pd(s + i + o, sn);
      const __m128d pn =
          _mm_add_pd(rv, _mm_mul_pd(btv, _mm_loadu_pd(p + i + o)));
      _mm_storeu_pd(p + i + o, pn);
      _mm_storeu_pd(u + i + o,
                    _mm_add_pd(_mm_loadu_pd(u + i + o), _mm_mul_pd(av, pn)));
      const __m128d rn = _mm_sub_pd(rv, _mm_mul_pd(av, sn));
      _mm_storeu_pd(r + i + o, rn);
      const __m128d wn = _mm_sub_pd(wv, _mm_mul_pd(av, zn));
      _mm_storeu_pd(w + i + o, wn);
      if (o == 0) {
        rr01 = _mm_add_pd(rr01, _mm_mul_pd(rn, rn));
        rw01 = _mm_add_pd(rw01, _mm_mul_pd(wn, rn));
      } else {
        rr23 = _mm_add_pd(rr23, _mm_mul_pd(rn, rn));
        rw23 = _mm_add_pd(rw23, _mm_mul_pd(wn, rn));
      }
    }
  }
  _mm_storeu_pd(crr, rr01);
  _mm_storeu_pd(crr + 2, rr23);
  _mm_storeu_pd(crw, rw01);
  _mm_storeu_pd(crw + 2, rw23);
  for (; i < e; ++i) {
    const double zn = q[i] + bt * z[i];
    z[i] = zn;
    const double sn = w[i] + bt * s[i];
    s[i] = sn;
    const double pn = r[i] + bt * p[i];
    p[i] = pn;
    u[i] += a * pn;
    const double rn = r[i] - a * sn;
    r[i] = rn;
    const double wn = w[i] - a * zn;
    w[i] = wn;
    crr[(i - b) & 3] += rn * rn;
    crw[(i - b) & 3] += wn * rn;
  }
  return RowDots{combine_chains(crr), combine_chains(crw)};
}

/// SSE2 twin of the serial fused_w_row_dots recompute (chains {0,1}/{2,3}
/// in two 128-bit accumulators, positional tail).
inline RowDots fused_w_row_dots_sse2(const double* __restrict p,
                                     const double* __restrict w, std::size_t b,
                                     std::size_t e) {
  double cpw[4], cww[4];
  __m128d pw01 = _mm_setzero_pd(), pw23 = _mm_setzero_pd();
  __m128d ww01 = _mm_setzero_pd(), ww23 = _mm_setzero_pd();
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m128d ap01 = _mm_loadu_pd(w + i);
    const __m128d ap23 = _mm_loadu_pd(w + i + 2);
    pw01 = _mm_add_pd(pw01, _mm_mul_pd(ap01, _mm_loadu_pd(p + i)));
    pw23 = _mm_add_pd(pw23, _mm_mul_pd(ap23, _mm_loadu_pd(p + i + 2)));
    ww01 = _mm_add_pd(ww01, _mm_mul_pd(ap01, ap01));
    ww23 = _mm_add_pd(ww23, _mm_mul_pd(ap23, ap23));
  }
  _mm_storeu_pd(cpw, pw01);
  _mm_storeu_pd(cpw + 2, pw23);
  _mm_storeu_pd(cww, ww01);
  _mm_storeu_pd(cww + 2, ww23);
  for (; i < e; ++i) {
    const double ap = w[i];
    cpw[(i - b) & 3] += ap * p[i];
    cww[(i - b) & 3] += ap * ap;
  }
  return RowDots{combine_chains(cpw), combine_chains(cww)};
}

#endif  // TL_FUSED_SIMD

// The unsuffixed dispatchers moved to the runtime ISA table: callers fetch
// the active implementation set once per sweep via isa::active_row_table()
// (core/isa.hpp), which selects scalar/SSE2/AVX2/AVX-512 by CPUID at first
// use, overridable with TL_FORCE_ISA / Settings::force_isa. All entries of
// every table are bit-identical to the `_scalar` functions above.

}  // namespace tl::core::fused
