#include "core/iteration_model.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/driver.hpp"
#include "core/reference_kernels.hpp"

namespace tl::core {

int IterationModel::predict_outer(int nx) const {
  const double v = outer_fit.eval(static_cast<double>(nx));
  return std::max(1, offset + static_cast<int>(std::lround(v)));
}

IterationModel calibrate_iteration_model(SolverKind solver,
                                         const Settings& proto,
                                         std::span<const int> mesh_sizes) {
  if (mesh_sizes.size() < 2) {
    throw std::invalid_argument("calibrate_iteration_model: need >= 2 sizes");
  }
  IterationModel model;
  model.solver = solver;
  switch (solver) {
    case SolverKind::kCg: model.offset = 0; break;
    case SolverKind::kCheby: model.offset = proto.cg_prep_iters + 1; break;
    case SolverKind::kPpcg: model.offset = proto.cg_prep_iters; break;
    case SolverKind::kJacobi: model.offset = 0; break;
  }

  std::vector<double> xs, ys;
  double inner_ratio_sum = 0.0;
  int inner_ratio_count = 0;
  for (const int nx : mesh_sizes) {
    Settings s = proto;
    s.nx = nx;
    s.ny = nx;
    s.solver = solver;
    s.end_step = 1;
    if (solver == SolverKind::kPpcg) {
      s.ppcg_inner_steps = recommended_ppcg_inner_steps(nx);
    }
    Driver driver(s, std::make_unique<ReferenceKernels>(
                         Mesh(s.nx, s.ny, s.halo_depth)));
    const StepReport report = driver.run_step();

    CalibrationPoint point;
    point.nx = nx;
    point.outer_iterations = report.solve.iterations;
    point.inner_iterations = report.solve.inner_iterations;
    point.converged = report.solve.converged;
    model.points.push_back(point);

    xs.push_back(static_cast<double>(nx));
    ys.push_back(static_cast<double>(
        std::max(1, point.outer_iterations - model.offset)));
    if (point.outer_iterations > 0 && point.inner_iterations > 0) {
      inner_ratio_sum += static_cast<double>(point.inner_iterations) /
                         static_cast<double>(point.outer_iterations);
      ++inner_ratio_count;
    }
  }
  model.outer_fit = tl::util::fit_power(xs, ys);
  if (inner_ratio_count > 0) {
    model.inner_per_outer = inner_ratio_sum / inner_ratio_count;
  }
  return model;
}

std::vector<int> default_calibration_ladder() { return {128, 192, 256, 384}; }

}  // namespace tl::core
