#include "core/driver.hpp"

#include <stdexcept>

#include "core/isa.hpp"
#include "core/state_init.hpp"

namespace tl::core {

namespace {
Mesh mesh_from_settings(const Settings& s) {
  Mesh mesh(s.nx, s.ny, s.halo_depth);
  mesh.x_min = s.x_min;
  mesh.x_max = s.x_max;
  mesh.y_min = s.y_min;
  mesh.y_max = s.y_max;
  return mesh;
}
}  // namespace

Driver::Driver(const Settings& settings, std::unique_ptr<SolverKernels> kernels,
               DriverOptions options)
    : settings_(settings),
      mesh_(mesh_from_settings(settings)),
      kernels_(std::move(kernels)) {
  settings_.validate();
  if (!kernels_) throw std::invalid_argument("Driver: null kernels");
  if (!settings_.force_isa.empty()) {
    // validate() vetted the name; unavailable choices degrade to scalar
    // inside the dispatcher rather than failing the run.
    isa::force_isa(isa::parse_isa(settings_.force_isa));
  }
  if (options.materialize_host_state) {
    chunk_.emplace(mesh_);
    apply_initial_states(*chunk_, settings_);
  } else {
    placeholder_.emplace(Mesh(1, 1, 1));
  }
}

const Chunk& Driver::chunk() const {
  if (!chunk_) {
    throw std::logic_error("Driver::chunk: lightweight mode has no host state");
  }
  return *chunk_;
}

StepReport Driver::run_step() {
  StepReport report;
  report.step = ++step_;
  report.dt = settings_.dt_init;

  const double start_ns = kernels_->clock().elapsed_ns();

  // TeaLeaf's per-step sequence: map state onto the device, form u/u0 and
  // the face coefficients, make halos consistent, solve, finalise.
  kernels_->upload_state(chunk_ ? *chunk_ : *placeholder_);
  kernels_->halo_update(kMaskDensity | kMaskEnergy0, mesh_.halo_depth);
  kernels_->init_u();

  const double rx = report.dt / (mesh_.dx() * mesh_.dx());
  const double ry = report.dt / (mesh_.dy() * mesh_.dy());
  kernels_->init_coefficients(settings_.coefficient, rx, ry);
  kernels_->halo_update(kMaskU, 1);

  report.solve = solve(settings_.solver, *kernels_,
                       SolveOptions::from_settings(settings_));

  kernels_->finalise();
  report.summary = kernels_->field_summary();
  kernels_->download_energy(chunk_ ? *chunk_ : *placeholder_);

  // Advance the state for the next step: energy0 <- energy (host side; the
  // next upload_state ships it back).
  if (chunk_) {
    const auto energy = chunk_->field(FieldId::kEnergy);
    auto energy0 = chunk_->field(FieldId::kEnergy0);
    for (int y = 0; y < mesh_.padded_ny(); ++y) {
      for (int x = 0; x < mesh_.padded_nx(); ++x) energy0(x, y) = energy(x, y);
    }
  }

  report.sim_step_ns = kernels_->clock().elapsed_ns() - start_ns;
  return report;
}

RunReport Driver::run() {
  RunReport report;
  for (int s = 0; s < settings_.end_step; ++s) {
    report.steps.push_back(run_step());
  }
  const auto& clock = kernels_->clock();
  report.sim_total_seconds = clock.elapsed_seconds();
  report.achieved_bandwidth_gbs = clock.achieved_bandwidth_gbs();
  report.kernel_launches = clock.launches();
  return report;
}

}  // namespace tl::core
