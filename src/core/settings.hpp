#pragma once
// Solver configuration, mirroring TeaLeaf's tea.in deck. Every port solves
// with *identical* parameters — the paper's methodological requirement that
// "core solver logic and parameters were kept consistent between ports".

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "util/ini.hpp"

namespace tl::core {

enum class SolverKind { kCg, kCheby, kPpcg, kJacobi };

/// The paper's three evaluated solvers (Jacobi is TeaLeaf's slow baseline
/// and appears in no figure).
inline constexpr std::array<SolverKind, 3> kAllSolvers = {
    SolverKind::kCg, SolverKind::kCheby, SolverKind::kPpcg};

constexpr std::string_view solver_name(SolverKind s) {
  switch (s) {
    case SolverKind::kCg: return "CG";
    case SolverKind::kCheby: return "Chebyshev";
    case SolverKind::kPpcg: return "PPCG";
    case SolverKind::kJacobi: return "Jacobi";
  }
  return "?";
}

/// Diffusion coefficient from cell density (TeaLeaf tl_coefficient).
enum class Coefficient { kConductivity, kRecipConductivity };

/// One rectangular initial state (tea.in `state` line).
struct StateRegion {
  double density = 1.0;
  double energy = 1.0;
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
};

struct Settings {
  // Mesh.
  int nx = 128;
  int ny = 128;
  int halo_depth = 2;
  double x_min = 0.0, x_max = 10.0;
  double y_min = 0.0, y_max = 10.0;

  // Time stepping.
  double dt_init = 0.004;
  int end_step = 1;

  // Distribution: MiniComm ranks the mesh is block-decomposed over
  // (src/dist). 1 = the classic single-chunk run.
  int nranks = 1;

  // Solver.
  SolverKind solver = SolverKind::kCg;
  Coefficient coefficient = Coefficient::kConductivity;
  double eps = 1e-15;       // tolerance on rr (squared residual norm)
  int max_iters = 10'000;
  int cg_prep_iters = 20;   // CG bootstrap before Chebyshev/PPCG eigen-est
  int ppcg_inner_steps = 10;
  int check_interval = 20;  // Chebyshev true-residual check cadence
  double eigen_safety = 0.10;  // widen the estimated spectrum by this factor
  bool use_fused = true;    // dispatch caps()-advertised fused kernels
  bool overlap_comm = true;  // overlap halo exchange with interior compute
                             // (multi-rank, regions-capable ports only)
  bool elastic = false;  // rank-count-invariant numerics: per-row reductions
                         // folded over the global row order, row-strip
                         // decomposition. Forces the classic (non-fused,
                         // non-overlapped) path; needed for checkpoints that
                         // resume into a different rank count bit-for-bit.
  bool use_pipelined = false;  // pipelined (Ghysels–Vanroose) CG: the fused
                               // dot-product allreduce is initiated
                               // nonblocking and overlapped with the next
                               // matvec. CG only; needs kCapPipelined.
  std::string force_isa;  // "" = auto (TL_FORCE_ISA env, then CPUID);
                          // "scalar"|"sse2"|"avx2"|"avx512" pins the fused
                          // row-kernel ISA (tl_force_isa deck key). All ISAs
                          // are bit-identical, so this only changes speed.

  // Initial states: states[0] is the background (whole domain); later
  // entries paint rectangles over it.
  std::vector<StateRegion> states;

  /// TeaLeaf's default benchmark problem: cold dense background with a hot
  /// light square in the lower-left corner (tea.in defaults).
  static Settings default_problem();

  /// Reads a tea.in-style deck; unspecified keys keep defaults.
  static Settings from_config(const tl::util::IniConfig& cfg);

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// PPCG inner smoothing steps scaled to the mesh: the polynomial degree must
/// track sqrt(condition) ~ nx for the smoother to keep reducing the outer
/// (reduction-heavy) iteration count — the communication-avoiding regime the
/// solver is designed for. The benches and iteration calibration use this
/// rule so small-mesh fits extrapolate to the paper's 4096^2 runs.
inline int recommended_ppcg_inner_steps(int nx) {
  return std::max(10, nx / 12);
}

}  // namespace tl::core
