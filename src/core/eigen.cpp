#include "core/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::core {

Tridiagonal lanczos_tridiagonal(std::span<const double> alphas,
                                std::span<const double> betas) {
  if (alphas.size() < 2 || betas.size() + 1 < alphas.size()) {
    throw std::invalid_argument(
        "lanczos_tridiagonal: need >=2 alphas and matching betas");
  }
  const std::size_t n = alphas.size();
  Tridiagonal t;
  t.diag.resize(n);
  t.off.resize(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (alphas[k] <= 0.0) {
      throw std::invalid_argument("lanczos_tridiagonal: alpha <= 0");
    }
    t.diag[k] = 1.0 / alphas[k];
    if (k > 0) {
      if (betas[k - 1] < 0.0) {
        throw std::invalid_argument("lanczos_tridiagonal: beta < 0");
      }
      t.diag[k] += betas[k - 1] / alphas[k - 1];
      t.off[k] = std::sqrt(betas[k - 1]) / alphas[k - 1];
    }
  }
  return t;
}

int sturm_count(const Tridiagonal& t, double x) {
  // Count sign agreements of the Sturm sequence d_k = (diag_k - x) -
  // off_k^2 / d_{k-1}; the number of negative d_k equals the number of
  // eigenvalues below x.
  int count = 0;
  double d = 1.0;
  constexpr double tiny = 1e-300;
  for (std::size_t k = 0; k < t.diag.size(); ++k) {
    const double off2 = (k == 0) ? 0.0 : t.off[k] * t.off[k];
    d = t.diag[k] - x - off2 / d;
    if (d == 0.0) d = -tiny;
    if (d < 0.0) ++count;
  }
  return count;
}

namespace {
double bisect_for_count(const Tridiagonal& t, int target_below, double lo,
                        double hi, double tol) {
  // Smallest x such that sturm_count(x) >= target_below.
  for (int it = 0; it < 200 && (hi - lo) > tol * std::max(1.0, std::abs(hi));
       ++it) {
    const double mid = 0.5 * (lo + hi);
    if (sturm_count(t, mid) >= target_below) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}
}  // namespace

EigenEstimate extremal_eigenvalues(const Tridiagonal& t, double tol) {
  if (t.diag.empty()) return {};
  // Gershgorin bounds.
  double lo = t.diag[0], hi = t.diag[0];
  for (std::size_t k = 0; k < t.diag.size(); ++k) {
    const double left = (k == 0) ? 0.0 : std::abs(t.off[k]);
    const double right = (k + 1 == t.diag.size()) ? 0.0 : std::abs(t.off[k + 1]);
    lo = std::min(lo, t.diag[k] - left - right);
    hi = std::max(hi, t.diag[k] + left + right);
  }
  const int n = static_cast<int>(t.diag.size());
  EigenEstimate e;
  e.min = bisect_for_count(t, 1, lo, hi, tol);
  e.max = bisect_for_count(t, n, lo, hi, tol);
  e.valid = e.min > 0.0 && e.max >= e.min;
  return e;
}

EigenEstimate estimate_spectrum(std::span<const double> alphas,
                                std::span<const double> betas, double safety) {
  const Tridiagonal t = lanczos_tridiagonal(alphas, betas);
  EigenEstimate e = extremal_eigenvalues(t);
  if (!e.valid) return e;
  e.min *= (1.0 - safety);
  e.max *= (1.0 + safety);
  return e;
}

ChebyCoefficients cheby_coefficients(double eig_min, double eig_max,
                                     int max_iters) {
  if (!(eig_min > 0.0) || !(eig_max > eig_min)) {
    throw std::invalid_argument("cheby_coefficients: need 0 < min < max");
  }
  ChebyCoefficients c;
  c.theta = 0.5 * (eig_max + eig_min);
  c.delta = 0.5 * (eig_max - eig_min);
  c.sigma = c.theta / c.delta;
  c.alphas.reserve(static_cast<std::size_t>(max_iters));
  c.betas.reserve(static_cast<std::size_t>(max_iters));
  double rho = 1.0 / c.sigma;
  for (int k = 0; k < max_iters; ++k) {
    const double rho_new = 1.0 / (2.0 * c.sigma - rho);
    c.alphas.push_back(rho_new * rho);
    c.betas.push_back(2.0 * rho_new / c.delta);
    rho = rho_new;
  }
  return c;
}

int cheby_iteration_estimate(double eig_min, double eig_max,
                             double eps_ratio) {
  if (!(eig_min > 0.0) || !(eig_max > eig_min) || !(eps_ratio > 0.0) ||
      eps_ratio >= 1.0) {
    throw std::invalid_argument("cheby_iteration_estimate: bad inputs");
  }
  const double cn = eig_max / eig_min;
  const double rate = (std::sqrt(cn) - 1.0) / (std::sqrt(cn) + 1.0);
  return std::max(1, static_cast<int>(std::ceil(std::log(eps_ratio) /
                                                std::log(rate))));
}

}  // namespace tl::core
