#include "core/solvers.hpp"
#include <algorithm>


#include <stdexcept>

namespace tl::core {

namespace {

/// TeaLeaf's matrix is A = I + dt * div(K grad) with a symmetric positive
/// semi-definite diffusion part under reflective (Neumann) boundaries, so
/// its smallest eigenvalue is exactly 1 (the constant mode). The Lanczos
/// bootstrap approaches lambda_min from above and overestimates it badly on
/// large meshes, which would wreck the Chebyshev interval; clamping to the
/// provable bound keeps the assumed interval containing the true spectrum.
EigenEstimate clamp_spectrum(EigenEstimate e) {
  e.min = std::min(e.min, 1.0);
  return e;
}

/// CG bootstrap shared by Chebyshev and PPCG: runs `prep` CG iterations,
/// recording alpha/beta for the Lanczos spectrum estimate. Returns the
/// current rr. May converge outright (tiny meshes) — stats reflect that.
double cg_bootstrap(SolverKernels& k, const SolveOptions& opt, int prep,
                    SolveStats& stats, std::vector<double>& alphas,
                    std::vector<double>& betas) {
  double rro = k.cg_init();
  stats.initial_rr = rro;
  stats.rr_history.push_back(rro);
  k.halo_update(kMaskP, 1);
  double rrn = rro;
  for (int it = 0; it < prep; ++it) {
    const double pw = k.cg_calc_w();
    const double alpha = rro / pw;
    rrn = k.cg_calc_ur(alpha);
    const double beta = rrn / rro;
    alphas.push_back(alpha);
    betas.push_back(beta);
    ++stats.iterations;
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.converged_on_ur = true;
      stats.final_rr = rrn;
      return rrn;
    }
    k.cg_calc_p(beta);
    k.halo_update(kMaskP, 1);
    rro = rrn;
  }
  return rrn;
}

}  // namespace

SolveStats solve_cg(SolverKernels& k, const SolveOptions& opt) {
  SolveStats stats;
  stats.solver = SolverKind::kCg;

  double rro = k.cg_init();
  stats.initial_rr = rro;
  stats.rr_history.push_back(rro);
  if (rro < opt.eps) {  // already solved (cold uniform problem)
    stats.converged = true;
    stats.final_rr = rro;
    return stats;
  }
  k.halo_update(kMaskP, 1);

  for (int it = 0; it < opt.max_iters; ++it) {
    const double pw = k.cg_calc_w();
    if (pw == 0.0) throw std::runtime_error("CG breakdown: p.Ap == 0");
    const double alpha = rro / pw;
    const double rrn = k.cg_calc_ur(alpha);
    ++stats.iterations;
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.converged_on_ur = true;
      stats.final_rr = rrn;
      return stats;
    }
    const double beta = rrn / rro;
    k.cg_calc_p(beta);
    k.halo_update(kMaskP, 1);
    rro = rrn;
  }
  stats.final_rr = rro;
  return stats;
}

SolveStats solve_cheby(SolverKernels& k, const SolveOptions& opt) {
  SolveStats stats;
  stats.solver = SolverKind::kCheby;

  std::vector<double> alphas, betas;
  double rr = cg_bootstrap(k, opt, opt.cg_prep_iters, stats, alphas, betas);
  if (stats.converged) return stats;

  stats.spectrum =
      clamp_spectrum(estimate_spectrum(alphas, betas, opt.eigen_safety));
  if (!stats.spectrum.valid) {
    throw std::runtime_error("Chebyshev: eigenvalue estimation failed");
  }
  const ChebyCoefficients coef =
      cheby_coefficients(stats.spectrum.min, stats.spectrum.max, opt.max_iters);

  // r is current after the bootstrap (cg_calc_ur left it there).
  k.cheby_init(coef.theta);
  k.halo_update(kMaskU, 1);
  ++stats.iterations;

  for (int it = 0; it < opt.max_iters && stats.iterations < opt.max_iters;
       ++it) {
    k.cheby_iterate(coef.alphas[static_cast<std::size_t>(it)],
                    coef.betas[static_cast<std::size_t>(it)]);
    k.halo_update(kMaskU, 1);
    ++stats.iterations;
    if ((it + 1) % opt.check_interval == 0) {
      rr = k.calc_2norm(NormTarget::kResidual);
      stats.rr_history.push_back(rr);
      if (rr < opt.eps) {
        stats.converged = true;
        break;
      }
    }
  }
  // Authoritative final residual.
  k.calc_residual();
  stats.final_rr = k.calc_2norm(NormTarget::kResidual);
  stats.rr_history.push_back(stats.final_rr);
  stats.converged = stats.final_rr < opt.eps;
  return stats;
}

SolveStats solve_ppcg(SolverKernels& k, const SolveOptions& opt) {
  SolveStats stats;
  stats.solver = SolverKind::kPpcg;

  std::vector<double> alphas, betas;
  double rro = cg_bootstrap(k, opt, opt.cg_prep_iters, stats, alphas, betas);
  if (stats.converged) return stats;

  stats.spectrum =
      clamp_spectrum(estimate_spectrum(alphas, betas, opt.eigen_safety));
  if (!stats.spectrum.valid) {
    throw std::runtime_error("PPCG: eigenvalue estimation failed");
  }
  const ChebyCoefficients coef = cheby_coefficients(
      stats.spectrum.min, stats.spectrum.max, opt.ppcg_inner_steps);

  // The bootstrap ends after cg_calc_p/halo(p) with rro current; continue
  // the outer CG with polynomially smoothed residuals (TeaLeaf's scheme:
  // the smoothing updates u and r directly, no extra vector).
  for (int it = 0; it < opt.max_iters; ++it) {
    const double pw = k.cg_calc_w();
    if (pw == 0.0) throw std::runtime_error("PPCG breakdown: p.Ap == 0");
    const double alpha = rro / pw;
    double rrn = k.cg_calc_ur(alpha);
    ++stats.iterations;
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.converged_on_ur = true;
      stats.final_rr = rrn;
      return stats;
    }

    // Inner Chebyshev smoothing of the residual.
    k.ppcg_init_sd(coef.theta);
    k.halo_update(kMaskSd, 1);
    for (int j = 0; j < opt.ppcg_inner_steps; ++j) {
      k.ppcg_inner(coef.alphas[static_cast<std::size_t>(j)],
                   coef.betas[static_cast<std::size_t>(j)]);
      k.halo_update(kMaskSd, 1);
      ++stats.inner_iterations;
    }
    rrn = k.calc_2norm(NormTarget::kResidual);
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.final_rr = rrn;
      return stats;
    }

    const double beta = rrn / rro;
    k.cg_calc_p(beta);
    k.halo_update(kMaskP, 1);
    rro = rrn;
  }
  stats.final_rr = rro;
  return stats;
}

SolveStats solve_jacobi(SolverKernels& k, const SolveOptions& opt) {
  // TeaLeaf's explicit baseline: slow (iterations scale with the condition
  // number, not its square root) but the simplest possible kernel pair.
  SolveStats stats;
  stats.solver = SolverKind::kJacobi;

  k.calc_residual();
  double rr = k.calc_2norm(NormTarget::kResidual);
  stats.initial_rr = rr;
  stats.rr_history.push_back(rr);
  if (rr < opt.eps) {
    stats.converged = true;
    stats.final_rr = rr;
    return stats;
  }

  for (int it = 0; it < opt.max_iters; ++it) {
    k.jacobi_copy_u();
    k.jacobi_iterate();
    k.halo_update(kMaskU, 1);
    ++stats.iterations;
    if ((it + 1) % opt.check_interval == 0) {
      k.calc_residual();
      rr = k.calc_2norm(NormTarget::kResidual);
      stats.rr_history.push_back(rr);
      if (rr < opt.eps) break;
    }
  }
  k.calc_residual();
  stats.final_rr = k.calc_2norm(NormTarget::kResidual);
  stats.rr_history.push_back(stats.final_rr);
  stats.converged = stats.final_rr < opt.eps;
  return stats;
}

SolveStats solve(SolverKind kind, SolverKernels& k, const SolveOptions& opt) {
  switch (kind) {
    case SolverKind::kCg: return solve_cg(k, opt);
    case SolverKind::kCheby: return solve_cheby(k, opt);
    case SolverKind::kPpcg: return solve_ppcg(k, opt);
    case SolverKind::kJacobi: return solve_jacobi(k, opt);
  }
  throw std::invalid_argument("solve: unsupported solver kind");
}

}  // namespace tl::core
