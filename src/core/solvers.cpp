#include "core/solvers.hpp"
#include <algorithm>


#include <stdexcept>

namespace tl::core {

namespace {

/// TeaLeaf's matrix is A = I + dt * div(K grad) with a symmetric positive
/// semi-definite diffusion part under reflective (Neumann) boundaries, so
/// its smallest eigenvalue is exactly 1 (the constant mode). The Lanczos
/// bootstrap approaches lambda_min from above and overestimates it badly on
/// large meshes, which would wreck the Chebyshev interval; clamping to the
/// provable bound keeps the assumed interval containing the true spectrum.
EigenEstimate clamp_spectrum(EigenEstimate e) {
  e.min = std::min(e.min, 1.0);
  return e;
}

/// True when the solver may take the fused path guarded by `cap`.
bool want_fused(const SolverKernels& k, const SolveOptions& opt, unsigned cap) {
  return opt.use_fused && (k.caps() & cap) != 0;
}

struct FusedCgIter {
  double alpha = 0.0;
  double beta = 0.0;
  double rrn = 0.0;
};

/// One fused CG iteration after w = A p has produced its two dot products.
/// The next search direction needs beta *before* the single u/r/p sweep, so
/// it is predicted from the exact expansion of the new residual norm,
///   rr_new = rro - 2 alpha (r.w) + alpha^2 (w.w),
/// where conjugacy turns r.w into p.w (p = r + beta p_old, p_old.w = 0) and
/// alpha = rro / p.w collapses the whole expression to
///   rr_new = alpha^2 (w.w) - rro,
/// clamped at zero against cancellation near convergence (Cauchy-Schwarz
/// guarantees the exact value is nonnegative). The sweep's directly summed
/// r.r is the authoritative rrn used for convergence and the residual
/// history (so the history stays a genuinely measured quantity).
FusedCgIter fused_cg_iter(SolverKernels& k, double rro, const CgFusedW& wf) {
  FusedCgIter s;
  s.alpha = rro / wf.pw;
  const double predicted = std::max(0.0, s.alpha * s.alpha * wf.ww - rro);
  s.beta = predicted / rro;
  s.rrn = k.cg_fused_ur_p(s.alpha, s.beta);
  return s;
}

/// CG bootstrap shared by Chebyshev and PPCG: runs `prep` CG iterations,
/// recording alpha/beta for the Lanczos spectrum estimate. Returns the
/// current rr. May converge outright (tiny meshes) — stats reflect that.
double cg_bootstrap(SolverKernels& k, const SolveOptions& opt, int prep,
                    SolveStats& stats, std::vector<double>& alphas,
                    std::vector<double>& betas) {
  const bool fused = want_fused(k, opt, kCapCgFused);
  double rro = k.cg_init();
  stats.initial_rr = rro;
  stats.rr_history.push_back(rro);
  k.halo_update(kMaskP, 1);
  double rrn = rro;
  for (int it = 0; it < prep; ++it) {
    double alpha = 0.0;
    double beta = 0.0;
    if (fused) {
      const FusedCgIter s = fused_cg_iter(k, rro, k.cg_calc_w_fused());
      alpha = s.alpha;
      beta = s.beta;
      rrn = s.rrn;
    } else {
      const double pw = k.cg_calc_w();
      alpha = rro / pw;
      rrn = k.cg_calc_ur(alpha);
      beta = rrn / rro;
    }
    alphas.push_back(alpha);
    betas.push_back(beta);
    ++stats.iterations;
    ++(fused ? stats.fused_iterations : stats.classic_iterations);
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.converged_on_ur = true;
      stats.final_rr = rrn;
      return rrn;
    }
    if (!fused) k.cg_calc_p(beta);  // the fused sweep already built p
    k.halo_update(kMaskP, 1);
    rro = rrn;
  }
  return rrn;
}

/// r = u0 - A u and its squared norm: one pass on ports that fuse it.
double residual_norm(SolverKernels& k, const SolveOptions& opt) {
  if (want_fused(k, opt, kCapResidualNorm)) return k.fused_residual_norm();
  k.calc_residual();
  return k.calc_2norm(NormTarget::kResidual);
}

/// Pipelined (Ghysels–Vanroose) CG. Algebraically equivalent to classic CG
/// but restructured so each iteration has exactly one fused {r.r, w.r}
/// allreduce, *begun* (cg_pipe_dots_begin) before the matvec q = A w and
/// *completed* (cg_pipe_dots_complete) after it — a distributed layer that
/// implements the begin/complete pair nonblocking hides the reduction
/// latency behind the matvec. Single-rank begin/complete is the identity.
///
/// Recurrences per iteration (w = A r maintained incrementally):
///   gamma = r.r, delta = w.r            (the fused dots)
///   beta  = gamma / gamma_prev          (0 on the first iteration)
///   alpha = gamma / (delta - beta * gamma / alpha_prev)
///   z <- q + beta z;  s <- w + beta s;  p <- r + beta p
///   u += alpha p;  r -= alpha s;  w -= alpha z
/// The update sweep also produces the *next* iteration's local dots, so
/// convergence is detected one iteration late (the classic pipelined-CG
/// cost: the final halo + matvec + allreduce are wasted work). On
/// non-convergence the history is therefore one entry shorter than classic
/// CG's at the same max_iters.
SolveStats solve_cg_pipelined(SolverKernels& k, const SolveOptions& opt) {
  SolveStats stats;
  stats.solver = SolverKind::kCg;

  const double rro = k.cg_init();  // w = A u, r = u0 - A u, p = r
  stats.initial_rr = rro;
  stats.rr_history.push_back(rro);
  if (rro < opt.eps) {  // already solved (cold uniform problem)
    stats.converged = true;
    stats.final_rr = rro;
    return stats;
  }

  k.halo_update(kMaskR, 1);            // w = A r needs r's halo
  CgPipeDots local = k.cg_pipe_init();  // w = A r, local {r.r, w.r}

  double gamma_prev = 0.0;
  double alpha_prev = 0.0;
  double gamma_last = rro;  // final_rr when max_iters runs out
  for (int it = 0; it < opt.max_iters; ++it) {
    k.cg_pipe_dots_begin(local);  // allreduce in flight from here...
    k.halo_update(kMaskW, 1);
    k.cg_pipe_calc_q();                                // ...behind q = A w
    const CgPipeDots dots = k.cg_pipe_dots_complete();
    const double gamma = dots.rr;
    if (it > 0) {
      // gamma is the squared residual norm produced by the *previous*
      // update sweep: record and check it now, exactly where classic CG
      // records its rrn (so histories align entry-for-entry in order).
      ++stats.iterations;
      ++stats.fused_iterations;
      stats.rr_history.push_back(gamma);
      gamma_last = gamma;
      if (gamma < opt.eps) {
        stats.converged = true;
        stats.converged_on_ur = true;
        stats.final_rr = gamma;
        return stats;
      }
    }
    const double beta = (it == 0) ? 0.0 : gamma / gamma_prev;
    const double denom =
        (it == 0) ? dots.rw : dots.rw - beta * gamma / alpha_prev;
    if (denom == 0.0) {
      throw std::runtime_error("pipelined CG breakdown: denominator == 0");
    }
    const double alpha = gamma / denom;
    gamma_prev = gamma;
    alpha_prev = alpha;
    local = k.cg_pipe_update(alpha, beta);
  }
  stats.final_rr = gamma_last;
  return stats;
}

}  // namespace

SolveStats solve_cg(SolverKernels& k, const SolveOptions& opt) {
  if (opt.use_pipelined && (k.caps() & kCapPipelined) != 0) {
    return solve_cg_pipelined(k, opt);
  }
  SolveStats stats;
  stats.solver = SolverKind::kCg;

  double rro = k.cg_init();
  stats.initial_rr = rro;
  stats.rr_history.push_back(rro);
  if (rro < opt.eps) {  // already solved (cold uniform problem)
    stats.converged = true;
    stats.final_rr = rro;
    return stats;
  }
  k.halo_update(kMaskP, 1);

  const bool fused = want_fused(k, opt, kCapCgFused);
  for (int it = 0; it < opt.max_iters; ++it) {
    double rrn = 0.0;
    if (fused) {
      const CgFusedW wf = k.cg_calc_w_fused();
      if (wf.pw == 0.0) throw std::runtime_error("CG breakdown: p.Ap == 0");
      rrn = fused_cg_iter(k, rro, wf).rrn;
    } else {
      const double pw = k.cg_calc_w();
      if (pw == 0.0) throw std::runtime_error("CG breakdown: p.Ap == 0");
      const double alpha = rro / pw;
      rrn = k.cg_calc_ur(alpha);
    }
    ++stats.iterations;
    ++(fused ? stats.fused_iterations : stats.classic_iterations);
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.converged_on_ur = true;
      stats.final_rr = rrn;
      return stats;
    }
    if (!fused) k.cg_calc_p(rrn / rro);
    k.halo_update(kMaskP, 1);
    rro = rrn;
  }
  stats.final_rr = rro;
  return stats;
}

SolveStats solve_cheby(SolverKernels& k, const SolveOptions& opt) {
  SolveStats stats;
  stats.solver = SolverKind::kCheby;

  std::vector<double> alphas, betas;
  double rr = cg_bootstrap(k, opt, opt.cg_prep_iters, stats, alphas, betas);
  if (stats.converged) return stats;

  stats.spectrum =
      clamp_spectrum(estimate_spectrum(alphas, betas, opt.eigen_safety));
  if (!stats.spectrum.valid) {
    throw std::runtime_error("Chebyshev: eigenvalue estimation failed");
  }
  const ChebyCoefficients coef =
      cheby_coefficients(stats.spectrum.min, stats.spectrum.max, opt.max_iters);

  // r is current after the bootstrap (cg_calc_ur left it there).
  k.cheby_init(coef.theta);
  k.halo_update(kMaskU, 1);
  ++stats.iterations;

  const bool fused = want_fused(k, opt, kCapChebyFused);
  for (int it = 0; it < opt.max_iters && stats.iterations < opt.max_iters;
       ++it) {
    const double a = coef.alphas[static_cast<std::size_t>(it)];
    const double b = coef.betas[static_cast<std::size_t>(it)];
    if (fused) {
      k.cheby_fused_iterate(a, b);
    } else {
      k.cheby_iterate(a, b);
    }
    k.halo_update(kMaskU, 1);
    ++stats.iterations;
    ++(fused ? stats.fused_iterations : stats.classic_iterations);
    if ((it + 1) % opt.check_interval == 0) {
      // The iterate keeps r current, so the periodic check is a bare norm.
      rr = k.calc_2norm(NormTarget::kResidual);
      stats.rr_history.push_back(rr);
      if (rr < opt.eps) {
        stats.converged = true;
        break;
      }
    }
  }
  // Authoritative final residual.
  stats.final_rr = residual_norm(k, opt);
  stats.rr_history.push_back(stats.final_rr);
  stats.converged = stats.final_rr < opt.eps;
  return stats;
}

SolveStats solve_ppcg(SolverKernels& k, const SolveOptions& opt) {
  SolveStats stats;
  stats.solver = SolverKind::kPpcg;

  std::vector<double> alphas, betas;
  double rro = cg_bootstrap(k, opt, opt.cg_prep_iters, stats, alphas, betas);
  if (stats.converged) return stats;

  stats.spectrum =
      clamp_spectrum(estimate_spectrum(alphas, betas, opt.eigen_safety));
  if (!stats.spectrum.valid) {
    throw std::runtime_error("PPCG: eigenvalue estimation failed");
  }
  const ChebyCoefficients coef = cheby_coefficients(
      stats.spectrum.min, stats.spectrum.max, opt.ppcg_inner_steps);

  // The bootstrap ends after cg_calc_p/halo(p) with rro current; continue
  // the outer CG with polynomially smoothed residuals (TeaLeaf's scheme:
  // the smoothing updates u and r directly, no extra vector).
  //
  // The outer iteration deliberately stays on the classic kernels: beta must
  // be recomputed from the *post-smoothing* norm before p is rebuilt, so the
  // fused u/r/p sweep does not apply, and the extra dot products of the
  // fused w sweep would be wasted streams. The fused win for PPCG is the
  // bootstrap (above) and the inner smoothing (below).
  const bool fused_inner = want_fused(k, opt, kCapPpcgFused);
  for (int it = 0; it < opt.max_iters; ++it) {
    const double pw = k.cg_calc_w();
    if (pw == 0.0) throw std::runtime_error("PPCG breakdown: p.Ap == 0");
    const double alpha = rro / pw;
    double rrn = k.cg_calc_ur(alpha);
    ++stats.iterations;
    ++stats.classic_iterations;  // outer PPCG stays on the classic kernels
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.converged_on_ur = true;
      stats.final_rr = rrn;
      return stats;
    }

    // Inner Chebyshev smoothing of the residual.
    k.ppcg_init_sd(coef.theta);
    k.halo_update(kMaskSd, 1);
    for (int j = 0; j < opt.ppcg_inner_steps; ++j) {
      const double a = coef.alphas[static_cast<std::size_t>(j)];
      const double b = coef.betas[static_cast<std::size_t>(j)];
      if (fused_inner) {
        k.ppcg_fused_inner(a, b);
      } else {
        k.ppcg_inner(a, b);
      }
      k.halo_update(kMaskSd, 1);
      ++stats.inner_iterations;
      ++(fused_inner ? stats.fused_iterations : stats.classic_iterations);
    }
    rrn = k.calc_2norm(NormTarget::kResidual);
    stats.rr_history.push_back(rrn);
    if (rrn < opt.eps) {
      stats.converged = true;
      stats.final_rr = rrn;
      return stats;
    }

    const double beta = rrn / rro;
    k.cg_calc_p(beta);
    k.halo_update(kMaskP, 1);
    rro = rrn;
  }
  stats.final_rr = rro;
  return stats;
}

SolveStats solve_jacobi(SolverKernels& k, const SolveOptions& opt) {
  // TeaLeaf's explicit baseline: slow (iterations scale with the condition
  // number, not its square root) but the simplest possible kernel pair.
  SolveStats stats;
  stats.solver = SolverKind::kJacobi;

  double rr = residual_norm(k, opt);
  stats.initial_rr = rr;
  stats.rr_history.push_back(rr);
  if (rr < opt.eps) {
    stats.converged = true;
    stats.final_rr = rr;
    return stats;
  }

  const bool fused = want_fused(k, opt, kCapJacobiFused);
  for (int it = 0; it < opt.max_iters; ++it) {
    if (fused) {
      k.jacobi_fused_copy_iterate();
    } else {
      k.jacobi_copy_u();
      k.jacobi_iterate();
    }
    k.halo_update(kMaskU, 1);
    ++stats.iterations;
    ++(fused ? stats.fused_iterations : stats.classic_iterations);
    if ((it + 1) % opt.check_interval == 0) {
      rr = residual_norm(k, opt);
      stats.rr_history.push_back(rr);
      if (rr < opt.eps) break;
    }
  }
  stats.final_rr = residual_norm(k, opt);
  stats.rr_history.push_back(stats.final_rr);
  stats.converged = stats.final_rr < opt.eps;
  return stats;
}

SolveStats solve(SolverKind kind, SolverKernels& k, const SolveOptions& opt) {
  switch (kind) {
    case SolverKind::kCg: return solve_cg(k, opt);
    case SolverKind::kCheby: return solve_cheby(k, opt);
    case SolverKind::kPpcg: return solve_ppcg(k, opt);
    case SolverKind::kJacobi: return solve_jacobi(k, opt);
  }
  throw std::invalid_argument("solve: unsupported solver kind");
}

}  // namespace tl::core
