#pragma once
// The TeaLeaf kernel catalogue: one entry per solver kernel, recording the
// number of field streams it reads/writes, whether it reduces, and how
// vector-critical it is.
//
// Both execution paths pull costs from here:
//   - the ports build each launch's LaunchInfo from the catalogue (plus the
//     per-model trait decoration in ports/model_traits), and
//   - the analytic big-mesh metering replays the same entries;
// so the two can never drift apart (a test asserts their clocks agree).

#include <array>
#include <cstddef>
#include <string_view>

#include "sim/model_id.hpp"
#include "sim/traits.hpp"

namespace tl::core {

enum class KernelId {
  kInitU,         // u = u0 = energy0 * density
  kInitCoef,      // kx, ky from density (harmonic face means, pre-scaled)
  kCalcResidual,  // r = u0 - A u
  kCalc2Norm,     // sum r*r (or u0*u0)                       [reduction]
  kFinalise,      // energy = u / density
  kFieldSummary,  // vol/mass/ie/temp                          [reduction]
  kCgInit,        // w = A u; r = u0 - w; p = r; rro = r.r     [reduction]
  kCgCalcW,       // w = A p; pw = p.w                         [reduction]
  kCgCalcUr,      // u += a p; r -= a w; rrn = r.r             [reduction]
  kCgCalcP,       // p = r + b p
  kChebyInit,     // p = r / theta; u += p
  kChebyIterate,  // r = u0 - A u; p = a p + b r; u += p   [vector-critical]
  kPpcgInitSd,    // sd = r / theta
  kPpcgInner,     // u += sd; r -= A sd; sd = a sd + b r   [vector-critical]
  kJacobiCopyU,   // w = u (previous iterate)
  kJacobiIterate, // u = (u0 + sum k * w_neighbours) / diag
  kHaloUpdate,    // boundary reflection / exchange of one field
  // Fused variants (KernelCaps-gated). Appended after kHaloUpdate so the
  // classic ids keep their values; each entry prices the *fused* stream
  // counts, which is where the simulated bandwidth win comes from.
  kCgCalcWFused,           // w = A p; pw, r.w, w.w                [reduction]
  kCgFusedUrP,             // u += a p; r -= a w; p = r + b p; rrn [reduction]
  kFusedResidualNorm,      // r = u0 - A u; rr = r.r               [reduction]
  kChebyFusedIterate,      // cheby_iterate, single sweep      [vector-critical]
  kPpcgFusedInner,         // ppcg_inner, single sweep         [vector-critical]
  kJacobiFusedCopyIterate, // jacobi copy+iterate without the copy stream
  // Pipelined CG (kCapPipelined-gated), appended to keep prior ids stable.
  kCgPipeInit,             // w = A r; rr, w.r                     [reduction]
  kCgPipeCalcQ,            // q = A w (the allreduce-overlapped matvec)
  kCgPipeUpdate,           // z/s/p then u/r/w updates; rr, w.r    [reduction]
};

struct KernelCost {
  std::string_view name;
  int reads = 0;        // field streams read (stencil reads count once)
  int writes = 0;       // field streams written
  int flops_per_cell = 0;
  bool reduction = false;
  /// Fraction of performance riding on the vector units (paper section 4.1:
  /// the fused Chebyshev/PPCG iteration kernels are the vector-critical
  /// extreme; the CG kernels are much less sensitive).
  double vector_sensitivity = 0.2;
};

const KernelCost& kernel_cost(KernelId id);

/// Solver phase the kernel belongs to ("setup", "shared", "cg", "cheby",
/// "ppcg", "jacobi", "halo", "diagnostics") — the trace category used by the
/// Chrome exporter and per-phase rollups.
std::string_view kernel_phase(KernelId id);

/// LaunchInfo for `id` over `interior_cells` cells with the *base* traits
/// (no model decoration): bytes from the catalogue's stream counts, the
/// working set sized for the CPU cache model.
tl::sim::LaunchInfo base_launch_info(KernelId id, std::size_t interior_cells);

/// LaunchInfo for a halo update of `nfields` fields of depth `depth` on an
/// nx x ny chunk (perimeter traffic, never a reduction).
tl::sim::LaunchInfo halo_launch_info(int nx, int ny, int nfields, int depth);

}  // namespace tl::core
