#pragma once
// Runtime ISA dispatch for the fused row primitives.
//
// The hot sweeps in reference_kernels.cpp never call an ISA-specific function
// directly: they fetch a RowKernelTable once per sweep via active_row_table()
// and invoke its function pointers per row. The table is resolved once, at
// first use, in priority order:
//
//   1. force_isa(...)        — programmatic override (Settings::force_isa,
//                              threaded from the tl_force_isa deck key);
//   2. TL_FORCE_ISA          — environment override (scalar|sse2|avx2|avx512;
//                              unparseable values fall back to detection);
//   3. CPUID auto-detection  — widest ISA the CPU supports.
//
// Forcing an ISA the CPU (or build) lacks degrades gracefully to scalar —
// never to an illegal-instruction fault. Every table is bit-identical to the
// scalar one (tests/test_isa.cpp enforces this per primitive, per tail
// residue 0–7, on unaligned row starts), so dispatch is a pure speed choice.
//
// The AVX2/AVX-512 tables live in fused_rows_avx2.cpp / fused_rows_avx512.cpp
// — the only translation units compiled with -mavx2 / -mavx512f. They keep
// every helper in an anonymous namespace (no header inlines) so no
// AVX-compiled symbol can leak into baseline code paths via the linker.

#include <cstddef>
#include <optional>
#include <string>

#include "fused_rows.hpp"

namespace tl::core::isa {

/// Instruction sets the fused row primitives are specialised for, narrowest
/// first. On x86-64, kScalar and kSse2 are always available; kAvx2/kAvx512
/// depend on the CPU. On other architectures only kScalar is available.
enum class Isa {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

inline constexpr int kIsaCount = 4;

/// One implementation set of every fused row primitive. All entries of all
/// tables are bit-identical; they differ only in vector width.
struct RowKernelTable {
  /// w = A p over one row: returns {p.w, w.w}.
  fused::RowDots (*w_row)(const double*, const double*, const double*,
                          double*, std::size_t, std::size_t, std::size_t);
  /// Recompute {p.w, w.w} from an already-written w row (region finish path).
  fused::RowDots (*w_row_dots)(const double*, const double*, std::size_t,
                               std::size_t);
  /// u += a p; r -= a w; p = r + bp p: returns r.r.
  double (*urp_row)(double*, double*, double*, const double*, std::size_t,
                    std::size_t, double, double);
  /// r = u0 - A u: returns r.r.
  double (*residual_row)(const double*, const double*, const double*,
                         const double*, double*, std::size_t, std::size_t,
                         std::size_t);
  /// Chebyshev fused row (u, u0, kx, ky, r, p, un, b, e, width, a, bt).
  void (*cheby_row)(const double*, const double*, const double*,
                    const double*, double*, double*, double*, std::size_t,
                    std::size_t, std::size_t, double, double);
  /// PPCG fused inner row (sd, kx, ky, u, r, sn, b, e, width, a, bt).
  void (*ppcg_row)(const double*, const double*, const double*, double*,
                   double*, double*, std::size_t, std::size_t, std::size_t,
                   double, double);
  /// Jacobi fused row (u0, w, kx, ky, u, b, e, width).
  void (*jacobi_row)(const double*, const double*, const double*,
                     const double*, double*, std::size_t, std::size_t,
                     std::size_t);
  /// q = A v plain stencil row (v, kx, ky, q, b, e, width).
  void (*stencil_row)(const double*, const double*, const double*, double*,
                      std::size_t, std::size_t, std::size_t);
  /// Pipelined CG init row: w = A r, returns {r.r, w.r}.
  fused::RowDots (*pipe_init_row)(const double*, const double*, const double*,
                                  double*, std::size_t, std::size_t,
                                  std::size_t);
  /// Pipelined CG update row (z, s, p, u, r, w, q, b, e, a, bt): {r.r, w.r}.
  fused::RowDots (*pipe_update_row)(double*, double*, double*, double*,
                                    double*, double*, const double*,
                                    std::size_t, std::size_t, double, double);
};

/// Canonical lower-case name ("scalar", "sse2", "avx2", "avx512").
const char* isa_name(Isa isa);

/// Parses an ISA name (as accepted by TL_FORCE_ISA / tl_force_isa).
std::optional<Isa> parse_isa(const std::string& name);

/// Doubles per 128/256/512-bit vector step: 1, 2, 4, 8.
std::size_t isa_lanes(Isa isa);

/// Elements consumed per unrolled accumulation group: 4 for scalar through
/// AVX2 (one four-chain group), 8 for AVX-512 (two groups per step). Row
/// tiling rounds to a multiple of this so rows are never split mid-vector.
std::size_t isa_row_group(Isa isa);

/// True when this build can execute the given ISA on this CPU.
bool isa_available(Isa isa);

/// Widest available ISA on this CPU (ignores overrides).
Isa detect_best();

/// Programmatic override (wins over TL_FORCE_ISA). Passing nullopt reverts
/// to env/auto resolution. Resets the cached dispatch decision.
void force_isa(std::optional<Isa> isa);

/// The resolved ISA: forced -> TL_FORCE_ISA -> detect_best(), with
/// unavailable forced choices degrading to kScalar. Cached after first call.
Isa active_isa();

/// Row table for the given ISA, or nullptr when it is unavailable in this
/// build / on this CPU. Scalar and (on x86-64) SSE2 are never null.
const RowKernelTable* row_table(Isa isa);

/// Row table for active_isa(); never null.
const RowKernelTable* active_row_table();

/// Defined in fused_rows_avx2.cpp; returns nullptr when the translation unit
/// was built without AVX2 support.
const RowKernelTable* avx2_row_table();

/// Defined in fused_rows_avx512.cpp; nullptr without AVX-512F support.
const RowKernelTable* avx512_row_table();

}  // namespace tl::core::isa
