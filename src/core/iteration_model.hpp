#pragma once
// IterationModel: power-law extrapolation of solver iteration counts.
//
// The paper's headline mesh (4096^2 = 1.7e7 cells x thousands of solver
// iterations) is not numerically computable in this environment, but
// iteration counts of Krylov/Chebyshev solvers on this family of problems
// follow clean power laws in the linear mesh size. We run *real* solves at a
// ladder of small meshes (ReferenceKernels), fit iters = c * nx^p, and use
// the fit to script the analytic big-mesh replays. The fit quality (r^2) is
// part of EXPERIMENTS.md.

#include <span>
#include <vector>

#include "core/settings.hpp"
#include "core/solvers.hpp"
#include "util/stats.hpp"

namespace tl::core {

struct CalibrationPoint {
  int nx = 0;
  int outer_iterations = 0;
  int inner_iterations = 0;
  bool converged = false;
};

struct IterationModel {
  SolverKind solver = SolverKind::kCg;
  /// Constant part of the iteration count that does not scale with the mesh
  /// (the CG eigen-estimation bootstrap for Chebyshev/PPCG); the power law
  /// is fitted to (iterations - offset) so the floor doesn't distort the
  /// exponent, and added back by predict_outer.
  int offset = 0;
  tl::util::PowerFit outer_fit;       // (outer iterations - offset) vs nx
  double inner_per_outer = 0.0;       // PPCG smoothing steps per outer
  std::vector<CalibrationPoint> points;

  int predict_outer(int nx) const;
};

/// Runs real solves (ReferenceKernels, one step of `proto` resized to each
/// ladder entry) and fits the power law. `proto`'s solver field is ignored
/// in favour of `solver`.
IterationModel calibrate_iteration_model(SolverKind solver,
                                         const Settings& proto,
                                         std::span<const int> mesh_sizes);

/// The default calibration ladder used by the benches.
std::vector<int> default_calibration_ladder();

}  // namespace tl::core
