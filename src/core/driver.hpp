#pragma once
// Driver: TeaLeaf's timestep loop. Owns the host chunk (initial state) and a
// port's SolverKernels; each step performs the implicit heat-conduction
// solve and the diagnostics, exactly the sequence the paper times.

#include <memory>
#include <optional>
#include <vector>

#include "core/fields.hpp"
#include "core/kernels_api.hpp"
#include "core/settings.hpp"
#include "core/solvers.hpp"

namespace tl::core {

struct StepReport {
  int step = 0;
  double dt = 0.0;
  SolveStats solve;
  FieldSummary summary;
  /// Simulated wall clock consumed by this step (ns).
  double sim_step_ns = 0.0;
};

struct RunReport {
  std::vector<StepReport> steps;
  double sim_total_seconds = 0.0;
  double achieved_bandwidth_gbs = 0.0;
  std::uint64_t kernel_launches = 0;

  int total_iterations() const {
    int n = 0;
    for (const auto& s : steps) n += s.solve.iterations;
    return n;
  }
};

struct DriverOptions {
  /// When false, no full-size host chunk is allocated or painted: the step
  /// sequence runs against a placeholder the kernels must ignore. Only valid
  /// for metering-only kernels (PhantomKernels) — real ports read the chunk.
  bool materialize_host_state = true;
};

class Driver {
 public:
  /// Takes ownership of the port. The chunk is painted from settings.states.
  Driver(const Settings& settings, std::unique_ptr<SolverKernels> kernels,
         DriverOptions options = {});

  /// Runs one implicit step (upload, init, solve, finalise, summary).
  StepReport run_step();

  /// Runs settings.end_step steps and aggregates.
  RunReport run();

  const Settings& settings() const noexcept { return settings_; }
  const Mesh& mesh() const noexcept { return mesh_; }
  /// Throws std::logic_error in lightweight (metering-only) mode.
  const Chunk& chunk() const;
  SolverKernels& kernels() noexcept { return *kernels_; }

 private:
  Settings settings_;
  Mesh mesh_;
  std::optional<Chunk> chunk_;       // absent in lightweight mode
  std::optional<Chunk> placeholder_; // 1x1 stand-in passed to the kernels
  std::unique_ptr<SolverKernels> kernels_;
  int step_ = 0;
};

}  // namespace tl::core
