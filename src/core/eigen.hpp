#pragma once
// Eigenvalue estimation for the Chebyshev and PPCG solvers.
//
// TeaLeaf bootstraps those solvers with CG iterations: the CG alpha/beta
// scalars define a Lanczos tridiagonal whose extremal eigenvalues
// approximate the spectrum of A. We find them with Gershgorin bounds plus
// Sturm-sequence bisection (the approach of TeaLeaf's tqli-free variant).

#include <span>
#include <vector>

namespace tl::core {

struct EigenEstimate {
  double min = 0.0;
  double max = 0.0;
  bool valid = false;
};

/// Builds the Lanczos tridiagonal from CG coefficients:
///   diag[0] = 1/alpha[0]
///   diag[k] = 1/alpha[k] + beta[k-1]/alpha[k-1]
///   off[k]  = sqrt(beta[k-1]) / alpha[k-1]     (k >= 1)
struct Tridiagonal {
  std::vector<double> diag;
  std::vector<double> off;  // off[k] couples k-1 and k; off[0] unused
};
Tridiagonal lanczos_tridiagonal(std::span<const double> alphas,
                                std::span<const double> betas);

/// Number of eigenvalues of T strictly less than x (Sturm sequence count).
int sturm_count(const Tridiagonal& t, double x);

/// Extremal eigenvalues via bisection to `tol` relative accuracy.
EigenEstimate extremal_eigenvalues(const Tridiagonal& t, double tol = 1e-12);

/// End-to-end: CG scalars -> widened spectrum estimate. `safety` expands the
/// interval by min*(1-safety), max*(1+safety) — Chebyshev diverges if the
/// true spectrum pokes outside the assumed interval, so TeaLeaf widens it.
EigenEstimate estimate_spectrum(std::span<const double> alphas,
                                std::span<const double> betas, double safety);

/// Chebyshev recurrence coefficients for the spectrum [eig_min, eig_max]:
/// theta, delta, sigma and the per-iteration (alpha, beta) pairs.
struct ChebyCoefficients {
  double theta = 0.0;
  double delta = 0.0;
  double sigma = 0.0;
  std::vector<double> alphas;
  std::vector<double> betas;
};
ChebyCoefficients cheby_coefficients(double eig_min, double eig_max,
                                     int max_iters);

/// Iterations Chebyshev needs to shrink the error by `eps_ratio`, from the
/// classic convergence bound with condition number cn (TeaLeaf's estimate).
int cheby_iteration_estimate(double eig_min, double eig_max, double eps_ratio);

}  // namespace tl::core
