#pragma once
// ReferenceKernels: the plain serial implementation of every TeaLeaf kernel.
//
// This is the correctness oracle: it performs no simulated-time metering
// (its clock stays at zero) and uses no programming-model API. Every port is
// tested kernel-by-kernel against it, and the solver drivers converge with
// it in the unit tests.
//
// The classic kernels stay deliberately simple (readable double loops over
// spans). The caps()-advertised fused kernels are the measured hot path:
// cache-blocked row tiles swept through a HostPool with raw-pointer,
// lane-split inner loops, and reductions sliced per row and combined by a
// pairwise tree in row order — bit-identical for any pool thread count.

#include <vector>

#include "core/kernels_api.hpp"
#include "core/mesh.hpp"
#include "models/host_pool.hpp"

namespace tl::core {

class ReferenceKernels final : public SolverKernels {
 public:
  /// `pool_threads` sizes the HostPool behind the fused sweeps; the default
  /// keeps the oracle serial. Results do not depend on the choice.
  explicit ReferenceKernels(const Mesh& mesh, unsigned pool_threads = 1);

  void upload_state(const Chunk& chunk) override;
  void init_u() override;
  void init_coefficients(Coefficient coefficient, double rx, double ry) override;
  void halo_update(unsigned fields, int depth) override;
  void calc_residual() override;
  double calc_2norm(NormTarget target) override;
  void finalise() override;
  FieldSummary field_summary() override;
  double cg_init() override;
  double cg_calc_w() override;
  double cg_calc_ur(double alpha) override;
  void cg_calc_p(double beta) override;
  void cheby_init(double theta) override;
  void cheby_iterate(double alpha, double beta) override;
  void ppcg_init_sd(double theta) override;
  void ppcg_inner(double alpha, double beta) override;
  void jacobi_copy_u() override;
  void jacobi_iterate() override;

  unsigned caps() const override {
    return kAllKernelCaps | kCapRegions | kCapPipelined;
  }
  CgFusedW cg_calc_w_fused() override;
  double cg_fused_ur_p(double alpha, double beta_prev) override;
  double fused_residual_norm() override;
  void cheby_fused_iterate(double alpha, double beta) override;
  void ppcg_fused_inner(double alpha, double beta) override;
  void jacobi_fused_copy_iterate() override;

  // Pipelined CG (kCapPipelined): HostPool row tiles through the ISA
  // dispatch table, like the fused kernels; the dots fold pairwise per row.
  CgPipeDots cg_pipe_init() override;
  void cg_pipe_calc_q() override;
  CgPipeDots cg_pipe_update(double alpha, double beta) override;

  // Region sweeps for the overlapped halo pipeline (kCapRegions). Sweeps run
  // serially (the oracle meters nothing); reductions are recomputed in the
  // full-sweep kernels' exact accumulation order once every region has been
  // written, so interior+edges+finish is bit-identical to one full sweep.
  void cg_calc_w_region(Region region) override;
  double cg_calc_w_region_finish() override;
  void cg_calc_w_fused_region(Region region) override;
  CgFusedW cg_calc_w_fused_region_finish() override;
  void cheby_fused_region(double alpha, double beta, Region region) override;
  void cheby_fused_region_finish() override;
  void ppcg_fused_region(double alpha, double beta, Region region) override;
  void ppcg_fused_region_finish(double alpha, double beta) override;
  void jacobi_fused_region(Region region) override;
  void jacobi_fused_region_finish() override;

  void read_u(tl::util::Span2D<double> out) override;
  void download_energy(Chunk& chunk) override;
  const tl::sim::SimClock& clock() const override { return clock_; }
  void begin_run(std::uint64_t) override { clock_.reset(); }

  // Elastic per-row reductions: when enabled, the classic reduction kernels
  // (calc_2norm, cg_init, cg_calc_w, cg_calc_ur, field_summary) accumulate
  // one partial per interior row (sequential in x) and publish them via
  // row_partials(); the scalar they return is the pairwise tree fold over
  // the local rows. The distributed layer re-folds the *global* row vector,
  // making results bit-identical across any row-strip split.
  bool set_row_reductions(bool on) override;
  std::span<const double> row_partials() const override;

  /// Direct field access for tests.
  tl::util::Span2D<double> field(FieldId f) { return chunk_.field(f); }
  tl::util::Span2D<double> field_view(FieldId f) override {
    return chunk_.field(f);
  }

 private:
  /// Row-tile height for a fused sweep touching `nfields` fields.
  int tile_rows(int nfields) const;
  double* data(FieldId f) { return chunk_.field(f).data(); }

  Mesh mesh_;
  Chunk chunk_;
  tl::sim::SimClock clock_;
  models::HostPool pool_;
  // Per-row reduction slots for the fused kernels (pw/rw/ww reuse all three;
  // single-sum kernels use the first).
  std::vector<double> row_a_, row_b_, row_c_;

  /// Pairwise-folds the `k` blocks of ny partials currently in
  /// `row_partials_` (via a scratch copy — the published partials stay
  /// pristine) and returns the fold of block `block`.
  double fold_rows(int k, int block = 0);

  bool row_mode_ = false;
  std::vector<double> row_partials_;  // k blocks of ny, row-major per block
  std::vector<double> fold_scratch_;
};

// ---------------------------------------------------------------------------
// The kernel maths as free functions over spans: ReferenceKernels calls
// these; tests use them to cross-check port kernels on arbitrary data.
// All functions iterate the interior [h, h+n) x [h, h+n).
// ---------------------------------------------------------------------------
namespace ref {

using Span = tl::util::Span2D<double>;
using CSpan = tl::util::Span2D<const double>;

void init_u(const Mesh& m, CSpan density, CSpan energy0, Span u, Span u0);
void init_coefficients(const Mesh& m, Coefficient coefficient, double rx,
                       double ry, CSpan density, Span kx, Span ky);

/// (A v)(x,y) with the pre-scaled face coefficients.
double apply_stencil(CSpan v, CSpan kx, CSpan ky, int x, int y);

void calc_residual(const Mesh& m, CSpan u, CSpan u0, CSpan kx, CSpan ky, Span r);
double calc_2norm(const Mesh& m, CSpan v);
void finalise(const Mesh& m, CSpan u, CSpan density, Span energy);
FieldSummary field_summary(const Mesh& m, CSpan density, CSpan energy0, CSpan u);

double cg_init(const Mesh& m, CSpan u, CSpan u0, CSpan kx, CSpan ky, Span w,
               Span r, Span p);
double cg_calc_w(const Mesh& m, CSpan p, CSpan kx, CSpan ky, Span w);
double cg_calc_ur(const Mesh& m, double alpha, CSpan p, CSpan w, Span u, Span r);
void cg_calc_p(const Mesh& m, double beta, CSpan r, Span p);

void cheby_init(const Mesh& m, double theta, CSpan r, Span p, Span u);
void cheby_iterate(const Mesh& m, double alpha, double beta, CSpan u0, CSpan kx,
                   CSpan ky, Span u, Span r, Span p);

void ppcg_init_sd(const Mesh& m, double theta, CSpan r, Span sd);
void ppcg_inner(const Mesh& m, double alpha, double beta, CSpan kx, CSpan ky,
                Span u, Span r, Span sd);

void jacobi_copy_u(const Mesh& m, CSpan u, Span w);
void jacobi_iterate(const Mesh& m, CSpan u0, CSpan w, CSpan kx, CSpan ky,
                    Span u);

}  // namespace ref

}  // namespace tl::core
