#include "core/model_traits.hpp"

namespace tl::core {

namespace {
bool is_interior_kernel(KernelId id) {
  return id != KernelId::kHaloUpdate;
}
}  // namespace

tl::sim::LaunchInfo make_launch_info(tl::sim::Model m, KernelId id,
                                     std::size_t interior_cells) {
  tl::sim::LaunchInfo info = base_launch_info(id, interior_cells);
  if (!is_interior_kernel(id)) return info;
  switch (m) {
    case tl::sim::Model::kKokkos:
      info.traits.interior_branch = true;  // halo test in the functor body
      break;
    case tl::sim::Model::kKokkosHp:
      info.traits.hierarchical = true;  // TeamPolicy re-encoded iteration
      break;
    case tl::sim::Model::kRaja:
    case tl::sim::Model::kRajaSimd:
      info.traits.indirection = true;  // ListSegment traversal
      break;
    default:
      break;
  }
  return info;
}

tl::sim::LaunchInfo make_halo_info(tl::sim::Model m, int nx, int ny,
                                   int nfields, int depth) {
  (void)m;
  return halo_launch_info(nx, ny, nfields, depth);
}

}  // namespace tl::core
