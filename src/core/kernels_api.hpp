#pragma once
// SolverKernels: the contract every programming-model port implements.
//
// The solver drivers (cg.cpp, cheby.cpp, ppcg.cpp) contain the algorithmic
// logic exactly once; a port supplies the kernel bodies in its model's API.
// This mirrors the paper's methodology: "TeaLeaf's core solver logic and
// parameters were kept consistent between ports to ensure that each of the
// programming models were objectively compared."
//
// All methods operate on the port's own (possibly device-resident) field
// storage. Scalars returned by reductions are host values.

#include <memory>
#include <span>

#include "core/fields.hpp"
#include "core/settings.hpp"
#include "sim/clock.hpp"

namespace tl::core {

/// Fields involved in a halo update (bitmask).
enum FieldMask : unsigned {
  kMaskU = 1u << 0,
  kMaskP = 1u << 1,
  kMaskSd = 1u << 2,
  kMaskR = 1u << 3,
  kMaskDensity = 1u << 4,
  kMaskEnergy0 = 1u << 5,
  kMaskW = 1u << 6,  // pipelined CG: w's halo feeds the overlapped q = A w
};
int mask_field_count(unsigned mask);

struct FieldSummary {
  double volume = 0.0;
  double mass = 0.0;
  double internal_energy = 0.0;
  double temperature = 0.0;  // volume-weighted sum of u
};

/// What calc_2norm measures.
enum class NormTarget { kResidual, kRhs };

/// Optional fused-kernel capabilities a port can advertise (bitmask returned
/// by SolverKernels::caps()). The solver drivers dispatch a fused path only
/// when the corresponding bit is set and fall back to the classic kernel
/// sequence otherwise, so a port that advertises nothing keeps working
/// unchanged.
enum KernelCaps : unsigned {
  kCapCgFused = 1u << 0,        // cg_calc_w_fused + cg_fused_ur_p
  kCapResidualNorm = 1u << 1,   // fused_residual_norm
  kCapChebyFused = 1u << 2,     // cheby_fused_iterate
  kCapPpcgFused = 1u << 3,      // ppcg_fused_inner
  kCapJacobiFused = 1u << 4,    // jacobi_fused_copy_iterate
  kCapRegions = 1u << 5,        // region-parameterised sweeps (*_region)
  kCapPipelined = 1u << 6,      // pipelined CG kernels (cg_pipe_*)
};
/// Note: kCapRegions is deliberately NOT part of kAllKernelCaps. The fused
/// bits describe what the solver drivers may call on a single chunk; the
/// regions bit is a distributed-overlap capability that individual ports opt
/// into (reference + omp3 today). Ports without it automatically fall back
/// to full-sweep kernels behind a blocking halo exchange.
inline constexpr unsigned kAllKernelCaps = kCapCgFused | kCapResidualNorm |
                                           kCapChebyFused | kCapPpcgFused |
                                           kCapJacobiFused;

/// Sub-domain of a tile's interior for the region-parameterised sweeps
/// (kCapRegions). The interior region is inset one cell from every interior
/// edge, so it reads no halo data and can run while a depth-1 halo exchange
/// is still in flight; the four edge regions form the one-deep boundary ring
/// that runs after the exchange completes. In padded coordinates with halo
/// depth h and interior nx x ny:
///   kInterior: x in [h+1, h+nx-1), y in [h+1, h+ny-1)
///   kSouth:    y = h,        x in [h, h+nx)
///   kNorth:    y = h+ny-1,   x in [h, h+nx)      (empty when ny < 2)
///   kWest:     x = h,        y in [h+1, h+ny-1)
///   kEast:     x = h+nx-1,   y in [h+1, h+ny-1)  (empty when nx < 2)
/// The five regions partition the interior exactly (each cell visited once)
/// for any nx, ny >= 1 — including 1-cell-tall tiles and rings wider than
/// the interior.
enum class Region { kInterior, kSouth, kNorth, kWest, kEast };

/// The edge regions, in the fixed sweep order the distributed pipeline uses.
inline constexpr Region kEdgeRegions[4] = {Region::kSouth, Region::kNorth,
                                           Region::kWest, Region::kEast};

/// Half-open cell range of `region` (see the geometry table above). Empty
/// ranges (x0 >= x1 or y0 >= y1) are valid and mean "no cells".
struct RegionBounds {
  int x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  bool empty() const noexcept { return x0 >= x1 || y0 >= y1; }
};
RegionBounds region_bounds(Region region, int halo_depth, int nx, int ny);

/// The two dot products a fused w = A p sweep produces in one pass. The
/// solver also needs r.w to predict the next residual norm, but CG's
/// conjugacy gives it for free: p = r + beta p_old with p_old.w = 0, so
/// r.w = p.w exactly — the sweep never has to stream r.
struct CgFusedW {
  double pw = 0.0;  // p . A p  (equals r . A p by conjugacy)
  double ww = 0.0;  // A p . A p
};

/// The two local dot products each pipelined-CG iteration contributes to its
/// single (overlappable) allreduce: gamma = r.r and delta = w.r.
struct CgPipeDots {
  double rr = 0.0;  // r . r      (gamma)
  double rw = 0.0;  // A r . r = w . r  (delta)
};

class SolverKernels {
 public:
  virtual ~SolverKernels() = default;

  // -- Step setup ----------------------------------------------------------
  /// Uploads density/energy0 from the host chunk into port storage (for
  /// offload models this is the big map-to-device).
  virtual void upload_state(const Chunk& chunk) = 0;

  /// u = u0 = energy0 * density over the interior.
  virtual void init_u() = 0;

  /// Face diffusion coefficients from density, pre-scaled by rx = dt/dx^2,
  /// ry = dt/dy^2 (TeaLeaf's harmonic mean form).
  virtual void init_coefficients(Coefficient coefficient, double rx,
                                 double ry) = 0;

  /// Halo update (reflective physical boundaries on the single chunk).
  virtual void halo_update(unsigned fields, int depth) = 0;

  // -- Shared kernels ------------------------------------------------------
  virtual void calc_residual() = 0;                 // r = u0 - A u
  virtual double calc_2norm(NormTarget target) = 0; // sum of squares
  virtual void finalise() = 0;                      // energy = u / density
  virtual FieldSummary field_summary() = 0;

  // -- CG ------------------------------------------------------------------
  /// w = A u; r = u0 - w; p = r. Returns rro = r.r.
  virtual double cg_init() = 0;
  /// w = A p. Returns pw = p.w.
  virtual double cg_calc_w() = 0;
  /// u += alpha p; r -= alpha w. Returns rrn = r.r.
  virtual double cg_calc_ur(double alpha) = 0;
  /// p = r + beta p.
  virtual void cg_calc_p(double beta) = 0;

  // -- Chebyshev -----------------------------------------------------------
  /// p = r / theta; u += p.
  virtual void cheby_init(double theta) = 0;
  /// r = u0 - A u; p = alpha p + beta r; u += p.
  virtual void cheby_iterate(double alpha, double beta) = 0;

  // -- PPCG inner smoothing --------------------------------------------------
  /// sd = r / theta.
  virtual void ppcg_init_sd(double theta) = 0;
  /// u += sd; r -= A sd; sd = alpha sd + beta r.
  virtual void ppcg_inner(double alpha, double beta) = 0;

  // -- Jacobi (TeaLeaf's baseline solver) ------------------------------------
  /// w = u (save the previous iterate).
  virtual void jacobi_copy_u() = 0;
  /// u = (u0 + kx(x+1) w(x+1) + kx w(x-1) + ky(y+1) w(y+1) + ky w(y-1)) / diag.
  virtual void jacobi_iterate() = 0;

  // -- Fused kernels (optional; gated by caps()) -----------------------------
  // Each fused method is algebraically identical to a fixed sequence of the
  // classic kernels above but streams the fields fewer times. The defaults
  // throw: the solver must never call one unless the matching caps() bit is
  // advertised (tests/test_fusion.cpp asserts exactly that).

  /// Bitmask of KernelCaps this port supports. Default: none.
  virtual unsigned caps() const { return 0; }

  /// w = A p, returning p.w plus the extra dot w.w that lets the solver
  /// predict rrn before updating r (one sweep instead of sweep + two extra
  /// reduction passes).
  virtual CgFusedW cg_calc_w_fused();

  /// u += alpha p; r -= alpha w; p = r + beta_prev p, in one sweep.
  /// Returns rrn = r.r (the directly summed norm of the new residual).
  virtual double cg_fused_ur_p(double alpha, double beta_prev);

  /// r = u0 - A u and rr = r.r in one pass (calc_residual + calc_2norm).
  virtual double fused_residual_norm();

  /// cheby_iterate's three logical sweeps (residual, p-recurrence, u-update)
  /// collapsed so each field is streamed once.
  virtual void cheby_fused_iterate(double alpha, double beta);

  /// ppcg_inner's sweeps (u/r update + sd recurrence) fused likewise.
  virtual void ppcg_fused_inner(double alpha, double beta);

  /// jacobi_copy_u + jacobi_iterate without materialising the copy sweep.
  virtual void jacobi_fused_copy_iterate();

  // -- Pipelined CG (optional; gated by caps() & kCapPipelined) --------------
  // Ghysels–Vanroose restructuring: each iteration contributes one fused
  // {r.r, w.r} allreduce that the solver *begins* before the overlappable
  // matvec q = A w and *completes* after it, hiding the collective's latency
  // behind compute. The kernels default to throwing (caps-gated) except the
  // dots pair, whose base implementation is the single-rank identity — the
  // distributed decorator overrides it with a real nonblocking iallreduce.

  /// w = A r from the freshly initialised residual; returns the local
  /// {r.r, w.r} the first allreduce will combine.
  virtual CgPipeDots cg_pipe_init();

  /// q = A w — the matvec the in-flight allreduce hides behind. No
  /// reduction rides along (its dots involve the *next* iterate).
  virtual void cg_pipe_calc_q();

  /// The six-field recurrence sweep:
  ///   z = q + beta z;  s = w + beta s;  p = r + beta p;
  ///   u += alpha p;    r -= alpha s;    w -= alpha z;
  /// returning the next iteration's local {r.r, w.r}. (s lives in the kSd
  /// slot — CG proper never touches it.)
  virtual CgPipeDots cg_pipe_update(double alpha, double beta);

  /// Initiates the iteration's allreduce of `local`. Base: stash (1-rank
  /// identity). Must be legal to call with a previous begin still pending.
  virtual void cg_pipe_dots_begin(const CgPipeDots& local);

  /// Completes the pending allreduce and returns the global dots.
  virtual CgPipeDots cg_pipe_dots_complete();

  // -- Region sweeps (optional; gated by caps() & kCapRegions) ---------------
  // Split forms of the matrix-powers sweeps for comm/compute overlap: the
  // distributed decorator calls the kInterior region while a depth-1 halo
  // exchange is in flight, completes the exchange, sweeps the four edge
  // regions (in kEdgeRegions order), then calls the matching *_finish to
  // produce the kernel's reductions / deferred updates. A port MUST make the
  // split bit-identical to the corresponding full-sweep kernel: identical
  // per-cell arithmetic, and reductions recomputed in the full sweep's exact
  // accumulation order once all cells are written (never combined by region
  // completion order). Defaults throw, mirroring the fused kernels.

  /// w = A p over `region` (field update only; no reduction).
  virtual void cg_calc_w_region(Region region);
  /// pw = p.w recomputed over the full interior (classic cg_calc_w's order).
  virtual double cg_calc_w_region_finish();
  /// Same sweep as cg_calc_w_region; paired with the fused finish.
  virtual void cg_calc_w_fused_region(Region region);
  /// {pw, ww} recomputed in cg_calc_w_fused's exact accumulation order.
  virtual CgFusedW cg_calc_w_fused_region_finish();
  /// cheby_fused_iterate's sweep over `region` (deferred u-swap in finish).
  virtual void cheby_fused_region(double alpha, double beta, Region region);
  virtual void cheby_fused_region_finish();
  /// ppcg_fused_inner's sweep over `region` (deferred sd-swap in finish).
  virtual void ppcg_fused_region(double alpha, double beta, Region region);
  virtual void ppcg_fused_region_finish(double alpha, double beta);
  /// jacobi_fused_copy_iterate split: the kInterior call performs the
  /// ping-pong swap (old u becomes w) before sweeping, so the in-flight
  /// exchange must target the pre-swap u storage (the distributed decorator
  /// captures the field view at post time).
  virtual void jacobi_fused_region(Region region);
  virtual void jacobi_fused_region_finish();

  // -- Elastic per-row reductions (optional) ---------------------------------
  // The elastic distributed mode (Settings::elastic) needs reductions whose
  // result is independent of how rows are split across ranks. A port that
  // supports it computes every reduction as one partial per interior ROW
  // (k consecutive blocks of ny slots for k-value reductions, exposed via
  // row_partials() after the kernel runs); the distributed layer gathers all
  // global rows and folds one fixed pairwise tree over them, so any
  // row-strip decomposition — equal or weighted — produces bit-identical
  // scalars. Defaults: unsupported (set_row_reductions(true) returns false).

  /// Switches per-row reduction mode. Returns true iff the request is
  /// honoured (enabling on an unsupporting port returns false).
  virtual bool set_row_reductions(bool on) { return !on; }

  /// The per-row partials of the last reduction kernel, valid until the
  /// next kernel call. Empty when row mode is off or unsupported.
  virtual std::span<const double> row_partials() const { return {}; }

  // -- Results / instrumentation -------------------------------------------
  /// Copies the current solution u into `out` (padded layout). For offload
  /// models this is a device->host read.
  virtual void read_u(tl::util::Span2D<double> out) = 0;

  /// Mutable view of one padded field in this port's storage. The distributed
  /// decorator (src/dist) packs/unpacks halo strips through this seam; every
  /// storage in the simulation is host-visible, so the view is a plain span
  /// even for the "device-resident" ports. Throws std::logic_error for
  /// kernel sets with no real storage (PhantomKernels).
  virtual tl::util::Span2D<double> field_view(FieldId id);

  /// Writes energy back into the host chunk (finalise must have run).
  virtual void download_energy(Chunk& chunk) = 0;

  /// Simulated clock for everything this port has launched.
  virtual const tl::sim::SimClock& clock() const = 0;

  /// Starts a fresh simulated run (new scheduler luck, zeroed clock).
  virtual void begin_run(std::uint64_t run_seed) = 0;

  /// Attaches `sink` (nullptr detaches) to this port's metering clock: every
  /// subsequent metered launch/transfer emits one sim::TraceEvent. Works for
  /// every port and the analytic replay with no per-port code, because all of
  /// them meter through the one SimClock that clock() exposes.
  void attach_trace_sink(tl::sim::TraceSink* sink);

 protected:
  /// Single-rank stash for the base cg_pipe_dots_begin/complete pair.
  CgPipeDots pipe_dots_local_;
};

}  // namespace tl::core
