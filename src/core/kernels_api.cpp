#include "core/kernels_api.hpp"

namespace tl::core {

int mask_field_count(unsigned mask) {
  int n = 0;
  while (mask != 0) {
    n += static_cast<int>(mask & 1u);
    mask >>= 1;
  }
  return n;
}

}  // namespace tl::core
