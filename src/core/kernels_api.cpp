#include "core/kernels_api.hpp"

#include <stdexcept>
#include <string>

namespace tl::core {

namespace {

[[noreturn]] void fused_not_advertised(const char* which) {
  throw std::logic_error(std::string("SolverKernels::") + which +
                         ": fused kernel called on a port whose caps() does "
                         "not advertise it");
}

}  // namespace

CgFusedW SolverKernels::cg_calc_w_fused() {
  fused_not_advertised("cg_calc_w_fused");
}

double SolverKernels::cg_fused_ur_p(double, double) {
  fused_not_advertised("cg_fused_ur_p");
}

double SolverKernels::fused_residual_norm() {
  fused_not_advertised("fused_residual_norm");
}

void SolverKernels::cheby_fused_iterate(double, double) {
  fused_not_advertised("cheby_fused_iterate");
}

void SolverKernels::ppcg_fused_inner(double, double) {
  fused_not_advertised("ppcg_fused_inner");
}

void SolverKernels::jacobi_fused_copy_iterate() {
  fused_not_advertised("jacobi_fused_copy_iterate");
}

CgPipeDots SolverKernels::cg_pipe_init() {
  fused_not_advertised("cg_pipe_init");
}

void SolverKernels::cg_pipe_calc_q() { fused_not_advertised("cg_pipe_calc_q"); }

CgPipeDots SolverKernels::cg_pipe_update(double, double) {
  fused_not_advertised("cg_pipe_update");
}

void SolverKernels::cg_pipe_dots_begin(const CgPipeDots& local) {
  // Single-rank identity: the "allreduce" of one rank's dots is the dots.
  pipe_dots_local_ = local;
}

CgPipeDots SolverKernels::cg_pipe_dots_complete() { return pipe_dots_local_; }

namespace {

[[noreturn]] void regions_not_advertised(const char* which) {
  throw std::logic_error(std::string("SolverKernels::") + which +
                         ": region sweep called on a port whose caps() does "
                         "not advertise kCapRegions");
}

}  // namespace

void SolverKernels::cg_calc_w_region(Region) {
  regions_not_advertised("cg_calc_w_region");
}

double SolverKernels::cg_calc_w_region_finish() {
  regions_not_advertised("cg_calc_w_region_finish");
}

void SolverKernels::cg_calc_w_fused_region(Region) {
  regions_not_advertised("cg_calc_w_fused_region");
}

CgFusedW SolverKernels::cg_calc_w_fused_region_finish() {
  regions_not_advertised("cg_calc_w_fused_region_finish");
}

void SolverKernels::cheby_fused_region(double, double, Region) {
  regions_not_advertised("cheby_fused_region");
}

void SolverKernels::cheby_fused_region_finish() {
  regions_not_advertised("cheby_fused_region_finish");
}

void SolverKernels::ppcg_fused_region(double, double, Region) {
  regions_not_advertised("ppcg_fused_region");
}

void SolverKernels::ppcg_fused_region_finish(double, double) {
  regions_not_advertised("ppcg_fused_region_finish");
}

void SolverKernels::jacobi_fused_region(Region) {
  regions_not_advertised("jacobi_fused_region");
}

void SolverKernels::jacobi_fused_region_finish() {
  regions_not_advertised("jacobi_fused_region_finish");
}

RegionBounds region_bounds(Region region, int halo_depth, int nx, int ny) {
  const int h = halo_depth;
  switch (region) {
    case Region::kInterior:
      return {h + 1, h + nx - 1, h + 1, h + ny - 1};
    case Region::kSouth:
      return {h, h + nx, h, h + 1};
    case Region::kNorth:
      // A 1-cell-tall tile is all south row; the north row would alias it.
      if (ny < 2) return {};
      return {h, h + nx, h + ny - 1, h + ny};
    case Region::kWest:
      return {h, h + 1, h + 1, h + ny - 1};
    case Region::kEast:
      // A 1-cell-wide tile is all west column.
      if (nx < 2) return {};
      return {h + nx - 1, h + nx, h + 1, h + ny - 1};
  }
  return {};
}

tl::util::Span2D<double> SolverKernels::field_view(FieldId) {
  throw std::logic_error(
      "SolverKernels::field_view: this kernel set exposes no field storage");
}

void SolverKernels::attach_trace_sink(tl::sim::TraceSink* sink) {
  // clock() is const-qualified because metering reads dominate its use, but
  // the SimClock object itself is mutable state owned by the port's launcher;
  // attaching an observer does not alter any metered quantity.
  const_cast<tl::sim::SimClock&>(clock()).set_trace_sink(sink);
}

int mask_field_count(unsigned mask) {
  int n = 0;
  while (mask != 0) {
    n += static_cast<int>(mask & 1u);
    mask >>= 1;
  }
  return n;
}

}  // namespace tl::core
