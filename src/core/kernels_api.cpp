#include "core/kernels_api.hpp"

#include <stdexcept>

namespace tl::core {

tl::util::Span2D<double> SolverKernels::field_view(FieldId) {
  throw std::logic_error(
      "SolverKernels::field_view: this kernel set exposes no field storage");
}

void SolverKernels::attach_trace_sink(tl::sim::TraceSink* sink) {
  // clock() is const-qualified because metering reads dominate its use, but
  // the SimClock object itself is mutable state owned by the port's launcher;
  // attaching an observer does not alter any metered quantity.
  const_cast<tl::sim::SimClock&>(clock()).set_trace_sink(sink);
}

int mask_field_count(unsigned mask) {
  int n = 0;
  while (mask != 0) {
    n += static_cast<int>(mask & 1u);
    mask >>= 1;
  }
  return n;
}

}  // namespace tl::core
