#include "core/kernels_api.hpp"

#include <stdexcept>
#include <string>

namespace tl::core {

namespace {

[[noreturn]] void fused_not_advertised(const char* which) {
  throw std::logic_error(std::string("SolverKernels::") + which +
                         ": fused kernel called on a port whose caps() does "
                         "not advertise it");
}

}  // namespace

CgFusedW SolverKernels::cg_calc_w_fused() {
  fused_not_advertised("cg_calc_w_fused");
}

double SolverKernels::cg_fused_ur_p(double, double) {
  fused_not_advertised("cg_fused_ur_p");
}

double SolverKernels::fused_residual_norm() {
  fused_not_advertised("fused_residual_norm");
}

void SolverKernels::cheby_fused_iterate(double, double) {
  fused_not_advertised("cheby_fused_iterate");
}

void SolverKernels::ppcg_fused_inner(double, double) {
  fused_not_advertised("ppcg_fused_inner");
}

void SolverKernels::jacobi_fused_copy_iterate() {
  fused_not_advertised("jacobi_fused_copy_iterate");
}

tl::util::Span2D<double> SolverKernels::field_view(FieldId) {
  throw std::logic_error(
      "SolverKernels::field_view: this kernel set exposes no field storage");
}

void SolverKernels::attach_trace_sink(tl::sim::TraceSink* sink) {
  // clock() is const-qualified because metering reads dominate its use, but
  // the SimClock object itself is mutable state owned by the port's launcher;
  // attaching an observer does not alter any metered quantity.
  const_cast<tl::sim::SimClock&>(clock()).set_trace_sink(sink);
}

int mask_field_count(unsigned mask) {
  int n = 0;
  while (mask != 0) {
    n += static_cast<int>(mask & 1u);
    mask >>= 1;
  }
  return n;
}

}  // namespace tl::core
