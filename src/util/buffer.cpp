// Buffer is header-only; this translation unit exists so the util library
// always has at least one object for the archive and to catch ODR problems
// in the header early.
#include "util/buffer.hpp"

namespace tl::util {
// Explicit instantiation of the common case keeps template code generation
// out of every including translation unit.
template class Buffer<double>;
template class Buffer<int>;
}  // namespace tl::util
