#include "util/csv.hpp"

#include <stdexcept>

namespace tl::util {

std::vector<std::string> parse_csv_line(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';  // escaped quote
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  if (quoted) {
    throw std::runtime_error("parse_csv_line: unterminated quoted cell");
  }
  cells.push_back(std::move(cell));
  return cells;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), out_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
  row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace tl::util
