#include "util/csv.hpp"

#include <stdexcept>

namespace tl::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), out_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
  row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace tl::util
