#pragma once
// Tiny tea.in-style config parser.
//
// TeaLeaf reads a flat "key=value" deck (tea.in) with bare flags and state
// lines. We support:
//   key=value            scalars
//   key                  bare boolean flags (e.g. use_cg)
//   state N key=value... multi-field state definitions
//   ! or # comments
// Section headers [name] are accepted and ignored (flat namespace), matching
// the original deck format's simplicity.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tl::util {

class IniConfig {
 public:
  IniConfig() = default;

  /// Parses deck text; throws std::runtime_error with line info on errors.
  static IniConfig parse(const std::string& text);
  static IniConfig parse_file(const std::string& path);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  long get_long_or(const std::string& key, long fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value);

  /// `state <n> density=<d> energy=<e> xmin=.. xmax=.. ymin=.. ymax=..`
  struct StateLine {
    int index = 0;
    std::map<std::string, double> fields;
  };
  const std::vector<StateLine>& states() const noexcept { return states_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<StateLine> states_;
};

}  // namespace tl::util
