#include "util/rng.hpp"

#include <cmath>

namespace tl::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  have_spare_normal_ = true;
  return u * m;
}

}  // namespace tl::util
