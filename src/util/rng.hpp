#pragma once
// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (work-stealing jitter, workload
// generators) must be reproducible, so everything draws from this explicit
// xoshiro256** generator rather than std::random_device / global state.

#include <cstdint>

namespace tl::util {

/// SplitMix64: used to seed xoshiro from a single 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** by Blackman & Vigna — small, fast, high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Standard normal via Marsaglia polar method.
  double next_normal() noexcept;

 private:
  std::uint64_t s_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace tl::util
