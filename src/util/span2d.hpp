#pragma once
// span2d: a non-owning two-dimensional view over contiguous row-major storage.
//
// TeaLeaf fields are (nx + 2*halo) x (ny + 2*halo) cell-centred arrays. All
// kernels index through this view so that halo offsets are handled in exactly
// one place. Index convention follows the TeaLeaf sources: x is the fast
// (contiguous) dimension, (0,0) is the first *allocated* cell including halo.

#include <cassert>
#include <cstddef>

namespace tl::util {

template <typename T>
class Span2D {
 public:
  constexpr Span2D() noexcept = default;
  constexpr Span2D(T* data, int nx, int ny) noexcept
      : data_(data), nx_(nx), ny_(ny) {
    assert(nx >= 0 && ny >= 0);
  }

  /// Element access: x is the contiguous dimension.
  constexpr T& operator()(int x, int y) const noexcept {
    assert(x >= 0 && x < nx_);
    assert(y >= 0 && y < ny_);
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(x)];
  }

  /// Flat access over the whole allocation (used by 1-D flattened kernels).
  constexpr T& operator[](std::size_t i) const noexcept {
    assert(i < size());
    return data_[i];
  }

  constexpr T* data() const noexcept { return data_; }
  constexpr int nx() const noexcept { return nx_; }
  constexpr int ny() const noexcept { return ny_; }
  constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  }
  constexpr bool empty() const noexcept { return size() == 0; }

  /// Conversion to a const view.
  constexpr operator Span2D<const T>() const noexcept {
    return Span2D<const T>(data_, nx_, ny_);
  }

 private:
  T* data_ = nullptr;
  int nx_ = 0;
  int ny_ = 0;
};

}  // namespace tl::util
