#include "util/ini.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace tl::util {

IniConfig IniConfig::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("IniConfig: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

IniConfig IniConfig::parse(const std::string& text) {
  IniConfig cfg;
  int lineno = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++lineno;
    std::string line = trim(raw);
    // Strip comments.
    for (const char marker : {'!', '#'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line = trim(line.substr(0, pos));
    }
    if (line.empty()) continue;
    if (line.front() == '[') {
      // Sections carry no meaning (the config is flat) but a header missing
      // its closing bracket is a typo, not a bare flag named "[x".
      if (line.back() != ']') {
        throw std::runtime_error(
            strf("IniConfig: unterminated section header line %d", lineno));
      }
      continue;
    }

    if (starts_with(to_lower(line), "state ")) {
      StateLine st;
      const auto tokens = split(line, ' ');
      if (tokens.size() < 2) {
        throw std::runtime_error(strf("IniConfig: bad state line %d", lineno));
      }
      const auto idx = parse_long(tokens[1]);
      if (!idx) {
        throw std::runtime_error(strf("IniConfig: bad state index line %d", lineno));
      }
      st.index = static_cast<int>(*idx);
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string tok = trim(tokens[i]);
        if (tok.empty()) continue;
        const auto kv = split(tok, '=');
        if (kv.size() != 2) {
          throw std::runtime_error(
              strf("IniConfig: bad state field '%s' line %d", tok.c_str(), lineno));
        }
        const auto v = parse_double(kv[1]);
        if (!v) {
          throw std::runtime_error(
              strf("IniConfig: bad state value '%s' line %d", tok.c_str(), lineno));
        }
        st.fields[to_lower(trim(kv[0]))] = *v;
      }
      cfg.states_.push_back(std::move(st));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      cfg.values_[to_lower(line)] = "true";  // bare flag, e.g. use_cg
    } else {
      const std::string key = to_lower(trim(line.substr(0, eq)));
      const std::string value = trim(line.substr(eq + 1));
      if (key.empty()) {
        throw std::runtime_error(strf("IniConfig: empty key line %d", lineno));
      }
      cfg.values_[key] = value;
    }
  }
  return cfg;
}

bool IniConfig::has(const std::string& key) const {
  return values_.count(to_lower(key)) != 0;
}

std::optional<std::string> IniConfig::get(const std::string& key) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string IniConfig::get_or(const std::string& key,
                              const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double IniConfig::get_double_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto d = parse_double(*v);
  if (!d) throw std::runtime_error("IniConfig: key '" + key + "' is not a number");
  return *d;
}

long IniConfig::get_long_or(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto d = parse_long(*v);
  if (!d) throw std::runtime_error("IniConfig: key '" + key + "' is not an integer");
  return *d;
}

bool IniConfig::get_bool_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const auto b = parse_bool(*v);
  if (!b) throw std::runtime_error("IniConfig: key '" + key + "' is not a bool");
  return *b;
}

void IniConfig::set(const std::string& key, const std::string& value) {
  values_[to_lower(key)] = value;
}

}  // namespace tl::util
