#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/json.hpp"
#include "util/string_util.hpp"

namespace tl::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("TL_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

LogFormat format_from_env() {
  const char* env = std::getenv("TL_LOG_FORMAT");
  if (env != nullptr) {
    if (const auto parsed = parse_log_format(env)) return *parsed;
  }
  return LogFormat::kPlain;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::atomic<LogFormat> g_format{format_from_env()};
std::mutex g_mutex;

/// Monotonic ns since the first log statement armed the clock (json lines
/// only; plain lines carry no timestamp and stay byte-identical).
long long monotonic_ns() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

const char* level_id(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Single emission path for every log line: format_log_line keeps the wire
/// format in one place, the mutex keeps lines whole under threads.
void emit(LogLevel level, std::string_view message) {
  const LogFormat format = g_format.load(std::memory_order_relaxed);
  const long long ts = format == LogFormat::kJson ? monotonic_ns() : 0;
  const std::string line = format_log_line(format, level, message, ts);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  std::string message;
  if (needed > 0) {
    message.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(message.data(), message.size() + 1, fmt, args2);
  }
  va_end(args2);
  emit(level, message);
}
}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  const std::string norm = to_lower(trim(text));
  if (norm == "debug") return LogLevel::kDebug;
  if (norm == "info") return LogLevel::kInfo;
  if (norm == "warn" || norm == "warning") return LogLevel::kWarn;
  if (norm == "error") return LogLevel::kError;
  if (norm == "off" || norm == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::optional<LogFormat> parse_log_format(std::string_view text) {
  const std::string norm = to_lower(trim(text));
  if (norm == "plain" || norm == "text") return LogFormat::kPlain;
  if (norm == "json") return LogFormat::kJson;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_format(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return g_format.load(std::memory_order_relaxed);
}

std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message, long long ts_ns) {
  if (format == LogFormat::kJson) {
    return strf("{\"level\":\"%s\",\"ts_ns\":%lld,\"message\":\"%s\"}",
                level_id(level), ts_ns,
                json_escape(message).c_str());
  }
  return strf("[%s] %.*s", level_name(level),
              static_cast<int>(message.size()), message.data());
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  emit(level, message);
}

#define TLM_DEFINE_LOG_FN(name, level)            \
  void name(const char* fmt, ...) {               \
    va_list args;                                 \
    va_start(args, fmt);                          \
    vlog(level, fmt, args);                       \
    va_end(args);                                 \
  }

TLM_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
TLM_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
TLM_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
TLM_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef TLM_DEFINE_LOG_FN

}  // namespace tl::util
