#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/string_util.hpp"

namespace tl::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("TL_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  const std::string norm = to_lower(trim(text));
  if (norm == "debug") return LogLevel::kDebug;
  if (norm == "info") return LogLevel::kInfo;
  if (norm == "warn" || norm == "warning") return LogLevel::kWarn;
  if (norm == "error") return LogLevel::kError;
  if (norm == "off" || norm == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

#define TLM_DEFINE_LOG_FN(name, level)            \
  void name(const char* fmt, ...) {               \
    va_list args;                                 \
    va_start(args, fmt);                          \
    vlog(level, fmt, args);                       \
    va_end(args);                                 \
  }

TLM_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
TLM_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
TLM_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
TLM_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef TLM_DEFINE_LOG_FN

}  // namespace tl::util
