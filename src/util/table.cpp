#include "util/table.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/string_util.hpp"

namespace tl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

bool Table::looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return parse_double(s).has_value() ||
         (s.size() > 1 && (s.back() == '%' || s.back() == 's') &&
          parse_double(s.substr(0, s.size() - 1)).has_value());
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      const std::size_t pad = width[c] - r[c].size();
      if (looks_numeric(r[c])) {
        out.append(pad, ' ');
        out += r[c];
      } else {
        out += r[c];
        out.append(pad, ' ');
      }
    }
    out += " |\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out.append(width[c], '-');
  }
  out += "-|\n";
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace tl::util
