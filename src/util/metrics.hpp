#pragma once
// Per-kernel metric aggregation.
//
// The trace layer (sim/trace) emits one sample per metered launch/transfer;
// the Aggregator folds them into per-kernel profiles — count, total/min/max
// duration, bytes moved, achieved bandwidth, scheduler launch-factor spread —
// the granularity the paper argues at (its section 4.1 attributes model gaps
// to individual kernels, not whole solves).
//
// Lives in util (below sim) so it stays a pure fold over plain samples: the
// sim layer adapts TraceEvents into LaunchSamples, never the other way.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tl::util {

/// One metered launch or transfer, reduced to what profiles need.
struct LaunchSample {
  std::string_view name;       // catalogue kernel name or transfer name
  double duration_ns = 0.0;    // simulated cost of this launch
  std::size_t bytes = 0;       // main-memory (or link) traffic
  double launch_factor = 1.0;  // scheduler efficiency factor (1.0 = static)
};

/// Folded profile of one kernel across a run.
struct KernelProfile {
  std::string name;
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  std::size_t bytes = 0;
  /// Share of the aggregate's total time, in percent (filled by profiles()).
  double percent = 0.0;
  /// Scheduler launch-factor spread across this kernel's launches.
  double factor_min = 1.0;
  double factor_max = 1.0;
  double factor_sum = 0.0;

  double mean_ns() const {
    return count ? total_ns / static_cast<double>(count) : 0.0;
  }
  double factor_mean() const {
    return count ? factor_sum / static_cast<double>(count) : 0.0;
  }
  /// Achieved bandwidth over this kernel's launches, GB/s (B/ns == GB/s).
  double bandwidth_gbs() const {
    return total_ns > 0.0 ? static_cast<double>(bytes) / total_ns : 0.0;
  }
};

/// Streaming fold of LaunchSamples into per-kernel profiles. O(#kernels)
/// memory regardless of run length, so a full 4096^2 multi-thousand-iteration
/// solve can be profiled without storing its event stream.
class Aggregator {
 public:
  void add(const LaunchSample& sample);

  std::uint64_t total_events() const noexcept { return total_events_; }
  double total_ns() const noexcept { return total_ns_; }
  std::size_t total_bytes() const noexcept { return total_bytes_; }

  /// Profiles sorted by total time descending, percentages filled against
  /// this aggregate's total (they sum to 100 when total_ns() > 0).
  std::vector<KernelProfile> profiles() const;

  void clear();

 private:
  std::map<std::string, KernelProfile, std::less<>> by_kernel_;
  std::uint64_t total_events_ = 0;
  double total_ns_ = 0.0;
  std::size_t total_bytes_ = 0;
};

/// Renders profiles as the paper-style per-kernel breakdown table
/// (kernel, launches, total s, % of run, GB/s, scheduler factor spread).
std::string format_profile_table(const std::vector<KernelProfile>& profiles);

}  // namespace tl::util
