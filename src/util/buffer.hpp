#pragma once
// Buffer: an owning, cache-line-aligned, zero-initialised array of doubles
// (or any trivially copyable T). This is the single allocation primitive for
// all field storage; ports layer model-specific "device memory" abstractions
// on top of it.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/span2d.hpp"

namespace tl::util {

/// Cache-line size assumed for alignment of field allocations.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class Buffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "Buffer only supports trivially copyable element types");

 public:
  Buffer() noexcept = default;

  explicit Buffer(std::size_t count) { resize(count); }

  Buffer(const Buffer& other) { copy_from(other); }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) copy_from(other);
    return *this;
  }

  Buffer(Buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~Buffer() { release(); }

  /// Re-allocates to `count` elements, zero-filled. Existing contents are
  /// discarded (fields are always fully re-initialised by kernels).
  void resize(std::size_t count) {
    release();
    if (count == 0) return;
    void* p = std::aligned_alloc(kCacheLineBytes,
                                 round_up(count * sizeof(T), kCacheLineBytes));
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    count_ = count;
    std::memset(data_, 0, count * sizeof(T));
  }

  void fill(T value) {
    for (std::size_t i = 0; i < count_; ++i) data_[i] = value;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  Span2D<T> view2d(int nx, int ny) noexcept { return {data_, nx, ny}; }
  Span2D<const T> view2d(int nx, int ny) const noexcept {
    return {data_, nx, ny};
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t m) {
    return (v + m - 1) / m * m;
  }

  void copy_from(const Buffer& other) {
    resize(other.count_);
    if (count_ != 0) std::memcpy(data_, other.data_, count_ * sizeof(T));
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace tl::util
