#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/string_util.hpp"

namespace tl::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw std::runtime_error(strf("json: %s at byte %zu", what.c_str(), at));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, strf("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail(pos_, "expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not joined;
          // our writers never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail(pos_, "expected number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail(int_start, "leading zero");  // strict grammar: 0 or [1-9]...
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(pos_, "expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail(pos_, "expected exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw std::runtime_error(strf("json: value is not a %s", wanted));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_mismatch("array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::kObject) kind_mismatch("object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::get_number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string JsonValue::get_string_or(std::string_view key,
                                     std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string_
                                          : std::string(fallback);
}

bool JsonValue::get_bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace tl::util
