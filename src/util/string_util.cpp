#include "util/string_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tl::util {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view s) {
  const std::string tmp = trim(s);
  if (tmp.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) return std::nullopt;
  return v;
}

std::optional<long> parse_long(std::string_view s) {
  const std::string tmp = trim(s);
  if (tmp.empty()) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(tmp.c_str(), &end, 10);
  if (end != tmp.c_str() + tmp.size()) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(std::string_view s) {
  const std::string t = to_lower(trim(s));
  if (t == "1" || t == "true" || t == "on" || t == "yes") return true;
  if (t == "0" || t == "false" || t == "off" || t == "no") return false;
  return std::nullopt;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string human_count(double v) {
  const double a = std::abs(v);
  if (a >= 1e9) return strf("%.2fG", v / 1e9);
  if (a >= 1e6) return strf("%.2fM", v / 1e6);
  if (a >= 1e3) return strf("%.2fk", v / 1e3);
  return strf("%.0f", v);
}

std::string human_seconds(double seconds) {
  const double a = std::abs(seconds);
  if (a >= 1.0) return strf("%.2f s", seconds);
  if (a >= 1e-3) return strf("%.2f ms", seconds * 1e3);
  if (a >= 1e-6) return strf("%.2f us", seconds * 1e6);
  return strf("%.1f ns", seconds * 1e9);
}

}  // namespace tl::util
