#pragma once
// Small statistics helpers used by the benchmark harnesses (run-to-run
// variance of the OpenCL CPU port, iteration-count power-law fits, ...).

#include <span>
#include <vector>

namespace tl::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
};

/// Summarises a sample; empty input yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Ordinary least squares fit y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Power-law fit y = c * x^p via OLS in log-log space. Requires positive
/// inputs. Returns {c, p}.
struct PowerFit {
  double coefficient = 1.0;
  double exponent = 0.0;
  double r2 = 0.0;

  double eval(double x) const;
};
PowerFit fit_power(std::span<const double> x, std::span<const double> y);

/// Relative difference |a-b| / max(|a|,|b|, eps).
double rel_diff(double a, double b, double eps = 1e-300);

}  // namespace tl::util
