#pragma once
// Leveled logging to stderr. Kept deliberately simple: benches and examples
// print their primary output with tables/CSV; the log is for diagnostics.

#include <optional>
#include <string>
#include <string_view>

namespace tl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive,
/// surrounding whitespace ignored); nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Global threshold; messages below it are dropped. Starts at kWarn so
/// library code stays quiet in tests unless something is wrong; the
/// TL_LOG_LEVEL environment variable overrides the starting level at process
/// startup (unparsable values are ignored), so benches and tests can turn on
/// diagnostics without recompiling.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& message);

[[gnu::format(printf, 1, 2)]] void log_debug(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_info(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_warn(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_error(const char* fmt, ...);

}  // namespace tl::util
