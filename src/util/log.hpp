#pragma once
// Leveled logging to stderr. Kept deliberately simple: benches and examples
// print their primary output with tables/CSV; the log is for diagnostics.

#include <optional>
#include <string>
#include <string_view>

namespace tl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Plain is the classic "[WARN] message" line; json emits exactly one JSON
/// object per line — {"level":"warn","ts_ns":N,"message":"..."} with ts_ns a
/// monotonic steady-clock nanosecond offset from process start (machine
/// ingestion: level filters, message dedup, intra-run ordering).
enum class LogFormat { kPlain = 0, kJson = 1 };

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive,
/// surrounding whitespace ignored); nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Parses "plain" / "text" / "json" (case-insensitive, trimmed); nullopt for
/// anything else.
std::optional<LogFormat> parse_log_format(std::string_view text);

/// Global threshold; messages below it are dropped. Starts at kWarn so
/// library code stays quiet in tests unless something is wrong; the
/// TL_LOG_LEVEL environment variable overrides the starting level at process
/// startup (unparsable values are ignored), so benches and tests can turn on
/// diagnostics without recompiling.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Global line format. Starts plain; the TL_LOG_FORMAT environment variable
/// ("json") overrides it at process startup (unparsable values are ignored),
/// so plain output stays byte-identical whenever the variable is unset.
void set_log_format(LogFormat format);
LogFormat log_format() noexcept;

/// Renders one log line in `format` without the trailing newline (the json
/// rendering of plain "[WARN] message"). Exposed so tests can pin the wire
/// format; `ts_ns` is the monotonic nanosecond offset stamped into json
/// lines.
std::string format_log_line(LogFormat format, LogLevel level,
                            std::string_view message, long long ts_ns);

void log_message(LogLevel level, const std::string& message);

[[gnu::format(printf, 1, 2)]] void log_debug(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_info(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_warn(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_error(const char* fmt, ...);

}  // namespace tl::util
