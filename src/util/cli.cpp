#include "util/cli.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace tl::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[to_lower(body.substr(0, eq))] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[to_lower(body)] = argv[++i];
    } else {
      flags_[to_lower(body)] = "true";
    }
  }
}

bool Cli::has(const std::string& flag) const {
  return flags_.count(to_lower(flag)) != 0;
}

std::optional<std::string> Cli::get(const std::string& flag) const {
  const auto it = flags_.find(to_lower(flag));
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& flag, const std::string& fallback) const {
  return get(flag).value_or(fallback);
}

long Cli::get_long_or(const std::string& flag, long fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  const auto n = parse_long(*v);
  if (!n) throw std::runtime_error("--" + flag + " expects an integer");
  return *n;
}

double Cli::get_double_or(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v) return fallback;
  const auto d = parse_double(*v);
  if (!d) throw std::runtime_error("--" + flag + " expects a number");
  return *d;
}

}  // namespace tl::util
