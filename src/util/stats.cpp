#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tl::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  if (n > 1) {
    double ss = 0.0;
    for (double v : sorted) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_linear: need >=2 equally sized samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (denom == 0.0) {
    f.intercept = sy / n;
    return f;
  }
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;

  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (f.intercept + f.slope * x[i]);
      ss_res += e * e;
    }
    f.r2 = 1.0 - ss_res / ss_tot;
  } else {
    f.r2 = 1.0;
  }
  return f;
}

double PowerFit::eval(double x) const {
  return coefficient * std::pow(x, exponent);
}

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_power: need >=2 equally sized samples");
  }
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) {
      throw std::invalid_argument("fit_power: inputs must be positive");
    }
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerFit p;
  p.coefficient = std::exp(lin.intercept);
  p.exponent = lin.slope;
  p.r2 = lin.r2;
  return p;
}

double rel_diff(double a, double b, double eps) {
  const double scale = std::max({std::abs(a), std::abs(b), eps});
  return std::abs(a - b) / scale;
}

}  // namespace tl::util
