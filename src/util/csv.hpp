#pragma once
// Minimal CSV writer (benchmark outputs) and line parser (golden loaders,
// CSV diffing). Every figure bench emits both a console table and a CSV file
// so the results can be re-plotted.

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace tl::util {

/// Splits one CSV line into cells, inverting CsvWriter::escape (RFC 4180):
/// commas inside double-quoted cells are literal, `""` inside a quoted cell
/// is one quote, and one trailing '\r' (CRLF files) is dropped before
/// parsing. Throws std::runtime_error on an unterminated quoted cell.
std::vector<std::string> parse_csv_line(std::string_view line);

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Appends a row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace tl::util
