#pragma once
// Minimal CSV writer for benchmark outputs. Every figure bench emits both a
// console table and a CSV file so the results can be re-plotted.

#include <fstream>
#include <string>
#include <vector>

namespace tl::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Appends a row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace tl::util
