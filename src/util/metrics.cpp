#include "util/metrics.hpp"

#include <algorithm>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace tl::util {

void Aggregator::add(const LaunchSample& sample) {
  auto it = by_kernel_.find(sample.name);
  if (it == by_kernel_.end()) {
    KernelProfile p;
    p.name = std::string(sample.name);
    p.min_ns = sample.duration_ns;
    p.max_ns = sample.duration_ns;
    p.factor_min = sample.launch_factor;
    p.factor_max = sample.launch_factor;
    it = by_kernel_.emplace(p.name, std::move(p)).first;
  }
  KernelProfile& p = it->second;
  ++p.count;
  p.total_ns += sample.duration_ns;
  p.min_ns = std::min(p.min_ns, sample.duration_ns);
  p.max_ns = std::max(p.max_ns, sample.duration_ns);
  p.bytes += sample.bytes;
  p.factor_min = std::min(p.factor_min, sample.launch_factor);
  p.factor_max = std::max(p.factor_max, sample.launch_factor);
  p.factor_sum += sample.launch_factor;

  ++total_events_;
  total_ns_ += sample.duration_ns;
  total_bytes_ += sample.bytes;
}

std::vector<KernelProfile> Aggregator::profiles() const {
  std::vector<KernelProfile> out;
  out.reserve(by_kernel_.size());
  for (const auto& [name, profile] : by_kernel_) out.push_back(profile);
  for (KernelProfile& p : out) {
    p.percent = total_ns_ > 0.0 ? 100.0 * p.total_ns / total_ns_ : 0.0;
  }
  std::sort(out.begin(), out.end(),
            [](const KernelProfile& a, const KernelProfile& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return out;
}

void Aggregator::clear() {
  by_kernel_.clear();
  total_events_ = 0;
  total_ns_ = 0.0;
  total_bytes_ = 0;
}

std::string format_profile_table(const std::vector<KernelProfile>& profiles) {
  Table table({"kernel", "launches", "total s", "% of run", "mean us", "GB/s",
               "sched min/mean/max"});
  for (const KernelProfile& p : profiles) {
    table.row({p.name, strf("%llu", static_cast<unsigned long long>(p.count)),
               strf("%.3f", p.total_ns * 1e-9), strf("%.1f", p.percent),
               strf("%.2f", p.mean_ns() * 1e-3), strf("%.1f", p.bandwidth_gbs()),
               strf("%.2f/%.2f/%.2f", p.factor_min, p.factor_mean(),
                    p.factor_max)});
  }
  return table.render();
}

}  // namespace tl::util
