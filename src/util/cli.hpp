#pragma once
// Minimal CLI flag parser shared by examples and bench binaries.
// Supports --key=value, --key value, and bare --flag forms.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tl::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Binary name (argv[0]).
  const std::string& program() const noexcept { return program_; }

  bool has(const std::string& flag) const;
  std::optional<std::string> get(const std::string& flag) const;
  std::string get_or(const std::string& flag, const std::string& fallback) const;
  long get_long_or(const std::string& flag, long fallback) const;
  double get_double_or(const std::string& flag, double fallback) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tl::util
