#pragma once
// Console table printer: every bench prints paper-style rows with this so
// output formatting is consistent across the harnesses.

#include <string>
#include <vector>

namespace tl::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Renders the table with column alignment; numeric-looking cells are
  /// right-aligned, text is left-aligned.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  static bool looks_numeric(const std::string& s);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tl::util
