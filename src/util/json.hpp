#pragma once
// Minimal JSON document model + recursive-descent parser.
//
// The repo emits several machine-readable JSON artifacts (tl-verify reports,
// BENCH_fusion.json, BENCH_overlap.json, tl-report-1 run reports) and the
// tl_report CLI must read them back for analysis and regression checking.
// This is a deliberately small, strict parser: UTF-8 pass-through, doubles
// for all numbers, objects keep their key order (so a parse -> serialize
// roundtrip of our own deterministic writers is stable). It rejects
// trailing garbage, comments, and unterminated constructs with a
// std::runtime_error carrying the byte offset.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tl::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Shared by every JSON writer in the repo.
std::string json_escape(std::string_view s);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object. `get_or` conveniences default on absence AND on kind mismatch.
  const JsonValue* find(std::string_view key) const;
  double get_number_or(std::string_view key, double fallback) const;
  std::string get_string_or(std::string_view key,
                            std::string_view fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  // -- Construction (used by tests and doctoring helpers) -------------------
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one complete JSON document; throws std::runtime_error (with byte
/// offset) on malformed input or trailing non-whitespace.
JsonValue parse_json(std::string_view text);

}  // namespace tl::util
