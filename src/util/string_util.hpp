#pragma once
// String helpers shared by the config parser, CLI, and table/CSV writers.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tl::util {

std::string trim(std::string_view s);
std::string to_lower(std::string_view s);
std::vector<std::string> split(std::string_view s, char delim);
bool starts_with(std::string_view s, std::string_view prefix);

std::optional<double> parse_double(std::string_view s);
std::optional<long> parse_long(std::string_view s);
std::optional<bool> parse_bool(std::string_view s);

/// printf-style formatting into std::string (type-checked by the compiler).
[[gnu::format(printf, 1, 2)]] std::string strf(const char* fmt, ...);

/// Human-readable engineering formatting: 1536 -> "1.54e3" style is avoided;
/// produces "1.5k", "2.3M", "4.1G" for table output.
std::string human_count(double v);

/// Seconds -> "123.4 s" / "12.3 ms" etc.
std::string human_seconds(double seconds);

}  // namespace tl::util
