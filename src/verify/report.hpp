#pragma once
// Rendering of conformance results: the human-readable matrix (one table per
// device, model rows x solver columns, pass/FAIL + worst relative error) and
// the machine-readable JSON document CI consumes.

#include <string>

#include "verify/conformance.hpp"

namespace tl::verify {

/// Per-device conformance matrix tables plus the golden-check summary.
std::string format_matrix(const ConformanceReport& report);

/// Full report as JSON: options, golden checks, every cell with every
/// metric's errors, and a summary block. Stable schema "tl-verify-1".
std::string to_json(const ConformanceReport& report);

/// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view s);

}  // namespace tl::verify
