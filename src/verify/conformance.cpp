#include "verify/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/driver.hpp"
#include "core/phantom_kernels.hpp"
#include "core/reference_kernels.hpp"
#include "dist/driver.hpp"
#include "ports/registry.hpp"
#include "util/string_util.hpp"
#include "verify/perturb.hpp"

namespace tl::verify {

namespace {

using core::SolverKind;

core::Settings make_settings(const VerifyOptions& opt, SolverKind solver) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = opt.nx;
  s.solver = solver;
  s.end_step = opt.steps;
  // Settings rejects tl_pipelined_cg on non-CG solvers, so only the CG
  // cells carry the flag; the other solvers run their classic paths.
  s.use_pipelined = opt.pipelined && solver == SolverKind::kCg;
  return s;
}

/// Per-cell tolerance selection: pipelined CG gets its own (slightly wider)
/// bounds; everything else keeps the classic single-rank or distributed
/// tables. The cheby/ppcg/jacobi cells never carry use_pipelined.
ToleranceSpec spec_for(const VerifyOptions& opt, SolverKind solver, double eps,
                       bool distributed) {
  if (opt.pipelined && solver == SolverKind::kCg) {
    return ToleranceSpec::pipelined(solver, eps, distributed);
  }
  return distributed ? ToleranceSpec::distributed(solver, eps)
                     : ToleranceSpec::defaults(solver, eps);
}

MetricResult check_scalar(Metric metric, double port, double ref,
                          const ToleranceSpec& spec, std::string detail = {}) {
  MetricResult r;
  r.metric = metric;
  r.tol = spec[metric];
  r.cmp = compare(port, ref, r.tol);
  r.pass = r.cmp.pass;
  r.detail = std::move(detail);
  return r;
}

/// Element-wise residual-history comparison: a length mismatch beyond
/// `len_slack` fails outright; within the slack (the distributed case, where
/// reassociated dot products may flip a check-interval boundary) the common
/// prefix is compared instead. Otherwise the worst entry (first failing,
/// else largest relative error) represents the metric.
MetricResult check_history(const std::vector<double>& port,
                           const std::vector<double>& ref,
                           const ToleranceSpec& spec,
                           std::size_t len_slack = 0) {
  MetricResult r;
  r.metric = Metric::kResidualHistory;
  r.tol = spec[Metric::kResidualHistory];
  const std::size_t len_diff = port.size() > ref.size()
                                   ? port.size() - ref.size()
                                   : ref.size() - port.size();
  if (len_diff > len_slack) {
    r.cmp = compare(static_cast<double>(port.size()),
                    static_cast<double>(ref.size()), Tolerance::exact());
    r.pass = false;
    r.detail = util::strf("length %zu vs %zu", port.size(), ref.size());
    return r;
  }
  const std::size_t n = std::min(port.size(), ref.size());
  r.pass = true;
  double worst_rel = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Comparison c = compare(port[i], ref[i], r.tol);
    if ((!c.pass && r.pass) || (c.pass == r.pass && c.rel_err > worst_rel)) {
      r.cmp = c;
      worst_rel = c.rel_err;
      r.detail = util::strf("entry %zu/%zu", i + 1, n);
      if (!c.pass) r.pass = false;
    }
  }
  if (n == 0) {
    r.cmp = compare(0.0, 0.0, r.tol);
    r.detail = "empty";
  } else if (len_diff != 0) {
    r.detail += util::strf(" (prefix; lengths %zu vs %zu)", port.size(),
                           ref.size());
  }
  return r;
}

/// Worst-component checksum comparison (sum, l2, min, max share a metric).
MetricResult check_checksum(Metric metric, const FieldChecksum& port,
                            const FieldChecksum& ref,
                            const ToleranceSpec& spec) {
  MetricResult worst;
  bool first = true;
  const std::pair<const char*, std::pair<double, double>> parts[] = {
      {"sum", {port.sum, ref.sum}},
      {"l2", {port.l2, ref.l2}},
      {"min", {port.min, ref.min}},
      {"max", {port.max, ref.max}}};
  for (const auto& [name, values] : parts) {
    MetricResult r =
        check_scalar(metric, values.first, values.second, spec, name);
    if (first || (worst.pass && !r.pass) ||
        (worst.pass == r.pass && r.cmp.rel_err > worst.cmp.rel_err)) {
      worst = r;
      first = false;
    }
  }
  return worst;
}

void append_record_checks(std::vector<MetricResult>& out,
                          const GoldenRecord& live, const GoldenRecord& ref,
                          const ToleranceSpec& spec) {
  out.push_back(check_scalar(Metric::kConverged, live.converged ? 1.0 : 0.0,
                             ref.converged ? 1.0 : 0.0, spec));
  out.push_back(check_scalar(Metric::kIterations, live.iterations,
                             ref.iterations, spec));
  out.push_back(check_scalar(Metric::kInnerIterations, live.inner_iterations,
                             ref.inner_iterations, spec));
  out.push_back(
      check_scalar(Metric::kFinalResidual, live.final_rr, ref.final_rr, spec));
  out.push_back(check_scalar(Metric::kVolume, live.volume, ref.volume, spec));
  out.push_back(check_scalar(Metric::kMass, live.mass, ref.mass, spec));
  out.push_back(check_scalar(Metric::kInternalEnergy, live.internal_energy,
                             ref.internal_energy, spec));
  out.push_back(check_scalar(Metric::kTemperature, live.temperature,
                             ref.temperature, spec));
  out.push_back(
      check_checksum(Metric::kSolutionChecksum, live.u, ref.u, spec));
  out.push_back(
      check_checksum(Metric::kEnergyChecksum, live.energy, ref.energy, spec));
}

/// Replays the live port's recorded control flow through PhantomKernels and
/// compares the simulated clocks (the bench pipeline's equivalence).
void append_replay_checks(std::vector<MetricResult>& out,
                          const VerifyOptions& opt, sim::Model model,
                          sim::DeviceId device, const core::Settings& s,
                          const core::RunReport& live,
                          const ToleranceSpec& spec) {
  const core::SolveStats& stats = live.steps.back().solve;
  core::PhantomScript script;
  script.eps = s.eps;
  if (s.solver == SolverKind::kCheby && stats.iterations > s.cg_prep_iters) {
    script.converge_after_ur = s.cg_prep_iters;
    script.converge_after_cheby = stats.iterations - s.cg_prep_iters - 1;
    script.converge_on_ur = false;
  } else if (s.solver == SolverKind::kJacobi) {
    // Jacobi never calls cg_calc_ur; it converges on the norm check after
    // the observed number of jacobi_iterate calls (always a check-interval
    // boundary, since that is where the live solve broke out too).
    script.converge_after_ur = 0;
    script.converge_after_jacobi = stats.iterations;
    script.converge_on_ur = false;
  } else {
    script.converge_after_ur = stats.iterations;
    script.converge_on_ur = stats.converged_on_ur;
  }
  core::Driver phantom(
      s,
      std::make_unique<core::PhantomKernels>(
          model, device, core::Mesh(s.nx, s.ny, s.halo_depth), script,
          opt.seed),
      core::DriverOptions{.materialize_host_state = false});
  const core::RunReport replay = phantom.run();
  out.push_back(check_scalar(Metric::kReplaySeconds, live.sim_total_seconds,
                             replay.sim_total_seconds, spec));
  out.push_back(check_scalar(Metric::kReplayLaunches,
                             static_cast<double>(live.kernel_launches),
                             static_cast<double>(replay.kernel_launches),
                             spec));
}

MetricResult exact_check(Metric metric, double a, double b,
                         std::string detail) {
  MetricResult r;
  r.metric = metric;
  r.tol = Tolerance::exact();
  r.cmp = compare(a, b, r.tol);
  r.pass = r.cmp.pass;
  r.detail = std::move(detail);
  return r;
}

/// The overlap pipeline's exactness contract: an overlapped decomposed solve
/// must be bit-identical to the blocking one — not merely within the
/// distributed tolerances — so every condensed scalar is compared exactly.
void append_overlap_identity(std::vector<MetricResult>& out,
                             const GoldenRecord& ov, const GoldenRecord& bl) {
  const char* tag = "overlap==blocking";
  out.push_back(exact_check(Metric::kConverged, ov.converged ? 1.0 : 0.0,
                            bl.converged ? 1.0 : 0.0, tag));
  out.push_back(exact_check(Metric::kIterations, ov.iterations, bl.iterations,
                            tag));
  out.push_back(exact_check(Metric::kInnerIterations, ov.inner_iterations,
                            bl.inner_iterations, tag));
  out.push_back(
      exact_check(Metric::kFinalResidual, ov.final_rr, bl.final_rr, tag));
  out.push_back(exact_check(Metric::kVolume, ov.volume, bl.volume, tag));
  out.push_back(exact_check(Metric::kMass, ov.mass, bl.mass, tag));
  out.push_back(exact_check(Metric::kInternalEnergy, ov.internal_energy,
                            bl.internal_energy, tag));
  out.push_back(
      exact_check(Metric::kTemperature, ov.temperature, bl.temperature, tag));
  const std::pair<Metric, std::pair<const FieldChecksum*, const FieldChecksum*>>
      sums[] = {{Metric::kSolutionChecksum, {&ov.u, &bl.u}},
                {Metric::kEnergyChecksum, {&ov.energy, &bl.energy}}};
  for (const auto& [metric, cs] : sums) {
    out.push_back(exact_check(metric, cs.first->sum, cs.second->sum,
                              std::string(tag) + " sum"));
    out.push_back(exact_check(metric, cs.first->l2, cs.second->l2,
                              std::string(tag) + " l2"));
    out.push_back(exact_check(metric, cs.first->min, cs.second->min,
                              std::string(tag) + " min"));
    out.push_back(exact_check(metric, cs.first->max, cs.second->max,
                              std::string(tag) + " max"));
  }
}

/// Condenses a finished distributed run into a GoldenRecord. The assembled
/// global fields in the report are padded like a single-chunk run with the
/// halo cells zero, which is exactly what the interior-only checksum wants.
GoldenRecord condense_dist(const core::Settings& s,
                           const dist::DistReport& rep) {
  const core::StepReport& last = rep.run.steps.back();
  const core::Mesh& mesh = rep.global_mesh;
  GoldenRecord rec;
  rec.solver = s.solver;
  rec.nx = mesh.nx;
  rec.steps = static_cast<int>(rep.run.steps.size());
  rec.converged = last.solve.converged;
  rec.iterations = last.solve.iterations;
  rec.inner_iterations = last.solve.inner_iterations;
  rec.final_rr = last.solve.final_rr;
  rec.volume = last.summary.volume;
  rec.mass = last.summary.mass;
  rec.internal_energy = last.summary.internal_energy;
  rec.temperature = last.summary.temperature;
  rec.u = checksum_field(mesh, rep.u.view2d(mesh.padded_nx(), mesh.padded_ny()));
  rec.energy = checksum_field(
      mesh, rep.energy.view2d(mesh.padded_nx(), mesh.padded_ny()));
  return rec;
}

}  // namespace

int ConformanceReport::failed_cells() const {
  return static_cast<int>(
      std::count_if(cells.begin(), cells.end(),
                    [](const CellResult& c) { return !c.pass; }));
}

bool ConformanceReport::golden_pass() const {
  return std::all_of(references.begin(), references.end(),
                     [](const ReferenceResult& r) { return r.golden_pass; });
}

bool ConformanceReport::all_pass() const {
  if (failed_cells() != 0 || !golden_pass()) return false;
  return std::all_of(
      references.begin(), references.end(),
      [](const ReferenceResult& r) { return r.record.converged; });
}

ConformanceReport run_conformance(const VerifyOptions& options) {
  if (options.solvers.empty()) {
    throw std::invalid_argument("run_conformance: no solvers selected");
  }
  if (!options.comm_perturb.empty() && options.ranks < 2) {
    throw std::invalid_argument(
        "run_conformance: comm_perturb needs ranks > 1 (there is no "
        "communication to corrupt in a single-rank run)");
  }
  ConformanceReport report;
  report.options = options;

  // Golden store (loaded once; individual lookups may still miss).
  std::vector<GoldenRecord> golden;
  bool golden_loaded = false;
  std::string golden_error;
  if (!options.golden_path.empty()) {
    try {
      golden = load_golden(options.golden_path);
      golden_loaded = true;
    } catch (const std::runtime_error& e) {
      golden_error = e.what();
    }
  }

  // Reference solves, one per solver.
  for (const SolverKind solver : options.solvers) {
    const core::Settings s = make_settings(options, solver);
    const core::Mesh mesh(s.nx, s.ny, s.halo_depth);
    std::unique_ptr<core::SolverKernels> kernels =
        std::make_unique<core::ReferenceKernels>(mesh);
    if (!options.perturb_kernel.empty()) {
      kernels = std::make_unique<PerturbingKernels>(
          std::move(kernels), options.perturb_kernel, options.perturb_factor);
    }
    core::Driver driver(s, std::move(kernels));
    const core::RunReport run = driver.run();

    ReferenceResult ref;
    ref.solver = solver;
    ref.record = condense_run(driver, run);
    ref.rr_history = run.steps.back().solve.rr_history;

    if (!options.golden_path.empty() && options.pipelined &&
        solver == SolverKind::kCg) {
      // The golden store records classic-CG baselines; the pipelined solve
      // follows a different arithmetic path, so the comparison would be
      // meaningless rather than strict.
      ref.golden_note = "golden skipped: pipelined CG has no baseline record";
    } else if (!options.golden_path.empty()) {
      ref.golden_checked = true;
      const ToleranceSpec spec = ToleranceSpec::defaults(solver, s.eps);
      if (!golden_loaded) {
        ref.golden_pass = false;
        ref.golden_note = golden_error;
      } else if (const GoldenRecord* g = find_golden(golden, solver, s.nx,
                                                     s.end_step)) {
        append_record_checks(ref.golden_metrics, ref.record, *g, spec);
        ref.golden_pass =
            std::all_of(ref.golden_metrics.begin(), ref.golden_metrics.end(),
                        [](const MetricResult& m) { return m.pass; });
      } else {
        ref.golden_pass = false;
        ref.golden_note = util::strf(
            "no golden record for %s nx=%d steps=%d in %s",
            std::string(core::solver_name(solver)).c_str(), s.nx, s.end_step,
            options.golden_path.c_str());
      }
    }
    report.references.push_back(std::move(ref));
  }

  // Conformance cells: every supported (model, device) x solver.
  for (const sim::Model model : sim::kAllModels) {
    if (options.only_model && *options.only_model != model) continue;
    for (const sim::DeviceId device : sim::kAllDevices) {
      if (options.only_device && *options.only_device != device) continue;
      if (!ports::is_supported(model, device)) continue;
      for (std::size_t si = 0; si < options.solvers.size(); ++si) {
        const SolverKind solver = options.solvers[si];
        const ReferenceResult& ref = report.references[si];
        const bool distributed = options.ranks > 1;
        core::Settings s = make_settings(options, solver);
        const ToleranceSpec spec =
            spec_for(options, solver, s.eps, distributed);

        CellResult cell;
        cell.model = model;
        cell.device = device;
        cell.solver = solver;
        if (distributed) {
          // R-rank vs 1-rank contract: the decomposed solve, reassembled,
          // must match the single-chunk reference under the distributed
          // bounds. Replay checks are skipped — the phantom replay models a
          // single chunk, not R tiles plus comm events.
          s.nranks = options.ranks;
          s.overlap_comm = options.overlap;
          const std::uint64_t seed = options.seed;
          const auto factory = [&](const core::Mesh& mesh, int rank) {
            return ports::make_port(model, device, mesh,
                                    seed + static_cast<std::uint64_t>(rank));
          };
          dist::DistributedDriver driver(s, factory);
          dist::RunControl ctl;
          ctl.comm_perturb = options.comm_perturb;
          const dist::DistReport rep = driver.run(ctl);
          const GoldenRecord dist_rec = condense_dist(s, rep);
          append_record_checks(cell.metrics, dist_rec, ref.record, spec);
          cell.metrics.push_back(
              check_history(rep.run.steps.back().solve.rr_history,
                            ref.rr_history, spec, /*len_slack=*/1));
          // The overlap-identity twin is meaningless under comm perturbation:
          // set_comm_perturb forces the blocking path on both runs.
          if (options.overlap && options.comm_perturb.empty()) {
            // Blocking twin with the same seeds: the overlapped pipeline may
            // reorder sweeps and defer completions, but every number it
            // produces must be the blocking number, bit for bit.
            core::Settings sb = s;
            sb.overlap_comm = false;
            dist::DistributedDriver blocking(sb, factory);
            const dist::DistReport brep = blocking.run();
            append_overlap_identity(cell.metrics, dist_rec,
                                    condense_dist(sb, brep));
          }
        } else {
          core::Driver driver(
              s, ports::make_port(model, device,
                                  core::Mesh(s.nx, s.ny, s.halo_depth),
                                  options.seed));
          const core::RunReport run = driver.run();
          append_record_checks(cell.metrics, condense_run(driver, run),
                               ref.record, spec);
          cell.metrics.push_back(check_history(
              run.steps.back().solve.rr_history, ref.rr_history, spec));
          if (options.check_replay && options.steps == 1) {
            append_replay_checks(cell.metrics, options, model, device, s, run,
                                 spec);
          }
        }
        cell.pass = std::all_of(cell.metrics.begin(), cell.metrics.end(),
                                [](const MetricResult& m) { return m.pass; });
        for (const MetricResult& m : cell.metrics) {
          if (std::isfinite(m.cmp.rel_err)) {
            cell.max_rel_err = std::max(cell.max_rel_err, m.cmp.rel_err);
          }
        }
        report.cells.push_back(std::move(cell));
      }
    }
  }
  return report;
}

}  // namespace tl::verify
