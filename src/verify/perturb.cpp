#include "verify/perturb.hpp"

#include <algorithm>

namespace tl::verify {

const std::vector<std::string>& PerturbingKernels::targets() {
  static const std::vector<std::string> kTargets = {
      "cg_init", "cg_calc_w", "cg_calc_ur", "calc_2norm", "field_summary"};
  return kTargets;
}

PerturbingKernels::PerturbingKernels(
    std::unique_ptr<core::SolverKernels> inner, std::string target,
    double factor)
    : inner_(std::move(inner)), target_(std::move(target)), factor_(factor) {
  if (!inner_) {
    throw std::invalid_argument("PerturbingKernels: null inner kernels");
  }
  const auto& ts = targets();
  if (std::find(ts.begin(), ts.end(), target_) == ts.end()) {
    std::string msg = "PerturbingKernels: unknown target '" + target_ +
                      "'; expected one of:";
    for (const auto& t : ts) msg += " " + t;
    throw std::invalid_argument(msg);
  }
}

core::FieldSummary PerturbingKernels::field_summary() {
  core::FieldSummary s = inner_->field_summary();
  if (target_ == "field_summary") {
    s.internal_energy *= factor_;
    s.temperature *= factor_;
  }
  return s;
}

}  // namespace tl::verify
