#include "verify/checksum.hpp"

#include <cmath>
#include <limits>

namespace tl::verify {

FieldChecksum checksum_field(const core::Mesh& mesh,
                             tl::util::Span2D<const double> field) {
  FieldChecksum cs;
  cs.min = std::numeric_limits<double>::infinity();
  cs.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0, sum_c = 0.0;    // Kahan accumulator + compensation
  double sq = 0.0, sq_c = 0.0;
  const int h = mesh.halo_depth;
  for (int y = h; y < h + mesh.ny; ++y) {
    for (int x = h; x < h + mesh.nx; ++x) {
      const double v = field(x, y);
      double t = v - sum_c;
      double s = sum + t;
      sum_c = (s - sum) - t;
      sum = s;
      t = v * v - sq_c;
      s = sq + t;
      sq_c = (s - sq) - t;
      sq = s;
      cs.min = std::min(cs.min, v);
      cs.max = std::max(cs.max, v);
    }
  }
  cs.sum = sum;
  cs.l2 = std::sqrt(sq);
  if (mesh.nx <= 0 || mesh.ny <= 0) cs.min = cs.max = 0.0;
  return cs;
}

}  // namespace tl::verify
