#pragma once
// Cross-model conformance checker.
//
// Runs every supported (model, device) pair from the paper's Table 1 through
// the chosen solvers on the default TeaLeaf problem and asserts that control
// flow (convergence, iteration counts), the residual history, the physics
// summary, and field checksums agree with the serial reference kernels
// within the documented tolerances (verify/tolerance.hpp), and that the
// port's simulated clock agrees with the PhantomKernels analytic replay —
// the full correctness contract the paper's methodology rests on, checkable
// with one call / one CLI invocation (`tl_verify`).

#include <optional>
#include <string>
#include <vector>

#include "core/solvers.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"
#include "verify/golden.hpp"
#include "verify/tolerance.hpp"

namespace tl::verify {

struct VerifyOptions {
  /// Mesh edge for the conformance solves. Small enough to be instant,
  /// large enough that CG does not converge inside the Chebyshev/PPCG
  /// bootstrap (which would hide the post-bootstrap control flow).
  int nx = 40;
  int steps = 1;
  std::uint64_t seed = 7;

  /// MiniComm ranks for the port solves. 1 checks the classic single-chunk
  /// path; R > 1 runs every cell through dist::DistributedDriver on an
  /// R-rank block decomposition and compares against the same single-rank
  /// reference under ToleranceSpec::distributed — the R-rank vs 1-rank
  /// agreement contract of DESIGN.md §8. Replay checks are skipped (the
  /// phantom replay models a single chunk).
  int ranks = 1;

  /// Overlapped halo exchange (tl_overlap_comm) for the distributed cells.
  /// When on (the default) and ranks > 1, every cell additionally runs a
  /// blocking twin of the decomposed solve and asserts the two condensed
  /// records are bit-identical — the overlap pipeline's exactness contract
  /// (DESIGN.md §10). Ignored for ranks == 1.
  bool overlap = true;

  /// Pipelined CG (tl_pipelined_cg) for every solve in the sweep. Only the
  /// CG cells change behaviour (Chebyshev/PPCG bootstrap with classic CG
  /// iterations); they run under ToleranceSpec::pipelined and, since both
  /// the reference and the ports take the pipelined path, still agree on
  /// control flow exactly. With ranks > 1 the overlap twin additionally
  /// proves the nonblocking allreduce bit-identical to the blocking one.
  bool pipelined = false;

  /// Assert the live port's simulated clock against the analytic replay
  /// (only meaningful for steps == 1; skipped otherwise).
  bool check_replay = true;

  /// Path of the golden baseline CSV; empty skips the golden check.
  std::string golden_path;

  /// Fault injection: name of a reference kernel to corrupt (see
  /// PerturbingKernels::targets()); empty means none.
  std::string perturb_kernel;
  double perturb_factor = 1.0 + 1e-6;

  /// Comm-phase fault injection for the distributed cells (ranks > 1 only):
  /// "halo_payload" corrupts one received halo cell in flight, "allreduce"
  /// one rank's reduction contribution (dist::RunControl::comm_perturb).
  /// The perturbed cells must FAIL against the clean single-rank reference —
  /// the checker's proof that in-flight corruption is detected.
  std::string comm_perturb;

  /// Solvers to check (defaults to the paper's three).
  std::vector<core::SolverKind> solvers{core::kAllSolvers.begin(),
                                        core::kAllSolvers.end()};

  /// Optional restriction to one model and/or device.
  std::optional<sim::Model> only_model;
  std::optional<sim::DeviceId> only_device;
};

/// One checked quantity within a cell.
struct MetricResult {
  Metric metric = Metric::kConverged;
  Comparison cmp;       // a = port (or live reference), b = reference (or golden)
  Tolerance tol;
  bool pass = false;
  std::string detail;   // e.g. "entry 17/43" for the residual history
};

/// One model x device x solver cell of the conformance matrix.
struct CellResult {
  sim::Model model{};
  sim::DeviceId device{};
  core::SolverKind solver{};
  bool pass = false;
  double max_rel_err = 0.0;  // worst relative error over all metrics
  std::vector<MetricResult> metrics;
};

/// The reference solve for one solver, plus its golden comparison.
struct ReferenceResult {
  core::SolverKind solver{};
  GoldenRecord record;                 // condensed reference result
  std::vector<double> rr_history;
  bool golden_checked = false;         // golden store consulted?
  bool golden_pass = true;
  std::vector<MetricResult> golden_metrics;
  std::string golden_note;             // e.g. "no golden record for PPCG/40"
};

struct ConformanceReport {
  VerifyOptions options;
  std::vector<ReferenceResult> references;  // one per checked solver
  std::vector<CellResult> cells;            // model x device x solver

  int failed_cells() const;
  bool golden_pass() const;
  bool all_pass() const;  // every cell passes and the golden check holds
};

/// Runs the full conformance sweep. Throws std::invalid_argument for
/// malformed options (unknown perturbation target, empty solver list).
ConformanceReport run_conformance(const VerifyOptions& options = {});

}  // namespace tl::verify
