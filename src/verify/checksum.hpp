#pragma once
// Deterministic field checksums for conformance records and golden baselines.
//
// A checksum condenses one padded field into three numbers computed over the
// interior only (halos are port-private scratch): a compensated (Kahan) sum,
// the L2 norm, and the extrema. Kahan summation makes the checksum
// insensitive to the *accumulation* order the reference uses, so two fields
// whose cells agree to 1e-12 produce checksums agreeing to the same order —
// which is what lets a single scalar comparison stand in for a cell-by-cell
// sweep in the golden store.

#include "core/mesh.hpp"
#include "util/span2d.hpp"

namespace tl::verify {

struct FieldChecksum {
  double sum = 0.0;   // compensated interior sum
  double l2 = 0.0;    // sqrt(sum of squares)
  double min = 0.0;
  double max = 0.0;
};

/// Checksums `field` (padded layout) over the interior of `mesh`.
FieldChecksum checksum_field(const core::Mesh& mesh,
                             tl::util::Span2D<const double> field);

}  // namespace tl::verify
