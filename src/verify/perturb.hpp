#pragma once
// PerturbingKernels: a SolverKernels decorator that corrupts the result of
// exactly one named kernel by a small multiplicative factor.
//
// This is the conformance subsystem's fault injector: wrapping the reference
// kernels with a perturbation on e.g. "cg_calc_ur" must make `tl_verify`
// (and the golden check) report divergence — the acceptance test that the
// checker actually has teeth. The perturbable kernels are the
// scalar-returning ones plus the field summary, because corrupting a scalar
// feeds back into the solver control flow exactly the way a genuinely broken
// kernel would.

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/kernels_api.hpp"

namespace tl::verify {

class PerturbingKernels final : public core::SolverKernels {
 public:
  /// Wraps `inner`; results of the kernel named `target` are scaled by
  /// `factor`. Throws std::invalid_argument for unknown targets.
  PerturbingKernels(std::unique_ptr<core::SolverKernels> inner,
                    std::string target, double factor = 1.0 + 1e-6);

  /// Kernel names accepted as perturbation targets.
  static const std::vector<std::string>& targets();

  void upload_state(const core::Chunk& chunk) override {
    inner_->upload_state(chunk);
  }
  void init_u() override { inner_->init_u(); }
  void init_coefficients(core::Coefficient coefficient, double rx,
                         double ry) override {
    inner_->init_coefficients(coefficient, rx, ry);
  }
  void halo_update(unsigned fields, int depth) override {
    inner_->halo_update(fields, depth);
  }
  void calc_residual() override { inner_->calc_residual(); }
  double calc_2norm(core::NormTarget target) override {
    return scale("calc_2norm", inner_->calc_2norm(target));
  }
  void finalise() override { inner_->finalise(); }
  core::FieldSummary field_summary() override;
  double cg_init() override { return scale("cg_init", inner_->cg_init()); }
  double cg_calc_w() override {
    return scale("cg_calc_w", inner_->cg_calc_w());
  }
  double cg_calc_ur(double alpha) override {
    return scale("cg_calc_ur", inner_->cg_calc_ur(alpha));
  }
  void cg_calc_p(double beta) override { inner_->cg_calc_p(beta); }
  void cheby_init(double theta) override { inner_->cheby_init(theta); }
  void cheby_iterate(double alpha, double beta) override {
    inner_->cheby_iterate(alpha, beta);
  }
  void ppcg_init_sd(double theta) override { inner_->ppcg_init_sd(theta); }
  void ppcg_inner(double alpha, double beta) override {
    inner_->ppcg_inner(alpha, beta);
  }
  void jacobi_copy_u() override { inner_->jacobi_copy_u(); }
  void jacobi_iterate() override { inner_->jacobi_iterate(); }

  // Fused kernels perturb under their classic target names: a fused sweep is
  // the same logical kernel, so "cg_calc_w" faults must fire whichever code
  // path the solver dispatches.
  unsigned caps() const override { return inner_->caps(); }
  core::CgFusedW cg_calc_w_fused() override {
    core::CgFusedW v = inner_->cg_calc_w_fused();
    v.pw = scale("cg_calc_w", v.pw);
    return v;
  }
  double cg_fused_ur_p(double alpha, double beta_prev) override {
    return scale("cg_calc_ur", inner_->cg_fused_ur_p(alpha, beta_prev));
  }
  double fused_residual_norm() override {
    return scale("calc_2norm", inner_->fused_residual_norm());
  }
  void cheby_fused_iterate(double alpha, double beta) override {
    inner_->cheby_fused_iterate(alpha, beta);
  }
  void ppcg_fused_inner(double alpha, double beta) override {
    inner_->ppcg_fused_inner(alpha, beta);
  }
  void jacobi_fused_copy_iterate() override {
    inner_->jacobi_fused_copy_iterate();
  }
  tl::util::Span2D<double> field_view(core::FieldId id) override {
    return inner_->field_view(id);
  }
  void read_u(tl::util::Span2D<double> out) override { inner_->read_u(out); }
  void download_energy(core::Chunk& chunk) override {
    inner_->download_energy(chunk);
  }
  const tl::sim::SimClock& clock() const override { return inner_->clock(); }
  void begin_run(std::uint64_t run_seed) override {
    inner_->begin_run(run_seed);
  }

 private:
  double scale(std::string_view kernel, double value) const {
    return kernel == target_ ? value * factor_ : value;
  }

  std::unique_ptr<core::SolverKernels> inner_;
  std::string target_;
  double factor_;
};

}  // namespace tl::verify
