#include "verify/tolerance.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace tl::verify {

namespace {

/// Maps a double onto a monotonically ordered signed integer line so ULP
/// distance is a subtraction (the classic Bruce Dawson trick).
std::int64_t ordered_bits(double v) {
  const std::int64_t bits = std::bit_cast<std::int64_t>(v);
  return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) return 0;  // covers +0 vs -0
  const std::int64_t oa = ordered_bits(a);
  const std::int64_t ob = ordered_bits(b);
  // Opposite-sign comparands: the walk crosses zero; report saturated
  // distance rather than counting through the entire subnormal range twice.
  if ((a < 0.0) != (b < 0.0)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::int64_t d = oa > ob ? oa - ob : ob - oa;
  return static_cast<std::uint64_t>(d);
}

Comparison compare(double a, double b, const Tolerance& tol) {
  Comparison c;
  c.a = a;
  c.b = b;
  if (std::isnan(a) || std::isnan(b)) {
    c.abs_err = c.rel_err = std::numeric_limits<double>::infinity();
    c.ulp_err = std::numeric_limits<std::uint64_t>::max();
    c.pass = false;
    return c;
  }
  c.abs_err = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  c.rel_err = scale > 0.0 ? c.abs_err / scale : 0.0;
  c.ulp_err = ulp_distance(a, b);
  c.pass = (a == b) || (tol.abs > 0.0 && c.abs_err <= tol.abs) ||
           (tol.rel > 0.0 && c.rel_err <= tol.rel) ||
           (tol.ulp > 0 && c.ulp_err <= tol.ulp);
  return c;
}

std::string_view metric_name(Metric m) {
  switch (m) {
    case Metric::kConverged: return "converged";
    case Metric::kIterations: return "iterations";
    case Metric::kInnerIterations: return "inner_iterations";
    case Metric::kFinalResidual: return "final_residual";
    case Metric::kResidualHistory: return "residual_history";
    case Metric::kVolume: return "volume";
    case Metric::kMass: return "mass";
    case Metric::kInternalEnergy: return "internal_energy";
    case Metric::kTemperature: return "temperature";
    case Metric::kSolutionChecksum: return "solution_checksum";
    case Metric::kEnergyChecksum: return "energy_checksum";
    case Metric::kReplaySeconds: return "replay_seconds";
    case Metric::kReplayLaunches: return "replay_launches";
  }
  return "?";
}

ToleranceSpec ToleranceSpec::defaults(core::SolverKind solver, double eps) {
  ToleranceSpec spec;
  spec.solver_ = solver;

  // Control flow must be identical: the ports run the same solver drivers.
  spec[Metric::kConverged] = Tolerance::exact();
  spec[Metric::kIterations] = Tolerance::exact();
  spec[Metric::kInnerIterations] = Tolerance::exact();

  // Residuals converge to < eps, so near convergence only the absolute
  // criterion is meaningful; early history entries are O(1) and covered by
  // the relative bound. Chebyshev's main loop accumulates the three-term
  // recurrence for check_interval iterations between norm checks, so its
  // histories drift a little further apart than CG's.
  const bool cheby = solver == core::SolverKind::kCheby;
  spec[Metric::kFinalResidual] = Tolerance{.abs = eps, .rel = 1e-6};
  spec[Metric::kResidualHistory] =
      Tolerance{.abs = eps, .rel = cheby ? 1e-7 : 1e-8};

  // Physics summaries: mass/volume are pure data sums (reassociation only);
  // energy and temperature fold the solve's rounding differences.
  spec[Metric::kVolume] = Tolerance{.rel = 1e-12};
  spec[Metric::kMass] = Tolerance{.rel = 1e-12};
  spec[Metric::kInternalEnergy] = Tolerance{.rel = 1e-10};
  spec[Metric::kTemperature] = Tolerance{.rel = 1e-10};

  // Field checksums aggregate per-cell differences bounded at 1e-9 relative
  // (the existing cell-wise port test bound).
  spec[Metric::kSolutionChecksum] = Tolerance{.rel = 1e-9};
  spec[Metric::kEnergyChecksum] = Tolerance{.rel = 1e-9};

  // Metering: the analytic replay is pinned to the live ports at 1e-9
  // relative (tests/test_ports.cpp), launch counts exactly.
  spec[Metric::kReplaySeconds] = Tolerance{.rel = 1e-9};
  spec[Metric::kReplayLaunches] = Tolerance::exact();
  return spec;
}

ToleranceSpec ToleranceSpec::distributed(core::SolverKind solver, double eps) {
  // Start from the single-rank bounds and relax where the decomposition
  // genuinely changes the arithmetic. Measured drift at 4 ranks on the
  // conformance mesh is ~1e-14 relative (the global rx/ry are computed once
  // and MiniComm's allreduce is rank-order deterministic), so these bounds
  // keep an order-of-magnitude headroom without losing discrimination.
  ToleranceSpec spec = defaults(solver, eps);

  // Reassociated dot products can flip a convergence check that lands within
  // rounding of eps, shifting the outer count by an iteration (and the PPCG
  // inner tally by one batch of inner steps).
  spec[Metric::kIterations] = Tolerance{.abs = 2.0};
  spec[Metric::kInnerIterations] = Tolerance{.abs = 2.0 * 64.0};

  const bool cheby = solver == core::SolverKind::kCheby;
  spec[Metric::kResidualHistory] =
      Tolerance{.abs = eps, .rel = cheby ? 1e-6 : 1e-7};

  // Summaries and checksums fold per-tile partial sums; the Kahan checksum
  // absorbs reassociation but not the solve's own drift.
  spec[Metric::kInternalEnergy] = Tolerance{.rel = 1e-9};
  spec[Metric::kTemperature] = Tolerance{.rel = 1e-9};
  spec[Metric::kSolutionChecksum] = Tolerance{.rel = 1e-8};
  spec[Metric::kEnergyChecksum] = Tolerance{.rel = 1e-8};
  return spec;
}

ToleranceSpec ToleranceSpec::pipelined(core::SolverKind solver, double eps,
                                       bool distributed_run) {
  ToleranceSpec spec =
      distributed_run ? distributed(solver, eps) : defaults(solver, eps);
  // The recurrence-maintained w (and the derived z/q chain) re-folds every
  // implementation's association differences into the next iterate, so the
  // drift grows a little faster than classic CG's recomputed residual.
  // One order of magnitude of extra slack keeps the perturbation tests
  // (1e-6 kernel corruption, 1e-3 comm corruption) cleanly detectable.
  spec[Metric::kFinalResidual].rel = 1e-5;
  spec[Metric::kResidualHistory].rel = distributed_run ? 1e-6 : 1e-7;
  spec[Metric::kSolutionChecksum].rel = distributed_run ? 1e-7 : 1e-8;
  spec[Metric::kEnergyChecksum].rel = distributed_run ? 1e-7 : 1e-8;
  spec[Metric::kInternalEnergy].rel = 1e-9;
  spec[Metric::kTemperature].rel = 1e-9;
  return spec;
}

const Tolerance& ToleranceSpec::operator[](Metric m) const {
  return table_[static_cast<std::size_t>(m)];
}

Tolerance& ToleranceSpec::operator[](Metric m) {
  return table_[static_cast<std::size_t>(m)];
}

}  // namespace tl::verify
