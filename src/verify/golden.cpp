#include "verify/golden.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/driver.hpp"
#include "core/reference_kernels.hpp"
#include "util/buffer.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace tl::verify {

namespace {

constexpr const char* kColumns[] = {
    "solver", "nx", "steps", "converged", "iterations", "inner_iterations",
    "final_rr", "volume", "mass", "internal_energy", "temperature",
    "u_sum", "u_l2", "u_min", "u_max",
    "energy_sum", "energy_l2", "energy_min", "energy_max"};

std::string fmt(double v) { return util::strf("%.17g", v); }

core::SolverKind parse_solver_or_throw(const std::string& name) {
  for (const core::SolverKind s :
       {core::SolverKind::kCg, core::SolverKind::kCheby,
        core::SolverKind::kPpcg, core::SolverKind::kJacobi}) {
    if (name == core::solver_name(s)) return s;
  }
  throw std::runtime_error("golden: unknown solver '" + name + "'");
}

}  // namespace

GoldenRecord condense_run(core::Driver& driver,
                          const core::RunReport& report) {
  const core::Mesh& mesh = driver.mesh();
  const core::StepReport& last = report.steps.back();

  GoldenRecord rec;
  rec.solver = driver.settings().solver;
  rec.nx = mesh.nx;
  rec.steps = static_cast<int>(report.steps.size());
  rec.converged = last.solve.converged;
  rec.iterations = last.solve.iterations;
  rec.inner_iterations = last.solve.inner_iterations;
  rec.final_rr = last.solve.final_rr;
  rec.volume = last.summary.volume;
  rec.mass = last.summary.mass;
  rec.internal_energy = last.summary.internal_energy;
  rec.temperature = last.summary.temperature;

  util::Buffer<double> u(mesh.padded_cells());
  driver.kernels().read_u(u.view2d(mesh.padded_nx(), mesh.padded_ny()));
  rec.u = checksum_field(mesh, u.view2d(mesh.padded_nx(), mesh.padded_ny()));
  rec.energy = checksum_field(mesh, driver.chunk().field(core::FieldId::kEnergy));
  return rec;
}

GoldenRecord compute_reference_record(core::SolverKind solver, int nx,
                                      int steps) {
  core::Settings s = core::Settings::default_problem();
  s.nx = s.ny = nx;
  s.solver = solver;
  s.end_step = steps;
  const core::Mesh mesh(nx, nx, s.halo_depth);
  core::Driver driver(s, std::make_unique<core::ReferenceKernels>(mesh));
  const core::RunReport report = driver.run();
  return condense_run(driver, report);
}

void save_golden(const std::string& path,
                 const std::vector<GoldenRecord>& records) {
  util::CsvWriter csv(path, {std::begin(kColumns), std::end(kColumns)});
  for (const GoldenRecord& r : records) {
    csv.row({std::string(core::solver_name(r.solver)), util::strf("%d", r.nx),
             util::strf("%d", r.steps), r.converged ? "1" : "0",
             util::strf("%d", r.iterations),
             util::strf("%d", r.inner_iterations), fmt(r.final_rr),
             fmt(r.volume), fmt(r.mass), fmt(r.internal_energy),
             fmt(r.temperature), fmt(r.u.sum), fmt(r.u.l2), fmt(r.u.min),
             fmt(r.u.max), fmt(r.energy.sum), fmt(r.energy.l2),
             fmt(r.energy.min), fmt(r.energy.max)});
  }
}

std::vector<GoldenRecord> load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("golden: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("golden: empty file " + path);
  }
  constexpr std::size_t kFields = std::size(kColumns);
  std::vector<GoldenRecord> records;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> cells = util::parse_csv_line(line);
    if (cells.size() != kFields) {
      throw std::runtime_error(
          util::strf("golden: malformed row in %s (%zu cells, expected %zu)",
                     path.c_str(), cells.size(), kFields));
    }
    try {
      GoldenRecord r;
      std::size_t i = 0;
      r.solver = parse_solver_or_throw(cells[i++]);
      r.nx = std::stoi(cells[i++]);
      r.steps = std::stoi(cells[i++]);
      r.converged = cells[i++] == "1";
      r.iterations = std::stoi(cells[i++]);
      r.inner_iterations = std::stoi(cells[i++]);
      r.final_rr = std::stod(cells[i++]);
      r.volume = std::stod(cells[i++]);
      r.mass = std::stod(cells[i++]);
      r.internal_energy = std::stod(cells[i++]);
      r.temperature = std::stod(cells[i++]);
      r.u.sum = std::stod(cells[i++]);
      r.u.l2 = std::stod(cells[i++]);
      r.u.min = std::stod(cells[i++]);
      r.u.max = std::stod(cells[i++]);
      r.energy.sum = std::stod(cells[i++]);
      r.energy.l2 = std::stod(cells[i++]);
      r.energy.min = std::stod(cells[i++]);
      r.energy.max = std::stod(cells[i++]);
      records.push_back(r);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("golden: non-numeric cell in " + path);
    } catch (const std::out_of_range&) {
      throw std::runtime_error("golden: out-of-range cell in " + path);
    }
  }
  return records;
}

const GoldenRecord* find_golden(const std::vector<GoldenRecord>& records,
                                core::SolverKind solver, int nx, int steps) {
  for (const GoldenRecord& r : records) {
    if (r.solver == solver && r.nx == nx && r.steps == steps) return &r;
  }
  return nullptr;
}

}  // namespace tl::verify
