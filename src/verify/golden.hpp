#pragma once
// Golden baseline store: committed reference-solve results that pin the
// correctness oracle itself across commits, compilers, and build types.
//
// The cross-model checker compares every port against the in-process
// reference kernels; the golden store closes the remaining hole — a change
// that breaks the reference *and* every port identically would still
// "conform". Baselines live in CSV (verify/golden/reference.csv in the
// repo), carry full double precision (%.17g), and are regenerated only by an
// explicit `tl_verify --regen-golden` (the policy: a diff to a golden file
// must be a reviewed, deliberate act).

#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/settings.hpp"
#include "verify/checksum.hpp"

namespace tl::verify {

/// One reference solve, condensed: control flow, physics summary, field
/// checksums. One record per (solver, nx).
struct GoldenRecord {
  core::SolverKind solver = core::SolverKind::kCg;
  int nx = 0;
  int steps = 1;
  bool converged = false;
  int iterations = 0;
  int inner_iterations = 0;
  double final_rr = 0.0;
  double volume = 0.0;
  double mass = 0.0;
  double internal_energy = 0.0;
  double temperature = 0.0;
  FieldChecksum u;       // solution field after the last step
  FieldChecksum energy;  // finalised energy field after the last step
};

/// Runs the reference kernels on the default problem at `nx` for `steps`
/// steps with `solver` and condenses the result.
GoldenRecord compute_reference_record(core::SolverKind solver, int nx,
                                      int steps = 1);

/// Condenses an already-finished run (any SolverKernels) into a record.
/// `driver.run()` must have completed; reads u and the chunk's energy field.
GoldenRecord condense_run(core::Driver& driver, const core::RunReport& report);

/// CSV round trip. `save_golden` overwrites; `load_golden` throws
/// std::runtime_error on unreadable files or malformed rows.
void save_golden(const std::string& path,
                 const std::vector<GoldenRecord>& records);
std::vector<GoldenRecord> load_golden(const std::string& path);

/// Finds the record for (solver, nx, steps); returns nullptr when absent.
const GoldenRecord* find_golden(const std::vector<GoldenRecord>& records,
                                core::SolverKind solver, int nx, int steps);

}  // namespace tl::verify
