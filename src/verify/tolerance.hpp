#pragma once
// Tolerance framework for cross-model conformance checking.
//
// A Tolerance is a disjunction of three criteria — absolute difference,
// relative difference, and ULP distance — so one spec covers quantities of
// very different magnitude (converged residuals near 1e-16 pass on the
// absolute bound; O(1) energies pass on the relative bound; values that are
// bit-neighbours pass on the ULP bound regardless). A comparison passes when
// ANY enabled criterion holds; a zero/absent criterion is disabled, and an
// all-disabled Tolerance demands exact equality.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/settings.hpp"

namespace tl::verify {

struct Tolerance {
  double abs = 0.0;        // |a - b| <= abs
  double rel = 0.0;        // |a - b| <= rel * max(|a|, |b|)
  std::uint64_t ulp = 0;   // ulp_distance(a, b) <= ulp

  /// Exact-match tolerance (all criteria disabled).
  static constexpr Tolerance exact() { return {}; }
};

/// Units-in-the-last-place distance between two doubles: the number of
/// representable values strictly between them (0 for equal values, including
/// +0/-0). Returns UINT64_MAX if either argument is NaN or the signs differ
/// on non-zero values of different sign.
std::uint64_t ulp_distance(double a, double b);

/// Outcome of one scalar comparison, with every criterion's error recorded
/// so reports can show *how close* a failing value was.
struct Comparison {
  double a = 0.0;
  double b = 0.0;
  double abs_err = 0.0;
  double rel_err = 0.0;
  std::uint64_t ulp_err = 0;
  bool pass = false;
};

/// Compares two doubles under `tol`. NaN never passes (even NaN vs NaN:
/// a conformance quantity that is NaN is a bug, not an agreement).
Comparison compare(double a, double b, const Tolerance& tol);

// ---------------------------------------------------------------------------
// Per-metric, per-solver tolerance tables
// ---------------------------------------------------------------------------

/// The conformance metrics the checker asserts for every
/// model x device x solver cell.
enum class Metric {
  kConverged,        // both solves converged (exact)
  kIterations,       // outer iteration count (exact)
  kInnerIterations,  // PPCG smoothing steps (exact)
  kFinalResidual,    // final squared residual norm
  kResidualHistory,  // element-wise residual history
  kVolume,           // field-summary volume
  kMass,             // field-summary mass
  kInternalEnergy,   // field-summary internal energy (the TeaLeaf validator)
  kTemperature,      // field-summary volume-weighted temperature
  kSolutionChecksum, // checksum of the solution field u
  kEnergyChecksum,   // checksum of the finalised energy field
  kReplaySeconds,    // live port simulated seconds vs analytic replay
  kReplayLaunches,   // live port launch count vs analytic replay (exact)
};

std::string_view metric_name(Metric m);

/// Tolerance table for one solver: metric -> Tolerance. The defaults encode
/// the documented bounds (DESIGN.md §7): exact integer control flow,
/// reduction-reassociation slack on energies and checksums, an absolute
/// floor of the convergence eps on residual comparisons, and the 1e-9
/// relative bound the port<->replay metering equivalence is pinned to.
class ToleranceSpec {
 public:
  /// Documented defaults for `solver` with convergence threshold `eps`.
  static ToleranceSpec defaults(core::SolverKind solver, double eps = 1e-15);

  /// R-rank vs 1-rank bounds (DESIGN.md §8): the decomposed solve reduces
  /// per-tile partials before a deterministic rank-ordered allreduce, so
  /// every dot product reassociates relative to the single-chunk run and the
  /// histories drift apart by accumulated rounding. Control flow may slip by
  /// an iteration near convergence (the residual crosses eps on a different
  /// side of the rounding), hence small absolute slack on the counts.
  static ToleranceSpec distributed(core::SolverKind solver, double eps = 1e-15);

  /// Pipelined-CG bounds: both comparands run the Ghysels-Vanroose
  /// recurrences, which maintain w = A r by update rather than
  /// recomputation, so association differences between implementations feed
  /// back through the iteration and the histories drift further apart than
  /// classic CG's. Applies on top of `defaults` (single-rank) or
  /// `distributed` (R-rank) per `distributed_run`.
  static ToleranceSpec pipelined(core::SolverKind solver, double eps = 1e-15,
                                 bool distributed_run = false);

  const Tolerance& operator[](Metric m) const;
  Tolerance& operator[](Metric m);

  core::SolverKind solver() const { return solver_; }

 private:
  core::SolverKind solver_ = core::SolverKind::kCg;
  Tolerance table_[13] = {};
};

}  // namespace tl::verify
