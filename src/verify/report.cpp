#include "verify/report.hpp"

#include <cmath>
#include <sstream>

#include "ports/registry.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace tl::verify {

namespace {

std::string fmt_err(double rel_err) {
  return rel_err == 0.0 ? "exact" : util::strf("%.1e", rel_err);
}

std::string cell_text(const CellResult& c) {
  return std::string(c.pass ? "pass " : "FAIL ") + fmt_err(c.max_rel_err);
}

/// JSON number formatting: full double precision, with non-finite values
/// (not representable in JSON) emitted as strings.
std::string jnum(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  return util::strf("%.17g", v);
}

void append_metric_json(std::ostringstream& os, const MetricResult& m) {
  os << "{\"metric\":\"" << metric_name(m.metric) << "\""
     << ",\"pass\":" << (m.pass ? "true" : "false")
     << ",\"value\":" << jnum(m.cmp.a) << ",\"reference\":" << jnum(m.cmp.b)
     << ",\"abs_err\":" << jnum(m.cmp.abs_err)
     << ",\"rel_err\":" << jnum(m.cmp.rel_err)
     << ",\"tol_abs\":" << jnum(m.tol.abs) << ",\"tol_rel\":" << jnum(m.tol.rel);
  if (!m.detail.empty()) os << ",\"detail\":\"" << json_escape(m.detail) << "\"";
  os << "}";
}

}  // namespace

std::string json_escape(std::string_view s) { return util::json_escape(s); }

std::string format_matrix(const ConformanceReport& report) {
  std::ostringstream os;
  if (report.options.ranks > 1) {
    os << "distributed: " << report.options.ranks
       << "-rank decomposed solves vs the 1-rank reference "
          "(ToleranceSpec::distributed)\n\n";
  }
  if (report.options.pipelined) {
    os << "pipelined: CG solves use the allreduce-hiding variant "
          "(ToleranceSpec::pipelined)\n\n";
  }
  for (const sim::DeviceId device : sim::kAllDevices) {
    if (report.options.only_device && *report.options.only_device != device) {
      continue;
    }
    // Collect this device's rows from the flat cell list.
    std::vector<std::string> header{"Model"};
    for (const core::SolverKind s : report.options.solvers) {
      header.emplace_back(core::solver_name(s));
    }
    util::Table table(header);
    bool any = false;
    for (const sim::Model model : sim::kAllModels) {
      std::vector<std::string> row{std::string(sim::model_name(model))};
      bool have_row = false;
      for (const CellResult& c : report.cells) {
        if (c.model == model && c.device == device) {
          row.push_back(cell_text(c));
          have_row = true;
        }
      }
      if (have_row) {
        table.row(std::move(row));
        any = true;
      }
    }
    if (!any) continue;
    os << "== " << sim::device_spec(device).name
       << " ==  (cell: pass/FAIL + worst relative error)\n"
       << table.render() << "\n";
  }

  for (const ReferenceResult& r : report.references) {
    if (!r.golden_checked) continue;
    os << "golden [" << core::solver_name(r.solver) << "] "
       << (r.golden_pass ? "pass" : "FAIL");
    if (!r.golden_note.empty()) os << " — " << r.golden_note;
    if (r.golden_pass && !r.golden_metrics.empty()) {
      double worst = 0.0;
      for (const MetricResult& m : r.golden_metrics) {
        if (std::isfinite(m.cmp.rel_err)) worst = std::max(worst, m.cmp.rel_err);
      }
      os << " (worst rel err " << fmt_err(worst) << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string to_json(const ConformanceReport& report) {
  std::ostringstream os;
  os << "{\"schema\":\"tl-verify-1\"";
  os << ",\"options\":{\"nx\":" << report.options.nx
     << ",\"steps\":" << report.options.steps
     << ",\"ranks\":" << report.options.ranks
     << ",\"seed\":" << report.options.seed << ",\"pipelined\":"
     << (report.options.pipelined ? "true" : "false") << ",\"check_replay\":"
     << (report.options.check_replay ? "true" : "false")
     << ",\"golden_path\":\"" << json_escape(report.options.golden_path)
     << "\",\"perturb_kernel\":\""
     << json_escape(report.options.perturb_kernel) << "\"}";

  os << ",\"golden\":[";
  bool first = true;
  for (const ReferenceResult& r : report.references) {
    if (!r.golden_checked) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"solver\":\"" << core::solver_name(r.solver) << "\""
       << ",\"pass\":" << (r.golden_pass ? "true" : "false");
    if (!r.golden_note.empty()) {
      os << ",\"note\":\"" << json_escape(r.golden_note) << "\"";
    }
    os << ",\"metrics\":[";
    for (std::size_t i = 0; i < r.golden_metrics.size(); ++i) {
      if (i != 0) os << ",";
      append_metric_json(os, r.golden_metrics[i]);
    }
    os << "]}";
  }
  os << "]";

  os << ",\"cells\":[";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellResult& c = report.cells[i];
    if (i != 0) os << ",";
    os << "{\"model\":\"" << sim::model_id(c.model) << "\""
       << ",\"device\":\"" << sim::device_short_name(c.device) << "\""
       << ",\"solver\":\"" << core::solver_name(c.solver) << "\""
       << ",\"pass\":" << (c.pass ? "true" : "false")
       << ",\"max_rel_err\":" << jnum(c.max_rel_err) << ",\"metrics\":[";
    for (std::size_t j = 0; j < c.metrics.size(); ++j) {
      if (j != 0) os << ",";
      append_metric_json(os, c.metrics[j]);
    }
    os << "]}";
  }
  os << "]";

  os << ",\"summary\":{\"cells\":" << report.cells.size()
     << ",\"failed_cells\":" << report.failed_cells()
     << ",\"golden_pass\":" << (report.golden_pass() ? "true" : "false")
     << ",\"pass\":" << (report.all_pass() ? "true" : "false") << "}}";
  return os.str();
}

}  // namespace tl::verify
