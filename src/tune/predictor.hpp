#pragma once
// Predictor: composes fitted series into an end-to-end runtime estimate for
// any (mesh, ranks, solver, model, device, fusion/overlap/pipelined) point.
//
// Resolution order, most-specific first:
//   1. A direct rank-sweep series for the exact (mesh, mode) — the fitted
//      fig13 curves — evaluated at the requested rank count.
//   2. The per-cell total_s series evaluated at nx*ny, divided across ranks,
//      plus the network model's comm term (fitted comm_s curve when one
//      exists, otherwise the analytic sim::network halo/allreduce prices
//      times the fitted iteration count).
//   3. When no total_s series exists, the sum of the fitted per-kernel
//      series (tl-report-1 profiles) — the compositional fallback.
// The fusion ratio multiplies estimates for use_fused = false, and the
// fitted hidden fraction discounts the comm term under overlap.

#include <string>

#include "tune/catalog.hpp"

namespace tl::tune {

struct PredictQuery {
  std::string model;
  std::string device;
  std::string solver = "CG";
  int nx = 0;
  int ny = 0;  // 0 = square mesh (ny = nx)
  int ranks = 1;
  bool use_fused = true;
  bool overlap_comm = true;
  bool use_pipelined = false;
};

struct Prediction {
  bool ok = false;
  std::string error;      // why no estimate could be formed
  double seconds = 0.0;   // end-to-end estimate
  double compute_s = 0.0;
  double comm_s = 0.0;
  bool extrapolated = false;  // outside every contributing fitted domain
  std::string basis;          // series keys the estimate composed
};

Prediction predict(const ModelCatalog& catalog, const PredictQuery& query);

}  // namespace tl::tune
