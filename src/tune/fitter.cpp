#include "tune/fitter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tl::tune {

const std::vector<Hypothesis>& hypothesis_lattice() {
  static const std::vector<Hypothesis> lattice = [] {
    const double exponents[] = {-1.0, -0.5, 0.0, 0.5, 1.0,
                                1.25, 1.5,  1.75, 2.0};
    std::vector<Hypothesis> cells;
    for (const double a : exponents) {
      for (int b = 0; b <= 2; ++b) {
        if (a == 0.0 && b == 0) continue;  // the constant, handled apart
        cells.push_back(Hypothesis{a, b});
      }
    }
    return cells;
  }();
  return lattice;
}

namespace {

constexpr double kTinyY = 1e-300;  // absolute guard against div-by-zero

/// Relative floor applied to |y| in both the 1/y^2 weights and relative
/// errors, as a fraction of the series' largest |y|. Without it a y == 0
/// point (e.g. comm seconds at ranks == 1) gets infinite weight and poisons
/// the normal equations with NaNs; with it the zero point is merely ~1e6
/// times heavier than the largest point, so the fit is pulled through it
/// without becoming singular.
double y_floor_of(const std::vector<SamplePoint>& pts) {
  double y_max = 0.0;
  for (const SamplePoint& p : pts) y_max = std::max(y_max, std::abs(p.y));
  return 1e-3 * y_max;
}

double basis(const Hypothesis& h, double x) {
  double phi = std::pow(x, h.a);
  if (h.b != 0) phi *= std::pow(std::log2(x), h.b);
  return phi;
}

double rel_err(double predicted, double actual, double floor) {
  if (!std::isfinite(predicted)) return std::numeric_limits<double>::max();
  return std::abs(predicted - actual) /
         std::max({std::abs(actual), floor, kTinyY});
}

/// Weighted (1/y^2) two-parameter least squares of y = c0 + c1 * phi over
/// the index subset [0, n) minus `skip` (-1 = use all). Returns false when
/// the weighted normal equations are singular (all phi effectively equal).
bool solve_wls(const std::vector<SamplePoint>& pts,
               const std::vector<double>& phi, int skip, double floor,
               double* c0, double* c1) {
  double W = 0.0, Sx = 0.0, Sy = 0.0, Sxx = 0.0, Sxy = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    const double denom = std::max({std::abs(pts[i].y), floor, kTinyY});
    const double w = 1.0 / (denom * denom);
    W += w;
    Sx += w * phi[i];
    Sy += w * pts[i].y;
    Sxx += w * phi[i] * phi[i];
    Sxy += w * phi[i] * pts[i].y;
  }
  const double det = W * Sxx - Sx * Sx;
  const double scale = W * Sxx + Sx * Sx;
  if (!(std::abs(det) > 1e-12 * std::max(scale, kTinyY))) return false;
  *c1 = (W * Sxy - Sx * Sy) / det;
  *c0 = (Sxx * Sy - Sx * Sxy) / det;
  return std::isfinite(*c0) && std::isfinite(*c1);
}

/// Weighted mean of y over the subset (the constant hypothesis).
double weighted_mean(const std::vector<SamplePoint>& pts, int skip,
                     double floor) {
  double W = 0.0, Sy = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    const double denom = std::max({std::abs(pts[i].y), floor, kTinyY});
    const double w = 1.0 / (denom * denom);
    W += w;
    Sy += w * pts[i].y;
  }
  return W > 0.0 ? Sy / W : 0.0;
}

/// Mean squared leave-one-out relative error of one candidate. `h` nullptr
/// means the constant hypothesis.
double loo_score(const std::vector<SamplePoint>& pts,
                 const std::vector<double>* phi, const Hypothesis* h,
                 double floor) {
  double sum = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    double predicted;
    if (h == nullptr) {
      predicted = weighted_mean(pts, static_cast<int>(i), floor);
    } else {
      double c0 = 0.0, c1 = 0.0;
      if (!solve_wls(pts, *phi, static_cast<int>(i), floor, &c0, &c1)) {
        return std::numeric_limits<double>::max();
      }
      predicted = c0 + c1 * (*phi)[i];
    }
    const double e = rel_err(predicted, pts[i].y, floor);
    if (e >= std::numeric_limits<double>::max()) {
      return std::numeric_limits<double>::max();
    }
    sum += e * e;
  }
  return sum / static_cast<double>(pts.size());
}

void finalize_quality(const std::vector<SamplePoint>& pts,
                      const ScalingFit& fit, double floor, FitQuality* q) {
  double rss = 0.0, rel_rss = 0.0, tss = 0.0;
  double mean = 0.0;
  for (const SamplePoint& p : pts) mean += p.y;
  mean /= static_cast<double>(pts.size());
  for (const SamplePoint& p : pts) {
    const double predicted =
        fit.c0 + (fit.c1 != 0.0
                      ? fit.c1 * basis(Hypothesis{fit.a, fit.b}, p.x)
                      : 0.0);
    const double r = predicted - p.y;
    rss += r * r;
    const double re = r / std::max({std::abs(p.y), floor, kTinyY});
    rel_rss += re * re;
    tss += (p.y - mean) * (p.y - mean);
  }
  q->rel_rss = rel_rss;
  q->r2 = tss > 0.0 ? 1.0 - rss / tss : 1.0;
  q->points = static_cast<int>(pts.size());
}

FitOutcome constant_outcome(const std::vector<SamplePoint>& pts, double c0,
                            double floor, bool fallback) {
  FitOutcome out;
  out.fit.c0 = c0;
  out.quality.fallback = fallback;
  if (!pts.empty()) {
    auto [lo, hi] = std::minmax_element(
        pts.begin(), pts.end(),
        [](const SamplePoint& l, const SamplePoint& r) { return l.x < r.x; });
    out.x_min = lo->x;
    out.x_max = hi->x;
    finalize_quality(pts, out.fit, floor, &out.quality);
  }
  return out;
}

}  // namespace

FitOutcome fit_series(const std::vector<SamplePoint>& points) {
  std::vector<SamplePoint> pts;
  pts.reserve(points.size());
  for (const SamplePoint& p : points) {
    if (std::isfinite(p.x) && std::isfinite(p.y) && p.x > 0.0 && p.y >= 0.0) {
      pts.push_back(p);
    }
  }

  const double floor = y_floor_of(pts);

  // Degenerate shapes, in escalating order of available information.
  if (pts.empty()) return constant_outcome(pts, 0.0, floor, true);
  if (pts.size() == 1) return constant_outcome(pts, pts[0].y, floor, true);

  const auto all_equal = [](auto&& get) {
    return [get](const std::vector<SamplePoint>& v) {
      for (const SamplePoint& p : v) {
        if (rel_err(get(p), get(v.front()), 0.0) > 1e-12) return false;
      }
      return true;
    };
  };
  if (all_equal([](const SamplePoint& p) { return p.x; })(pts)) {
    return constant_outcome(pts, weighted_mean(pts, -1, floor), floor, true);
  }
  if (all_equal([](const SamplePoint& p) { return p.y; })(pts)) {
    return constant_outcome(pts, pts.front().y, floor, false);
  }
  if (pts.size() == 2) {
    // Two distinct points: every lattice member interpolates exactly, so
    // selection is meaningless — pin the linear term.
    FitOutcome out;
    const Hypothesis linear{1.0, 0};
    std::vector<double> phi{basis(linear, pts[0].x), basis(linear, pts[1].x)};
    double c0 = 0.0, c1 = 0.0;
    if (!solve_wls(pts, phi, -1, floor, &c0, &c1)) {
      return constant_outcome(pts, weighted_mean(pts, -1, floor), floor, true);
    }
    out.fit = ScalingFit{c0, c1, 1.0, 0};
    out.quality.fallback = true;
    out.x_min = std::min(pts[0].x, pts[1].x);
    out.x_max = std::max(pts[0].x, pts[1].x);
    finalize_quality(pts, out.fit, floor, &out.quality);
    return out;
  }

  // Full selection: constant first (simplest), then the lattice in order.
  double best_score = loo_score(pts, nullptr, nullptr, floor);
  int best_index = -1;  // -1 = constant
  std::vector<double> phi(pts.size());
  const std::vector<Hypothesis>& lattice = hypothesis_lattice();
  for (std::size_t h = 0; h < lattice.size(); ++h) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      phi[i] = basis(lattice[h], pts[i].x);
    }
    const double score = loo_score(pts, &phi, &lattice[h], floor);
    // Strict improvement beyond noise keeps the tie-break deterministic and
    // biased toward the simpler, earlier hypothesis.
    if (score < best_score * (1.0 - 1e-9)) {
      best_score = score;
      best_index = static_cast<int>(h);
    }
  }

  FitOutcome out;
  if (best_index < 0) {
    out = constant_outcome(pts, weighted_mean(pts, -1, floor), floor, false);
  } else {
    const Hypothesis& h = lattice[static_cast<std::size_t>(best_index)];
    for (std::size_t i = 0; i < pts.size(); ++i) phi[i] = basis(h, pts[i].x);
    double c0 = 0.0, c1 = 0.0;
    if (!solve_wls(pts, phi, -1, floor, &c0, &c1)) {
      out = constant_outcome(pts, weighted_mean(pts, -1, floor), floor, true);
    } else {
      out.fit = ScalingFit{c0, c1, h.a, h.b};
      auto [lo, hi] = std::minmax_element(
          pts.begin(), pts.end(), [](const SamplePoint& l,
                                     const SamplePoint& r) {
            return l.x < r.x;
          });
      out.x_min = lo->x;
      out.x_max = hi->x;
      finalize_quality(pts, out.fit, floor, &out.quality);
    }
  }

  // Leave-one-out diagnostics of the candidate that actually won (also the
  // honest held-out prediction error recorded in the catalog).
  const bool constant = out.fit.is_constant();
  if (!constant) {
    const Hypothesis selected{out.fit.a, out.fit.b};
    for (std::size_t j = 0; j < pts.size(); ++j) {
      phi[j] = basis(selected, pts[j].x);
    }
  }
  double worst = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    double predicted;
    double c0 = 0.0, c1 = 0.0;
    if (!constant &&
        solve_wls(pts, phi, static_cast<int>(i), floor, &c0, &c1)) {
      predicted = c0 + c1 * phi[i];
    } else {
      predicted = weighted_mean(pts, static_cast<int>(i), floor);
    }
    const double e = std::min(rel_err(predicted, pts[i].y, floor), 1e9);
    worst = std::max(worst, e);
    sum += e;
  }
  out.quality.cv_rel_err = sum / static_cast<double>(pts.size());
  out.quality.cv_max_rel_err = worst;
  return out;
}

}  // namespace tl::tune
