#include "tune/ingest.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace tl::tune {

void SampleSet::add(const SeriesKey& key, double x, double y) {
  auto& entry = series[key.str()];
  if (entry.second.empty()) entry.first = key;
  entry.second.push_back(SamplePoint{x, y});
}

namespace {

[[noreturn]] void bad_input(const std::string& path, const std::string& why) {
  throw std::runtime_error("tl-plan ingest: " + path + ": " + why);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// fig8/9/10 rows carry no device column; the emitting bench encodes it in
/// the file name (fig8_cpu.csv, fig9_gpu.csv, fig10_knc.csv).
std::string device_from_filename(const std::string& path) {
  const std::string name = basename_of(path);
  std::string found;
  for (const char* device : {"cpu", "gpu", "knc"}) {
    if (name.find(device) != std::string::npos) {
      if (!found.empty()) bad_input(path, "ambiguous device in file name");
      found = device;
    }
  }
  if (found.empty()) {
    bad_input(path,
              "cannot infer device from file name (expected cpu/gpu/knc)");
  }
  return found;
}

struct CsvDoc {
  std::map<std::string, std::size_t> columns;
  std::vector<std::vector<std::string>> rows;

  bool has(const char* column) const {
    return columns.find(column) != columns.end();
  }
  const std::string& cell(std::size_t row, const char* column) const {
    return rows[row][columns.at(column)];
  }
  double num(const std::string& path, std::size_t row,
             const char* column) const {
    const std::string& text = cell(row, column);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || !std::isfinite(v)) {
      bad_input(path, util::strf("row %zu: '%s' is not a number in '%s'",
                                 row + 2, text.c_str(), column));
    }
    return v;
  }
};

CsvDoc read_csv(const std::string& path, std::istream& in) {
  CsvDoc doc;
  std::string line;
  if (!std::getline(in, line)) bad_input(path, "empty file");
  const std::vector<std::string> header = util::parse_csv_line(line);
  for (std::size_t i = 0; i < header.size(); ++i) doc.columns[header[i]] = i;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = util::parse_csv_line(line);
    if (cells.size() != header.size()) {
      bad_input(path, util::strf("row %zu: %zu cell(s), header has %zu",
                                 doc.rows.size() + 2, cells.size(),
                                 header.size()));
    }
    doc.rows.push_back(std::move(cells));
  }
  return doc;
}

std::size_t ingest_fig11(SampleSet& set, const std::string& path,
                         const CsvDoc& doc) {
  std::size_t added = 0;
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    SeriesKey key;
    key.metric = "total_s";
    key.model = doc.cell(i, "model");
    key.device = doc.cell(i, "device");
    key.solver = "CG";  // the fig11 sweep is CG-only, like the paper's plot
    set.add(key, doc.num(path, i, "cells"), doc.num(path, i, "seconds"));
    ++added;
  }
  return added;
}

std::size_t ingest_device_figure(SampleSet& set, const std::string& path,
                                 const CsvDoc& doc) {
  const std::string device = device_from_filename(path);
  std::size_t added = 0;
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    SeriesKey key;
    key.metric = "total_s";
    key.model = doc.cell(i, "model");
    key.device = device;
    key.solver = doc.cell(i, "solver");
    set.add(key, kFigureMeshCells, doc.num(path, i, "seconds"));
    ++added;
    key.metric = "iters";
    set.add(key, kFigureMeshCells, doc.num(path, i, "outer_iterations"));
    ++added;
  }
  return added;
}

std::size_t ingest_fig13(SampleSet& set, const std::string& path,
                         const CsvDoc& doc) {
  std::size_t added = 0;
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const std::string& scaling = doc.cell(i, "scaling");
    // Strong sweeps pin the global mesh; weak sweeps pin the per-rank tile.
    const char* mesh_column = scaling == "weak" ? "tile_nx" : "global_nx";
    SeriesKey key;
    key.metric = "total_s";
    key.model = doc.cell(i, "model");
    key.device = doc.cell(i, "device");
    key.solver = doc.cell(i, "solver");
    key.variant = scaling + "-" + doc.cell(i, "mode") + "-" +
                  doc.cell(i, mesh_column);
    key.x = "ranks";
    const double ranks = doc.num(path, i, "ranks");
    set.add(key, ranks, doc.num(path, i, "total_s"));
    ++added;
    key.metric = "comm_s";
    set.add(key, ranks, doc.num(path, i, "comm_s"));
    ++added;
  }
  return added;
}

std::size_t ingest_run_report(SampleSet& set, const std::string& path,
                              const util::JsonValue& doc) {
  const util::JsonValue* ctx = doc.find("context");
  if (ctx == nullptr || !ctx->is_object()) {
    bad_input(path, "tl-report-1 without a context object");
  }
  const std::string model = ctx->get_string_or("model", "");
  const std::string device = ctx->get_string_or("device", "");
  const double nx = ctx->get_number_or("nx", 0.0);
  const double ny = ctx->get_number_or("ny", nx);
  const double cells = nx * (ny > 0.0 ? ny : nx);
  if (model.empty() || device.empty() || cells <= 0.0) {
    bad_input(path, "tl-report-1 context lacks model/device/mesh");
  }
  std::size_t added = 0;
  // Per-solve runtimes: one total_s point per solver the report covers.
  if (const util::JsonValue* solves = doc.find("solves");
      solves != nullptr && solves->is_array()) {
    for (const util::JsonValue& solve : solves->as_array()) {
      const std::string solver = solve.get_string_or("solver", "");
      const double seconds = solve.get_number_or("sim_seconds", 0.0);
      if (solver.empty() || seconds <= 0.0) continue;
      SeriesKey key;
      key.metric = "total_s";
      key.model = model;
      key.device = device;
      key.solver = solver;
      set.add(key, cells, seconds);
      ++added;
    }
  }
  // Per-kernel totals: the composition basis. The kernel mix spans every
  // solve in the report, so the solver key is the report's context solver
  // when single-solve and "all" otherwise.
  std::string kernel_solver = ctx->get_string_or("solver", "all");
  if (const util::JsonValue* solves = doc.find("solves");
      solves != nullptr && solves->is_array() &&
      solves->as_array().size() > 1) {
    kernel_solver = "all";
  }
  if (const util::JsonValue* kernels = doc.find("kernels");
      kernels != nullptr && kernels->is_array()) {
    for (const util::JsonValue& kernel : kernels->as_array()) {
      const std::string name = kernel.get_string_or("name", "");
      if (name.empty()) continue;
      SeriesKey key;
      key.metric = "kernel_ns/" + name;
      key.model = model;
      key.device = device;
      key.solver = kernel_solver;
      set.add(key, cells, kernel.get_number_or("total_ns", 0.0));
      ++added;
    }
  }
  if (added == 0) bad_input(path, "tl-report-1 with no usable samples");
  return added;
}

std::size_t ingest_fusion(SampleSet& set, const std::string& path,
                          const util::JsonValue& doc) {
  const double mesh = doc.get_number_or("mesh", 0.0);
  if (mesh <= 0.0) bad_input(path, "fusion artifact without a mesh");
  const util::JsonValue* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    bad_input(path, "fusion artifact without cells");
  }
  std::size_t added = 0;
  for (const util::JsonValue& cell : cells->as_array()) {
    const double fused = cell.get_number_or("fused_seconds", 0.0);
    const double unfused = cell.get_number_or("unfused_seconds", 0.0);
    if (fused <= 0.0 || unfused <= 0.0) continue;
    SeriesKey key;
    key.metric = "fusion_ratio";
    key.model = cell.get_string_or("model", "");
    key.device = cell.get_string_or("device", "");
    key.solver = cell.get_string_or("solver", "");
    set.add(key, mesh * mesh, unfused / fused);
    ++added;
  }
  if (added == 0) bad_input(path, "fusion artifact with no usable cells");
  return added;
}

std::size_t ingest_overlap(SampleSet& set, const std::string& path,
                           const util::JsonValue& doc) {
  const util::JsonValue* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    bad_input(path, "overlap artifact without cells");
  }
  // The fig13 bench runs the paper's omp3/cpu configuration; the artifact
  // predates per-cell model/device fields, so default to that pair.
  const std::string model = doc.get_string_or("model", "omp3");
  const std::string device = doc.get_string_or("device", "cpu");
  std::size_t added = 0;
  for (const util::JsonValue& cell : cells->as_array()) {
    const double ranks = cell.get_number_or("ranks", 0.0);
    if (ranks <= 1.0) continue;  // single rank hides nothing by definition
    SeriesKey key;
    key.metric = "hidden_fraction";
    key.model = model;
    key.device = device;
    key.solver = cell.get_string_or("solver", "");
    key.variant = cell.get_string_or("scaling", "");
    key.x = "ranks";
    set.add(key, ranks, cell.get_number_or("hidden_fraction", 0.0));
    ++added;
  }
  if (added == 0) bad_input(path, "overlap artifact with no usable cells");
  return added;
}

}  // namespace

std::size_t ingest_file(SampleSet& set, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_input(path, "cannot open");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::size_t start = text.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) bad_input(path, "empty file");

  if (text[start] == '{') {
    const util::JsonValue doc = util::parse_json(text);
    if (doc.get_string_or("schema", "") == "tl-report-1") {
      return ingest_run_report(set, path, doc);
    }
    const std::string bench = doc.get_string_or("bench", "");
    if (bench == "fusion") return ingest_fusion(set, path, doc);
    if (bench == "fig13_overlap") return ingest_overlap(set, path, doc);
    bad_input(path, "unrecognized JSON artifact (schema/bench tag)");
  }

  std::istringstream stream(text);
  const CsvDoc doc = read_csv(path, stream);
  if (doc.has("model") && doc.has("device") && doc.has("cells") &&
      doc.has("seconds")) {
    return ingest_fig11(set, path, doc);
  }
  if (doc.has("model") && doc.has("solver") && doc.has("seconds") &&
      doc.has("outer_iterations")) {
    return ingest_device_figure(set, path, doc);
  }
  if (doc.has("scaling") && doc.has("mode") && doc.has("ranks") &&
      doc.has("total_s")) {
    return ingest_fig13(set, path, doc);
  }
  bad_input(path, "unrecognized CSV header");
}

ModelCatalog fit_samples(SampleSet& set, int min_points) {
  ModelCatalog catalog;
  for (const auto& [joined, entry] : set.series) {
    const auto& [key, points] = entry;
    if (static_cast<int>(points.size()) < min_points) {
      // The note is deliberately not fatal: a partial input set still
      // yields a usable (if smaller) catalog.
      set.notes.push_back(
          util::strf("skipped %s: %zu point(s) < min %d", joined.c_str(),
                     points.size(), min_points));
      continue;
    }
    const FitOutcome outcome = fit_series(points);
    FittedSeries series;
    series.key = key;
    series.fit = outcome.fit;
    series.quality = outcome.quality;
    series.x_min = outcome.x_min;
    series.x_max = outcome.x_max;
    catalog.put(std::move(series));
  }
  return catalog;
}

}  // namespace tl::tune
