#pragma once
// Measurement ingestion: turns the repo's committed measurement artifacts
// into (SeriesKey -> sample points) sets the fitter consumes.
//
// Recognized inputs (auto-detected by CSV header or JSON schema/bench tag):
//   fig11_meshsweep.csv    model,device,nx,cells,seconds        (CG sweep)
//   fig8/9/10 CSVs         model,solver,seconds,...             (4096^2 cells;
//                          device inferred from the file name)
//   fig13_scaling.csv      scaling,mode,...,total_s             (rank sweeps)
//   tl-report-1 JSON       per-kernel total_ns at the report's mesh
//   BENCH_fusion.json      unfused/fused ratio per cell
//   BENCH_overlap.json     hidden comm fraction per (solver, ranks)
//
// Multiple files accumulate into one SampleSet (e.g. several tl-report-1
// profiles at different meshes become a multi-point kernel series), then
// fit_samples() runs the lattice fitter over every series and returns the
// catalog.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tune/catalog.hpp"
#include "tune/fitter.hpp"

namespace tl::tune {

struct SampleSet {
  // Keyed by SeriesKey::str() so iteration (and therefore fitting and the
  // emitted catalog) is deterministic.
  std::map<std::string, std::pair<SeriesKey, std::vector<SamplePoint>>>
      series;
  std::vector<std::string> notes;  // skipped rows, inferred devices, ...

  void add(const SeriesKey& key, double x, double y);
};

/// The figure benches' convergence mesh (fig8/9/10 rows carry no mesh
/// column; they are all measured at the paper's 4096^2 point).
inline constexpr double kFigureMeshCells = 4096.0 * 4096.0;

/// Ingests one file, auto-detected; returns the number of sample points
/// added. Throws std::runtime_error for unreadable files or unrecognized
/// content.
std::size_t ingest_file(SampleSet& set, const std::string& path);

/// Fits every series with at least `min_points` samples (fewer-point series
/// are skipped with a note appended to `set.notes`).
ModelCatalog fit_samples(SampleSet& set, int min_points = 1);

}  // namespace tl::tune
