#include "tune/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "sim/network.hpp"
#include "util/string_util.hpp"

namespace tl::tune {

namespace {

/// Looks up a series and appends its key to the basis trail.
const FittedSeries* use_series(const ModelCatalog& catalog,
                               const SeriesKey& key, std::string* basis) {
  const FittedSeries* s = catalog.find(key);
  if (s != nullptr) {
    if (!basis->empty()) *basis += " + ";
    *basis += key.str();
  }
  return s;
}

bool outside(const FittedSeries& s, double x) {
  return x < s.x_min * (1.0 - 1e-12) || x > s.x_max * (1.0 + 1e-12);
}

/// The analytic per-iteration comm price from the network model: one
/// halo exchange of the search direction (two row-strip neighbours, one
/// depth row each) plus the solver's two scalar allreduces (2 doubles).
double comm_ns_per_iteration(int nx, int ranks, bool pipelined) {
  const sim::NetworkSpec& net = sim::node_interconnect();
  const std::size_t halo_bytes =
      2 * static_cast<std::size_t>(nx) * sizeof(double);
  double ns = sim::halo_exchange_ns(net, halo_bytes, 2);
  // The pipelined CG initiates the fused allreduce nonblocking and hides it
  // behind the next matvec — its latency leaves the critical path.
  if (!pipelined) ns += 2.0 * sim::allreduce_ns(net, 2 * sizeof(double), ranks);
  return ns;
}

}  // namespace

Prediction predict(const ModelCatalog& catalog, const PredictQuery& query) {
  Prediction p;
  if (query.nx <= 0 || query.ranks < 1) {
    p.error = "invalid query (nx and ranks must be positive)";
    return p;
  }
  const int ny = query.ny > 0 ? query.ny : query.nx;
  const double cells = static_cast<double>(query.nx) * ny;

  // The pipelined CG is catalogued as its own solver series when measured.
  std::vector<std::string> solver_names;
  if (query.use_pipelined && query.solver == "CG") {
    solver_names.push_back("cg_pipelined");
  }
  solver_names.push_back(query.solver);

  // 1. Direct rank-sweep series for this exact mesh and comm mode.
  if (query.ranks >= 1 && query.nx == ny) {
    const std::string variant =
        std::string("strong-") +
        (query.overlap_comm ? "overlap" : "blocking") + "-" +
        util::strf("%d", query.nx);
    for (const std::string& solver : solver_names) {
      SeriesKey key{"total_s", query.model, query.device, solver, variant,
                    "ranks"};
      const FittedSeries* total = use_series(catalog, key, &p.basis);
      if (total == nullptr) continue;
      const double ranks = static_cast<double>(query.ranks);
      p.seconds = total->fit.eval(ranks);
      key.metric = "comm_s";
      const FittedSeries* comm = use_series(catalog, key, &p.basis);
      p.comm_s = comm != nullptr
                     ? std::min(comm->fit.eval(ranks), p.seconds)
                     : 0.0;
      p.compute_s = p.seconds - p.comm_s;
      p.extrapolated = outside(*total, ranks);
      p.ok = true;
      return p;
    }
  }

  // 2. Per-cell total series, else 3. the per-kernel composition.
  double base = 0.0;
  bool have_base = false;
  for (const std::string& solver : solver_names) {
    const SeriesKey key{"total_s", query.model, query.device, solver, "",
                        "cells"};
    if (const FittedSeries* total = use_series(catalog, key, &p.basis)) {
      base = total->fit.eval(cells);
      p.extrapolated = outside(*total, cells);
      have_base = true;
      break;
    }
  }
  if (!have_base) {
    // Compositional fallback: sum the fitted per-kernel curves.
    bool all_inside = true;
    for (const auto& [joined, s] : catalog.series()) {
      (void)joined;
      if (s.key.metric.rfind("kernel_ns/", 0) != 0) continue;
      if (s.key.model != query.model || s.key.device != query.device) continue;
      if (s.key.solver != query.solver && s.key.solver != "all") continue;
      if (s.key.x != "cells") continue;
      base += s.fit.eval(cells) * 1e-9;
      all_inside = all_inside && !outside(s, cells);
      if (!p.basis.empty()) p.basis += " + ";
      p.basis += s.key.str();
      have_base = true;
    }
    p.extrapolated = have_base && !all_inside;
  }
  if (!have_base) {
    p.error = util::strf("no fitted series for %s/%s/%s",
                         query.model.c_str(), query.device.c_str(),
                         query.solver.c_str());
    return p;
  }

  if (!query.use_fused) {
    const SeriesKey key{"fusion_ratio", query.model, query.device,
                        query.solver, "", "cells"};
    if (const FittedSeries* ratio = use_series(catalog, key, &p.basis)) {
      base *= std::max(ratio->fit.eval(cells), 1.0);
    }
  }

  p.compute_s = base / static_cast<double>(query.ranks);
  p.comm_s = 0.0;
  if (query.ranks > 1) {
    const SeriesKey key{"iters", query.model, query.device, query.solver, "",
                        "cells"};
    if (const FittedSeries* iters = use_series(catalog, key, &p.basis)) {
      double comm = iters->fit.eval(cells) *
                    comm_ns_per_iteration(query.nx, query.ranks,
                                          query.use_pipelined) *
                    1e-9;
      if (query.overlap_comm) {
        const SeriesKey hidden_key{"hidden_fraction", query.model,
                                   query.device, query.solver, "strong",
                                   "ranks"};
        if (const FittedSeries* hidden =
                use_series(catalog, hidden_key, &p.basis)) {
          const double fraction = std::clamp(
              hidden->fit.eval(static_cast<double>(query.ranks)), 0.0, 1.0);
          comm *= 1.0 - fraction;
        }
      }
      p.comm_s = comm;
    } else {
      p.basis += " + (no iters series: comm term omitted)";
    }
  }
  p.seconds = p.compute_s + p.comm_s;
  p.ok = true;
  return p;
}

}  // namespace tl::tune
