#include "tune/planner.hpp"

#include <algorithm>

#include "ports/registry.hpp"
#include "sim/device.hpp"
#include "sim/model_id.hpp"

namespace tl::tune {

PlanResult choose_config(const ModelCatalog& catalog, const PlanQuery& query) {
  PlanResult result;
  if (query.nx <= 0) {
    result.error = "invalid query (nx must be positive)";
    return result;
  }
  if (query.rank_choices.empty()) {
    result.error = "invalid query (no rank choices)";
    return result;
  }

  // Resolve the pinned axes up front so a typo'd pin is an error, not an
  // empty plan.
  std::vector<sim::Model> models;
  if (query.model.empty()) {
    models.assign(sim::kAllModels.begin(), sim::kAllModels.end());
  } else if (const auto pinned = sim::parse_model(query.model)) {
    models.push_back(*pinned);
  } else {
    result.error = "unknown model '" + query.model + "'";
    return result;
  }
  std::vector<sim::DeviceId> devices;
  if (query.device.empty()) {
    devices.assign(sim::kAllDevices.begin(), sim::kAllDevices.end());
  } else if (const auto pinned = sim::parse_device(query.device)) {
    devices.push_back(*pinned);
  } else {
    result.error = "unknown device '" + query.device + "'";
    return result;
  }

  for (const sim::Model model : models) {
    for (const sim::DeviceId device : devices) {
      if (query.require_supported && !ports::is_supported(model, device)) {
        continue;
      }
      for (const int ranks : query.rank_choices) {
        if (ranks < 1) continue;
        std::vector<bool> overlaps;
        if (query.overlap_comm.has_value()) {
          overlaps.push_back(*query.overlap_comm);
        } else if (ranks > 1) {
          overlaps = {true, false};
        } else {
          overlaps.push_back(true);  // single rank: overlap is a no-op
        }
        for (const bool overlap : overlaps) {
          ++result.considered;
          PredictQuery pq;
          pq.model = std::string(sim::model_id(model));
          pq.device = std::string(sim::device_short_name(device));
          pq.solver = query.solver;
          pq.nx = query.nx;
          pq.ny = query.ny;
          pq.ranks = ranks;
          pq.use_fused = query.use_fused;
          pq.overlap_comm = overlap;
          pq.use_pipelined = query.use_pipelined;
          Prediction predicted = predict(catalog, pq);
          if (!predicted.ok) continue;  // no basis — not scorable
          PlanChoice choice;
          choice.model = pq.model;
          choice.device = pq.device;
          choice.ranks = ranks;
          choice.overlap_comm = overlap;
          choice.predicted = std::move(predicted);
          result.ranked.push_back(std::move(choice));
        }
      }
    }
  }

  if (result.ranked.empty()) {
    result.error = "no candidate has a fitted basis in the catalog";
    return result;
  }
  // stable_sort keeps enumeration order on predicted-seconds ties, making
  // the pick a pure function of (catalog, query).
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const PlanChoice& lhs, const PlanChoice& rhs) {
                     return lhs.predicted.seconds < rhs.predicted.seconds;
                   });
  result.best = result.ranked.front();
  result.ok = true;
  return result;
}

}  // namespace tl::tune
