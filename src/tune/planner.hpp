#pragma once
// Planner: enumerate the feasible configuration space for a scenario, score
// every candidate with the predictor, and return the argmin plus the full
// ranked table.
//
// A PlanQuery pins any subset of {model, device, ranks, overlap}; the
// planner fills the rest. The solver is always pinned — switching solvers
// changes the numerics of the answer, and the planner's contract is to
// change only *which configuration runs*, never what it computes. The
// candidate walk is a fixed deterministic order (sim::kAllModels x
// sim::kAllDevices x rank choices x overlap), filtered by the paper's
// Table 1 support matrix; ties in predicted seconds keep enumeration order,
// so the same catalog and query always produce the same pick.

#include <optional>
#include <string>
#include <vector>

#include "tune/predictor.hpp"

namespace tl::tune {

struct PlanQuery {
  int nx = 0;
  int ny = 0;  // 0 = square
  std::string solver = "CG";  // always pinned

  std::string model;   // "" = free over every supported model
  std::string device;  // "" = free over every device
  std::vector<int> rank_choices = {1};  // one entry = pinned
  std::optional<bool> overlap_comm;     // nullopt = free (multi-rank only)

  bool use_fused = true;
  bool use_pipelined = false;
  /// Skip (model, device) pairs outside the Table 1 support matrix. Off only
  /// for tests that probe the raw catalog space.
  bool require_supported = true;
};

struct PlanChoice {
  std::string model;
  std::string device;
  int ranks = 1;
  bool overlap_comm = true;
  Prediction predicted;
};

struct PlanResult {
  bool ok = false;
  std::string error;        // no scorable candidate
  PlanChoice best;          // == ranked.front() when ok
  std::vector<PlanChoice> ranked;  // ascending predicted seconds
  int considered = 0;       // candidates enumerated (scored or not)
};

PlanResult choose_config(const ModelCatalog& catalog, const PlanQuery& query);

}  // namespace tl::tune
