#pragma once
// Cross-validated least-squares selection over a small hypothesis lattice.
//
// Extra-P's insight scaled down to this repo's needs: almost every measured
// curve here (runtime vs cells, iterations vs cells, runtime vs ranks) is
// well described by a single compositional term y = c0 + c1 * x^a * log2^b(x)
// with a and b drawn from a small discrete lattice. For each hypothesis the
// two linear coefficients have a closed form (weighted least squares, weights
// 1/y^2 so decades-spanning series are fitted in relative terms); the
// hypothesis itself is selected by leave-one-out cross-validation on the
// relative prediction error, which punishes overfitting the bend of a series
// far harder than in-sample RSS does. Degenerate inputs (empty, one point,
// constant, identical x) fall back to constant/linear models — never NaN,
// never a throw.

#include <vector>

#include "tune/catalog.hpp"

namespace tl::tune {

struct SamplePoint {
  double x = 0.0;
  double y = 0.0;
};

/// One lattice cell: the fixed exponents of a candidate term.
struct Hypothesis {
  double a = 0.0;
  int b = 0;
};

/// The hypothesis lattice, in deterministic tie-break order:
/// a in {-1, -0.5, 0, 0.5, 1, 1.25, 1.5, 1.75, 2} x b in {0, 1, 2}, minus
/// the degenerate (a=0, b=0) constant (fitted separately as c1 = 0).
const std::vector<Hypothesis>& hypothesis_lattice();

struct FitOutcome {
  ScalingFit fit;
  FitQuality quality;
  double x_min = 0.0;
  double x_max = 0.0;
};

/// Fits one series. Points with non-finite coordinates or x <= 0 are
/// dropped; y must be >= 0 (runtimes, counts, ratios). Selection rule:
/// minimal mean squared leave-one-out relative error, ties broken toward
/// the simpler hypothesis (constant first, then lattice order).
FitOutcome fit_series(const std::vector<SamplePoint>& points);

}  // namespace tl::tune
