#pragma once
// Fitted performance-model catalog (`tl-models-1`).
//
// One FittedSeries per measured scaling curve: a metric (total seconds,
// outer iterations, per-kernel nanoseconds, fusion ratio, hidden comm
// fraction) keyed by model x device x solver x variant, fitted over one
// independent variable (cells or ranks) with a single compositional term
//
//     y(x) = c0 + c1 * x^a * log2(x)^b
//
// — the Extra-P single-term performance-model normal form. The catalog
// round-trips through a versioned JSON document so `tl_plan fit` output can
// be committed (verify/golden/models.json), regression-checked, and loaded
// by the SolveService planner at run time. Parsing is strict: a malformed
// document throws std::runtime_error rather than yielding a silently wrong
// cost model.

#include <cstddef>
#include <map>
#include <string>

#include "util/json.hpp"

namespace tl::tune {

/// The catalog schema tag; bumped on any incompatible layout change.
inline constexpr std::string_view kModelsSchema = "tl-models-1";

/// One compositional scaling term. `b` is an integer power of log2(x), kept
/// integral so the lattice stays small and the JSON round-trip is exact.
struct ScalingFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double a = 0.0;
  int b = 0;

  /// Evaluates the term at x > 0. Predictions are clamped at zero: a fitted
  /// negative intercept must never turn into a negative runtime.
  double eval(double x) const;

  bool is_constant() const noexcept { return c1 == 0.0; }
};

/// Fit diagnostics recorded next to every series (ISSUE: "fit quality
/// (R^2, relative RSS) per cell").
struct FitQuality {
  double r2 = 1.0;            // 1 - RSS/TSS over the fit points
  double rel_rss = 0.0;       // sum of squared relative residuals
  double cv_rel_err = 0.0;    // mean leave-one-out relative error
  double cv_max_rel_err = 0.0;  // worst leave-one-out relative error
  int points = 0;             // samples the fit consumed
  bool fallback = false;      // degenerate input: constant/linear fallback
};

/// Catalog key. Empty fields mean "not applicable" (e.g. a fusion-ratio
/// series has no variant; a kernel series fitted from an all-solver report
/// uses solver "all"). `x` names the independent variable: "cells" for mesh
/// sweeps, "ranks" for scaling sweeps.
struct SeriesKey {
  std::string metric;   // "total_s" | "iters" | "kernel_ns/<name>" |
                        // "fusion_ratio" | "hidden_fraction" | "comm_s"
  std::string model;    // sim model id ("omp3", "cuda", ...)
  std::string device;   // sim device short name ("cpu", "gpu", "knc")
  std::string solver;   // "CG", "Chebyshev", "PPCG", "cg_pipelined", "all"
  std::string variant;  // "" | "strong-blocking-4096" | "weak-overlap-4096"
  std::string x = "cells";

  /// Canonical joined form, also the JSON-independent map key.
  std::string str() const;
};

bool operator<(const SeriesKey& lhs, const SeriesKey& rhs);
bool operator==(const SeriesKey& lhs, const SeriesKey& rhs);

struct FittedSeries {
  SeriesKey key;
  ScalingFit fit;
  FitQuality quality;
  double x_min = 0.0;  // fitted domain; predictions outside it are flagged
  double x_max = 0.0;  // as extrapolated by the predictor
};

class ModelCatalog {
 public:
  /// Inserts or replaces the series with the same key.
  void put(FittedSeries series);

  /// Exact-key lookup; nullptr when absent.
  const FittedSeries* find(const SeriesKey& key) const;

  const std::map<std::string, FittedSeries>& series() const noexcept {
    return series_;
  }
  std::size_t size() const noexcept { return series_.size(); }
  bool empty() const noexcept { return series_.empty(); }

  /// Serializes the catalog as a deterministic `tl-models-1` document
  /// (series sorted by key, doubles printed round-trippably).
  std::string to_json() const;

  /// Strict deserialization; throws std::runtime_error on a missing/wrong
  /// schema tag, missing fields, wrong kinds, or non-finite parameters.
  static ModelCatalog from_json(const util::JsonValue& doc);

  /// File conveniences. `load` throws on I/O or parse failure; `save`
  /// throws on I/O failure.
  static ModelCatalog load(const std::string& path);
  void save(const std::string& path) const;

 private:
  std::map<std::string, FittedSeries> series_;
};

}  // namespace tl::tune
