#include "tune/catalog.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "util/string_util.hpp"

namespace tl::tune {

double ScalingFit::eval(double x) const {
  double v = c0;
  if (c1 != 0.0) {
    double term = c1 * std::pow(x, a);
    if (b != 0) term *= std::pow(std::log2(x), b);
    v += term;
  }
  if (!std::isfinite(v)) return 0.0;
  return v < 0.0 ? 0.0 : v;
}

std::string SeriesKey::str() const {
  std::string s;
  s.reserve(metric.size() + model.size() + device.size() + solver.size() +
            variant.size() + x.size() + 6);
  for (const std::string* part : {&metric, &model, &device, &solver, &variant,
                                  &x}) {
    if (!s.empty()) s += '|';
    s += *part;
  }
  return s;
}

bool operator<(const SeriesKey& lhs, const SeriesKey& rhs) {
  return std::tie(lhs.metric, lhs.model, lhs.device, lhs.solver, lhs.variant,
                  lhs.x) < std::tie(rhs.metric, rhs.model, rhs.device,
                                    rhs.solver, rhs.variant, rhs.x);
}

bool operator==(const SeriesKey& lhs, const SeriesKey& rhs) {
  return std::tie(lhs.metric, lhs.model, lhs.device, lhs.solver, lhs.variant,
                  lhs.x) == std::tie(rhs.metric, rhs.model, rhs.device,
                                     rhs.solver, rhs.variant, rhs.x);
}

void ModelCatalog::put(FittedSeries series) {
  std::string key = series.key.str();
  series_.insert_or_assign(std::move(key), std::move(series));
}

const FittedSeries* ModelCatalog::find(const SeriesKey& key) const {
  const auto it = series_.find(key.str());
  return it == series_.end() ? nullptr : &it->second;
}

namespace {

std::string jnum(double v) { return util::strf("%.17g", v); }

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("tl-models: malformed catalog: " + what);
}

double require_finite_number(const util::JsonValue& obj, const char* key,
                             const std::string& where) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    malformed(where + ": missing number '" + key + "'");
  }
  const double d = v->as_number();
  if (!std::isfinite(d)) malformed(where + ": non-finite '" + key + "'");
  return d;
}

std::string require_string(const util::JsonValue& obj, const char* key,
                           const std::string& where) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    malformed(where + ": missing string '" + key + "'");
  }
  return v->as_string();
}

}  // namespace

std::string ModelCatalog::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kModelsSchema << "\",\n";
  os << "  \"series\": [";
  bool first = true;
  for (const auto& [joined, s] : series_) {
    (void)joined;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"metric\": \"" << util::json_escape(s.key.metric)
       << "\", \"model\": \"" << util::json_escape(s.key.model)
       << "\", \"device\": \"" << util::json_escape(s.key.device)
       << "\", \"solver\": \"" << util::json_escape(s.key.solver)
       << "\", \"variant\": \"" << util::json_escape(s.key.variant)
       << "\", \"x\": \"" << util::json_escape(s.key.x) << "\",\n"
       << "     \"fit\": {\"c0\": " << jnum(s.fit.c0)
       << ", \"c1\": " << jnum(s.fit.c1) << ", \"a\": " << jnum(s.fit.a)
       << ", \"b\": " << s.fit.b << "},\n"
       << "     \"quality\": {\"r2\": " << jnum(s.quality.r2)
       << ", \"rel_rss\": " << jnum(s.quality.rel_rss)
       << ", \"cv_rel_err\": " << jnum(s.quality.cv_rel_err)
       << ", \"cv_max_rel_err\": " << jnum(s.quality.cv_max_rel_err)
       << ", \"points\": " << s.quality.points
       << ", \"fallback\": " << (s.quality.fallback ? "true" : "false")
       << "},\n"
       << "     \"domain\": {\"x_min\": " << jnum(s.x_min)
       << ", \"x_max\": " << jnum(s.x_max) << "}}";
  }
  os << (first ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

ModelCatalog ModelCatalog::from_json(const util::JsonValue& doc) {
  if (!doc.is_object()) malformed("document is not an object");
  if (doc.get_string_or("schema", "") != kModelsSchema) {
    malformed("schema tag is not 'tl-models-1'");
  }
  const util::JsonValue* series = doc.find("series");
  if (series == nullptr || !series->is_array()) {
    malformed("'series' is missing or not an array");
  }
  ModelCatalog catalog;
  std::size_t index = 0;
  for (const util::JsonValue& entry : series->as_array()) {
    const std::string where = util::strf("series[%zu]", index++);
    if (!entry.is_object()) malformed(where + " is not an object");
    FittedSeries s;
    s.key.metric = require_string(entry, "metric", where);
    s.key.model = require_string(entry, "model", where);
    s.key.device = require_string(entry, "device", where);
    s.key.solver = require_string(entry, "solver", where);
    s.key.variant = require_string(entry, "variant", where);
    s.key.x = require_string(entry, "x", where);
    if (s.key.metric.empty()) malformed(where + ": empty 'metric'");
    if (s.key.x != "cells" && s.key.x != "ranks") {
      malformed(where + ": 'x' must be 'cells' or 'ranks'");
    }

    const util::JsonValue* fit = entry.find("fit");
    if (fit == nullptr || !fit->is_object()) {
      malformed(where + ": missing 'fit' object");
    }
    s.fit.c0 = require_finite_number(*fit, "c0", where + ".fit");
    s.fit.c1 = require_finite_number(*fit, "c1", where + ".fit");
    s.fit.a = require_finite_number(*fit, "a", where + ".fit");
    const double b = require_finite_number(*fit, "b", where + ".fit");
    if (b != std::floor(b)) malformed(where + ".fit: 'b' is not integral");
    s.fit.b = static_cast<int>(b);

    const util::JsonValue* quality = entry.find("quality");
    if (quality == nullptr || !quality->is_object()) {
      malformed(where + ": missing 'quality' object");
    }
    s.quality.r2 = require_finite_number(*quality, "r2", where + ".quality");
    s.quality.rel_rss =
        require_finite_number(*quality, "rel_rss", where + ".quality");
    s.quality.cv_rel_err =
        require_finite_number(*quality, "cv_rel_err", where + ".quality");
    s.quality.cv_max_rel_err =
        require_finite_number(*quality, "cv_max_rel_err", where + ".quality");
    s.quality.points = static_cast<int>(
        require_finite_number(*quality, "points", where + ".quality"));
    s.quality.fallback = quality->get_bool_or("fallback", false);

    const util::JsonValue* domain = entry.find("domain");
    if (domain == nullptr || !domain->is_object()) {
      malformed(where + ": missing 'domain' object");
    }
    s.x_min = require_finite_number(*domain, "x_min", where + ".domain");
    s.x_max = require_finite_number(*domain, "x_max", where + ".domain");
    if (s.x_min > s.x_max) malformed(where + ".domain: x_min > x_max");

    if (catalog.find(s.key) != nullptr) {
      malformed(where + ": duplicate key " + s.key.str());
    }
    catalog.put(std::move(s));
  }
  return catalog;
}

ModelCatalog ModelCatalog::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tl-models: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(util::parse_json(buffer.str()));
}

void ModelCatalog::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tl-models: cannot write " + path);
  out << to_json();
  if (!out) throw std::runtime_error("tl-models: write failed: " + path);
}

}  // namespace tl::tune
