#include "service/report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"

namespace tl::service {

namespace {

std::string jnum(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  return util::strf("%.17g", v);
}

std::string jstr(std::string_view s) {
  // Built by append rather than operator+ chaining: GCC 12's -Wrestrict
  // emits a false positive on the char* + string + char* concatenation
  // once inlined into the larger artifact-emission body at -O3.
  std::string out;
  std::string escaped = util::json_escape(s);
  out.reserve(escaped.size() + 2);
  out += '"';
  out += escaped;
  out += '"';
  return out;
}

}  // namespace

std::string service_artifact_json(const ServiceConfig& config,
                                  const ServiceReport& report,
                                  const ArtifactInfo& info) {
  std::uint64_t jobs = 0, failures = 0, iterations = 0, launches = 0;
  std::uint64_t comm_bytes = 0;
  double sim_seconds = 0.0;
  for (const TenantSummary& t : report.tenants) {
    jobs += t.jobs;
    failures += t.failures;
    iterations += t.iterations;
    launches += t.kernel_launches;
    comm_bytes += t.comm_bytes;
    sim_seconds += t.sim_seconds;
  }
  const std::uint64_t batches =
      report.small_queue.batches + report.large_queue.batches;

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"service\",\n";
  os << "  \"source\": " << jstr(info.source) << ",\n";
  os << "  \"config\": {\"small_workers\": " << config.small_workers
     << ", \"large_workers\": " << config.large_workers
     << ", \"queue_capacity\": " << config.queue_capacity
     << ", \"aging_interval\": " << config.aging_interval
     << ", \"batch_max\": " << config.batch_max
     << ", \"large_cells_threshold\": " << config.large_cells_threshold
     << ", \"host_threads\": " << config.host_threads << "},\n";
  os << "  \"totals\": {\"jobs\": " << jobs << ", \"failures\": " << failures
     << ", \"iterations\": " << iterations
     << ", \"kernel_launches\": " << launches
     << ", \"comm_bytes\": " << comm_bytes
     << ", \"sim_seconds\": " << jnum(sim_seconds)
     << ", \"scenarios\": " << info.scenarios
     << ", \"verified\": " << info.verified
     << ", \"bit_identical\": " << info.bit_identical << "},\n";
  os << "  \"schedule\": {\"batches\": " << batches
     << ", \"max_wait_pops\": " << report.max_wait_pops()
     << ", \"fairness_bound\": " << report.fairness_bound
     << ", \"wall_seconds\": " << jnum(report.wall_seconds)
     << ", \"jobs_per_s\": "
     << jnum(report.wall_seconds > 0.0
                 ? static_cast<double>(jobs) / report.wall_seconds
                 : 0.0)
     << "},\n";
  os << "  \"tenants\": [";
  for (std::size_t i = 0; i < report.tenants.size(); ++i) {
    const TenantSummary& t = report.tenants[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"tenant\": " << jstr(t.tenant) << ", \"jobs\": " << t.jobs
       << ", \"failures\": " << t.failures
       << ", \"converged\": " << t.converged
       << ", \"iterations\": " << t.iterations
       << ", \"inner_iterations\": " << t.inner_iterations
       << ", \"kernel_launches\": " << t.kernel_launches
       << ", \"comm_bytes\": " << t.comm_bytes
       << ", \"sim_seconds\": " << jnum(t.sim_seconds)
       << ", \"wall_seconds\": " << jnum(t.wall_seconds)
       << ", \"max_wait_pops\": " << t.max_wait_pops << "}";
  }
  os << (report.tenants.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

bool write_service_artifact(const std::string& path,
                            const ServiceConfig& config,
                            const ServiceReport& report,
                            const ArtifactInfo& info) {
  std::ofstream out(path);
  if (out) out << service_artifact_json(config, report, info);
  if (!out) {
    util::log_error("service: cannot write '%s'", path.c_str());
    return false;
  }
  return true;
}

}  // namespace tl::service
