#include "service/session.hpp"

#include <chrono>
#include <exception>

#include "util/string_util.hpp"

namespace tl::service {

namespace {

/// Dispatch-delay histogram bounds (pops). The fairness bound for default
/// configs lands in the hundreds, so the top finite bucket sits at 512.
constexpr double kWaitBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

}  // namespace

const comm::BlockDecomposition& Session::decomposition_for(
    const Scenario& scenario) {
  const std::string key =
      util::strf("%dx%d/r%d", scenario.settings.nx, scenario.settings.ny,
                 scenario.settings.nranks);
  auto it = decompositions_.find(key);
  if (it == decompositions_.end()) {
    it = decompositions_
             .emplace(key, comm::BlockDecomposition(scenario.settings.nx,
                                                    scenario.settings.ny,
                                                    scenario.settings.nranks))
             .first;
  }
  return it->second;
}

JobResult Session::run(const Job& job) {
  JobResult result;
  result.id = job.id;
  result.tenant = job.tenant;
  result.priority = job.priority;
  result.scenario = job.scenario;

  result.resume_attempts = job.resume_attempts;

  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const dist::Snapshot> last_snap;
  try {
    ScenarioHooks hooks;
    hooks.host_threads = config_.host_threads;
    if (job.scenario.settings.nranks > 1) {
      hooks.decomposition = &decomposition_for(job.scenario);
      hooks.faults = job.faults;
      // Each resume attempt advances the fault epoch: the schedule hash
      // changes, so a deterministic hard failure does not recur forever.
      hooks.faults.epoch = job.resume_attempts;
      if (job.resumable) {
        hooks.checkpoint_every = 1;
        hooks.on_checkpoint = [&last_snap](const dist::Snapshot& snap) {
          last_snap = std::make_shared<dist::Snapshot>(snap);
        };
        hooks.resume = job.resume_from.get();
      }
    }
    const ScenarioOutcome outcome = run_scenario(job.scenario, hooks);

    result.ok = true;
    result.sim_seconds = outcome.run.sim_total_seconds;
    result.kernel_launches = outcome.run.kernel_launches;
    result.u_checksum = outcome.u_checksum;
    result.energy_checksum = outcome.energy_checksum;
    for (const dist::RankReport& r : outcome.ranks) {
      result.comm_bytes += r.comm.bytes;
    }
    if (!outcome.run.steps.empty()) {
      const core::StepReport& last = outcome.run.steps.back();
      result.converged = last.solve.converged;
      result.final_rr = last.solve.final_rr;
    }
    for (const core::StepReport& step : outcome.run.steps) {
      result.iterations += step.solve.iterations;
      result.inner_iterations += step.solve.inner_iterations;
    }
  } catch (const comm::CommFaultError& e) {
    // Retryable: the world died on injected comm faults. Hand the last
    // snapshot back so the pool can re-enqueue the job from it.
    result.ok = false;
    result.retryable = true;
    result.error = e.what();
    result.checkpoint = std::move(last_snap);
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  result.wall_ns = std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ++jobs_run_;
  return result;
}

void Session::meter(const JobResult& result) {
  const telemetry::MetricsRegistry::Labels tenant = {
      {"tenant", result.tenant}};
  registry_.add_counter("tl_service_jobs", 1.0, tenant);
  if (!result.ok) {
    registry_.add_counter("tl_service_failures", 1.0, tenant);
    return;
  }
  registry_.add_counter("tl_service_iterations",
                        static_cast<double>(result.iterations), tenant);
  registry_.add_counter("tl_service_launches",
                        static_cast<double>(result.kernel_launches), tenant);
  registry_.add_counter("tl_service_sim_seconds", result.sim_seconds, tenant);
  registry_.add_counter("tl_service_comm_bytes",
                        static_cast<double>(result.comm_bytes), tenant);
  registry_.observe("tl_service_wait_pops",
                    static_cast<double>(result.wait_pops), kWaitBounds,
                    tenant);
}

}  // namespace tl::service
