#include "service/entry.hpp"

#include <utility>

#include "core/driver.hpp"
#include "ports/registry.hpp"
#include "util/buffer.hpp"
#include "util/string_util.hpp"

namespace tl::service {

std::string Scenario::key() const {
  return util::strf("%s/%s/%s/%dx%d/r%d/s%d",
                    std::string(sim::model_id(model)).c_str(),
                    std::string(sim::device_short_name(device)).c_str(),
                    std::string(core::solver_name(settings.solver)).c_str(),
                    settings.nx, settings.ny, settings.nranks,
                    settings.end_step);
}

std::optional<Priority> parse_priority(std::string_view name) {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "low") return Priority::kLow;
  return std::nullopt;
}

namespace {

/// Single-chunk run, exactly quickstart's classic path: core::Driver over
/// the port, u read back from the port, energy from the host chunk.
ScenarioOutcome run_single(const Scenario& sc, const ScenarioHooks& hooks) {
  const core::Mesh mesh(sc.settings.nx, sc.settings.ny,
                        sc.settings.halo_depth);
  core::Driver driver(sc.settings,
                      ports::make_port(sc.model, sc.device, mesh, 1,
                                       hooks.host_threads));
  if (hooks.sink_for_rank) {
    if (sim::TraceSink* sink = hooks.sink_for_rank(0)) {
      driver.kernels().attach_trace_sink(sink);
    }
  }

  ScenarioOutcome outcome;
  outcome.run = driver.run();

  const core::Mesh& m = driver.mesh();
  util::Buffer<double> u(m.padded_cells());
  auto uv = u.view2d(m.padded_nx(), m.padded_ny());
  driver.kernels().read_u(uv);
  outcome.u_checksum = verify::checksum_field(m, u.view2d(m.padded_nx(),
                                                          m.padded_ny()));
  outcome.energy_checksum =
      verify::checksum_field(m, driver.chunk().field(core::FieldId::kEnergy));
  return outcome;
}

ScenarioOutcome run_distributed(const Scenario& sc,
                                const ScenarioHooks& hooks) {
  dist::PortFactory factory = [&](const core::Mesh& tile, int rank) {
    return ports::make_port(sc.model, sc.device, tile,
                            1 + static_cast<std::uint64_t>(rank),
                            hooks.host_threads);
  };
  dist::DistributedDriver driver =
      hooks.decomposition != nullptr
          ? dist::DistributedDriver(sc.settings, std::move(factory),
                                    *hooks.decomposition)
          : dist::DistributedDriver(sc.settings, std::move(factory));
  if (hooks.sink_for_rank) {
    std::vector<sim::TraceSink*> sinks;
    sinks.reserve(static_cast<std::size_t>(sc.settings.nranks));
    for (int r = 0; r < sc.settings.nranks; ++r) {
      sinks.push_back(hooks.sink_for_rank(r));
    }
    driver.set_rank_sinks(std::move(sinks));
  }

  dist::RunControl ctl;
  ctl.faults = hooks.faults;
  ctl.checkpoint_every = hooks.checkpoint_every;
  ctl.on_checkpoint = hooks.on_checkpoint;
  ctl.resume = hooks.resume;
  dist::DistReport dreport = driver.run(ctl);

  ScenarioOutcome outcome;
  outcome.run = std::move(dreport.run);
  outcome.ranks = std::move(dreport.ranks);
  const core::Mesh& gm = dreport.global_mesh;
  outcome.u_checksum = verify::checksum_field(
      gm, dreport.u.view2d(gm.padded_nx(), gm.padded_ny()));
  outcome.energy_checksum = verify::checksum_field(
      gm, dreport.energy.view2d(gm.padded_nx(), gm.padded_ny()));
  return outcome;
}

}  // namespace

ScenarioOutcome run_scenario(const Scenario& scenario,
                             const ScenarioHooks& hooks) {
  if (!ports::is_supported(scenario.model, scenario.device)) {
    throw std::invalid_argument(util::strf(
        "run_scenario: %s does not support device '%s' (paper Table 1)",
        std::string(sim::model_name(scenario.model)).c_str(),
        std::string(sim::device_short_name(scenario.device)).c_str()));
  }
  if (scenario.settings.nranks > 1) return run_distributed(scenario, hooks);
  return run_single(scenario, hooks);
}

}  // namespace tl::service
