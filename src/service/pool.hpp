#pragma once
// SolveService: the multi-tenant worker pool over the JobQueue.
//
// Two lanes partition the workers by job size, so a burst of cheap meshes
// can never head-of-line-block a big one and vice versa:
//
//   small lane   meshes below `large_cells_threshold`. Workers dispatch in
//                tenant-pure batches (up to batch_max jobs of one tenant per
//                scheduling decision) to amortise dispatch overhead across
//                the many tiny solves a busy tenant submits.
//   large lane   dedicated workers popping one job at a time — a large mesh
//                owns its worker for the duration.
//
// Every worker owns a Session (decomposition cache + single-writer
// per-tenant MetricsRegistry slice). submit() assigns ids and blocks when
// the target lane is full (bounded admission); finish() closes both lanes,
// joins the workers — draining every in-flight and queued job — and folds
// results, tenant summaries (deterministically, sorted by job id), and the
// pairwise-combined registry slices into a ServiceReport.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/queue.hpp"
#include "service/session.hpp"
#include "tune/planner.hpp"

namespace tl::service {

/// Opt-in predicted-cost scheduling (DESIGN.md §15). When enabled, submit()
/// fills any planner-free scenario fields (Job::plan_*_free) with the
/// catalog argmin via tune::choose_config, and lane routing switches from
/// the static cell-count rule to the predicted solve seconds — a 2048^2
/// ten-iteration sweep no longer outranks a 128^2 full convergence run just
/// because it has more cells. Jobs the predictor has no basis for fall back
/// to the static rule, so an incomplete catalog degrades to today's
/// behaviour rather than misrouting. Decisions are metered as tl_planner_*
/// counters in the final report.
struct PlannerOptions {
  bool enabled = false;
  /// Fitted tl-models-1 catalog (tl_plan fit) the planner scores with.
  /// Required when enabled.
  std::shared_ptr<const tune::ModelCatalog> catalog;
  /// Predicted solve seconds at or above which a job takes the large lane.
  double large_seconds_threshold = 1e-3;
};

struct ServiceConfig {
  int small_workers = 3;
  int large_workers = 1;
  std::size_t queue_capacity = 256;   // per lane
  std::uint64_t aging_interval = 16;  // pops per priority-level boost
  std::size_t batch_max = 8;          // small-lane tenant-pure batch limit
  int large_cells_threshold = 96 * 96;  // nx*ny at or above => large lane
                                        // (planner-off and fallback routing)
  unsigned host_threads = 1;          // HostPool width per rank port
  PlannerOptions planner;             // off by default

  void validate() const;  // throws std::invalid_argument on nonsense
};

/// Per-tenant rollup, computed from the result list sorted by job id so the
/// numbers are byte-identical no matter how jobs landed on workers.
struct TenantSummary {
  std::string tenant;
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;
  std::uint64_t converged = 0;
  std::uint64_t iterations = 0;
  std::uint64_t inner_iterations = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t comm_bytes = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;         // schedule-dependent (informational)
  std::uint64_t max_wait_pops = 0;   // schedule-dependent (informational)
};

struct ServiceReport {
  std::vector<JobResult> results;      // sorted by job id
  std::vector<TenantSummary> tenants;  // sorted by tenant name
  QueueStats small_queue;
  QueueStats large_queue;
  std::uint64_t fairness_bound = 0;  // max over both lanes
  double wall_seconds = 0.0;         // service construction -> drain complete
  telemetry::MetricsRegistry metrics;  // worker slices, pairwise-combined

  bool all_ok() const noexcept;
  std::uint64_t max_wait_pops() const noexcept;
};

/// Builds the tenant rollups from `results` (any order; the fold sorts a
/// copy of the index by job id first).
std::vector<TenantSummary> summarize_tenants(
    const std::vector<JobResult>& results);

class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});
  /// Joins the workers if finish() was never called (results discarded).
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Assigns the job an id and enqueues it on its size lane. Blocks while
  /// the lane is full. Throws std::logic_error after finish().
  std::uint64_t submit(Job job);

  /// Closes admission, drains both lanes, joins every worker, and returns
  /// the folded report. Callable once; throws std::logic_error after that.
  ServiceReport finish();

  const ServiceConfig& config() const noexcept { return config_; }
  std::uint64_t fairness_bound() const noexcept;
  /// Lane pushes to date. Checkpoint re-enqueues of resumable jobs count
  /// too, so under fault injection this can exceed the submit() call count.
  std::uint64_t submitted() const noexcept;

 private:
  void worker_main(int worker_index, JobQueue& lane, std::size_t batch_max);
  /// Planner path of submit(): fills the job's free fields from the catalog
  /// argmin and returns whether the predicted cost routes it to the large
  /// lane. Called under submit_mutex_ — planner_metrics_ stays
  /// single-writer because submit is the only producer.
  bool plan_and_route(Job& job);

  ServiceConfig config_;
  JobQueue small_lane_;
  JobQueue large_lane_;
  std::vector<Session> sessions_;  // one per worker, owned before spawn
  std::vector<std::thread> workers_;

  std::mutex results_mutex_;
  std::vector<JobResult> results_;

  std::mutex submit_mutex_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_batch_ = 1;
  bool finished_ = false;
  /// tl_planner_* decision counters; written only under submit_mutex_ and
  /// folded into the report's registry when the planner is enabled.
  telemetry::MetricsRegistry planner_metrics_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tl::service
